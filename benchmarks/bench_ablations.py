"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these probe why the paper's choices matter: the
staleness window, atomic vs wild GPU writes, the aggregation rule, fp32 vs
fp64 arithmetic, and pinned vs pageable PCIe transfers.
"""

from repro.experiments.registry import driver


def test_ablation_wave_staleness(figure_runner):
    fig = figure_runner(driver("ablation-wave"))
    finals = {s.meta["wave"]: s.final() for s in fig.series}
    # small windows track sequential; the largest degrades badly
    assert finals[256] > 1e3 * finals[1]
    assert finals[4] < 1e-8


def test_ablation_gpu_write_mode(figure_runner):
    fig = figure_runner(driver("ablation-gpu-write"))
    assert fig.get("wild").final() > 10 * fig.get("atomic").final()
    assert fig.get("wild").meta["lost_updates"] > 0
    assert fig.get("atomic").meta["lost_updates"] == 0


def test_ablation_aggregation_rule(figure_runner):
    fig = figure_runner(driver("ablation-aggregation"))
    adding = fig.get("adding").final()
    averaging = fig.get("averaging").final()
    adaptive = fig.get("adaptive").final()
    assert adaptive <= averaging
    assert adding > 1e3 * averaging  # adding (gamma=1) diverges at K=4


def test_ablation_precision(figure_runner):
    fig = figure_runner(driver("ablation-precision"))
    assert fig.get("float64").final() <= fig.get("float32").final()


def test_ablation_pcie_pinning(figure_runner):
    fig = figure_runner(driver("ablation-pcie"))
    pinned = fig.get("pinned").meta["pcie_seconds"]
    pageable = fig.get("pageable").meta["pcie_seconds"]
    assert pageable > 1.5 * pinned
