"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these probe why the paper's choices matter: the
staleness window, atomic vs wild GPU writes, the aggregation rule, fp32 vs
fp64 arithmetic, and pinned vs pageable PCIe transfers.
"""

from repro.experiments import (
    run_aggregation_ablation,
    run_gpu_write_ablation,
    run_pcie_ablation,
    run_precision_ablation,
    run_wave_ablation,
)


def test_ablation_wave_staleness(figure_runner):
    fig = figure_runner(run_wave_ablation)
    finals = {s.meta["wave"]: s.final() for s in fig.series}
    # small windows track sequential; the largest degrades badly
    assert finals[256] > 1e3 * finals[1]
    assert finals[4] < 1e-8


def test_ablation_gpu_write_mode(figure_runner):
    fig = figure_runner(run_gpu_write_ablation)
    assert fig.get("wild").final() > 10 * fig.get("atomic").final()
    assert fig.get("wild").meta["lost_updates"] > 0
    assert fig.get("atomic").meta["lost_updates"] == 0


def test_ablation_aggregation_rule(figure_runner):
    fig = figure_runner(run_aggregation_ablation)
    adding = fig.get("adding").final()
    averaging = fig.get("averaging").final()
    adaptive = fig.get("adaptive").final()
    assert adaptive <= averaging
    assert adding > 1e3 * averaging  # adding (gamma=1) diverges at K=4


def test_ablation_precision(figure_runner):
    fig = figure_runner(run_precision_ablation)
    assert fig.get("float64").final() <= fig.get("float32").final()


def test_ablation_pcie_pinning(figure_runner):
    fig = figure_runner(run_pcie_ablation)
    pinned = fig.get("pinned").meta["pcie_seconds"]
    pageable = fig.get("pageable").meta["pcie_seconds"]
    assert pageable > 1.5 * pinned
