"""Benches for the extension experiments (the paper's future-work items).

* smart partitioning ([22]) — correlation-aware beats random per epoch;
* communication/computation trade-off ([23]) — the optimal aggregation
  granularity depends on the fabric;
* CoCoA+ sigma' sweep ([24]) — moderate scaling helps, adding diverges;
* async parameter server ([6]) — bounded staleness converges and hides
  communication, large batches diverge;
* heterogeneous cluster — throughput-proportional partitions beat uniform;
* GLM on the GPU — elastic net and SVM run on the TPA engine.
"""

import math

import numpy as np

from repro.experiments.registry import driver


def test_ext_smart_partition(figure_runner):
    fig = figure_runner(driver("ext-smart-partition"))
    random_final = fig.get("random").final()
    smart_final = fig.get("correlation-aware").final()
    assert smart_final < random_final / 5


def test_ext_comm_tradeoff(figure_runner):
    fig = figure_runner(driver("ext-comm-tradeoff"))
    slow = fig.get("10GbE").y
    fast = fig.get("100GbE").y
    finite = np.isfinite(slow) & np.isfinite(fast)
    assert finite.any()
    # the faster fabric never loses, and tolerates fine granularity better:
    # at the finest fraction its penalty relative to its own best is smaller
    assert np.all(fast[finite] <= slow[finite] * 1.05)
    assert fast[-1] / fast[finite].min() < slow[-1] / slow[finite].min()


def test_ext_sigma_sweep(figure_runner):
    fig = figure_runner(driver("ext-sigma-sweep"))
    s1 = fig.get("sigma'=1").final()
    s2 = fig.get("sigma'=2").final()
    s8 = fig.get("sigma'=8").final()
    assert s2 < s1          # moderate scaling accelerates
    assert s8 > 1e3 * s1    # adding diverges at K=8


def test_ext_async_vs_sync(figure_runner):
    fig = figure_runner(driver("ext-async-vs-sync"))
    sync_t = fig.get("synchronous (averaging)").meta["time_to_target"]
    fine = fig.get("async batch=1/16").meta["time_to_target"]
    stale = fig.get("async batch=1/4 (too stale)").meta["time_to_target"]
    assert fine < sync_t
    assert math.isinf(stale)


def test_ext_heterogeneous_cluster(figure_runner):
    fig = figure_runner(driver("ext-heterogeneous"))
    uni = fig.get("uniform").meta["time_to_target"]
    prop = fig.get("throughput-proportional").meta["time_to_target"]
    assert prop < uni


def test_ext_glm_gpu(figure_runner):
    fig = figure_runner(driver("ext-glm-gpu"))
    # GPU tracks CPU per-epoch down to the fp32 floor on both objectives
    assert fig.get("elastic-net TPA").final() < 1e-5
    assert abs(fig.get("SVM TPA").final()) < 1e-5
    assert fig.get("elastic-net CPU").final() < 1e-8


def test_ext_batch_vs_stochastic(figure_runner):
    fig = figure_runner(driver("ext-batch-vs-stochastic"))
    scd = fig.get("SCD (Algorithm 1)").final()
    gd = fig.get("Batch GD").final()
    nesterov = fig.get("Nesterov GD").final()
    # the Section I motivation: SCD far ahead of plain batch GD per epoch
    assert scd < gd / 1e3
    # acceleration helps GD but SCD needs no tuning to stay competitive
    assert nesterov < gd


def test_ext_weak_scaling(figure_runner):
    fig = figure_runner(driver("ext-weak-scaling"))
    gpu = fig.get("distributed TPA-SCD (K workers)").y
    cpu = fig.get("sequential CPU (same growing data)").y
    # the cluster absorbs the K-fold data growth; the CPU does not
    assert gpu[-1] < 3 * gpu[0]
    assert cpu[-1] > 1.5 * cpu[0]
    assert np.all(gpu < cpu / 5)
