"""Fig. 10 — large-scale criteo-like training across 4 workers (dual).

Expected shape: distributed TPA-SCD (Titan X, adaptive aggregation) reaches
high accuracy an order of magnitude faster than the distributed CPU
configurations; PASSCoDe-Wild's duality gap does not converge to zero; the
40 GB sample does not fit on one GPU (the memory gate of Section V-B).
"""

import numpy as np

from repro.experiments.registry import driver


def test_fig10_criteo_large_scale(figure_runner):
    fig = figure_runner(driver("fig10"))

    # the memory gate
    assert fig.meta["single_gpu_fits_40GB"] is False
    assert fig.meta["quarter_fits"] is True

    tpa = fig.get("TPA-SCD (Titan X)")
    scd = fig.get("SCD (1 thread)")
    wild = fig.get("PASSCoDe (16 threads)")

    # same epoch budget, wildly different wall-clock: >= 20x vs 1-thread
    assert scd.x[-1] / tpa.x[-1] >= 20

    # time-to-gap at a target Wild still reaches: TPA >= 10x faster than
    # Wild, which is itself faster than 1-thread SCD (paper: 20x / 40x)
    eps = float(np.nanmin(wild.y[1:])) * 2
    t_tpa = tpa.x[np.nonzero(tpa.y <= eps)[0][0]]
    t_wild = wild.x[np.nonzero(wild.y <= eps)[0][0]]
    t_scd = scd.x[np.nonzero(scd.y <= eps)[0][0]]
    assert t_wild / t_tpa >= 8
    assert t_scd / t_tpa >= 20

    # Wild never converges to zero: its floor sits far above TPA's final gap
    assert wild.y[-1] > 10 * tpa.y[-1]
