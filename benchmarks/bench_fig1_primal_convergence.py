"""Fig. 1 — primal convergence of the five solver configurations.

Regenerates both panels: duality gap vs epochs (1a) and vs time (1b) for
SCD (1 thread), A-SCD (16), PASSCoDe-Wild (16), TPA-SCD (M4000) and
TPA-SCD (Titan X), webspam-like data, primal ridge regression.
"""

import numpy as np

from repro.experiments import SOLVER_LABELS
from repro.experiments.registry import driver


def test_fig1_primal_convergence(figure_runner):
    fig = figure_runner(driver("fig1"))

    # 1a: every atomic solver tracks the sequential per-epoch curve
    seq_final = fig.get("SCD (1 thread) | epochs").final()
    for label in ("A-SCD (16 threads)", "TPA-SCD (M4000)", "TPA-SCD (Titan X)"):
        assert fig.get(f"{label} | epochs").final() < max(seq_final * 1e4, 1e-8)

    # 1a: Wild plateaus at a visible gap floor
    assert fig.get("PASSCoDe-Wild (16 threads) | epochs").final() > 100 * max(
        seq_final, 1e-16
    )

    # 1b: the time ordering of the paper
    totals = {l: fig.get(f"{l} | time").x[-1] for l in SOLVER_LABELS}
    assert (
        totals["TPA-SCD (Titan X)"]
        < totals["TPA-SCD (M4000)"]
        < totals["PASSCoDe-Wild (16 threads)"]
        < totals["A-SCD (16 threads)"]
        < totals["SCD (1 thread)"]
    )

    # 1b: paper speedup bands (primal: M4000 ~14x, Titan X ~25x)
    seq = fig.get("SCD (1 thread) | time")
    eps = seq.y[len(seq.y) // 2] * 2
    t_seq = seq.x[np.nonzero(seq.y <= eps)[0][0]]
    for label, lo, hi in (
        ("TPA-SCD (M4000)", 7, 22),
        ("TPA-SCD (Titan X)", 18, 45),
    ):
        s = fig.get(f"{label} | time")
        t = s.x[np.nonzero(s.y <= eps)[0][0]]
        assert lo <= t_seq / t <= hi, f"{label}: {t_seq / t:.1f}x outside [{lo},{hi}]"
