"""Fig. 2 — dual convergence of the five solver configurations.

Same comparison as Fig. 1 in the dual formulation; the paper's headline
35x (Titan X) and 10x (M4000) single-GPU speedups come from this figure.
"""

import numpy as np

from repro.experiments import SOLVER_LABELS
from repro.experiments.registry import driver


def test_fig2_dual_convergence(figure_runner):
    fig = figure_runner(driver("fig2"))

    seq_final = fig.get("SCD (1 thread) | epochs").final()
    for label in ("A-SCD (16 threads)", "TPA-SCD (M4000)", "TPA-SCD (Titan X)"):
        assert fig.get(f"{label} | epochs").final() < max(seq_final * 1e4, 1e-7)

    assert fig.get("PASSCoDe-Wild (16 threads) | epochs").final() > 100 * max(
        seq_final, 1e-16
    )

    totals = {l: fig.get(f"{l} | time").x[-1] for l in SOLVER_LABELS}
    assert (
        totals["TPA-SCD (Titan X)"]
        < totals["TPA-SCD (M4000)"]
        < totals["PASSCoDe-Wild (16 threads)"]
        < totals["A-SCD (16 threads)"]
        < totals["SCD (1 thread)"]
    )

    # dual speedup bands: M4000 ~10x, Titan X ~35x
    seq = fig.get("SCD (1 thread) | time")
    eps = seq.y[len(seq.y) // 2] * 2
    t_seq = seq.x[np.nonzero(seq.y <= eps)[0][0]]
    for label, lo, hi in (
        ("TPA-SCD (M4000)", 7, 18),
        ("TPA-SCD (Titan X)", 20, 45),
    ):
        s = fig.get(f"{label} | time")
        t = s.x[np.nonzero(s.y <= eps)[0][0]]
        assert lo <= t_seq / t <= hi, f"{label}: {t_seq / t:.1f}x outside [{lo},{hi}]"
