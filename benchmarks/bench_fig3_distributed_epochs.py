"""Fig. 3 — distributed SCD convergence vs epochs for K = 1, 2, 4, 8.

Both panels: (a) primal with the data partitioned by feature, (b) dual with
the data partitioned by example.  Expected shape: an approximately linear
slow-down in per-epoch convergence as K grows.
"""

import numpy as np
import pytest

from repro.experiments.registry import driver


@pytest.mark.parametrize("formulation", ["primal", "dual"])
def test_fig3_distributed_epochs(figure_runner, formulation):
    fig = figure_runner(driver(f"fig3-{formulation}"))
    finals = [s.final() for s in fig.series]
    ks = [s.meta["n_workers"] for s in fig.series]
    assert ks == [1, 2, 4, 8]

    # all configurations converge...
    assert all(f < fig.series[0].y[0] for f in finals)
    # ...but per-epoch convergence degrades monotonically with K
    # (allow equality at float precision floors)
    for a, b in zip(finals, finals[1:]):
        assert a <= b * 1.5 + 1e-15

    # the K=8 run needs visibly more epochs than K=1 to a target both
    # reach (geometric midpoint between the initial gap and K=8's final)
    eps = np.sqrt(max(finals[-1], 1e-14) * fig.series[0].y[0])
    e1 = fig.series[0].x[np.nonzero(fig.series[0].y <= eps)[0][0]]
    e8 = fig.series[-1].x[np.nonzero(fig.series[-1].y <= eps)[0][0]]
    assert e8 > e1
