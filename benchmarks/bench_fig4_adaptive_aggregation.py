"""Fig. 4 — adaptive vs averaging aggregation at K = 8.

Expected shape: adaptive aggregation reaches small duality gaps in fewer
epochs (the paper reports up to ~2x for the primal, ~1.2x for the dual at
small gaps, with a possible early crossover in the dual).
"""

import numpy as np
import pytest

from repro.experiments.registry import driver


@pytest.mark.parametrize("formulation", ["primal", "dual"])
def test_fig4_adaptive_aggregation(figure_runner, formulation):
    fig = figure_runner(driver(f"fig4-{formulation}"))
    avg = fig.get("Averaging Aggregation")
    ada = fig.get("Adaptive Aggregation")

    # at the end of the budget, adaptive is at least as converged
    assert ada.final() <= avg.final() * 1.1 + 1e-15

    # epochs-to-target speedup at a small gap: >= 1 (paper: ~2x primal)
    eps = max(avg.final() * 2, 1e-14)
    e_avg = avg.x[np.nonzero(avg.y <= eps)[0][0]]
    hits = np.nonzero(ada.y <= eps)[0]
    assert hits.size, "adaptive never reached averaging's final gap"
    e_ada = ada.x[hits[0]]
    assert e_ada <= e_avg
