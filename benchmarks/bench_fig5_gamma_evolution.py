"""Fig. 5 — evolution of the optimal aggregation parameter gamma_t.

Expected shape: gamma starts relatively low, rises, and settles at a value
significantly larger than the averaging value 1/K, for every K.  (After the
run has fully converged the updates vanish and gamma* degenerates, so the
assertion uses the driver's "settled" gamma — the value while the run is
still meaningfully optimizing, which is what the paper's plateaus show.)
"""

import numpy as np
import pytest

from repro.experiments.registry import driver


@pytest.mark.parametrize("formulation", ["primal", "dual"])
def test_fig5_gamma_evolution(figure_runner, formulation):
    fig = figure_runner(driver(f"fig5-{formulation}"))
    assert [s.meta["n_workers"] for s in fig.series] == [1, 2, 4, 8]

    settled = {}
    for series in fig.series:
        k = series.meta["n_workers"]
        gamma = series.meta["settled_gamma"]
        settled[k] = gamma
        if k == 1:
            # a lone worker's optimal step is essentially the full update
            assert 0.7 < gamma < 1.6
        else:
            # significantly above the averaging value 1/K
            assert gamma > 1.2 / k
        assert np.isfinite(series.y).all()

    # larger clusters settle at smaller gamma (but still > 1/K)
    assert settled[8] < settled[1]
