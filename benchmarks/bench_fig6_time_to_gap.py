"""Fig. 6 — time to reach duality-gap targets vs number of workers.

Expected shape: with adaptive aggregation, scaling out keeps training time
roughly constant (the K-fold compute speedup cancels the K-fold per-epoch
convergence slow-down); adaptive is no slower than averaging at tight
targets.
"""

import numpy as np
import pytest

from repro.experiments import EPS_TARGETS
from repro.experiments.registry import driver


@pytest.mark.parametrize("formulation", ["primal", "dual"])
def test_fig6_time_to_gap(figure_runner, formulation):
    fig = figure_runner(driver(f"fig6-{formulation}"))

    # every (rule, eps) series present, one point per worker count
    assert len(fig.series) == 2 * len(EPS_TARGETS)
    for s in fig.series:
        assert s.x.tolist() == [1.0, 2.0, 4.0, 8.0]
        assert np.all(np.isfinite(s.y)), f"{s.label} missed its target"

    for eps in EPS_TARGETS:
        avg = fig.get(f"Averaging eps={eps:g}").y
        ada = fig.get(f"Adaptive eps={eps:g}").y
        # the paper's claim: scaling out does NOT blow up training time —
        # each curve stays within a small factor of its K=1 point (on the
        # reproduction it often *improves* with K, which also passes)
        assert np.all(avg <= 3.0 * avg[0])
        assert np.all(ada <= 3.0 * ada[0])
        # adaptive at least as fast as averaging at K=8 (tight targets)
        assert ada[-1] <= avg[-1] * 1.2
