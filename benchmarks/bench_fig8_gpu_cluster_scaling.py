"""Fig. 8 — distributed TPA-SCD vs distributed SCD across GPU clusters.

(a) Quadro M4000 cluster over 10 GbE; (b) GTX Titan X cluster over PCIe.
Expected shape: TPA-SCD sits roughly an order of magnitude below SCD at
every worker count, with similarly flat scaling (the paper reports ~10x on
the M4000 cluster and ~30x on the Titan X cluster).
"""

import numpy as np
import pytest

from repro.experiments import EPS_TARGETS
from repro.experiments.registry import driver


@pytest.mark.parametrize("cluster,min_speedup", [("m4000", 5), ("titanx", 15)])
def test_fig8_gpu_cluster_scaling(figure_runner, cluster, min_speedup):
    fig = figure_runner(driver(f"fig8-{cluster}"))

    for eps in EPS_TARGETS:
        scd = fig.get(f"SCD eps={eps:g}").y
        tpa = fig.get(f"TPA-SCD eps={eps:g}").y
        finite = np.isfinite(scd) & np.isfinite(tpa)
        assert finite.any()
        # the GPU cluster is at least min_speedup x faster wherever both ran
        assert np.all(scd[finite] / tpa[finite] >= min_speedup), (
            f"eps={eps}: speedups {scd[finite] / tpa[finite]}"
        )

    # flat-ish scaling for the loosest target
    loose = fig.get(f"TPA-SCD eps={EPS_TARGETS[0]:g}").y
    assert np.all(np.isfinite(loose))
    assert loose.max() < 6 * loose.min()
