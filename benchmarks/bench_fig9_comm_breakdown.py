"""Fig. 9 — computation vs communication breakdown on the M4000 cluster.

Expected shape: GPU compute dominates total time at every K; communication
time grows with the number of workers but remains a minority share (the
paper reports ~17% at K=8).
"""

import numpy as np

from repro.experiments.registry import driver


def test_fig9_comm_breakdown(figure_runner):
    fig = figure_runner(driver("fig9"))

    gpu = fig.get("Comp. Time (GPU)").y
    host = fig.get("Comp. Time (Host)").y
    pcie = fig.get("Comm. Time (PCIe)").y
    net = fig.get("Comm. Time (Network)").y

    assert np.all(gpu > 0)
    assert net[0] == 0.0  # single worker: no network hop
    assert np.all(np.diff(net) > 0)  # communication grows with K

    totals = gpu + host + pcie + net
    comm_share = (pcie + net) / totals
    # GPU compute dominates everywhere; communication stays a minority
    assert np.all(gpu / totals > 0.5)
    assert np.all(comm_share < 0.45)
    print(
        "\ncommunication share by K:",
        {k: f"{s:.0%}" for k, s in zip((1, 2, 4, 8), comm_share)},
    )
