"""Headline speed-up table (abstract / Sections I and VI).

Measures every summary speedup the paper claims and checks each lands in a
band around the published value:

* A-SCD ~2x, PASSCoDe-Wild ~4x over 1-thread CPU;
* TPA-SCD M4000 ~10x, Titan X ~35x over 1-thread CPU (dual webspam);
* distributed TPA-SCD ~40x over distributed 1-thread SCD and ~20x over
  distributed PASSCoDe on the criteo-like sample (K=4).
"""

from repro.experiments.registry import driver

BANDS = {
    "A-SCD (16 threads)": (1.4, 3.0),
    "PASSCoDe-Wild (16 threads)": (2.5, 6.0),
    "TPA-SCD (M4000)": (7.0, 18.0),
    "TPA-SCD (Titan X)": (20.0, 45.0),
    "dist TPA-SCD vs dist SCD (K=4)": (25.0, 70.0),
    "dist TPA-SCD vs dist PASSCoDe (K=4)": (8.0, 30.0),
}


def test_headline_speedups(figure_runner):
    fig = figure_runner(driver("headline"))
    measured = fig.get("measured speedup")
    rows = dict(zip(measured.meta["rows"], measured.y))
    for name, (lo, hi) in BANDS.items():
        assert lo <= rows[name] <= hi, (
            f"{name}: measured {rows[name]:.1f}x outside [{lo}, {hi}]"
        )
