"""Microbenchmarks of the epoch plan compiler and pooled wave runtime.

Statistical timings (pytest-benchmark) of the pieces `docs/performance.md`
describes: cold plan compilation vs warm cache hits, per-epoch plan
specialisation, and the planned-vs-seed TPA epoch — asserting the planned
path actually is faster *and* bit-identical on the bench problem.
"""

import numpy as np
import pytest

from repro.core.tpa_scd import TpaScdKernelFactory
from repro.data.synthetic import make_sparse_regression
from repro.gpu import TpaScdEngine, WavePlan, clear_plan_cache, get_plan
from repro.objectives import RidgeProblem

WAVE, THREADS = 64, 256


@pytest.fixture(scope="module")
def bench_problem():
    ds = make_sparse_regression(
        4096, 2048, nnz_per_example=24, feature_exponent=1.0,
        rng=np.random.default_rng(7), name="bench-plan",
    )
    return RidgeProblem(ds, 1e-3)


def test_plan_cold_compile(benchmark, bench_problem):
    """WavePlan construction from the permutation-independent structure."""
    csc = bench_problem.dataset.csc

    def cold():
        return WavePlan(
            csc.indptr, wave_size=WAVE, n_threads=THREADS, dtype=np.float32
        )

    plan = benchmark(cold)
    assert plan.n_coords == bench_problem.m


def test_plan_warm_cache_hit(benchmark, bench_problem):
    """get_plan on an already-bound matrix: a dict probe, not a compile."""
    csc = bench_problem.dataset.csc
    clear_plan_cache()
    first = get_plan(csc.indptr, wave_size=WAVE, n_threads=THREADS, dtype=np.float32)

    def warm():
        return get_plan(
            csc.indptr, wave_size=WAVE, n_threads=THREADS, dtype=np.float32
        )

    assert benchmark(warm) is first


def test_epoch_specialisation(benchmark, bench_problem):
    """begin_epoch: the one bulk pass that parameterises an epoch."""
    csc = bench_problem.dataset.csc
    plan = WavePlan(
        csc.indptr, wave_size=WAVE, n_threads=THREADS, dtype=np.float32
    )
    perm = np.random.default_rng(0).permutation(bench_problem.m)
    run = benchmark(
        plan.begin_epoch, csc.indices, csc.data.astype(np.float32),
        perm, n_minor=csc.shape[0],
    )
    assert run.seg_ptr[-1] == csc.nnz


def _epoch_runner(problem, planned):
    clear_plan_cache()
    csc = problem.dataset.csc
    bound = TpaScdKernelFactory(
        n_threads=THREADS, wave_size=WAVE, planned=planned
    ).bind_primal(csc, problem.y, problem.n, problem.lam)
    beta = np.zeros(problem.m, dtype=bound.dtype)
    w = np.zeros(problem.n, dtype=bound.dtype)
    perm = np.random.default_rng(1).permutation(problem.m)
    rng = np.random.default_rng(2)

    def run_one():
        bound.run_epoch(beta, w, perm, rng)

    return run_one, beta, w


def test_tpa_epoch_seed_path(benchmark, bench_problem):
    run_one, beta, _ = _epoch_runner(bench_problem, planned=False)
    benchmark(run_one)
    assert np.any(beta != 0)


def test_tpa_epoch_planned_path(benchmark, bench_problem):
    run_one, beta, _ = _epoch_runner(bench_problem, planned=True)
    benchmark(run_one)
    assert np.any(beta != 0)


def test_planned_speedup_and_bit_identity(bench_problem):
    """The headline claim, end to end: faster AND bit-identical."""
    import time

    results = {}
    for planned in (False, True):
        run_one, beta, w = _epoch_runner(bench_problem, planned)
        for _ in range(3):
            run_one()
        times = []
        for _ in range(9):
            t0 = time.perf_counter()
            run_one()
            times.append(time.perf_counter() - t0)
        results[planned] = (sorted(times)[len(times) // 2], beta, w)
    med_seed, beta_seed, w_seed = results[False]
    med_planned, beta_planned, w_planned = results[True]
    assert np.array_equal(
        beta_seed.view(np.uint32), beta_planned.view(np.uint32)
    )
    assert np.array_equal(w_seed.view(np.uint32), w_planned.view(np.uint32))
    speedup = med_seed / med_planned
    print(f"\nplanned vs seed epoch speedup: {speedup:.2f}x "
          f"({med_seed * 1e3:.2f} ms -> {med_planned * 1e3:.2f} ms)")
    assert speedup > 1.2, f"planned path only {speedup:.2f}x vs seed"
