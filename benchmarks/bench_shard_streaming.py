"""Microbenchmarks of the out-of-core shard pipeline (repro.shards).

Measures the real host-side costs of the shard data path — pack, cold
reads, warm cache hits, group assembly — and runs the Fig. 10 out-of-core
driver once end-to-end.  The *modelled* streaming seconds live in the
ledger's ``shard_stream`` phase; these benches time what the pipeline
actually burns on this machine.
"""

import numpy as np
import pytest

from repro.data import make_webspam_like
from repro.experiments.registry import driver
from repro.shards import (
    Prefetcher,
    ShardCache,
    ShardStore,
    pack_dataset,
)


@pytest.fixture(scope="module")
def bench_dataset():
    return make_webspam_like(4_000, 8_000, nnz_per_example=40, seed=5)


@pytest.fixture(scope="module")
def bench_store(bench_dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("shard-bench")
    pack_dataset(bench_dataset, root, axis="rows", n_shards=16)
    return ShardStore(root)


def test_shard_pack(benchmark, bench_dataset, tmp_path_factory):
    def pack():
        out = tmp_path_factory.mktemp("pack")
        return pack_dataset(bench_dataset, out, axis="rows", n_shards=16)

    manifest = benchmark.pedantic(pack, rounds=3, iterations=1)
    assert manifest.n_shards == 16


def test_shard_cold_read(benchmark, bench_store):
    def cold_pass():
        cache = ShardCache(bench_store)  # fresh cache: every fetch misses
        for s in range(bench_store.n_shards):
            cache.fetch(s)
        return cache

    cache = benchmark.pedantic(cold_pass, rounds=3, iterations=1)
    assert cache.misses == bench_store.n_shards


def test_shard_warm_hit(benchmark, bench_store):
    cache = ShardCache(bench_store)
    for s in range(bench_store.n_shards):
        cache.fetch(s)

    def warm_pass():
        for s in range(bench_store.n_shards):
            cache.fetch(s)

    benchmark(warm_pass)
    assert cache.misses == bench_store.n_shards  # no re-reads


def test_shard_prefetched_pass(benchmark, bench_store):
    def prefetched_pass():
        cache = ShardCache(bench_store)
        with Prefetcher(cache) as pf:
            pf.schedule(range(bench_store.n_shards))
            pf.wait()
            for s in range(bench_store.n_shards):
                cache.fetch(s)
        return cache

    cache = benchmark.pedantic(prefetched_pass, rounds=3, iterations=1)
    assert cache.misses == bench_store.n_shards


def test_shard_assemble_group(benchmark, bench_store, bench_dataset):
    ids = list(range(bench_store.n_shards // 2))
    matrix, _ = benchmark(bench_store.assemble, ids)
    stop = bench_store.handles[ids[-1]].meta.stop
    expect = bench_dataset.csr.take_rows(np.arange(stop))
    assert np.array_equal(matrix.data, expect.data)


def test_fig10_outofcore_end_to_end(figure_runner):
    fig = figure_runner(driver("fig10-outofcore"))
    assert fig.meta["bit_identical"] is True
    assert fig.meta["cache_misses"] > 0
    # streamed curve reaches the same gap floor as the resident one
    resident = fig.get("TPA-SCD (resident)")
    streamed = fig.get("TPA-SCD (out-of-core, 40 GB / 12 GB)")
    assert np.array_equal(resident.y, streamed.y)
    # but pays for the PCIe shard traffic on the time axis
    assert streamed.x[-1] >= resident.x[-1]
