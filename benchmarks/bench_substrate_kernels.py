"""Microbenchmarks of the substrate hot paths (multi-round timings).

Unlike the figure benches (one end-to-end run each), these use
pytest-benchmark's statistical timing on the kernels every experiment sits
on: sparse matvec/rmatvec, the sequential and chunked epoch kernels, the
thread-block tree reduction, and the CSR<->CSC transpose.
"""

import numpy as np
import pytest

from repro.data import make_webspam_like
from repro.gpu import block_tree_dots
from repro.objectives import RidgeProblem
from repro.solvers.kernels import (
    gather_chunk,
    primal_epoch_chunked,
    primal_epoch_sequential,
)
from repro.sparse.ops import transpose_compressed


@pytest.fixture(scope="module")
def bench_problem():
    ds = make_webspam_like(2_000, 4_000, nnz_per_example=40, seed=5)
    return RidgeProblem(ds, lam=5e-3)


def test_kernel_csr_matvec(benchmark, bench_problem):
    csr = bench_problem.dataset.csr
    x = np.random.default_rng(0).standard_normal(csr.shape[1])
    out = benchmark(csr.matvec, x)
    assert out.shape == (csr.shape[0],)


def test_kernel_csc_rmatvec(benchmark, bench_problem):
    csc = bench_problem.dataset.csc
    x = np.random.default_rng(0).standard_normal(csc.shape[0])
    out = benchmark(csc.rmatvec, x)
    assert out.shape == (csc.shape[1],)


def test_kernel_transpose(benchmark, bench_problem):
    csr = bench_problem.dataset.csr
    indptr, indices, data = benchmark(
        transpose_compressed, csr.indptr, csr.indices, csr.data, csr.shape[1]
    )
    assert indptr.shape == (csr.shape[1] + 1,)


def test_kernel_sequential_epoch(benchmark, bench_problem):
    p = bench_problem
    csc = p.dataset.csc
    y_dots = csc.rmatvec(p.y)
    nlam = p.n * p.lam
    inv_denom = 1.0 / (csc.col_norms_sq() + nlam)
    perm = np.random.default_rng(0).permutation(p.m)

    def run():
        beta = np.zeros(p.m)
        w = np.zeros(p.n)
        primal_epoch_sequential(
            csc.indptr, csc.indices, csc.data, y_dots, inv_denom, nlam,
            beta, w, perm,
        )
        return beta

    beta = benchmark(run)
    assert np.any(beta != 0)


def test_kernel_chunked_epoch(benchmark, bench_problem):
    p = bench_problem
    csc = p.dataset.csc
    y_dots = csc.rmatvec(p.y)
    nlam = p.n * p.lam
    inv_denom = 1.0 / (csc.col_norms_sq() + nlam)
    perm = np.random.default_rng(0).permutation(p.m)

    def run():
        beta = np.zeros(p.m)
        w = np.zeros(p.n)
        primal_epoch_chunked(
            csc.indptr, csc.indices, csc.data, y_dots, inv_denom, nlam,
            beta, w, perm, chunk_size=16,
        )
        return beta

    beta = benchmark(run)
    assert np.any(beta != 0)


def test_kernel_block_tree_dots(benchmark, bench_problem):
    csc = bench_problem.dataset.csc
    coords = np.arange(256)
    flat_idx, flat_val, seg_ptr = gather_chunk(
        csc.indptr, csc.indices, csc.data, coords
    )
    gathered = np.random.default_rng(0).standard_normal(
        flat_idx.shape[0]
    ).astype(np.float32)
    vals32 = flat_val.astype(np.float32)
    dots = benchmark(block_tree_dots, vals32, gathered, seg_ptr, 256)
    assert dots.shape == (256,)


def test_kernel_gather_chunk(benchmark, bench_problem):
    csc = bench_problem.dataset.csc
    coords = np.random.default_rng(0).permutation(csc.n_major)[:512]
    flat_idx, flat_val, seg_ptr = benchmark(
        gather_chunk, csc.indptr, csc.indices, csc.data, coords
    )
    assert seg_ptr.shape == (513,)
