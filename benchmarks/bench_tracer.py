"""Tracer overhead micro-benchmarks.

The observability layer claims a near-free off switch: instrumented hot
loops pay one no-op method call when no tracer is installed.  These
benches quantify that claim two ways:

* raw span-context cost, ``NullTracer`` vs an enabled :class:`Tracer`;
* a full seeded solve, untraced vs traced, asserting the end-to-end
  slowdown stays small and the numerics stay bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.data import make_webspam_like
from repro.objectives import RidgeProblem
from repro.obs import NULL_SPAN, NULL_TRACER, Tracer
from repro.solvers.scd import SequentialSCD

SPAN_ITERS = 20_000


def _spin_spans(tracer, n: int) -> int:
    observed = tracer.enabled
    total = 0
    for i in range(n):
        with tracer.span("wave", category="gpu") if observed else NULL_SPAN:
            total += i
    return total


def _problem() -> RidgeProblem:
    return RidgeProblem(
        make_webspam_like(300, 600, nnz_per_example=15, seed=9), lam=5e-3
    )


class TestSpanOverhead:
    def test_null_tracer_span_loop(self, benchmark):
        total = benchmark.pedantic(
            _spin_spans, args=(NULL_TRACER, SPAN_ITERS),
            rounds=3, iterations=1,
        )
        assert total == SPAN_ITERS * (SPAN_ITERS - 1) // 2

    def test_enabled_tracer_span_loop(self, benchmark):
        tracer = Tracer(detail="wave")
        with tracer.span("root"):
            benchmark.pedantic(
                _spin_spans, args=(tracer, SPAN_ITERS), rounds=3, iterations=1
            )
        # every iteration produced a span under the root
        assert len(tracer.roots[0].children) == 3 * SPAN_ITERS


class TestSolveOverhead:
    def test_untraced_solve(self, benchmark):
        problem = _problem()
        res = benchmark.pedantic(
            lambda: SequentialSCD("dual", seed=0).solve(problem, 3),
            rounds=1, iterations=1,
        )
        assert res.history.final_gap() < 1.0

    def test_traced_solve_matches_untraced(self, benchmark):
        problem = _problem()
        baseline = SequentialSCD("dual", seed=0).solve(problem, 3)

        def run():
            return SequentialSCD("dual", seed=0).solve(
                problem, 3, tracer=Tracer()
            )

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        np.testing.assert_array_equal(res.weights, baseline.weights)
        assert res.trace.ledger.total > 0.0
