"""Benchmark harness configuration.

Every bench runs one figure driver exactly once under pytest-benchmark
(``pedantic(rounds=1)``): the drivers are end-to-end experiments, not
micro-kernels, so statistical repetition would only burn time.  Each bench
prints the figure's series — the same rows the paper's plots show — and
asserts the qualitative *shape* claims the paper makes.

Scale is controlled by ``REPRO_SCALE`` (quick | full), defaulting to quick.
"""

from __future__ import annotations

import pytest

from repro.experiments.results import FigureResult


def run_once(benchmark, fn, *args, **kwargs) -> FigureResult:
    """Execute a figure driver once under the benchmark timer and print it."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render_text())
    return result


@pytest.fixture
def figure_runner(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
