#!/usr/bin/env python
"""Let the planner make the paper's deployment decisions automatically.

Section V-B's setup — solve the dual, partition by example across exactly 4
Titan X GPUs because the 40 GB sample does not fit fewer, adaptive
aggregation — falls out of ``plan_execution`` given just the dataset and the
available hardware.  The plan also predicts the per-epoch cost from the same
device models the engine books, so estimate and measurement agree.

Run:  python examples/autoplan_training.py
"""

from repro.core import ClusterSpec, plan_execution
from repro.core.scale import CRITEO_PAPER, WEBSPAM_PAPER
from repro.experiments.config import criteo_problem, webspam_problem
from repro.gpu import GTX_TITAN_X, QUADRO_M4000


def main() -> None:
    # 1) criteo on a box of Titan Xs: the paper's K=4 deployment, derived
    problem, _ = criteo_problem()
    cluster = ClusterSpec(devices=GTX_TITAN_X)
    plan = plan_execution(problem.dataset, cluster=cluster, paper_scale=CRITEO_PAPER)
    print("criteo-like plan:", plan.describe())
    for note in plan.notes:
        print("   -", note)

    engine = plan.build_engine(problem, cluster=cluster, paper_scale=CRITEO_PAPER)
    res = engine.solve(problem, 8, monitor_every=2)
    measured = res.history.sim_times[-1] / 8
    print(
        f"   predicted {plan.predicted_epoch_seconds:.3f}s/epoch, "
        f"measured {measured:.3f}s/epoch, final gap {res.history.final_gap():.2e}\n"
    )

    # 2) webspam on a mixed cluster: heterogeneity handled automatically
    problem, _ = webspam_problem()
    cluster = ClusterSpec(devices=[GTX_TITAN_X, QUADRO_M4000, QUADRO_M4000])
    plan = plan_execution(problem.dataset, cluster=cluster, paper_scale=WEBSPAM_PAPER)
    print("webspam-like plan:", plan.describe())
    for note in plan.notes:
        print("   -", note)
    engine = plan.build_engine(problem, cluster=cluster, paper_scale=WEBSPAM_PAPER)
    res = engine.solve(problem, 20, monitor_every=4, target_gap=3e-5)
    print(
        f"   gap<=3e-5 after {res.history.epochs_to_gap(3e-5):.0f} epochs, "
        f"{res.history.time_to_gap(3e-5):.2f}s modelled"
    )


if __name__ == "__main__":
    main()
