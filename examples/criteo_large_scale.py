#!/usr/bin/env python
"""Reproduce Fig. 10: multi-GPU training beyond single-device memory.

Demonstrates the two Section-V results on criteo-like click data:

1. the *memory gate*: a 40 GB training sample cannot be uploaded to a
   single simulated Titan X (12 GB), but a quarter of it fits on each of
   four — the reason distribution is "a necessity rather than a choice";
2. distributed TPA-SCD with adaptive aggregation beats the distributed
   CPU implementations by an order of magnitude in modelled training time.

Run:  python examples/criteo_large_scale.py
"""

from repro.core.tpa_scd import TpaScdKernelFactory
from repro.experiments import run_fig10
from repro.experiments.config import criteo_problem
from repro.experiments.large_scale import CRITEO_PAPER_NBYTES
from repro.gpu import GTX_TITAN_X, GpuDevice, GpuOutOfMemoryError


def main() -> None:
    problem, paper = criteo_problem()
    print(problem.dataset.describe())
    print(
        f"paper-scale counterpart: {paper.n_examples:,} examples x "
        f"{paper.n_features:,} features, ~{CRITEO_PAPER_NBYTES / 2**30:.0f} GB\n"
    )

    # 1) the memory gate
    print("== single-GPU upload attempt (paper-scale footprint) ==")
    factory = TpaScdKernelFactory(
        GpuDevice(GTX_TITAN_X), simulated_dataset_nbytes=CRITEO_PAPER_NBYTES
    )
    try:
        factory.bind_dual(problem.dataset.csr, problem.y, problem.n, problem.lam)
        print("  unexpectedly fit!")
    except GpuOutOfMemoryError as exc:
        print(f"  GpuOutOfMemoryError: {exc}")
    print("  -> scale-out across 4 GPUs is a necessity, not a choice\n")

    # 2) the Fig. 10 comparison
    fig = run_fig10()
    print(fig.render_text(max_rows=8))
    print()
    tpa = fig.get("TPA-SCD (Titan X)")
    wild = fig.get("PASSCoDe (16 threads)")
    eps = float(min(wild.y[1:])) * 2
    t_tpa = next(t for t, g in zip(tpa.x, tpa.y) if g <= eps)
    t_wild = next(t for t, g in zip(wild.x, wild.y) if g <= eps)
    print(
        f"at gap {eps:.1e}: TPA-SCD {t_tpa:.1f}s vs PASSCoDe {t_wild:.1f}s "
        f"-> {t_wild / t_tpa:.0f}x (paper: ~20x)"
    )


if __name__ == "__main__":
    main()
