#!/usr/bin/env python
"""Reproduce Figs. 3-6: distributed SCD with adaptive aggregation.

Shows the three distributed-learning results of Section IV on webspam-like
data:

1. per-epoch convergence slows ~linearly as workers are added (Fig. 3);
2. the optimal aggregation parameter gamma_t settles well above 1/K
   (Fig. 5) and adaptive aggregation beats averaging (Fig. 4);
3. time-to-target-gap stays roughly flat as the cluster grows (Fig. 6).

Run:  python examples/distributed_scaling.py
"""

from repro.core import DistributedSCD
from repro.experiments.config import sequential_factory, webspam_problem


def main() -> None:
    problem, paper = webspam_problem()
    print(problem.dataset.describe())
    print(f"lambda = {problem.lam}\n")

    # Fig. 3 + Fig. 5: epochs-to-gap and gamma evolution per cluster size
    print("== scaling out (dual form, data partitioned by example) ==")
    for k in (1, 2, 4, 8):
        for agg in ("averaging", "adaptive"):
            eng = DistributedSCD(
                sequential_factory(paper, "dual"),
                "dual",
                n_workers=k,
                aggregation=agg,
                paper_scale=paper,
                seed=3,
            )
            res = eng.solve(problem, 40 * k, monitor_every=2, target_gap=3e-5)
            t = res.history.time_to_gap(3e-5)
            e = res.history.epochs_to_gap(3e-5)
            gamma = res.gammas[-1] if res.gammas else float("nan")
            print(
                f"  K={k}  {agg:>9}:  gap<=3e-5 after {e:6.0f} epochs, "
                f"{t:8.2f}s modelled   (final gamma {gamma:6.3f}, 1/K = {1 / k:.3f})"
            )
    print(
        "\nexpected shape: epochs grow ~linearly with K but modelled time "
        "stays roughly constant; adaptive gamma >> 1/K and beats averaging."
    )

    # communication ledger at K=8
    eng = DistributedSCD(
        sequential_factory(paper, "dual"),
        "dual",
        n_workers=8,
        aggregation="adaptive",
        paper_scale=paper,
        seed=3,
    )
    res = eng.solve(problem, 80, monitor_every=4, target_gap=3e-5)
    print("\nK=8 time breakdown:", dict(res.ledger.breakdown()))


if __name__ == "__main__":
    main()
