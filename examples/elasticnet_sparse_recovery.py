#!/usr/bin/env python
"""Extension example: elastic-net coordinate descent for sparse recovery.

The second problem family the paper names for coordinate methods.  A sparse
ground-truth model is planted in Gaussian data; sweeping the L1 mixing ratio
shows coordinate descent recovering an increasingly sparse weight vector,
while ``l1_ratio = 0`` reproduces the ridge solution exactly.

Run:  python examples/elasticnet_sparse_recovery.py
"""

import numpy as np

from repro import (
    ElasticNetCD,
    ElasticNetProblem,
    RidgeProblem,
    make_dense_gaussian,
    solve_exact,
)


def main() -> None:
    data = make_dense_gaussian(120, 60, noise=0.05, seed=4)
    lam = 0.15

    print("l1_ratio   objective      KKT violation   nnz(beta)")
    for l1_ratio in (0.0, 0.25, 0.5, 0.75, 0.95):
        problem = ElasticNetProblem(data, lam, l1_ratio=l1_ratio)
        beta, history = ElasticNetCD(seed=0).solve(
            problem, n_epochs=150, monitor_every=25, tol=1e-12
        )
        rec = history.records[-1]
        print(
            f"{l1_ratio:8.2f}   {rec.objective:11.6f}   {rec.gap:13.3e}"
            f"   {np.count_nonzero(beta):6d} / {data.n_features}"
        )

    # the l1_ratio = 0 limit must agree with the closed-form ridge optimum
    problem = ElasticNetProblem(data, lam, l1_ratio=0.0)
    beta, _ = ElasticNetCD(seed=0).solve(problem, n_epochs=200, monitor_every=50)
    exact = solve_exact(RidgeProblem(data, lam))
    err = float(np.abs(beta - exact.beta).max())
    print(f"\nmax |beta_enet(l1=0) - beta_ridge_exact| = {err:.2e}")


if __name__ == "__main__":
    main()
