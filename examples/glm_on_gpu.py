#!/usr/bin/env python
"""Extension example: elastic net and SVM on the generalized TPA engine.

The paper motivates stochastic coordinate methods for "other problems such
as regression with elastic net regularization as well as support vector
machines".  This example runs both on the simulated GPU via the generalized
TPA engine (same wave-scheduled thread blocks, tree-reduced inner products,
atomic scatter — only the closed-form scalar update differs) and compares
each against its CPU counterpart.

Run:  python examples/glm_on_gpu.py
"""

import numpy as np

from repro import (
    ElasticNetCD,
    ElasticNetProblem,
    SvmProblem,
    SvmSdca,
    make_webspam_like,
)
from repro.core import TpaElasticNet, TpaSvm
from repro.gpu import GTX_TITAN_X, KernelProfile


def main() -> None:
    data = make_webspam_like(1_000, 3_000, nnz_per_example=40, seed=7)
    print(data.describe(), "\n")

    # elastic net: CPU coordinate descent vs GPU TPA engine
    enp = ElasticNetProblem(data, lam=5e-3, l1_ratio=0.5)
    beta_cpu, h_cpu = ElasticNetCD(seed=0).solve(enp, 20, monitor_every=4)
    beta_gpu, h_gpu = TpaElasticNet(GTX_TITAN_X, wave_size=2, seed=0).solve(
        enp, 20, monitor_every=4
    )
    print("elastic net (l1_ratio=0.5)   KKT violation per epoch")
    print("  epoch      CPU          TPA (Titan X)")
    for rc, rg in zip(h_cpu, h_gpu):
        print(f"  {rc.epoch:5d}  {rc.gap:11.3e}  {rg.gap:11.3e}")
    print(
        f"  nnz(beta): CPU {np.count_nonzero(beta_cpu)}, "
        f"GPU {np.count_nonzero(beta_gpu)} of {data.n_features}\n"
    )

    # SVM: SDCA vs GPU TPA engine, with kernel profiling
    svm = SvmProblem(data, lam=1e-2)
    prof = KernelProfile()
    w_cpu, _, hs_cpu = SvmSdca(seed=0).solve(svm, 15, monitor_every=3)
    w_gpu, _, hs_gpu = TpaSvm(
        GTX_TITAN_X, wave_size=2, seed=0, profiler=prof
    ).solve(svm, 15, monitor_every=3)
    print("SVM (hinge, SDCA)   duality gap per epoch")
    print("  epoch      CPU          TPA (Titan X)")
    for rc, rg in zip(hs_cpu, hs_gpu):
        print(f"  {rc.epoch:5d}  {rc.gap:11.3e}  {rg.gap:11.3e}")
    acc_cpu = float(np.mean(svm.predict(w_cpu) == data.y))
    acc_gpu = float(np.mean(svm.predict(w_gpu) == data.y))
    print(f"  train accuracy: CPU {acc_cpu:.3f}, GPU {acc_gpu:.3f}\n")

    print("simulated-kernel profile (SVM run):")
    for key, val in prof.summary().items():
        print(f"  {key:>16}: {val:,.3f}")


if __name__ == "__main__":
    main()
