#!/usr/bin/env python
"""Quickstart: train ridge regression with sequential SCD and GPU TPA-SCD.

Builds a small webspam-like sparse dataset, trains the paper's baseline
(Algorithm 1) and its GPU solver (Algorithm 2, on the simulated Titan X),
and compares convergence and modelled training time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    RidgeProblem,
    WEBSPAM_PAPER,
    make_webspam_like,
    scaled_wave_size,
    solve_exact,
    speedup,
    train_test_split,
)
from repro.core.tpa_scd import TpaScdKernelFactory
from repro.gpu import GTX_TITAN_X, GpuDevice
from repro.solvers.base import ScdSolver
from repro.solvers.scd import SequentialKernelFactory


def main() -> None:
    rng = np.random.default_rng(0)
    data = make_webspam_like(1_200, 3_000, nnz_per_example=40, seed=7)
    train, test = train_test_split(data, 0.25, rng)
    print(train.describe())

    problem = RidgeProblem(train, lam=5e-3)

    # reference optimum (dense solve) for context
    exact = solve_exact(problem)
    print(f"optimal objective P* = {exact.primal_value:.6f}")

    # 1) the paper's baseline: sequential SCD, primal form.  Both solvers
    #    price their epochs at the paper-scale webspam workload so the time
    #    axes (and hence the speedup) are mutually comparable.
    paper_workload = WEBSPAM_PAPER.worker_workload("primal", 1.0, 1.0)
    scd = ScdSolver(
        SequentialKernelFactory(timing_workload=paper_workload), "primal", seed=0
    )
    res_cpu = scd.solve(problem, n_epochs=20, monitor_every=4)
    print(f"\n{res_cpu.solver_name}")
    for rec in res_cpu.history:
        print(f"  epoch {rec.epoch:3d}  gap {rec.gap:9.3e}  t={rec.sim_time:7.2f}s*")

    # 2) the paper's contribution: TPA-SCD on a simulated GTX Titan X,
    #    with the staleness window scaled to this dataset's size
    factory = TpaScdKernelFactory(
        GpuDevice(GTX_TITAN_X),
        wave_size=scaled_wave_size(
            GTX_TITAN_X, problem.m, WEBSPAM_PAPER.n_features
        ),
        timing_workload=paper_workload,
    )
    tpa = ScdSolver(factory, "primal", seed=0)
    res_gpu = tpa.solve(problem, n_epochs=20, monitor_every=4)
    print(f"\n{res_gpu.solver_name}")
    for rec in res_gpu.history:
        print(f"  epoch {rec.epoch:3d}  gap {rec.gap:9.3e}  t={rec.sim_time:7.2f}s*")

    eps = 1e-6
    print(
        f"\nspeedup at gap {eps:g}: "
        f"{speedup(res_cpu.history, res_gpu.history, eps):.1f}x "
        f"(paper reports 25-35x on real hardware)"
    )

    # generalization check on the held-out split
    pred = res_gpu.predict(problem, test.csr)
    acc = float(np.mean(np.sign(pred) == test.y))
    print(f"held-out sign accuracy: {acc:.3f}")
    print("\n(*) modelled time — the time axis prices the paper-scale "
          "webspam workload on the calibrated device models; see DESIGN.md")


if __name__ == "__main__":
    main()
