#!/usr/bin/env python
"""Extension example: warm-started elastic-net paths and logistic SDCA.

Two more members of the GLM family the paper's coordinate framework covers:

* the glmnet-style regularization path (Friedman et al. — the paper's [4],
  the same reference Algorithm 1 is built on): solve a geometric lambda grid
  from lambda_max down, warm-starting each problem at the previous solution;
* logistic regression trained by SDCA with the entropy-regularized dual.

Run:  python examples/regularization_path.py
"""

import numpy as np

from repro import (
    LogisticProblem,
    LogisticSdca,
    elastic_net_path,
    lambda_grid,
    make_dense_gaussian,
    make_webspam_like,
    train_test_split,
)


def main() -> None:
    # 1) the regularization path
    data = make_dense_gaussian(150, 60, noise=0.05, seed=4)
    grid = lambda_grid(data, l1_ratio=0.9, n_lambdas=10)
    path = elastic_net_path(data, grid, l1_ratio=0.9, n_epochs=120, tol=1e-9)
    print("elastic-net path (l1_ratio = 0.9, warm-started)")
    print("   lambda      nnz(beta)   epochs   KKT violation")
    for lam, beta, history in path:
        rec = history.records[-1]
        print(
            f"   {lam:9.5f}   {np.count_nonzero(beta):5d}      "
            f"{rec.epoch:4d}   {rec.gap:11.3e}"
        )
    print("   -> lambda_max zeroes the model; support grows down the path\n")

    # 2) logistic regression
    rng = np.random.default_rng(2)
    spam = make_webspam_like(1_500, 3_000, nnz_per_example=40, seed=13)
    train, test = train_test_split(spam, 0.25, rng)
    problem = LogisticProblem(train, lam=1e-2)
    w, alpha, history = LogisticSdca(seed=0).solve(
        problem, 20, monitor_every=4, target_gap=1e-10
    )
    print("logistic SDCA (entropy dual, bisection coordinate steps)")
    for rec in history:
        print(f"   epoch {rec.epoch:3d}   duality gap {rec.gap:11.3e}")
    for name, split in (("train", train), ("test", test)):
        acc = float(np.mean(problem.predict(w, split.csr) == split.y))
        print(f"   {name} accuracy: {acc:.3f}")
    proba = problem.predict_proba(w, test.csr)
    print(f"   test P(y=+1) range: [{proba.min():.3f}, {proba.max():.3f}]")


if __name__ == "__main__":
    main()
