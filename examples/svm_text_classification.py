#!/usr/bin/env python
"""Extension example: linear SVM via SDCA on webspam-like text data.

The paper notes stochastic coordinate methods also train support vector
machines; this example uses the library's SDCA solver (the same coordinate
framework, hinge loss + box-constrained dual) on a spam-classification
stand-in, reporting the hinge duality gap and held-out accuracy.

Run:  python examples/svm_text_classification.py
"""

import numpy as np

from repro import SvmProblem, SvmSdca, make_webspam_like, train_test_split


def main() -> None:
    rng = np.random.default_rng(1)
    data = make_webspam_like(2_000, 4_000, nnz_per_example=50, seed=13)
    train, test = train_test_split(data, 0.25, rng)
    print(train.describe())

    problem = SvmProblem(train, lam=1e-2)
    solver = SvmSdca(seed=0)
    w, alpha, history = solver.solve(problem, n_epochs=25, monitor_every=5)

    print("\nepoch   duality gap   support vectors")
    for rec in history:
        sv = rec.extras.get("support_vectors", 0)
        print(f"{rec.epoch:5d}   {rec.gap:11.3e}   {sv:6d}")

    for name, split in (("train", train), ("test", test)):
        pred = problem.predict(w, split.csr)
        acc = float(np.mean(pred == split.y))
        print(f"{name} accuracy: {acc:.3f}")


if __name__ == "__main__":
    main()
