#!/usr/bin/env python
"""Reproduce Figs. 1-2: five solver configurations on webspam-like data.

Runs sequential SCD, A-SCD (16 threads), PASSCoDe-Wild (16 threads), and
TPA-SCD on both simulated GPUs, in the primal and the dual formulations,
then prints the duality-gap-vs-epochs and vs-time series — the curves of
the paper's Figs. 1 and 2.

Run:  python examples/webspam_convergence.py  [REPRO_SCALE=full for bigger]
"""

from repro.experiments import run_convergence


def main() -> None:
    for formulation in ("primal", "dual"):
        fig = run_convergence(formulation)
        print(fig.render_text(max_rows=8))
        print()

        # headline extract: at the sequential solver's final gap, how much
        # faster is each converging solver?
        seq = fig.get("SCD (1 thread) | time")
        eps = seq.y[-1] * 2
        print(f"[{formulation}] time to reach gap {eps:.2e}:")
        for label in fig.labels():
            if "| time" not in label:
                continue
            s = fig.get(label)
            hit = [t for t, g in zip(s.x, s.y) if g <= eps]
            t = f"{hit[0]:9.2f}s" if hit else "  (never — gap floor)"
            name = label.removesuffix(" | time")
            print(f"  {name:<30} {t}")
        print()


if __name__ == "__main__":
    main()
