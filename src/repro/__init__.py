"""repro — reproduction of "Large-Scale Stochastic Learning using GPUs".

Parnell, Dünner, Atasu, Sifalakis & Pozidis (IPPS/IPDPSW 2017,
arXiv:1702.07005): TPA-SCD on a simulated GPU, distributed SCD with
adaptive aggregation, and the paper's full benchmark suite.

Public API surface re-exports the pieces most users need; subpackages expose
the full substrates (``repro.sparse``, ``repro.gpu``, ``repro.cluster``,
``repro.experiments``, ...).
"""

from .api import SolverConfig, train
from .core import (
    CRITEO_PAPER,
    WEBSPAM_PAPER,
    AdaptiveAggregator,
    AddingAggregator,
    AveragingAggregator,
    DistributedSCD,
    DistributedSvm,
    DistributedTrainResult,
    PaperScale,
    SvmTrainResult,
    TpaScd,
    TpaScdKernelFactory,
    scaled_wave_size,
)
from .data import (
    Dataset,
    load_libsvm,
    make_criteo_like,
    make_dense_gaussian,
    make_sparse_regression,
    make_webspam_like,
    save_libsvm,
    train_test_split,
)
from .metrics import ConvergenceHistory, ConvergenceRecord, speedup
from .shards import (
    ShardCache,
    ShardingConfig,
    ShardStore,
    ShardStreamer,
    pack_dataset,
)
from .obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    active_tracer,
    use_tracer,
)
from .perf.ledger import TimeLedger
from .serve import (
    ModelServer,
    ServeConfig,
    SnapshotHub,
    WeightSnapshot,
    snapshot_from_result,
    train_to_serve,
)
from .objectives import (
    ElasticNetProblem,
    LogisticProblem,
    RidgeProblem,
    SvmProblem,
    solve_exact,
)
from .solvers import (
    ASCD,
    ElasticNetCD,
    LogisticSdca,
    PASSCoDeWild,
    ScdSolver,
    SequentialSCD,
    SvmSdca,
    SySCD,
    TrainResult,
    elastic_net_path,
    lambda_grid,
)

__version__ = "1.0.0"

__all__ = [
    # unified estimator API
    "train",
    "SolverConfig",
    # observability
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "use_tracer",
    "active_tracer",
    "TimeLedger",
    # data
    "Dataset",
    "load_libsvm",
    "save_libsvm",
    "train_test_split",
    "make_criteo_like",
    "make_dense_gaussian",
    "make_sparse_regression",
    "make_webspam_like",
    # out-of-core shard store
    "pack_dataset",
    "ShardStore",
    "ShardCache",
    "ShardingConfig",
    "ShardStreamer",
    # online serving
    "ModelServer",
    "ServeConfig",
    "SnapshotHub",
    "WeightSnapshot",
    "snapshot_from_result",
    "train_to_serve",
    # metrics
    "ConvergenceHistory",
    "ConvergenceRecord",
    "speedup",
    # objectives
    "RidgeProblem",
    "solve_exact",
    "ElasticNetProblem",
    "SvmProblem",
    "LogisticProblem",
    # CPU solvers
    "ASCD",
    "PASSCoDeWild",
    "ScdSolver",
    "SequentialSCD",
    "SySCD",
    "TrainResult",
    "ElasticNetCD",
    "elastic_net_path",
    "lambda_grid",
    "SvmSdca",
    "LogisticSdca",
    # paper contributions
    "TpaScd",
    "TpaScdKernelFactory",
    "scaled_wave_size",
    "DistributedSCD",
    "DistributedTrainResult",
    "DistributedSvm",
    "SvmTrainResult",
    "AveragingAggregator",
    "AddingAggregator",
    "AdaptiveAggregator",
    "PaperScale",
    "WEBSPAM_PAPER",
    "CRITEO_PAPER",
    "__version__",
]
