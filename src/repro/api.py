"""One-call training facade over every engine in the reproduction.

The solver zoo (sequential SCD, the async CPU baselines, GPU TPA-SCD, the
distributed engines) grew organically, each with its own constructor.  This
module puts one uniform entry point in front of all of them::

    import repro

    result = repro.train(problem, solver="tpa-scd",
                         config=repro.SolverConfig(n_epochs=20))
    result.history.final_gap  # every engine returns a TrainResult

``train`` accepts a frozen :class:`SolverConfig` (or keyword overrides of
one) and an optional :class:`~repro.obs.Tracer`; it dispatches on the
``solver`` name and always returns a :class:`~repro.solvers.base.TrainResult`
(or a subclass) carrying ``history``, ``ledger`` and — when tracing —
``trace``/``metrics``.  The original solver classes remain available and are
what ``train`` constructs under the hood.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from .cluster.mp_cluster import MpDistributedSCD
from .core.distributed import DistributedSCD
from .core.distributed_svm import DistributedSvm, SvmTrainResult
from .core.scale import PaperScale
from .core.tpa_scd import TpaScd, TpaScdKernelFactory
from .gpu.device import GpuDevice
from .gpu.spec import GTX_TITAN_X, GpuSpec
from .perf.link import Link
from .solvers.ascd import ASCD, PASSCoDeWild
from .solvers.base import TrainResult
from .solvers.scd import SequentialKernelFactory, SequentialSCD
from .solvers.syscd import SySCD, SyscdKernelFactory

__all__ = ["SolverConfig", "train", "SOLVER_ALIASES", "SvmTrainResult"]


@dataclass(frozen=True)
class SolverConfig:
    """Everything a :func:`train` call can tune, in one frozen object.

    Unused fields are ignored by engines they do not apply to (e.g.
    ``wave_size`` by the CPU solvers), so one config can drive a sweep
    across several solvers.
    """

    # -- shared driver knobs ------------------------------------------------
    formulation: str = "primal"
    n_epochs: int = 10
    monitor_every: int = 1
    target_gap: float | None = None
    seed: int = 0
    # -- async CPU solvers --------------------------------------------------
    n_threads: int = 16
    loss_prob: float = 0.15
    # -- syscd CPU solver ---------------------------------------------------
    bucket_size: int | None = None
    merge_every: int = 1
    merge: str = "sum"
    kernel_backend: str = "auto"
    # -- simulated GPU ------------------------------------------------------
    gpu: GpuSpec = GTX_TITAN_X
    gpu_threads: int = 256
    wave_size: int | None = None
    # -- distributed engines ------------------------------------------------
    n_workers: int = 4
    aggregation: str = "averaging"
    local_solver: str = "seq"
    network: Link | None = None
    pcie: Link | None = None
    paper_scale: PaperScale | None = None
    round_fraction: float = 1.0
    faults: Any = None
    sigma_prime: float = 1.0
    mp_context: str | None = None
    # -- comm schedule (sync Algorithm 3 vs async parameter server) ---------
    comm: str = "sync"
    batch_fraction: float = 1 / 16
    comm_overlap: float = 0.9
    staleness_bound: int = 0
    # -- elastic membership and heterogeneous pools -------------------------
    membership: Any = None
    rebalance_every: int = 0
    capacities: Any = None

    def replace(self, **overrides) -> "SolverConfig":
        """A copy with ``overrides`` applied (the dataclass is frozen)."""
        return replace(self, **overrides)


#: accepted ``solver=`` names, mapped to their canonical form
SOLVER_ALIASES = {
    "seq": "seq",
    "scd": "seq",
    "sequential": "seq",
    "a-scd": "a-scd",
    "ascd": "a-scd",
    "wild": "wild",
    "passcode-wild": "wild",
    "syscd": "syscd",
    "sy-scd": "syscd",
    "tpa-scd": "tpa-scd",
    "tpa": "tpa-scd",
    "gpu": "tpa-scd",
    "distributed": "distributed",
    "dist": "distributed",
    "mp": "mp",
    "distributed-svm": "distributed-svm",
    "cocoa-svm": "distributed-svm",
}


def _distributed_factory(cfg: SolverConfig):
    """Local-solver factory (or per-rank builder) for the distributed engine."""
    if cfg.local_solver in ("seq", "scd"):
        return SequentialKernelFactory()
    if cfg.local_solver in ("tpa", "tpa-scd", "gpu"):
        # each rank owns its own simulated device
        return lambda rank: TpaScdKernelFactory(
            GpuDevice(cfg.gpu),
            n_threads=cfg.gpu_threads,
            wave_size=cfg.wave_size,
        )
    if cfg.local_solver in ("syscd", "sy-scd"):
        # threaded SySCD as each rank's local solver (heterogeneous CPU rank)
        return lambda rank: SyscdKernelFactory(
            n_threads=cfg.n_threads,
            bucket_size=cfg.bucket_size,
            merge_every=cfg.merge_every,
            merge=cfg.merge,
            kernel_backend=cfg.kernel_backend,
        )
    raise ValueError(
        f"unknown local_solver {cfg.local_solver!r}; use 'seq', 'tpa' or "
        "'syscd'"
    )


def train(
    problem,
    solver: str = "seq",
    *,
    config: SolverConfig | None = None,
    tracer=None,
    on_epoch=None,
    **overrides,
) -> TrainResult:
    """Train ``problem`` with the named ``solver``; returns a ``TrainResult``.

    Parameters
    ----------
    problem:
        A :class:`~repro.objectives.RidgeProblem` (every solver), or a
        :class:`~repro.objectives.SvmProblem` for ``solver="distributed-svm"``.
    solver:
        One of the names in :data:`SOLVER_ALIASES` — ``"seq"``, ``"a-scd"``,
        ``"wild"``, ``"syscd"``, ``"tpa-scd"``, ``"distributed"``, ``"mp"``,
        ``"distributed-svm"``.
    config:
        A :class:`SolverConfig`; defaults to ``SolverConfig()``.  Any extra
        keyword arguments override individual config fields, e.g.
        ``train(p, "seq", n_epochs=50)``.
    tracer:
        Optional :class:`~repro.obs.Tracer`; defaults to the ambient tracer
        installed by :func:`~repro.obs.use_tracer`.
    on_epoch:
        Optional callback invoked with an
        :class:`~repro.solvers.base.EpochEvent` at every monitored epoch —
        the train-to-serve publish hook (see :mod:`repro.serve`).  Purely
        observational: installing it never changes the training trajectory.
    """
    cfg = (config or SolverConfig()).replace(**overrides) if overrides else (
        config or SolverConfig()
    )
    try:
        kind = SOLVER_ALIASES[solver]
    except KeyError:
        raise ValueError(
            f"unknown solver {solver!r}; choose from "
            f"{sorted(set(SOLVER_ALIASES))}"
        ) from None

    common = dict(
        monitor_every=cfg.monitor_every,
        target_gap=cfg.target_gap,
        tracer=tracer,
        on_epoch=on_epoch,
    )
    if kind == "seq":
        engine = SequentialSCD(cfg.formulation, seed=cfg.seed)
    elif kind == "a-scd":
        engine = ASCD(cfg.formulation, n_threads=cfg.n_threads, seed=cfg.seed)
    elif kind == "wild":
        engine = PASSCoDeWild(
            cfg.formulation,
            n_threads=cfg.n_threads,
            loss_prob=cfg.loss_prob,
            seed=cfg.seed,
        )
    elif kind == "syscd":
        engine = SySCD(
            cfg.formulation,
            n_threads=cfg.n_threads,
            bucket_size=cfg.bucket_size,
            merge_every=cfg.merge_every,
            merge=cfg.merge,
            kernel_backend=cfg.kernel_backend,
            seed=cfg.seed,
        )
    elif kind == "tpa-scd":
        engine = TpaScd(
            cfg.formulation,
            device=cfg.gpu,
            n_threads=cfg.gpu_threads,
            wave_size=cfg.wave_size,
            seed=cfg.seed,
        )
    elif kind == "distributed":
        engine = DistributedSCD(
            _distributed_factory(cfg),
            cfg.formulation,
            n_workers=cfg.n_workers,
            aggregation=cfg.aggregation,
            network=cfg.network,
            pcie=cfg.pcie,
            paper_scale=cfg.paper_scale,
            seed=cfg.seed,
            round_fraction=cfg.round_fraction,
            faults=cfg.faults,
            comm=cfg.comm,
            batch_fraction=cfg.batch_fraction,
            comm_overlap=cfg.comm_overlap,
            staleness_bound=cfg.staleness_bound,
            membership=cfg.membership,
            rebalance_every=cfg.rebalance_every,
            capacities=cfg.capacities,
        )
    elif kind == "mp":
        engine = MpDistributedSCD(
            cfg.formulation,
            n_workers=cfg.n_workers,
            aggregation=cfg.aggregation,
            seed=cfg.seed,
            mp_context=cfg.mp_context,
            faults=cfg.faults,
        )
    else:  # distributed-svm
        engine = DistributedSvm(
            n_workers=cfg.n_workers,
            sigma_prime=cfg.sigma_prime,
            network=cfg.network,
            paper_scale=cfg.paper_scale,
            seed=cfg.seed,
            faults=cfg.faults,
            membership=cfg.membership,
            rebalance_every=cfg.rebalance_every,
        )
    return engine.solve(problem, cfg.n_epochs, **common)
