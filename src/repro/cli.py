"""Command-line interface: list and run the reproduction experiments.

Usage::

    python -m repro list                      # all experiment ids
    python -m repro run fig2                  # regenerate one figure
    python -m repro run fig2 --scale full     # at the larger scale
    python -m repro run fig2 --json           # machine-readable series dump
    python -m repro trace fig2 --scale tiny   # Chrome-trace + metrics export
    python -m repro info                      # paper + substitution summary
    python -m repro faults                    # named fault-injection scenarios
    python -m repro shards pack out/          # pack a dataset into a shard set
    python -m repro shards info out/          # inspect a packed shard set
    python -m repro bench                     # pinned epoch micro-benchmarks
    python -m repro bench --baseline BENCH_PR10.json  # + regression gate
    python -m repro serve                     # train-to-serve hot-swap demo
    python -m repro eval configs/fig1.toml    # declarative eval -> HTML report
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from . import __version__
from .experiments import ALL_EXPERIMENTS, SCALES

__all__ = ["main", "build_parser"]

_INFO = """\
repro {version} — reproduction of 'Large-Scale Stochastic Learning using
GPUs' (Parnell et al., IPPS 2017, arXiv:1702.07005).

Implements TPA-SCD on a simulated GPU substrate, distributed SCD with
adaptive aggregation over a simulated cluster fabric, the CPU baselines
(sequential SCD, A-SCD, PASSCoDe-Wild), and drivers regenerating every
figure of the paper's evaluation plus ablations and extensions.

Hardware substitutions (full rationale in DESIGN.md):
  GPUs     -> wave-scheduled thread-block emulation + roofline timing
  cluster  -> in-process MPI-style collectives + link cost models
  datasets -> synthetic webspam-/criteo-like generators, paper-scale priced

Scales: {scales} (select with --scale or REPRO_SCALE).
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Large-Scale Stochastic Learning using GPUs'.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment ids")
    sub.add_parser("info", help="describe the reproduction")
    sub.add_parser(
        "faults",
        help="list the named fault-injection scenarios "
        "(run them via ext-fault-tolerance / ext-fault-breakdown)",
    )

    run = sub.add_parser("run", help="run one experiment and print its series")
    run.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="dataset scale (default: REPRO_SCALE or 'quick')",
    )
    run.add_argument(
        "--max-rows",
        type=int,
        default=10,
        help="points printed per series",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="draw the series as an ASCII log-plot instead of tables",
    )
    run.add_argument(
        "--series",
        default=None,
        help="with --plot: only series whose label contains this substring",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the figure as JSON (schema repro.run/v1) instead of text",
    )
    run.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="with --json: write to PATH instead of stdout",
    )

    trace = sub.add_parser(
        "trace",
        help="run one experiment under the tracer and export Chrome-trace "
        "JSON, a metrics dump, and an ASCII flame summary",
    )
    trace.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))
    trace.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="dataset scale (default: REPRO_SCALE or 'quick')",
    )
    trace.add_argument(
        "--out-dir",
        default="traces",
        metavar="DIR",
        help="directory for <exp>-<scale>.trace.json / .metrics.json",
    )
    trace.add_argument(
        "--detail",
        choices=["epoch", "wave"],
        default="epoch",
        help="span granularity: per-epoch (default) or per-GPU-wave",
    )

    shards = sub.add_parser(
        "shards",
        help="pack datasets into out-of-core shard sets and inspect them",
    )
    shards_sub = shards.add_subparsers(dest="shards_command", required=True)
    pack = shards_sub.add_parser(
        "pack", help="pack a synthetic dataset into an on-disk shard set"
    )
    pack.add_argument("out_dir", help="directory for the shard set")
    pack.add_argument(
        "--dataset",
        choices=["webspam", "criteo"],
        default="criteo",
        help="synthetic dataset family (default: criteo)",
    )
    pack.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="dataset scale (default: REPRO_SCALE or 'quick')",
    )
    pack.add_argument(
        "--axis",
        choices=["rows", "cols"],
        default="rows",
        help="major axis to slice: rows (dual/examples) or cols (primal)",
    )
    pack.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="number of shards (default: byte-balanced 8)",
    )
    info = shards_sub.add_parser("info", help="describe a packed shard set")
    info.add_argument("shard_dir", help="directory holding the shard set")
    info.add_argument(
        "--verify",
        action="store_true",
        help="re-read every shard and check its checksum",
    )

    bench = sub.add_parser(
        "bench",
        help="run the pinned epoch micro-benchmark suite "
        "(sequential / chunked / TPA wave / distributed)",
    )
    bench.add_argument(
        "--profile",
        choices=["default", "smoke"],
        default="default",
        help="pinned benchmark profile (default: default)",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the repro.bench/v1 payload to PATH (e.g. BENCH_PR10.json)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare against a committed baseline payload; exit 1 when any "
        "gated case's normalized throughput regresses past the threshold",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed normalized-throughput drop vs the baseline (default 0.25)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the train-to-serve demo: train, hot-swap published weight "
        "versions under seeded traffic, audit responses against the oracle",
    )
    serve.add_argument(
        "--solver",
        default="seq",
        help="training engine (any repro.train solver alias; default: seq)",
    )
    serve.add_argument(
        "--epochs", type=int, default=12, help="training epochs (default 12)"
    )
    serve.add_argument(
        "--publish-every",
        type=int,
        default=3,
        help="publish a weight version every N epochs (default 3)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=2000.0,
        help="mean request arrival rate in Hz (default 2000)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=1.0,
        help="modelled traffic window in seconds (default 1.0)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the serving run's Chrome-trace JSON to PATH",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON (schema repro.serve/v1) instead of text",
    )

    ev = sub.add_parser(
        "eval",
        help="run a declarative experiment config (configs/*.toml) through "
        "the resumable eval runner and render a self-contained HTML report",
    )
    ev.add_argument("config", help="path to the experiment config TOML")
    ev.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="override every cell's scale (replaces the config's scale axis)",
    )
    ev.add_argument(
        "--out-dir",
        default="eval-reports",
        metavar="DIR",
        help="directory for the HTML report (default: eval-reports)",
    )
    ev.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cell result cache (default: .eval-cache)",
    )
    ev.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel cell workers, 0 = cpu count (default: config [run] jobs)",
    )
    ev.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell, ignoring cached results",
    )
    ev.add_argument(
        "--no-bench",
        action="store_true",
        help="skip the bench-regression section even if the config enables it",
    )
    ev.add_argument(
        "--json",
        action="store_true",
        help="emit a run summary as JSON (schema repro.eval/v1) after the report",
    )
    return parser


def _cmd_eval(args) -> int:
    from .eval import DEFAULT_CACHE_DIR, ConfigError, run_eval

    try:
        run, report_path = run_eval(
            args.config,
            scale=args.scale,
            out_dir=args.out_dir,
            cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
            jobs=args.jobs,
            force=args.force,
            run_bench=not args.no_bench,
        )
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "schema": "repro.eval/v1",
                    "version": __version__,
                    "experiment": run.plan.config.experiment_id,
                    "config": args.config,
                    "cells": len(run.plan),
                    "executed": run.executed,
                    "resumed": run.resumed,
                    "elapsed_s": run.elapsed_s,
                    "cache_dir": run.cache_dir,
                    "report": str(report_path),
                },
                indent=2,
            )
        )
    else:
        print(run.plan.describe())
        for r in run.results:
            status = "resumed " if r.cached else "executed"
            print(
                f"  {status}  {r.cell.cell_id}  "
                f"[{r.cell.short_hash}]  {r.elapsed_s:.3f}s"
            )
        print(
            f"{run.executed} executed, {run.resumed} resumed "
            f"({run.elapsed_s:.2f}s wall clock)"
        )
        print(f"report: {report_path}")
    return 0


def _cmd_serve(args) -> int:
    from .obs import chrome_trace, validate_chrome_trace, write_chrome_trace
    from .serve import train_to_serve

    report = train_to_serve(
        solver=args.solver,
        n_epochs=args.epochs,
        publish_every=args.publish_every,
        rate_hz=args.rate,
        duration_s=args.duration,
        seed=args.seed,
    )
    validate_chrome_trace(chrome_trace(report.tracer))
    if args.trace_out:
        write_chrome_trace(report.tracer, args.trace_out)
    summary = {
        "schema": "repro.serve/v1",
        "version": __version__,
        "solver": report.solver,
        "requests": report.n_requests,
        "served": report.n_served,
        "shed": report.n_shed,
        "versions_published": report.versions_published,
        "versions_served": report.versions_served,
        "fingerprints": [f"{fp:#010x}" for fp in report.fingerprints],
        "staleness_at_swaps": [
            {"version": v, "before": b, "after": a}
            for v, b, a in report.staleness_at_swaps
        ],
        "oracle_mismatches": len(report.oracle_mismatches),
        "p50_latency_s": report.p50_latency_s,
        "p99_latency_s": report.p99_latency_s,
        "ok": report.ok,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"train-to-serve demo  ({report.solver})")
        print(
            f"  requests: {report.n_requests}  served: {report.n_served}  "
            f"shed: {report.n_shed}"
        )
        print(
            f"  versions served: {report.versions_served} "
            f"(published {report.versions_published})"
        )
        print(
            "  fingerprints: "
            + " ".join(f"{fp:#010x}" for fp in report.fingerprints)
        )
        for v, before, after in report.staleness_at_swaps:
            print(f"  swap -> v{v}: staleness {before} -> {after} epochs")
        print(
            f"  latency p50 {report.p50_latency_s * 1e3:.3f}ms  "
            f"p99 {report.p99_latency_s * 1e3:.3f}ms"
        )
        print(
            "  oracle audit: "
            + (
                "all responses bit-identical"
                if not report.oracle_mismatches
                else f"{len(report.oracle_mismatches)} MISMATCHES"
            )
        )
        if args.trace_out:
            print(f"  trace:   {args.trace_out}")
        print("  OK" if report.ok else "  FAILED")
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    from pathlib import Path

    from .perf.bench import (
        compare,
        find_baselines,
        load_payload,
        render_table,
        render_trajectory,
        run_suite,
        write_payload,
    )

    payload = run_suite(args.profile)
    print(render_table(payload))
    if args.out:
        write_payload(payload, args.out)
        print(f"wrote {args.out}")
    if args.baseline:
        baseline = load_payload(args.baseline)
        history = find_baselines(Path(args.baseline).resolve().parent)
        if len(history) >= 2:
            print()
            print(render_trajectory(history))
        regressions = compare(payload, baseline, threshold=args.threshold)
        if regressions:
            print()
            for msg in regressions:
                print(f"REGRESSION  {msg}")
            return 1
        print(f"\nno regressions vs {args.baseline} "
              f"(threshold {args.threshold * 100:.0f}%)")
    return 0


def _cmd_trace(args) -> int:
    from .experiments import active_scale
    from .obs import (
        Tracer,
        flame_summary,
        use_tracer,
        write_chrome_trace,
        write_metrics_json,
    )

    scale = SCALES[args.scale] if args.scale else active_scale()
    tracer = Tracer(detail=args.detail)
    with use_tracer(tracer):
        fig = ALL_EXPERIMENTS[args.experiment](scale)
    out_dir = Path(args.out_dir)
    stem = f"{args.experiment}-{scale.name}"
    trace_path = out_dir / f"{stem}.trace.json"
    metrics_path = out_dir / f"{stem}.metrics.json"
    write_chrome_trace(tracer, trace_path)
    write_metrics_json(tracer, metrics_path)
    print(flame_summary(tracer))
    print()
    print(f"figure:  {fig.figure_id}: {fig.title}")
    print(f"trace:   {trace_path}")
    print(f"metrics: {metrics_path}")
    return 0


def _cmd_shards(args) -> int:
    from .shards import ShardStore, pack_dataset

    if args.shards_command == "pack":
        from .experiments import active_scale
        from .experiments.config import criteo_problem, webspam_problem

        scale = SCALES[args.scale] if args.scale else active_scale()
        build = criteo_problem if args.dataset == "criteo" else webspam_problem
        problem, _ = build(scale)
        manifest = pack_dataset(
            problem.dataset, args.out_dir, axis=args.axis, n_shards=args.shards
        )
        print(
            f"packed {manifest.name!r}: {len(manifest.shards)} "
            f"{manifest.axis}-axis shards, {manifest.total_nbytes:,} bytes "
            f"-> {args.out_dir}"
        )
        for meta in manifest.shards:
            print(
                f"  shard {meta.shard_id:3d}  [{meta.start:>8}, {meta.stop:>8})"
                f"  {meta.nbytes:>12,} B  nnz={meta.nnz:,}"
            )
        return 0

    store = ShardStore(args.shard_dir, verify_checksums=args.verify)
    m = store.manifest
    print(f"shard set {m.name!r}  ({args.shard_dir})")
    print(f"  axis:    {m.axis}")
    print(f"  matrix:  {m.shape[0]} x {m.shape[1]}  dtype={m.dtype}")
    print(f"  bytes:   {m.total_nbytes:,} across {len(m.shards)} shards")
    for meta in m.shards:
        status = ""
        if args.verify:
            store.read(meta.shard_id)  # raises on checksum mismatch
            status = "  crc ok"
        print(
            f"  shard {meta.shard_id:3d}  [{meta.start:>8}, {meta.stop:>8})"
            f"  {meta.nbytes:>12,} B  nnz={meta.nnz:,}{status}"
        )
    if args.verify:
        print("all checksums verified")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for name in sorted(ALL_EXPERIMENTS):
                print(name)
            return 0
        if args.command == "info":
            print(
                _INFO.format(version=__version__, scales=", ".join(sorted(SCALES)))
            )
            return 0
        if args.command == "faults":
            from .experiments.faults import scenario_table

            print(scenario_table())
            return 0
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "shards":
            return _cmd_shards(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "eval":
            return _cmd_eval(args)
        if args.command == "run":
            scale = SCALES[args.scale] if args.scale else None
            fig = ALL_EXPERIMENTS[args.experiment](scale)
            if args.json:
                payload = {
                    "schema": "repro.run/v1",
                    "version": __version__,
                    "experiment": args.experiment,
                    "scale": scale.name if scale else None,
                    "figure": fig.to_dict(),
                }
                text = json.dumps(payload, indent=2)
                if args.out:
                    out = Path(args.out)
                    out.parent.mkdir(parents=True, exist_ok=True)
                    out.write_text(text + "\n")
                    print(f"wrote {out}")
                else:
                    print(text)
            elif args.plot:
                from .experiments.ascii_plot import ascii_plot

                print(ascii_plot(fig, label_filter=args.series))
            else:
                print(fig.render_text(max_rows=args.max_rows))
            return 0
    except BrokenPipeError:  # output piped to a pager that quit early
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
