"""Command-line interface: list and run the reproduction experiments.

Usage::

    python -m repro list                      # all experiment ids
    python -m repro run fig2                  # regenerate one figure
    python -m repro run fig2 --scale full     # at the larger scale
    python -m repro info                      # paper + substitution summary
    python -m repro faults                    # named fault-injection scenarios
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .experiments import ALL_EXPERIMENTS, SCALES

__all__ = ["main", "build_parser"]

_INFO = """\
repro {version} — reproduction of 'Large-Scale Stochastic Learning using
GPUs' (Parnell et al., IPPS 2017, arXiv:1702.07005).

Implements TPA-SCD on a simulated GPU substrate, distributed SCD with
adaptive aggregation over a simulated cluster fabric, the CPU baselines
(sequential SCD, A-SCD, PASSCoDe-Wild), and drivers regenerating every
figure of the paper's evaluation plus ablations and extensions.

Hardware substitutions (full rationale in DESIGN.md):
  GPUs     -> wave-scheduled thread-block emulation + roofline timing
  cluster  -> in-process MPI-style collectives + link cost models
  datasets -> synthetic webspam-/criteo-like generators, paper-scale priced

Scales: {scales} (select with --scale or REPRO_SCALE).
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Large-Scale Stochastic Learning using GPUs'.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment ids")
    sub.add_parser("info", help="describe the reproduction")
    sub.add_parser(
        "faults",
        help="list the named fault-injection scenarios "
        "(run them via ext-fault-tolerance / ext-fault-breakdown)",
    )

    run = sub.add_parser("run", help="run one experiment and print its series")
    run.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="dataset scale (default: REPRO_SCALE or 'quick')",
    )
    run.add_argument(
        "--max-rows",
        type=int,
        default=10,
        help="points printed per series",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="draw the series as an ASCII log-plot instead of tables",
    )
    run.add_argument(
        "--series",
        default=None,
        help="with --plot: only series whose label contains this substring",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for name in sorted(ALL_EXPERIMENTS):
                print(name)
            return 0
        if args.command == "info":
            print(
                _INFO.format(version=__version__, scales=", ".join(sorted(SCALES)))
            )
            return 0
        if args.command == "faults":
            from .experiments.faults import scenario_table

            print(scenario_table())
            return 0
        if args.command == "run":
            scale = SCALES[args.scale] if args.scale else None
            fig = ALL_EXPERIMENTS[args.experiment](scale)
            if args.plot:
                from .experiments.ascii_plot import ascii_plot

                print(ascii_plot(fig, label_filter=args.series))
            else:
                print(fig.render_text(max_rows=args.max_rows))
            return 0
    except BrokenPipeError:  # output piped to a pager that quit early
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
