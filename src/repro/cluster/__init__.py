"""Cluster substrate: partitioners, smart partitioning, simulated MPI."""

from ..perf.link import ETHERNET_10G, ETHERNET_100G, Link
from .comm import SimCommunicator
from .faults import (
    DEFAULT_RETRY,
    SCENARIOS,
    FaultInjector,
    FaultReport,
    FaultSpec,
    RetryPolicy,
    WorkerEpochFaults,
    make_fault_injector,
)
from .mp_cluster import MpDistributedSCD
from .partition import (
    balanced_nnz_partition,
    contiguous_partition,
    proportional_partition,
    random_partition,
    shard_aligned_partition,
)
from .smart_partition import (
    communities_of,
    cooccurrence_graph,
    correlation_aware_partition,
    make_correlation_partitioner,
    pack_communities,
)

__all__ = [
    "SimCommunicator",
    "MpDistributedSCD",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "RetryPolicy",
    "WorkerEpochFaults",
    "DEFAULT_RETRY",
    "SCENARIOS",
    "make_fault_injector",
    "random_partition",
    "contiguous_partition",
    "balanced_nnz_partition",
    "proportional_partition",
    "shard_aligned_partition",
    "cooccurrence_graph",
    "communities_of",
    "pack_communities",
    "correlation_aware_partition",
    "make_correlation_partitioner",
    "Link",
    "ETHERNET_10G",
    "ETHERNET_100G",
]
