"""Cluster substrate: the unified runtime, partitioners, simulated MPI.

``repro.cluster.runtime`` is the single epoch engine behind
``DistributedSCD`` / ``DistributedSvm`` / ``MpDistributedSCD`` — synchronous
Algorithm 3 rounds or the asynchronous parameter-server schedule, selected
by the CommBackend; see ``docs/architecture.md`` for its six pluggable
seams (partitioner, comm backend, local solver, aggregation, faults,
membership).
"""

from ..perf.link import ETHERNET_10G, ETHERNET_100G, Link
from .comm import SimCommunicator
from .faults import (
    DEFAULT_RETRY,
    SCENARIOS,
    FaultInjector,
    FaultReport,
    FaultSpec,
    RetryPolicy,
    WorkerEpochFaults,
    make_fault_injector,
)
from .membership import (
    LoadBalancer,
    MembershipEvent,
    MembershipRecord,
    MembershipSchedule,
)
from .mp_cluster import MpDistributedSCD

# after mp_cluster: the core package initializes during mp_cluster's import,
# and repro.core.distributed itself imports .async_backend — importing it
# earlier would leave it half-initialized inside that cycle
from .async_backend import AsyncParamServerBackend
from .partition import (
    balanced_nnz_partition,
    contiguous_partition,
    proportional_partition,
    random_partition,
    shard_aligned_partition,
)
from .runtime import (
    ClusterRuntime,
    CommBackend,
    FaultPolicy,
    InProcessBackend,
    LocalSolver,
    PermutationStream,
    PipeProcessBackend,
    RoundOutcome,
    RuntimeProfile,
    RuntimeResult,
    WorkerUpdate,
    plan_partitions,
    scatter_weights,
    shared_sizing,
)
from .smart_partition import (
    communities_of,
    cooccurrence_graph,
    correlation_aware_partition,
    load_proportional_partition,
    make_capacity_partitioner,
    make_correlation_partitioner,
    pack_communities,
    validate_capacities,
)

__all__ = [
    "SimCommunicator",
    "MpDistributedSCD",
    "ClusterRuntime",
    "RuntimeProfile",
    "RuntimeResult",
    "FaultPolicy",
    "LocalSolver",
    "CommBackend",
    "InProcessBackend",
    "PipeProcessBackend",
    "WorkerUpdate",
    "RoundOutcome",
    "PermutationStream",
    "plan_partitions",
    "scatter_weights",
    "shared_sizing",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "RetryPolicy",
    "WorkerEpochFaults",
    "DEFAULT_RETRY",
    "SCENARIOS",
    "make_fault_injector",
    "random_partition",
    "contiguous_partition",
    "balanced_nnz_partition",
    "proportional_partition",
    "shard_aligned_partition",
    "cooccurrence_graph",
    "communities_of",
    "pack_communities",
    "correlation_aware_partition",
    "make_correlation_partitioner",
    "load_proportional_partition",
    "make_capacity_partitioner",
    "validate_capacities",
    "AsyncParamServerBackend",
    "MembershipEvent",
    "MembershipSchedule",
    "MembershipRecord",
    "LoadBalancer",
    "Link",
    "ETHERNET_10G",
    "ETHERNET_100G",
]
