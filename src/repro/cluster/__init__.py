"""Cluster substrate: the unified runtime, partitioners, simulated MPI.

``repro.cluster.runtime`` is the single synchronous-epoch engine behind
``DistributedSCD`` / ``DistributedSvm`` / ``MpDistributedSCD``; see
``docs/architecture.md`` for its five pluggable seams.
"""

from ..perf.link import ETHERNET_10G, ETHERNET_100G, Link
from .comm import SimCommunicator
from .faults import (
    DEFAULT_RETRY,
    SCENARIOS,
    FaultInjector,
    FaultReport,
    FaultSpec,
    RetryPolicy,
    WorkerEpochFaults,
    make_fault_injector,
)
from .mp_cluster import MpDistributedSCD
from .partition import (
    balanced_nnz_partition,
    contiguous_partition,
    proportional_partition,
    random_partition,
    shard_aligned_partition,
)
from .runtime import (
    ClusterRuntime,
    CommBackend,
    FaultPolicy,
    InProcessBackend,
    LocalSolver,
    PermutationStream,
    PipeProcessBackend,
    RoundOutcome,
    RuntimeProfile,
    RuntimeResult,
    WorkerUpdate,
    plan_partitions,
    scatter_weights,
    shared_sizing,
)
from .smart_partition import (
    communities_of,
    cooccurrence_graph,
    correlation_aware_partition,
    make_correlation_partitioner,
    pack_communities,
)

__all__ = [
    "SimCommunicator",
    "MpDistributedSCD",
    "ClusterRuntime",
    "RuntimeProfile",
    "RuntimeResult",
    "FaultPolicy",
    "LocalSolver",
    "CommBackend",
    "InProcessBackend",
    "PipeProcessBackend",
    "WorkerUpdate",
    "RoundOutcome",
    "PermutationStream",
    "plan_partitions",
    "scatter_weights",
    "shared_sizing",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "RetryPolicy",
    "WorkerEpochFaults",
    "DEFAULT_RETRY",
    "SCENARIOS",
    "make_fault_injector",
    "random_partition",
    "contiguous_partition",
    "balanced_nnz_partition",
    "proportional_partition",
    "shard_aligned_partition",
    "cooccurrence_graph",
    "communities_of",
    "pack_communities",
    "correlation_aware_partition",
    "make_correlation_partitioner",
    "Link",
    "ETHERNET_10G",
    "ETHERNET_100G",
]
