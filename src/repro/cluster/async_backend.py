"""The asynchronous parameter-server CommBackend (Li et al. [6]).

The paper contrasts its synchronous scheme with the asynchronous
parameter-server alternative: "a method was proposed whereby worker nodes
perform stochastic updates of a local model and asynchronously communicate
their model updates to a parameter server".  This backend implements that
alternative *on the runtime's CommBackend seam*, so sync vs async is a
configuration flag of :class:`~repro.core.distributed.DistributedSCD`
rather than a separate engine:

* the runtime's ``shared`` vector is the server state;
* each scheduling cycle, every worker (1) computes a *batch* of coordinate
  updates against its last pulled snapshot, (2) pushes the shared-vector
  delta (applied atomically — no update is lost), (3) pulls a fresh snapshot
  when its staleness exceeds ``staleness_bound`` server applications by
  other workers (0 = pull every batch, the classic K-1-batch staleness of a
  round-robin schedule);
* there is no barrier, so the modelled wall-clock per cycle is
  ``max(batch compute) + (1 - comm_overlap) * exposed comm`` — pushes/pulls
  overlap with computation, which is how asynchronous designs hide the
  communication the synchronous Algorithm 3 pays additively.

Because the backend declares ``asynchronous = True``, the runtime skips the
Reduce/gamma/Broadcast aggregation path entirely: the backend mutates the
shared vector in place over ``ceil(1 / batch_fraction)`` cycles per epoch,
books its own ledger phases, and advances its own simulated clock (the
runtime reads ``sim_seconds`` back).  With ``staleness_bound=0`` the cycle
schedule, RNG draws and float accumulation order reproduce the retired
``repro.core.async_ps`` engine bitwise — pinned by the ``async-dual-k3``
runtime golden.

Fault semantics are narrower than the synchronous path: the server applies
pushes atomically, so drop/stale-update faults cannot occur by construction;
only *dropout* (a worker offline for the whole epoch) and *straggler*
multipliers (slowed batches) apply.  Elastic membership is supported via
:meth:`resize` — departing workers' coordinates are reassigned with their
learned values preserved, joiners start from the current server state.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..solvers.base import KernelFactory
from .comm import SimCommunicator
from .partition import random_partition
from .runtime import PermutationStream, RoundOutcome, scatter_weights
from .smart_partition import load_proportional_partition

__all__ = ["AsyncParamServerBackend"]


class AsyncParamServerBackend:
    """CommBackend running the asynchronous parameter-server schedule.

    batch_fraction:
        Fraction of a worker's local coordinates per push/pull batch.
        Smaller batches mean fresher snapshots (less staleness) but more
        communication events.
    comm_overlap:
        Fraction of each batch's push+pull time hidden behind computation
        (double buffering); 1.0 models perfect overlap, 0.0 a fully
        serialized worker loop.
    staleness_bound:
        Maximum server applications by *other* workers a snapshot may lag
        before the worker pulls a fresh one.  0 pulls after every push (the
        retired engine's behavior, bitwise); s > 0 skips pulls while the
        bound holds, trading staleness for exposed pull bandwidth.
    """

    models_time = True
    asynchronous = True

    def __init__(
        self,
        comm: SimCommunicator,
        factory_for: Callable[[int], KernelFactory],
        formulation: str,
        *,
        batch_fraction: float = 1 / 16,
        comm_overlap: float = 0.9,
        staleness_bound: int = 0,
        paper_scale=None,
        seed: int = 0,
        on_label: Callable[[str], None] | None = None,
    ) -> None:
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if not 0.0 <= comm_overlap <= 1.0:
            raise ValueError("comm_overlap must be in [0, 1]")
        if staleness_bound < 0:
            raise ValueError("staleness_bound must be >= 0")
        self.comm = comm
        self.factory_for = factory_for
        self.formulation = formulation
        self.batch_fraction = float(batch_fraction)
        self.comm_overlap = float(comm_overlap)
        self.staleness_bound = int(staleness_bound)
        self.paper_scale = paper_scale
        self.seed = int(seed)
        self.on_label = on_label
        self.cycles_per_epoch = int(np.ceil(1.0 / self.batch_fraction))
        self.workers: list[dict] = []
        self._stale: list[int] = []
        #: cumulative modelled seconds; per-cycle accumulation order matches
        #: the retired engine's ``sim_time += cycle_s`` bitwise
        self.sim_seconds = 0.0
        self._compute_component = "compute_host"
        self._generation = 0
        self._problem = None

    @property
    def n_workers(self) -> int:
        return len(self.workers) if self.workers else self.comm.n_workers

    # -- construction (mirrors the retired engine's _build exactly) ---------
    def _matrix_and_total(self, problem):
        if self.formulation == "primal":
            return problem.dataset.csc, problem.m
        return problem.dataset.csr, problem.n

    def _bind_worker(
        self, rank: int, coords: np.ndarray, matrix, n_total: int,
        total_nnz: int, problem, rng_offset: int, weights=None,
    ) -> dict:
        local = matrix.take_major(coords)
        factory = self.factory_for(rank)
        if self.paper_scale is not None:
            factory.timing_workload = self.paper_scale.worker_workload(
                self.formulation,
                coords.shape[0] / n_total,
                (local.nnz / total_nnz) if total_nnz else 0.0,
            )
        if self.formulation == "primal":
            bound = factory.bind_primal(local, problem.y, problem.n, problem.lam)
        else:
            bound = factory.bind_dual(
                local, problem.y[coords], problem.n, problem.lam
            )
        if self.on_label is not None:
            self.on_label(factory.name)
        rng = np.random.default_rng(self.seed + rng_offset + rank)
        if weights is None:
            w = np.zeros(coords.shape[0], dtype=bound.dtype)
        else:
            w = weights[coords].astype(bound.dtype)
        return {
            "coords": coords,
            "bound": bound,
            "weights": w,
            "rng": rng,
            # shares ``rng`` with the kernel, like the sync runtime
            "stream": PermutationStream(coords.shape[0], rng),
            "snapshot": None,
            "epoch_seconds": bound.epoch_seconds(),
        }

    def install(self, tracer) -> None:
        self.comm.metrics = tracer.metrics if tracer.enabled else None

    def open(self, problem, tracer) -> None:
        self._problem = problem
        rng = np.random.default_rng(self.seed)
        matrix, n_total = self._matrix_and_total(problem)
        parts = random_partition(n_total, self.comm.n_workers, rng)
        total_nnz = matrix.nnz
        self.workers = [
            self._bind_worker(
                rank, coords, matrix, n_total, total_nnz, problem, 2000
            )
            for rank, coords in enumerate(parts)
        ]
        self._stale = [0] * len(self.workers)

    # -- elastic membership -------------------------------------------------
    def resize(self, problem, tracer, n_workers: int, capacities=None) -> int:
        """Repartition to ``n_workers`` ranks, preserving learned weights.

        The global model is assembled from the current pool, coordinates are
        re-dealt (capacity-proportionally when measured capacities are
        given), and every worker restarts from the assembled values with a
        fresh snapshot pulled at its next batch.  Staleness counters reset —
        a repartition is a synchronization point.
        """
        matrix, n_total = self._matrix_and_total(problem)
        global_w = scatter_weights(
            ((wk["coords"], wk["weights"]) for wk in self.workers), n_total
        )
        self._generation += 1
        rng = np.random.default_rng(
            self.seed + 7_000_000 + 10_000 * self._generation
        )
        if capacities is not None:
            parts = load_proportional_partition(n_total, capacities, rng)
        else:
            parts = random_partition(n_total, n_workers, rng)
        total_nnz = matrix.nnz
        self.workers = [
            self._bind_worker(
                rank, coords, matrix, n_total, total_nnz, problem,
                2000 + 100_000 * self._generation, weights=global_w,
            )
            for rank, coords in enumerate(parts)
        ]
        self.comm.n_workers = len(self.workers)
        self._stale = [0] * len(self.workers)
        return 0  # pushes are atomic: no buffered updates to invalidate

    def partition_sizes(self) -> list[int]:
        return [wk["coords"].shape[0] for wk in self.workers]

    # -- the asynchronous epoch ---------------------------------------------
    def run_round(
        self, epoch, shared, plan, report, policy, ledger, comm_bytes, needs_stats
    ) -> RoundOutcome:
        out = RoundOutcome()
        workers = self.workers
        for wk in workers:
            if wk["snapshot"] is None:
                wk["snapshot"] = shared.copy()
        active = [
            rank
            for rank in range(len(workers))
            if plan is None or not plan[rank].dropout
        ]
        if report is not None:
            report.dropouts += len(workers) - len(active)
            for rank in active:
                if plan is not None and plan[rank].straggler_multiplier > 1.0:
                    report.stragglers += 1
        # point-to-point push + pull per batch per worker; K workers push to
        # one server whose NIC serializes them within a cycle
        pull_s = self.comm.link.transfer_seconds(comm_bytes)
        push_pull_s = 2.0 * pull_s
        for _cycle in range(self.cycles_per_epoch):
            max_batch = 0.0
            any_pull = False
            for rank in active:
                wk = workers[rank]
                bound = wk["bound"]
                n_batch = max(
                    1,
                    int(round(self.batch_fraction * wk["coords"].shape[0])),
                )
                perm = wk["stream"].take(n_batch)
                local_view = wk["snapshot"].astype(bound.dtype)
                before = local_view.copy()
                bound.run_epoch(wk["weights"], local_view, perm, wk["rng"])
                delta = local_view.astype(np.float64) - before.astype(np.float64)
                # push: atomic server-side application (all updates land)
                shared += delta
                for other in active:
                    if other != rank:
                        self._stale[other] += 1
                if self._stale[rank] > self.staleness_bound:
                    # pull: fresh snapshot for the worker's next batch
                    wk["snapshot"] = shared.copy()
                    self._stale[rank] = 0
                    any_pull = True
                else:
                    # within the staleness bound: skip the pull, fold only
                    # the worker's own delta (it computed it) into the stale
                    # snapshot; with bound=0 this branch is reached only when
                    # no other push intervened, where it equals a pull
                    wk["snapshot"] = wk["snapshot"] + delta
                batch_s = wk["epoch_seconds"] * self.batch_fraction
                if plan is not None:
                    batch_s *= plan[rank].straggler_multiplier
                max_batch = max(max_batch, batch_s)
                self._compute_component = bound.timing.component
                out.n_updates += perm.shape[0]
                out.worker_wall[rank] = out.worker_wall.get(rank, 0.0) + batch_s
            if len(workers) > 1 and active:
                cycle_comm = push_pull_s if any_pull else pull_s
            else:
                cycle_comm = 0.0
            comm_exposed = (1.0 - self.comm_overlap) * cycle_comm
            cycle_s = max_batch + comm_exposed
            ledger.add(self._compute_component, max_batch)
            ledger.add("comm_network", comm_exposed)
            self.sim_seconds += cycle_s
        out.compute_component = self._compute_component
        out.any_computed = bool(active)
        out.n_arrived = len(active)
        return out

    # -- protocol surface the async branch never exercises ------------------
    def reduce(self, parts, like):  # pragma: no cover - sync-path only
        return self.comm.reduce_sum_partial(parts, like=like)

    def finish_round(self, gamma, outcome) -> None:
        pass  # updates were applied at push time

    def network_seconds(self, nbytes: int, n_scalars: int) -> float:
        return 0.0  # exposed comm is booked per cycle inside run_round

    # -- monitoring ----------------------------------------------------------
    def global_weights(self, problem) -> np.ndarray:
        n_coords = problem.m if self.formulation == "primal" else problem.n
        return scatter_weights(
            ((wk["coords"], wk["weights"]) for wk in self.workers), n_coords
        )

    def gap_objective(self, problem) -> tuple[float, float]:
        from ..objectives.ridge import gap_and_objective

        return gap_and_objective(
            problem, self.global_weights(problem), self.formulation
        )

    def global_model(self, problem, shared: np.ndarray) -> np.ndarray:
        return self.global_weights(problem)

    def close(self) -> None:
        pass
