"""MPI-style simulated communicator.

The paper's distributed implementation "leverages the Broadcast and Reduce
functions that are offered by the Open MPI library" over 10 Gbit Ethernet.
This module provides the same collective semantics in-process, paired with a
binomial-tree cost model over a :class:`~repro.perf.link.Link` so every
collective returns both its *result* and its modelled *seconds*.

The functional results are exact (numpy reductions); only the time is
modelled.  The mpi4py buffer-protocol idiom of separating small "pickled"
control messages from large array payloads is mirrored by
:meth:`SimCommunicator.scalars_seconds`, which prices the handful of extra
scalars adaptive aggregation ships per epoch.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..perf.link import ETHERNET_10G, Link
from .faults import DEFAULT_RETRY, RetryPolicy

__all__ = ["SimCommunicator"]


class SimCommunicator:
    """Collectives over ``n_workers`` simulated ranks connected by ``link``.

    Cost model: Open MPI's default binomial-tree algorithms perform
    ``ceil(log2(n_workers))`` sequential rounds for both Reduce and Bcast;
    each round moves the full payload across one link.  With one worker the
    collectives are free (no network hop), matching the paper's K=1 curves.
    """

    def __init__(
        self,
        n_workers: int,
        link: Link = ETHERNET_10G,
        *,
        algorithm: str = "tree",
        retry: RetryPolicy = DEFAULT_RETRY,
        metrics=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if algorithm not in ("tree", "ring"):
            raise ValueError(f"unknown collective algorithm {algorithm!r}")
        self.n_workers = int(n_workers)
        self.link = link
        self.algorithm = algorithm
        self.retry = retry
        #: optional :class:`~repro.obs.MetricsRegistry` booking collective
        #: calls/bytes; installed per-run by the distributed engines
        self.metrics = metrics

    # -- cost model -----------------------------------------------------------
    def _rounds(self) -> int:
        return math.ceil(math.log2(self.n_workers)) if self.n_workers > 1 else 0

    def _collective_seconds(self, nbytes: int | float) -> float:
        """Shared Reduce/Bcast pricing (metrics-free; see public methods).

        ``tree``: Open MPI's binomial tree — ``ceil(log2 K)`` full-payload
        rounds.  ``ring``: the bandwidth-optimal reduce-scatter half of a
        ring allreduce — ``(K-1)/K`` of the payload crosses each link, with
        ``K-1`` latency hops; better for large payloads at large K.
        """
        if self.n_workers == 1:
            return 0.0
        if self.algorithm == "tree":
            return self._rounds() * self.link.transfer_seconds(nbytes)
        k = self.n_workers
        per_step = self.link.transfer_seconds(nbytes / k)
        return (k - 1) * per_step

    def reduce_seconds(self, nbytes: int | float) -> float:
        """Modelled time to reduce a payload of ``nbytes`` onto the master."""
        if self.metrics is not None:
            self.metrics.inc("comm.reduce_calls")
            self.metrics.inc("comm.bytes_reduced", float(nbytes))
        return self._collective_seconds(nbytes)

    def bcast_seconds(self, nbytes: int | float) -> float:
        """Modelled time to broadcast ``nbytes`` from the master.

        Ring mode prices the allgather half of a ring allreduce.
        """
        if self.metrics is not None:
            self.metrics.inc("comm.bcast_calls")
            self.metrics.inc("comm.bytes_broadcast", float(nbytes))
        return self._collective_seconds(nbytes)

    def allreduce_seconds(self, nbytes: int | float) -> float:
        """Reduce followed by broadcast (the paper's aggregation round)."""
        return self.reduce_seconds(nbytes) + self.bcast_seconds(nbytes)

    def scalars_seconds(self, n_scalars: int) -> float:
        """Price the extra few float64 scalars adaptive aggregation ships."""
        if n_scalars < 0:
            raise ValueError("n_scalars must be non-negative")
        if self.n_workers == 1 or n_scalars == 0:
            return 0.0
        return self.reduce_seconds(8 * n_scalars)

    def retry_seconds(self, nbytes: int | float, n_failures: int) -> float:
        """Modelled overhead of ``n_failures`` transient failures of one
        point-to-point transfer: detection timeouts, exponential backoff, and
        full retransmissions under this communicator's :class:`RetryPolicy`.

        Failures beyond ``retry.max_retries`` are not billed — the transfer
        is abandoned at that point and the caller must treat the payload as
        dropped (``retry.exhausted`` tells it when).
        """
        if n_failures <= 0 or self.n_workers == 1:
            return 0.0
        seconds = self.retry.penalty_seconds(
            n_failures, self.link.transfer_seconds(nbytes)
        )
        if self.metrics is not None:
            self.metrics.inc("comm.retry_failures", int(n_failures))
            self.metrics.inc("comm.retry_seconds", seconds)
        return seconds

    # -- functional collectives --------------------------------------------------
    def reduce_sum(self, contributions: Sequence[np.ndarray]) -> np.ndarray:
        """Element-wise sum of one array per rank (master-side result)."""
        if len(contributions) != self.n_workers:
            raise ValueError(
                f"expected {self.n_workers} contributions, got {len(contributions)}"
            )
        return self.reduce_sum_partial(contributions)

    def reduce_sum_partial(
        self, contributions: Sequence[np.ndarray], *, like: np.ndarray | None = None
    ) -> np.ndarray:
        """Sum of however many contributions survived a degraded epoch.

        Unlike :meth:`reduce_sum` this accepts any count ``0..n_workers`` —
        the fault-aware engines aggregate over the K' <= K update vectors
        that actually arrived.  ``like`` supplies the output shape when no
        contribution survived.  The accumulation order matches
        :meth:`reduce_sum` exactly so a fault-free degraded epoch is
        bit-identical to the healthy path.
        """
        if not len(contributions):
            if like is None:
                raise ValueError(
                    "need `like` to shape an empty partial reduction"
                )
            return np.zeros_like(like, dtype=np.float64)
        out = np.array(contributions[0], dtype=np.float64, copy=True)
        for c in contributions[1:]:
            if c.shape != out.shape:
                raise ValueError("contributions must share a shape")
            out += c
        return out

    def reduce_scalar_sum(self, values: Sequence[float]) -> float:
        if len(values) != self.n_workers:
            raise ValueError(
                f"expected {self.n_workers} values, got {len(values)}"
            )
        return float(np.sum(np.asarray(values, dtype=np.float64)))

    def bcast(self, array: np.ndarray) -> list[np.ndarray]:
        """Deliver an independent copy of ``array`` to every rank."""
        return [array.copy() for _ in range(self.n_workers)]
