"""Seeded, deterministic fault injection for the simulated cluster.

The paper's distributed algorithms (Algorithms 3-4, Section V) assume K
perfectly synchronous workers.  At production scale that assumption fails
constantly: individual machines straggle, messages are lost and retried,
update vectors arrive late or never, and whole workers disappear for an
epoch at a time.  The asynchronous-tolerance literature (Keuper & Pfreundt's
asynchronous SGD; PASSCoDe's lost-update analysis) shows convergence
survives *bounded* faults when the aggregation math accounts for them — the
degraded-mode path of :class:`~repro.core.distributed.DistributedSCD`
recomputes the adaptive gamma over the K' <= K updates that actually arrive.

This module provides the fault *source*: a :class:`FaultInjector` that, from
one ``numpy.random.Generator`` seed, deterministically plans which faults
strike which worker in which epoch.  Plans are generated statelessly per
epoch (the generator is re-derived from ``(seed, epoch)``), so two engines
replaying the same scenario see bit-identical fault schedules regardless of
how many epochs either one runs or in which order plans are requested.

Fault taxonomy (see ``docs/fault_model.md``):

* **straggler** — the worker's local epoch takes ``straggler_multiplier``
  times longer; the synchronous barrier makes everyone wait.
* **transient send/recv failure** — a Reduce contribution or Broadcast
  delivery fails and is retried under the communicator's
  :class:`RetryPolicy` (timeout + exponential backoff + retransmission).
  Send failures beyond ``max_retries`` escalate to a dropped update.
* **dropped update** — the worker computed, but its update vector never
  reaches the master this epoch; master aggregates over the survivors and
  the worker discards its local work (it would otherwise diverge from the
  broadcast shared vector).
* **stale update** — the update vector arrives one epoch late and is folded
  into the *next* aggregation round.
* **worker dropout** — the worker is absent for the whole epoch (no
  compute, no update); it rejoins automatically at the next broadcast.
* **shard-read failure** — a read from the out-of-core shard store
  (:mod:`repro.shards`) fails transiently and is retried under the store's
  :class:`RetryPolicy`; exhaustion raises
  :class:`~repro.shards.store.ShardReadError`.  Planned per *read* (keyed on
  ``(seed, shard_id, read_index)``), not per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY",
    "FaultSpec",
    "WorkerEpochFaults",
    "FaultInjector",
    "FaultReport",
    "SCENARIOS",
    "make_fault_injector",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout-and-exponential-backoff retry semantics for one transfer.

    A failed attempt costs the detection ``timeout_s``, then the sender
    sleeps ``backoff_base_s * backoff_factor**i`` before retry ``i`` and
    re-pays the full transfer.  After ``max_retries`` failed retries the
    operation is abandoned and the update counts as dropped.
    """

    timeout_s: float = 0.05
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.timeout_s < 0 or self.backoff_base_s < 0:
            raise ValueError("timeout and backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def penalty_seconds(self, n_failures: int, transfer_s: float) -> float:
        """Modelled seconds lost to ``n_failures`` consecutive failures.

        Only the first ``max_retries`` failures are billed — past that the
        transfer is abandoned, so no further timeouts accrue.
        """
        billed = min(int(n_failures), self.max_retries)
        if billed <= 0:
            return 0.0
        backoff = sum(
            self.backoff_base_s * self.backoff_factor**i for i in range(billed)
        )
        return billed * (self.timeout_s + transfer_s) + backoff

    def exhausted(self, n_failures: int) -> bool:
        """True when ``n_failures`` exceeds the retry budget (update lost)."""
        return int(n_failures) > self.max_retries


#: the communicator's default policy — cheap enough that a handful of
#: retries stays well below one modelled epoch
DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True)
class FaultSpec:
    """Per-epoch, per-worker fault probabilities for one scenario.

    All rates are independent Bernoulli probabilities evaluated once per
    worker per epoch; ``seed`` makes the whole schedule reproducible.
    """

    straggler_rate: float = 0.0
    straggler_multiplier: float = 4.0
    send_failure_rate: float = 0.0
    recv_failure_rate: float = 0.0
    drop_rate: float = 0.0
    stale_rate: float = 0.0
    dropout_rate: float = 0.0
    #: per-attempt probability that a shard read from the out-of-core store
    #: fails transiently (retried under the store's RetryPolicy; exhaustion
    #: raises ShardReadError) — planned per read, not per epoch
    shard_read_failure_rate: float = 0.0
    max_consecutive_failures: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                v = getattr(self, f.name)
                if not 0.0 <= v <= 1.0:
                    raise ValueError(f"{f.name} must be in [0, 1], got {v}")
        if self.straggler_multiplier < 1.0:
            raise ValueError("straggler_multiplier must be >= 1")
        if self.max_consecutive_failures < 0:
            raise ValueError("max_consecutive_failures must be non-negative")

    @property
    def is_null(self) -> bool:
        """True when no fault can ever trigger (all rates zero)."""
        return (
            self.straggler_rate == 0.0
            and self.send_failure_rate == 0.0
            and self.recv_failure_rate == 0.0
            and self.drop_rate == 0.0
            and self.stale_rate == 0.0
            and self.dropout_rate == 0.0
            and self.shard_read_failure_rate == 0.0
        )

    def with_seed(self, seed: int) -> "FaultSpec":
        return replace(self, seed=int(seed))


#: no faults at any rate — a zero-rate injector must be a bit-identical
#: no-op when installed (the determinism regression tests enforce this)
_NO_FAULTS_SPEC = FaultSpec()

#: named scenarios surfaced through the experiment drivers and the CLI
SCENARIOS: dict[str, FaultSpec] = {
    "none": _NO_FAULTS_SPEC,
    "straggler-only": FaultSpec(straggler_rate=0.25, straggler_multiplier=4.0),
    "lossy-link": FaultSpec(
        send_failure_rate=0.20, recv_failure_rate=0.10, drop_rate=0.05
    ),
    "worker-dropout": FaultSpec(dropout_rate=0.15),
    "flaky-disk": FaultSpec(shard_read_failure_rate=0.25),
    "straggler-drop": FaultSpec(
        straggler_rate=0.25,
        straggler_multiplier=4.0,
        send_failure_rate=0.15,
        drop_rate=0.10,
    ),
    "chaos": FaultSpec(
        straggler_rate=0.20,
        straggler_multiplier=6.0,
        send_failure_rate=0.15,
        recv_failure_rate=0.10,
        drop_rate=0.08,
        stale_rate=0.08,
        dropout_rate=0.10,
    ),
}


@dataclass(frozen=True)
class WorkerEpochFaults:
    """The faults striking one worker in one epoch (all benign by default)."""

    dropout: bool = False
    straggler_multiplier: float = 1.0
    drop_update: bool = False
    stale_update: bool = False
    send_failures: int = 0
    recv_failures: int = 0

    @property
    def benign(self) -> bool:
        return (
            not self.dropout
            and not self.drop_update
            and not self.stale_update
            and self.straggler_multiplier == 1.0
            and self.send_failures == 0
            and self.recv_failures == 0
        )


_NO_FAULTS = WorkerEpochFaults()


class FaultInjector:
    """Deterministic per-epoch fault planner for a simulated cluster.

    The injector owns its own random stream, derived per epoch from
    ``(spec.seed, epoch)``; it never touches the workers' permutation
    generators, so installing a zero-rate injector leaves every trajectory
    bit-identical to the fault-free run.
    """

    def __init__(self, spec: FaultSpec | None = None) -> None:
        self.spec = spec or _NO_FAULTS_SPEC

    @property
    def is_null(self) -> bool:
        return self.spec.is_null

    def _any_epoch_rate(self) -> bool:
        """True when any per-epoch worker fault can trigger."""
        s = self.spec
        return (
            s.straggler_rate > 0.0
            or s.send_failure_rate > 0.0
            or s.recv_failure_rate > 0.0
            or s.drop_rate > 0.0
            or s.stale_rate > 0.0
            or s.dropout_rate > 0.0
        )

    def plan_shard_read(self, shard_id: int, read_index: int) -> int:
        """Transient failures striking the ``read_index``-th read of a shard.

        Keyed on ``(seed, shard_id, read_index)`` rather than any global
        counter, so the schedule is independent of how reads from multiple
        workers or prefetch threads interleave.
        """
        rate = self.spec.shard_read_failure_rate
        if rate <= 0.0:
            return 0
        rng = np.random.default_rng(
            [self.spec.seed, 0x5A4D, int(shard_id), int(read_index)]
        )
        return self._count_failures(rng, rate)

    def _count_failures(self, rng: np.random.Generator, rate: float) -> int:
        """Consecutive transient failures before a successful attempt."""
        if rate <= 0.0:
            return 0
        n = 0
        while n < self.spec.max_consecutive_failures and rng.random() < rate:
            n += 1
        return n

    def plan_epoch(self, epoch: int, n_workers: int) -> list[WorkerEpochFaults]:
        """The fault plan for ``epoch``, one entry per rank.

        Stateless in ``epoch``: replaying any epoch yields the same plan.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        s = self.spec
        if s.is_null:
            return [_NO_FAULTS] * n_workers
        if not self._any_epoch_rate():
            # shard-read-only scenario: epoch plans are all benign (and
            # consume no randomness, keeping trajectories bit-identical)
            return [_NO_FAULTS] * n_workers
        rng = np.random.default_rng([s.seed, int(epoch)])
        plan: list[WorkerEpochFaults] = []
        for _ in range(n_workers):
            if s.dropout_rate and rng.random() < s.dropout_rate:
                # absent for the whole epoch: nothing else can strike it
                plan.append(WorkerEpochFaults(dropout=True))
                continue
            mult = (
                s.straggler_multiplier
                if s.straggler_rate and rng.random() < s.straggler_rate
                else 1.0
            )
            drop = bool(s.drop_rate) and rng.random() < s.drop_rate
            stale = (
                not drop and bool(s.stale_rate) and rng.random() < s.stale_rate
            )
            plan.append(
                WorkerEpochFaults(
                    straggler_multiplier=mult,
                    drop_update=drop,
                    stale_update=stale,
                    send_failures=self._count_failures(rng, s.send_failure_rate),
                    recv_failures=self._count_failures(rng, s.recv_failure_rate),
                )
            )
        return plan


@dataclass
class FaultReport:
    """What the fault-aware engine observed over one training run."""

    epochs: int = 0
    dropouts: int = 0
    stragglers: int = 0
    dropped_updates: int = 0
    retry_exhausted: int = 0
    stale_updates: int = 0
    transient_failures: int = 0
    survivor_counts: list[int] = field(default_factory=list)

    @property
    def any_faults(self) -> bool:
        return (
            self.dropouts
            + self.stragglers
            + self.dropped_updates
            + self.stale_updates
            + self.transient_failures
        ) > 0

    def record_to(self, metrics) -> None:
        """Fold this report's totals into a :class:`~repro.obs.MetricsRegistry`."""
        if metrics is None:
            return
        metrics.inc("faults.dropouts", self.dropouts)
        metrics.inc("faults.stragglers", self.stragglers)
        metrics.inc("faults.dropped_updates", self.dropped_updates)
        metrics.inc("faults.retry_exhausted", self.retry_exhausted)
        metrics.inc("faults.stale_updates", self.stale_updates)
        metrics.inc("faults.transient_failures", self.transient_failures)
        for k in self.survivor_counts:
            metrics.observe("faults.survivors", k)

    def note(self) -> str:
        return (
            f"{self.dropouts} dropouts, {self.stragglers} straggler epochs, "
            f"{self.dropped_updates} dropped updates "
            f"({self.retry_exhausted} retry-exhausted), "
            f"{self.stale_updates} stale updates, "
            f"{self.transient_failures} transient failures "
            f"over {self.epochs} epochs"
        )


def make_fault_injector(
    faults: "FaultInjector | FaultSpec | str | None", *, seed: int | None = None
) -> FaultInjector | None:
    """Resolve a faults argument: injector, spec, scenario name, or None.

    ``seed`` re-seeds a named scenario (specs and injectors keep their own).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultSpec):
        return FaultInjector(faults)
    if isinstance(faults, str):
        try:
            spec = SCENARIOS[faults]
        except KeyError:
            raise ValueError(
                f"unknown fault scenario {faults!r}; choose from {sorted(SCENARIOS)}"
            ) from None
        if seed is not None:
            spec = spec.with_seed(seed)
        return FaultInjector(spec)
    raise TypeError(f"cannot make a FaultInjector from {type(faults).__name__}")
