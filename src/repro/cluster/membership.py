"""Elastic cluster membership: workers joining and leaving between epochs.

The paper trains on a fixed pool of K workers; the survivor-rescaled
aggregation the fault path already computes (gamma* over the K' <= K updates
that arrived) is exactly what an *elastic* cluster needs — membership becomes
a policy, not an architectural constant.  This module supplies the policies:

* :class:`MembershipEvent` / :class:`MembershipSchedule` — seeded,
  deterministic join/leave events applied at epoch boundaries, optionally
  combined with per-epoch random churn (stateless per ``(seed, epoch)`` like
  the fault injector) and fault-driven eviction (a rank that drops out
  ``evict_after`` consecutive epochs leaves the cluster);
* :class:`LoadBalancer` — a rebalance policy for heterogeneous pools: it
  turns measured per-rank epoch wall time into capacity estimates
  (coordinates per second, EMA-smoothed) and asks the runtime to repartition
  load-proportionally every ``every`` epochs;
* :class:`MembershipRecord` — the audit trail of what changed and why.

The mechanics — state-preserving repartitioning, shard alignment, stale
buffer invalidation — live on the comm backends (``resize``); the
:class:`~repro.cluster.runtime.ClusterRuntime` consults these policies at
every epoch boundary and emits ``cluster.membership.*`` /
``cluster.rebalance.*`` spans and metrics.  A run with no membership policy
and no balancer never touches any of this code: the static-membership
trajectory stays byte-for-byte what the runtime goldens pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "MembershipEvent",
    "MembershipSchedule",
    "MembershipRecord",
    "LoadBalancer",
]


@dataclass(frozen=True)
class MembershipEvent:
    """One scheduled change: ``n`` workers join or leave *before* ``epoch``."""

    epoch: int
    action: str  # "join" | "leave"
    n: int = 1

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("membership events apply before epoch >= 1")
        if self.action not in ("join", "leave"):
            raise ValueError(f"unknown membership action {self.action!r}")
        if self.n < 1:
            raise ValueError("event must move at least one worker")


class MembershipSchedule:
    """When the worker pool changes shape, and by how much.

    Three deterministic sources compose:

    * explicit ``events`` — ``MembershipEvent(epoch, "join"|"leave", n)``,
      applied before the named epoch runs;
    * seeded churn — with ``churn_seed`` set, each epoch boundary draws one
      join (probability ``join_prob``) and one leave (``leave_prob``) from a
      generator seeded by ``(churn_seed, epoch)``, so the schedule is
      reproducible and independent of how many epochs actually ran;
    * eviction — when ``evict_after`` is set, the runtime retires any rank
      the fault injector kept offline for that many consecutive epochs.

    The pool size is always clamped to ``[min_workers, max_workers]``.
    """

    def __init__(
        self,
        events: Iterable[MembershipEvent | tuple] = (),
        *,
        evict_after: int | None = None,
        min_workers: int = 1,
        max_workers: int | None = None,
        churn_seed: int | None = None,
        join_prob: float = 0.0,
        leave_prob: float = 0.0,
    ) -> None:
        self.events: list[MembershipEvent] = [
            e if isinstance(e, MembershipEvent) else MembershipEvent(*e)
            for e in events
        ]
        if evict_after is not None and evict_after < 1:
            raise ValueError("evict_after must be >= 1")
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers is not None and max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if not 0.0 <= join_prob <= 1.0 or not 0.0 <= leave_prob <= 1.0:
            raise ValueError("churn probabilities must be in [0, 1]")
        if (join_prob or leave_prob) and churn_seed is None:
            raise ValueError("random churn needs a churn_seed")
        self.evict_after = evict_after
        self.min_workers = int(min_workers)
        self.max_workers = max_workers
        self.churn_seed = churn_seed
        self.join_prob = float(join_prob)
        self.leave_prob = float(leave_prob)

    def delta_at(self, epoch: int) -> tuple[int, int]:
        """``(joins, leaves)`` scheduled for the boundary before ``epoch``."""
        joins = sum(
            e.n for e in self.events if e.epoch == epoch and e.action == "join"
        )
        leaves = sum(
            e.n for e in self.events if e.epoch == epoch and e.action == "leave"
        )
        if self.churn_seed is not None and (self.join_prob or self.leave_prob):
            rng = np.random.default_rng((self.churn_seed, epoch))
            # two draws, always both taken, so join_prob=0 still consumes one
            # and the leave stream stays aligned across configurations
            if rng.random() < self.join_prob:
                joins += 1
            if rng.random() < self.leave_prob:
                leaves += 1
        return joins, leaves

    def clamp(self, k: int) -> int:
        k = max(k, self.min_workers)
        if self.max_workers is not None:
            k = min(k, self.max_workers)
        return k


@dataclass
class MembershipRecord:
    """One applied membership/rebalance step, for the result's audit trail."""

    epoch: int
    k_before: int
    k_after: int
    joins: int = 0
    leaves: int = 0
    evictions: int = 0
    rebalanced: bool = False
    #: buffered stale updates invalidated by the repartition
    dropped_stale: int = 0
    #: capacity shares used for the new partition (None = partitioner default)
    capacities: list[float] | None = None


class LoadBalancer:
    """Load-proportional repartitioning from measured per-rank wall time.

    After every epoch the runtime feeds it ``(sizes, walls)`` — each rank's
    coordinate count and measured (modelled or real) epoch seconds.  The
    balancer keeps an EMA of per-rank throughput; when a rebalance is due
    (every ``every`` epochs, or whenever membership changes the pool) it
    emits capacity shares for :func:`~repro.cluster.smart_partition.
    load_proportional_partition`.  Ranks with no history (fresh joiners)
    are assigned the median surviving throughput.
    """

    def __init__(
        self,
        every: int = 1,
        *,
        smooth: float = 0.5,
        min_imbalance: float = 1.05,
    ) -> None:
        if every < 1:
            raise ValueError("rebalance interval must be >= 1 epoch")
        if not 0.0 < smooth <= 1.0:
            raise ValueError("smooth must be in (0, 1]")
        if min_imbalance < 1.0:
            raise ValueError("min_imbalance must be >= 1.0")
        self.every = int(every)
        self.smooth = float(smooth)
        self.min_imbalance = float(min_imbalance)
        self._throughput: list[float] = []
        self._epochs_recorded = 0

    def record(
        self, sizes: Sequence[int], walls: dict[int, float] | Sequence[float]
    ) -> None:
        """Fold one epoch's measurements into the per-rank throughput EMA."""
        if isinstance(walls, dict):
            walls = [walls.get(rank, 0.0) for rank in range(len(sizes))]
        fresh: list[float] = []
        for size, wall in zip(sizes, walls):
            fresh.append(size / wall if wall > 0.0 else float("nan"))
        finite = [t for t in fresh if np.isfinite(t)]
        if not finite:
            return
        fill = float(np.median(finite))
        fresh = [t if np.isfinite(t) else fill for t in fresh]
        if len(self._throughput) != len(fresh):
            # membership changed since the last record: restart the EMA at
            # the new pool shape rather than smear stale rank identities
            self._throughput = list(fresh)
        else:
            a = self.smooth
            self._throughput = [
                a * new + (1.0 - a) * old
                for new, old in zip(fresh, self._throughput)
            ]
        self._epochs_recorded += 1

    def due(self, epoch: int) -> bool:
        """Is a periodic rebalance due before ``epoch``?"""
        if not self._throughput or self._epochs_recorded == 0:
            return False
        if (epoch - 1) % self.every != 0:
            return False
        lo, hi = min(self._throughput), max(self._throughput)
        return lo > 0.0 and hi / lo >= self.min_imbalance

    def capacities(self, n_workers: int) -> list[float] | None:
        """Capacity shares for a pool of ``n_workers``, or None if unmeasured."""
        if not self._throughput:
            return None
        caps = [t for t in self._throughput if t > 0.0 and np.isfinite(t)]
        if not caps:
            return None
        fill = float(np.median(caps))
        out = [
            t if t > 0.0 and np.isfinite(t) else fill for t in self._throughput
        ]
        if len(out) < n_workers:
            out = out + [fill] * (n_workers - len(out))
        return out[:n_workers]
