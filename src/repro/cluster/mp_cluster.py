"""Distributed SCD over real OS processes (validation backend).

The simulation engine (`repro.core.distributed.DistributedSCD`) executes the
workers' epochs in-process and *models* time.  This facade runs the same
Algorithm 3/4 through the same :class:`~repro.cluster.runtime.ClusterRuntime`
epoch loop, but over a :class:`~repro.cluster.runtime.PipeProcessBackend` —
each worker in its own ``multiprocessing`` process, communicating
shared-vector deltas over pipes: true parallel execution with real
synchronization.

Because both backends run identical kernels with identical precompute and
permutation streams (same seeds, same partitioner), their trajectories must
agree *bitwise*; ``tests/test_runtime.py`` (cross-backend parity) and
``tests/test_mp_cluster.py`` assert exactly that, which is the strongest
available check that the simulated engine's *semantics* (as opposed to its
time model) are faithful.

Scope: sequential-SCD local solvers (the paper's CPU cluster), both
formulations, averaging/adaptive/adding aggregation.  The GPU solvers stay
simulation-only — their device model has no OS-process counterpart.

Shard stores: a ``shards=`` argument aligns the worker partitions to the
store's contiguous shard groups and builds each child's payload by
assembling its group from disk (bit-identical to ``take_major`` over the
same coordinates).  Streaming stops there — child processes hold their
materialized partition for the whole run, because per-epoch re-reads only
exist to *model* cache pressure and real processes have no simulated
clock to bill them against.

Fault injection: the backend honours the *functional* faults of a
:class:`~repro.cluster.faults.FaultInjector` — worker dropout (the child is
simply not asked to run the epoch) and lost updates (drop, stale-as-drop,
and retry exhaustion all exclude the child's delta and tell it to fold
gamma = 0), with the aggregation rescaled over the K' survivors.  Time-only
faults (stragglers, retry latency) have no meaning against real wall-clock
and are ignored here; ``tests/test_faults.py`` exploits the overlap to check
the simulated engine's degraded-mode *semantics* against real processes.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Sequence

import numpy as np

from ..core.aggregation import make_aggregator
from ..core.distributed import DistributedTrainResult
from ..objectives.ridge import RidgeProblem, gap_and_objective
from ..shards import ShardingConfig, ShardStore
from ..solvers.kernels import dual_epoch_sequential, primal_epoch_sequential
from .faults import FaultInjector, FaultSpec, make_fault_injector
from .partition import random_partition
from .runtime import (
    ClusterRuntime,
    FaultPolicy,
    PipeProcessBackend,
    RuntimeProfile,
    plan_partitions,
)

__all__ = ["MpDistributedSCD"]

_MP_PROFILE = RuntimeProfile(
    root_span="mp.train",
    bind_span=False,
    local_compute_span=False,
    aggregate_span=False,
    extras="gamma",
)


def _worker_loop(conn, payload: dict) -> None:
    """Child process: bind the local partition, then serve epoch requests.

    Protocol: parent sends ``("epoch", shared_vector)`` and receives
    ``(dshared, dweights_stats, elapsed_s)``; ``("stop", None)`` exits.
    """
    formulation = payload["formulation"]
    indptr = payload["indptr"]
    indices = payload["indices"]
    data = payload["data"]
    y = payload["y"]
    n_global = payload["n_global"]
    lam = payload["lam"]
    n_local = payload["n_local"]
    rng = np.random.default_rng(payload["perm_seed"])
    weights = np.zeros(n_local)

    nlam = n_global * lam
    # precomputed by the parent through the same matrix routines the
    # simulated factory binds with, so both backends run bitwise-identical
    # kernels (a per-row dot product here would differ in the last ulp)
    y_dots = payload["y_dots"]
    inv_denom = payload["inv_denom"]

    while True:
        msg, shared = conn.recv()
        if msg == "stop":
            conn.close()
            return
        t0 = time.perf_counter()
        local_shared = shared.copy()
        weights_work = weights.copy()
        perm = rng.permutation(n_local)
        if formulation == "primal":
            primal_epoch_sequential(
                indptr, indices, data, y_dots, inv_denom, nlam,
                weights_work, local_shared, perm,
            )
        else:
            dual_epoch_sequential(
                indptr, indices, data, y, inv_denom, lam, nlam,
                weights_work, local_shared, perm,
            )
        dweights = weights_work - weights
        stats = (
            float(weights @ dweights),
            float(dweights @ dweights),
            float(dweights @ y[:n_local]) if formulation == "dual" else 0.0,
        )
        elapsed = time.perf_counter() - t0
        conn.send((local_shared - shared, dweights, stats, elapsed))
        # the parent applies gamma and returns it with the next epoch's
        # broadcast; fold the previous delta lazily
        gamma = conn.recv()
        weights = weights + gamma * dweights


class MpDistributedSCD:
    """Algorithm 3/4 executed across real worker processes.

    Mirrors the simulation engine's constructor where applicable; local
    solvers are sequential SCD (the paper's CPU-cluster configuration).
    """

    def __init__(
        self,
        formulation: str = "dual",
        *,
        n_workers: int = 2,
        aggregation: str = "averaging",
        seed: int = 0,
        mp_context: str | None = None,
        faults: FaultInjector | FaultSpec | str | None = None,
        partitioner=None,
        shards: ShardingConfig | ShardStore | None = None,
        membership=None,
    ) -> None:
        if formulation not in ("primal", "dual"):
            raise ValueError(f"unknown formulation {formulation!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.formulation = formulation
        self.n_workers = int(n_workers)
        self.aggregator = make_aggregator(aggregation)
        self.seed = int(seed)
        self.faults = make_fault_injector(faults)
        self.partitioner = partitioner or random_partition
        if isinstance(shards, ShardStore):
            shards = ShardingConfig(store=shards)
        self.shards = shards
        if self.shards is not None:
            axis = "cols" if formulation == "primal" else "rows"
            if self.shards.store.axis != axis:
                raise ValueError(
                    f"{formulation} formulation needs a {axis!r}-axis shard "
                    f"set, got {self.shards.store.axis!r}"
                )
        #: elastic membership is simulation-only; a non-None schedule makes
        #: ClusterRuntime raise its pointed not-supported error at build time
        self.membership = membership
        self._groups: list[list[int]] | None = None
        self._ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self.name = (
            f"MpDistributed[SCD x{self.n_workers}, "
            f"{self.aggregator.name}, {formulation}]"
        )

    # -- helpers ------------------------------------------------------------
    def _partitions(self, problem: RidgeProblem) -> list[np.ndarray]:
        n_coords = problem.m if self.formulation == "primal" else problem.n
        if self.shards is not None:
            store = self.shards.store
            if store.n_major != n_coords:
                raise ValueError(
                    f"shard set covers {store.n_major} coordinates, "
                    f"problem has {n_coords}"
                )
            self._groups = store.partition(self.n_workers)
            return [store.coords_of(g) for g in self._groups]
        return plan_partitions(
            n_coords, self.n_workers, self.seed, self.partitioner, None, (0, 0)
        )[0]

    def _payloads(self, problem: RidgeProblem, parts: Sequence[np.ndarray]):
        if self.formulation == "primal":
            matrix = problem.dataset.csc
        else:
            matrix = problem.dataset.csr
        if self.shards is not None and self.shards.store.shape != matrix.shape:
            raise ValueError(
                f"shard set covers a {self.shards.store.shape} matrix, "
                f"problem matrix is {matrix.shape}"
            )
        payloads = []
        for rank, coords in enumerate(parts):
            if self._groups is not None:
                # materialize the child's partition straight from the shard
                # store; contiguous-group assembly is bitwise identical to
                # take_major over the same coordinates
                local, _ = self.shards.store.assemble(self._groups[rank])
            else:
                local = matrix.take_major(coords)
            if local.dtype != np.float64:
                local = local.astype(np.float64)
            y_local = (
                problem.y.astype(np.float64)
                if self.formulation == "primal"
                else problem.y[coords].astype(np.float64)
            )
            nlam = problem.n * problem.lam
            # identical precompute path to SequentialKernelFactory.bind_*:
            # the matrix-level reductions, not per-row dot products, so a
            # child's kernel inputs match the simulated worker's bitwise
            if self.formulation == "primal":
                y_dots = local.rmatvec(y_local)
                inv_denom = 1.0 / (local.col_norms_sq() + nlam)
            else:
                y_dots = None
                inv_denom = 1.0 / (nlam + local.row_norms_sq())
            payloads.append(
                {
                    "formulation": self.formulation,
                    "indptr": local.indptr,
                    "indices": local.indices,
                    "data": local.data,
                    "y": y_local,
                    "y_dots": y_dots,
                    "inv_denom": inv_denom,
                    "n_global": problem.n,
                    "lam": problem.lam,
                    "n_local": coords.shape[0],
                    "perm_seed": self.seed + 1000 + rank,
                }
            )
        return payloads

    # -- training ------------------------------------------------------------------
    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
        on_epoch=None,
    ) -> DistributedTrainResult:
        parts = self._partitions(problem)
        payloads = self._payloads(problem, parts)
        shared_len = problem.n if self.formulation == "primal" else problem.m
        n_model = problem.m if self.formulation == "primal" else problem.n
        backend = PipeProcessBackend(
            ctx=self._ctx,
            worker_target=_worker_loop,
            payloads=payloads,
            parts=list(parts),
            n_model_coords=n_model,
            gap_fn=lambda w: gap_and_objective(problem, w, self.formulation),
        )
        runtime = ClusterRuntime(
            backend=backend,
            aggregator=self.aggregator,
            formulation=self.formulation,
            faults=FaultPolicy(
                injector=self.faults,
                # stale updates have no next-round buffer against real
                # processes; they count as lost, like retry exhaustion
                stale_buffering=False,
                count_retry_exhausted=False,
            ),
            profile=_MP_PROFILE,
            name=lambda: self.name,
            membership=self.membership,
        )
        rt = runtime.run(
            problem,
            n_epochs,
            shared_len=shared_len,
            monitor_every=monitor_every,
            target_gap=target_gap,
            tracer=tracer,
            on_epoch=on_epoch,
        )
        return DistributedTrainResult(
            formulation=self.formulation,
            weights=backend.global_weights(),
            shared=rt.shared,
            history=rt.history,
            ledger=rt.ledger,
            partitions=list(parts),
            solver_name=self.name,
            gammas=rt.gammas,
            fault_report=rt.report,
            trace=rt.tracer if rt.tracer.enabled else None,
            metrics=rt.tracer.metrics if rt.tracer.enabled else None,
        )
