"""Distributed SCD over real OS processes (validation backend).

The simulation engine (`repro.core.distributed.DistributedSCD`) executes the
workers' epochs in-process and *models* time.  This backend executes the
same Algorithm 3/4 with each worker in its own ``multiprocessing`` process,
communicating shared-vector deltas over pipes — true parallel execution
with real synchronization.

Because both backends run identical kernels with identical permutation
streams (same seeds, same partitioner), their trajectories must agree to
floating-point equality; ``tests/test_mp_cluster.py`` asserts exactly that,
which is the strongest available check that the simulated engine's
*semantics* (as opposed to its time model) are faithful.

Scope: sequential-SCD local solvers (the paper's CPU cluster), both
formulations, averaging/adaptive/adding aggregation.  The GPU solvers stay
simulation-only — their device model has no OS-process counterpart.

Shard stores: a ``shards=`` argument aligns the worker partitions to the
store's contiguous shard groups and builds each child's payload by
assembling its group from disk (bit-identical to ``take_major`` over the
same coordinates).  Streaming stops there — child processes hold their
materialized partition for the whole run, because per-epoch re-reads only
exist to *model* cache pressure and real processes have no simulated
clock to bill them against.

Fault injection: the backend honours the *functional* faults of a
:class:`~repro.cluster.faults.FaultInjector` — worker dropout (the child is
simply not asked to run the epoch) and lost updates (drop, stale-as-drop,
and retry exhaustion all exclude the child's delta and tell it to fold
gamma = 0), with the aggregation rescaled over the K' survivors.  Time-only
faults (stragglers, retry latency) have no meaning against real wall-clock
and are ignored here; ``tests/test_faults.py`` exploits the overlap to check
the simulated engine's degraded-mode *semantics* against real processes.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Sequence

import numpy as np

from ..core.aggregation import AggregationStats, make_aggregator
from ..core.distributed import DistributedTrainResult
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.ridge import RidgeProblem
from ..obs import resolve_tracer
from ..shards import ShardingConfig, ShardStore
from ..solvers.kernels import dual_epoch_sequential, primal_epoch_sequential
from .faults import (
    DEFAULT_RETRY,
    FaultInjector,
    FaultReport,
    FaultSpec,
    WorkerEpochFaults,
    make_fault_injector,
)
from .partition import random_partition

__all__ = ["MpDistributedSCD"]


def _worker_loop(conn, payload: dict) -> None:
    """Child process: bind the local partition, then serve epoch requests.

    Protocol: parent sends ``("epoch", shared_vector)`` and receives
    ``(dshared, dweights_stats, elapsed_s)``; ``("stop", None)`` exits.
    """
    formulation = payload["formulation"]
    indptr = payload["indptr"]
    indices = payload["indices"]
    data = payload["data"]
    y = payload["y"]
    n_global = payload["n_global"]
    lam = payload["lam"]
    n_local = payload["n_local"]
    rng = np.random.default_rng(payload["perm_seed"])
    weights = np.zeros(n_local)

    nlam = n_global * lam
    if formulation == "primal":
        # y here is the global label vector; precompute <y, a_m>
        y_dots = np.zeros(n_local)
        for j in range(n_local):
            lo, hi = indptr[j], indptr[j + 1]
            y_dots[j] = data[lo:hi] @ y[indices[lo:hi]]
        norms = np.zeros(n_local)
        for j in range(n_local):
            lo, hi = indptr[j], indptr[j + 1]
            norms[j] = data[lo:hi] @ data[lo:hi]
        inv_denom = 1.0 / (norms + nlam)
    else:
        norms = np.zeros(n_local)
        for j in range(n_local):
            lo, hi = indptr[j], indptr[j + 1]
            norms[j] = data[lo:hi] @ data[lo:hi]
        inv_denom = 1.0 / (nlam + norms)

    while True:
        msg, shared = conn.recv()
        if msg == "stop":
            conn.close()
            return
        t0 = time.perf_counter()
        local_shared = shared.copy()
        weights_work = weights.copy()
        perm = rng.permutation(n_local)
        if formulation == "primal":
            primal_epoch_sequential(
                indptr, indices, data, y_dots, inv_denom, nlam,
                weights_work, local_shared, perm,
            )
        else:
            dual_epoch_sequential(
                indptr, indices, data, y, inv_denom, lam, nlam,
                weights_work, local_shared, perm,
            )
        dweights = weights_work - weights
        stats = (
            float(weights @ dweights),
            float(dweights @ dweights),
            float(dweights @ y[:n_local]) if formulation == "dual" else 0.0,
        )
        elapsed = time.perf_counter() - t0
        conn.send((local_shared - shared, dweights, stats, elapsed))
        # the parent applies gamma and returns it with the next epoch's
        # broadcast; fold the previous delta lazily
        gamma = conn.recv()
        weights = weights + gamma * dweights


class MpDistributedSCD:
    """Algorithm 3/4 executed across real worker processes.

    Mirrors the simulation engine's constructor where applicable; local
    solvers are sequential SCD (the paper's CPU-cluster configuration).
    """

    def __init__(
        self,
        formulation: str = "dual",
        *,
        n_workers: int = 2,
        aggregation: str = "averaging",
        seed: int = 0,
        mp_context: str | None = None,
        faults: FaultInjector | FaultSpec | str | None = None,
        partitioner=None,
        shards: ShardingConfig | ShardStore | None = None,
    ) -> None:
        if formulation not in ("primal", "dual"):
            raise ValueError(f"unknown formulation {formulation!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.formulation = formulation
        self.n_workers = int(n_workers)
        self.aggregator = make_aggregator(aggregation)
        self.seed = int(seed)
        self.faults = make_fault_injector(faults)
        self.partitioner = partitioner or random_partition
        if isinstance(shards, ShardStore):
            shards = ShardingConfig(store=shards)
        self.shards = shards
        if self.shards is not None:
            axis = "cols" if formulation == "primal" else "rows"
            if self.shards.store.axis != axis:
                raise ValueError(
                    f"{formulation} formulation needs a {axis!r}-axis shard "
                    f"set, got {self.shards.store.axis!r}"
                )
        self._groups: list[list[int]] | None = None
        self._ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self.name = (
            f"MpDistributed[SCD x{self.n_workers}, "
            f"{self.aggregator.name}, {formulation}]"
        )

    # -- helpers ------------------------------------------------------------
    def _partitions(self, problem: RidgeProblem) -> list[np.ndarray]:
        n_coords = problem.m if self.formulation == "primal" else problem.n
        if self.shards is not None:
            store = self.shards.store
            if store.n_major != n_coords:
                raise ValueError(
                    f"shard set covers {store.n_major} coordinates, "
                    f"problem has {n_coords}"
                )
            self._groups = store.partition(self.n_workers)
            return [store.coords_of(g) for g in self._groups]
        rng = np.random.default_rng(self.seed)
        return list(self.partitioner(n_coords, self.n_workers, rng))

    def _payloads(self, problem: RidgeProblem, parts: Sequence[np.ndarray]):
        if self.formulation == "primal":
            matrix = problem.dataset.csc
        else:
            matrix = problem.dataset.csr
        if self.shards is not None and self.shards.store.shape != matrix.shape:
            raise ValueError(
                f"shard set covers a {self.shards.store.shape} matrix, "
                f"problem matrix is {matrix.shape}"
            )
        payloads = []
        for rank, coords in enumerate(parts):
            if self._groups is not None:
                # materialize the child's partition straight from the shard
                # store; contiguous-group assembly is bitwise identical to
                # take_major over the same coordinates
                local, _ = self.shards.store.assemble(self._groups[rank])
            else:
                local = matrix.take_major(coords)
            y_local = (
                problem.y.astype(np.float64)
                if self.formulation == "primal"
                else problem.y[coords].astype(np.float64)
            )
            payloads.append(
                {
                    "formulation": self.formulation,
                    "indptr": local.indptr,
                    "indices": local.indices,
                    "data": local.data.astype(np.float64),
                    "y": y_local,
                    "n_global": problem.n,
                    "lam": problem.lam,
                    "n_local": coords.shape[0],
                    "perm_seed": self.seed + 1000 + rank,
                }
            )
        return payloads

    def _gap(self, weights: np.ndarray, problem: RidgeProblem):
        if self.formulation == "primal":
            return problem.primal_gap(weights), problem.primal_objective(weights)
        return problem.dual_gap(weights), problem.dual_objective(weights)

    # -- training ------------------------------------------------------------------
    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
    ) -> DistributedTrainResult:
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        tracer = resolve_tracer(tracer)
        parts = self._partitions(problem)
        payloads = self._payloads(problem, parts)
        shared_len = problem.n if self.formulation == "primal" else problem.m
        shared = np.zeros(shared_len)
        weights_by_rank = [np.zeros(p.shape[0]) for p in parts]
        history = ConvergenceHistory(label=self.name)
        ledger = tracer.open_ledger()
        gammas: list[float] = []
        root_span = tracer.span(
            "mp.train", category="driver", solver=self.name,
            n_workers=self.n_workers, n_epochs=n_epochs,
        )
        root_span.__enter__()

        pipes = []
        procs = []
        try:
            for payload in payloads:
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_loop, args=(child_conn, payload), daemon=True
                )
                proc.start()
                child_conn.close()
                pipes.append(parent_conn)
                procs.append(proc)

            t0 = time.perf_counter()
            weights = self._assemble(parts, weights_by_rank, problem)
            with tracer.span("gap_eval", category="monitor", epoch=0):
                gap, obj = self._gap(weights, problem)
            history.append(
                ConvergenceRecord(
                    epoch=0, gap=gap, objective=obj,
                    sim_time=0.0, wall_time=0.0, updates=0,
                )
            )
            updates = 0
            report = FaultReport() if self.faults is not None else None
            benign = WorkerEpochFaults()
            for epoch in range(1, n_epochs + 1):
                epoch_span = tracer.span("epoch", category="driver", epoch=epoch)
                epoch_span.__enter__()
                plan = (
                    self.faults.plan_epoch(epoch, self.n_workers)
                    if self.faults is not None
                    else None
                )
                if report is not None:
                    report.epochs += 1
                # dropout faults: the child is not asked to run this epoch,
                # so its permutation stream does not advance (matching the
                # simulated engine's semantics)
                active = [
                    rank
                    for rank in range(self.n_workers)
                    if plan is None or not plan[rank].dropout
                ]
                if report is not None:
                    report.dropouts += self.n_workers - len(active)
                for rank in active:
                    pipes[rank].send(("epoch", shared))
                dshared_total = np.zeros(shared_len)
                model_dot = 0.0
                dmodel_norm = 0.0
                dmodel_y = 0.0
                dweights_by_rank: dict[int, np.ndarray] = {}
                arrived_ranks: list[int] = []
                max_worker_s = 0.0
                for rank in active:
                    dshared, dweights, stats, elapsed = pipes[rank].recv()
                    wf = plan[rank] if plan is not None else benign
                    max_worker_s = max(max_worker_s, elapsed)
                    updates += parts[rank].shape[0]
                    dweights_by_rank[rank] = dweights
                    # stale updates have no next-round buffer against real
                    # processes; they count as lost, like retry exhaustion
                    lost = (
                        wf.drop_update
                        or wf.stale_update
                        or DEFAULT_RETRY.exhausted(wf.send_failures)
                    )
                    if lost:
                        if report is not None:
                            report.dropped_updates += 1
                        continue
                    arrived_ranks.append(rank)
                    dshared_total += dshared
                    model_dot += stats[0]
                    dmodel_norm += stats[1]
                    dmodel_y += stats[2]
                n_arrived = len(arrived_ranks)
                if report is not None:
                    report.survivor_counts.append(n_arrived)
                if n_arrived:
                    if self.formulation == "primal":
                        resid_dot = float((shared - problem.y) @ dshared_total)
                    else:
                        resid_dot = float(shared @ dshared_total)
                    gamma = self.aggregator.gamma(
                        AggregationStats(
                            formulation=self.formulation,
                            n=problem.n,
                            lam=problem.lam,
                            n_workers=n_arrived,
                            resid_dot_dshared=resid_dot,
                            dshared_norm_sq=float(dshared_total @ dshared_total),
                            model_dot_dmodel=model_dot,
                            dmodel_norm_sq=dmodel_norm,
                            dmodel_dot_y=dmodel_y,
                        )
                    )
                else:
                    gamma = 0.0
                gammas.append(gamma)
                shared += gamma * dshared_total
                for rank in active:
                    # a lost update folds gamma = 0 so the child reverts and
                    # stays consistent with the broadcast shared vector
                    g = gamma if rank in arrived_ranks else 0.0
                    pipes[rank].send(g)
                    weights_by_rank[rank] = (
                        weights_by_rank[rank] + g * dweights_by_rank[rank]
                    )
                ledger.add("compute_host", max_worker_s)
                epoch_span.__exit__(None, None, None)
                tracer.count("dist.epochs")
                tracer.observe("dist.gamma", gamma)
                tracer.observe("dist.survivors", n_arrived)
                if epoch % monitor_every == 0 or epoch == n_epochs:
                    weights = self._assemble(parts, weights_by_rank, problem)
                    with tracer.span("gap_eval", category="monitor", epoch=epoch):
                        gap, obj = self._gap(weights, problem)
                    history.append(
                        ConvergenceRecord(
                            epoch=epoch,
                            gap=gap,
                            objective=obj,
                            sim_time=time.perf_counter() - t0,
                            wall_time=time.perf_counter() - t0,
                            updates=updates,
                            extras={"gamma": gamma},
                        )
                    )
                    if target_gap is not None and gap <= target_gap:
                        break
        finally:
            for conn in pipes:
                try:
                    conn.send(("stop", None))
                    conn.close()
                except (BrokenPipeError, OSError):
                    pass
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung child guard
                    proc.terminate()

        root_span.__exit__(None, None, None)
        weights = self._assemble(parts, weights_by_rank, problem)
        if tracer.enabled and report is not None:
            report.record_to(tracer.metrics)
        return DistributedTrainResult(
            formulation=self.formulation,
            weights=weights,
            shared=shared,
            history=history,
            ledger=ledger,
            partitions=parts,
            solver_name=self.name,
            gammas=gammas,
            fault_report=report,
            trace=tracer if tracer.enabled else None,
            metrics=tracer.metrics if tracer.enabled else None,
        )

    def _assemble(self, parts, weights_by_rank, problem) -> np.ndarray:
        n_coords = problem.m if self.formulation == "primal" else problem.n
        out = np.zeros(n_coords)
        for coords, w in zip(parts, weights_by_rank):
            out[coords] = w
        return out
