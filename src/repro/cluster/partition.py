"""Coordinate partitioners for distributed training.

The paper distributes the data matrix either *by feature* (columns — primal
formulation) or *by example* (rows — dual formulation), assigning each worker
a random subset of coordinates ("we partition the dataset by training example
and thus randomly distribute the rows ... across the 4 workers").  Besides
the random partitioner we provide a contiguous one (for structured data) and
a greedy nnz-balanced one, since wall-clock per epoch is governed by the
most-loaded worker.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = [
    "random_partition",
    "contiguous_partition",
    "balanced_nnz_partition",
    "proportional_partition",
    "shard_aligned_partition",
]


def _validate(n_items: int, n_parts: int) -> None:
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_items < n_parts:
        raise ValueError(
            f"cannot split {n_items} coordinates into {n_parts} non-empty parts"
        )


def random_partition(
    n_items: int, n_parts: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniformly random, size-balanced partition (the paper's scheme).

    Sizes differ by at most one; each part's indices are returned sorted so
    downstream ``take_major`` calls preserve intra-part ordering.
    """
    _validate(n_items, n_parts)
    perm = rng.permutation(n_items)
    return [np.sort(part) for part in np.array_split(perm, n_parts)]


def contiguous_partition(n_items: int, n_parts: int) -> list[np.ndarray]:
    """Contiguous index ranges of near-equal size."""
    _validate(n_items, n_parts)
    return list(np.array_split(np.arange(n_items), n_parts))


def proportional_partition(
    n_items: int,
    speeds: np.ndarray,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Random partition with sizes proportional to per-worker ``speeds``.

    For heterogeneous clusters (e.g. a Titan X alongside M4000s) the
    synchronous engine's epoch time is the *slowest* worker's — equal-size
    partitions leave fast devices idle.  Sizing each worker's share by its
    relative throughput equalizes per-epoch compute across the cluster.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.ndim != 1 or speeds.shape[0] < 1:
        raise ValueError("speeds must be a non-empty 1-D array")
    if np.any(speeds <= 0):
        raise ValueError("speeds must be positive")
    n_parts = speeds.shape[0]
    _validate(n_items, n_parts)
    # largest-remainder apportionment, then clamp to >= 1 per part
    quotas = n_items * speeds / speeds.sum()
    sizes = np.floor(quotas).astype(int)
    remainder = n_items - sizes.sum()
    order = np.argsort(quotas - sizes)[::-1]
    sizes[order[:remainder]] += 1
    while np.any(sizes == 0):
        sizes[np.argmax(sizes)] -= 1
        sizes[np.argmin(sizes)] += 1
    perm = rng.permutation(n_items)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    return [
        np.sort(perm[bounds[k] : bounds[k + 1]]) for k in range(n_parts)
    ]


def shard_aligned_partition(store):
    """A partitioner whose parts map 1:1 onto shard-group boundaries.

    ``store`` is a :class:`~repro.shards.store.ShardStore` (duck-typed: any
    object with ``n_major``, ``partition`` and ``coords_of``).  The returned
    callable has the standard ``(n_items, n_parts, rng)`` partitioner
    signature but ignores ``rng``: parts are the store's contiguous,
    byte-balanced shard groups.  Feeding it to an *in-memory* engine yields
    exactly the partitions the out-of-core engine derives from the same
    store — the alignment the bit-identity guarantee rests on.
    """

    def partition(
        n_items: int, n_parts: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        if n_items != store.n_major:
            raise ValueError(
                f"store covers {store.n_major} coordinates, "
                f"engine asked to partition {n_items}"
            )
        return [store.coords_of(group) for group in store.partition(n_parts)]

    return partition


def balanced_nnz_partition(
    lengths: np.ndarray, n_parts: int, rng: np.random.Generator | None = None
) -> list[np.ndarray]:
    """Greedy longest-processing-time partition balancing per-part nnz.

    ``lengths[i]`` is the nonzero count of coordinate ``i``.  Heavy
    coordinates are placed first onto the currently lightest part, which
    bounds the imbalance and hence the distributed epoch's straggler time.
    An optional ``rng`` shuffles ties so repeated runs differ.
    """
    lengths = np.asarray(lengths)
    _validate(lengths.shape[0], n_parts)
    order = np.argsort(lengths)[::-1]
    if rng is not None:
        # shuffle within equal-length runs to randomize tie-breaking
        keys = lengths[order].astype(np.float64) + rng.random(order.shape[0]) * 0.5
        order = order[np.argsort(keys)[::-1]]
    heap: list[tuple[int, int]] = [(0, k) for k in range(n_parts)]
    heapq.heapify(heap)
    parts: list[list[int]] = [[] for _ in range(n_parts)]
    for idx in order:
        load, k = heapq.heappop(heap)
        parts[k].append(int(idx))
        heapq.heappush(heap, (load + int(lengths[idx]), k))
    return [np.sort(np.asarray(p, dtype=np.int64)) for p in parts]
