"""The unified synchronous-epoch cluster runtime.

The paper's distributed algorithms (Alg. 3, Alg. 4, and the Section V
distributed TPA-SCD composition) are one synchronous scheme — local solve ->
Reduce deltas -> gamma*_t aggregation -> Broadcast -> workers fold
``gamma_t * dmodel``.  This module implements that scheme *once* with six
pluggable seams, and the engine classes (`DistributedSCD`, `DistributedSvm`,
`MpDistributedSCD`) become thin facades that assemble a runtime from parts:

* **Partitioner** — :func:`plan_partitions`: feature/example random (or
  custom) partitions, or shard-group-aligned partitions for out-of-core
  stores;
* **CommBackend** — :class:`InProcessBackend` (workers execute in-process,
  communication priced by :class:`~repro.cluster.comm.SimCommunicator`) vs
  :class:`PipeProcessBackend` (real ``multiprocessing`` workers over pipes,
  real wall-clock) vs the asynchronous
  :class:`~repro.cluster.async_backend.AsyncParamServerBackend`
  (bounded-staleness parameter-server cycles; the runtime skips
  aggregation and takes its clock from the backend); one interface carries
  Reduce/Broadcast plus the adaptive rule's extra scalars;
* **LocalSolver** — the :class:`LocalSolver` protocol adapts what a worker
  does between barriers: CPU/GPU SCD kernels (``core/distributed.py``) or
  SVM dual updates (``core/distributed_svm.py``);
* **AggregationPolicy** — any :class:`~repro.core.aggregation.Aggregator`
  (averaging / adding / adaptive gamma* / scaled sigma'/K);
* **FaultPolicy** — :class:`FaultPolicy` wraps a
  :class:`~repro.cluster.faults.FaultInjector` and fixes the degraded-mode
  semantics (stale updates buffered for the next round vs counted as lost,
  survivor-rescaled aggregation, retry-exhaustion bookkeeping);
* **Membership** — a :class:`~repro.cluster.membership.MembershipSchedule`
  lets workers join/leave between epochs (explicit events, seeded churn,
  dropout-driven eviction) with state-preserving repartitioning, and an
  optional :class:`~repro.cluster.membership.LoadBalancer` re-cuts
  partitions from measured per-rank walls (``docs/elasticity.md``).

The epoch loop, ledger booking (compute / PCIe / reduce+broadcast /
wait_straggler / retry phases), tracer spans, shard streaming hookup,
convergence-history recording and early stopping all live in
:meth:`ClusterRuntime.run`.

Bit-identity contract: every facade must produce bitwise-identical weights,
histories and ledger totals to the pre-refactor engines.  The operation
*order* here is therefore load-bearing — accumulation order, the float
association of the per-epoch time folds (:attr:`RuntimeProfile.group_net_retry`),
and the exact placement of RNG draws are all pinned by
``tests/data/runtime_goldens.json``.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Protocol, Sequence

import numpy as np

from ..core.aggregation import AggregationStats, Aggregator
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..obs import resolve_tracer
from ..shards import ShardingConfig
from ..solvers.base import EpochEvent
from .comm import SimCommunicator
from .faults import (
    DEFAULT_RETRY,
    FaultInjector,
    FaultReport,
    RetryPolicy,
    WorkerEpochFaults,
)

__all__ = [
    "ClusterRuntime",
    "RuntimeProfile",
    "RuntimeResult",
    "FaultPolicy",
    "LocalSolver",
    "CommBackend",
    "InProcessBackend",
    "PipeProcessBackend",
    "WorkerUpdate",
    "RoundOutcome",
    "PermutationStream",
    "plan_partitions",
    "scatter_weights",
    "shared_sizing",
]

_BENIGN = WorkerEpochFaults()


# ---------------------------------------------------------------------------
# shared delivery helpers (also used by the async parameter server)
# ---------------------------------------------------------------------------
class PermutationStream:
    """Chained fresh random permutations over ``n`` local coordinates.

    Partial rounds / batches still visit every coordinate exactly once per
    full pass (epoch-equivalent).  The generator is shared with the caller
    (local kernels may draw from the same stream), so the draw order here is
    part of the trajectory contract.
    """

    def __init__(self, n: int, rng: np.random.Generator) -> None:
        self.n = int(n)
        self.rng = rng
        self._perm: np.ndarray | None = None
        self._cursor = 0

    def take(self, count: int) -> np.ndarray:
        out: list[np.ndarray] = []
        remaining = count
        while remaining > 0:
            if self._perm is None or self._cursor >= self.n:
                self._perm = self.rng.permutation(self.n)
                self._cursor = 0
            take = min(remaining, self.n - self._cursor)
            out.append(self._perm[self._cursor : self._cursor + take])
            self._cursor += take
            remaining -= take
        return np.concatenate(out) if len(out) > 1 else out[0]


def scatter_weights(
    pairs: Iterable[tuple[np.ndarray, np.ndarray]], n_coords: int
) -> np.ndarray:
    """Assemble a global float64 vector from per-worker (coords, values)."""
    out = np.zeros(n_coords, dtype=np.float64)
    for coords, values in pairs:
        out[coords] = values.astype(np.float64)
    return out


def plan_partitions(
    n_coords: int,
    n_workers: int,
    seed: int,
    partitioner: Callable[[int, int, np.random.Generator], Sequence[np.ndarray]],
    shards: ShardingConfig | None,
    matrix_shape: tuple[int, int],
) -> tuple[list[np.ndarray], list[list[int]] | None]:
    """The Partitioner seam.

    Returns ``(parts, groups)``: the per-worker coordinate arrays and, for
    out-of-core runs, the contiguous shard groups they are aligned to
    (``None`` for in-memory runs).
    """
    if shards is not None:
        store = shards.store
        if store.n_major != n_coords or store.shape != matrix_shape:
            raise ValueError(
                f"shard set covers a {store.shape} matrix, "
                f"problem matrix is {matrix_shape}"
            )
        groups = store.partition(n_workers)
        return [store.coords_of(g) for g in groups], groups
    rng = np.random.default_rng(seed)
    return list(partitioner(n_coords, n_workers, rng)), None


def shared_sizing(formulation: str, problem, paper_scale) -> tuple[int, int, int]:
    """``(shared_len, comm_bytes, paper_shared_len)`` for a problem.

    The shared vector is the residual (primal, length N) or the dual shared
    vector (length M); communication is priced at paper scale when a
    :class:`~repro.core.scale.PaperScale` is installed (float32 on the wire).
    """
    shared_len = problem.n if formulation == "primal" else problem.m
    paper_shared = (
        paper_scale.shared_len(formulation) if paper_scale is not None else shared_len
    )
    return shared_len, 4 * paper_shared, paper_shared


# ---------------------------------------------------------------------------
# round data carriers
# ---------------------------------------------------------------------------
@dataclass
class WorkerUpdate:
    """One worker's contribution to a round: deltas plus billing metadata."""

    rank: int
    #: float64 shared-vector delta (what Reduce sums)
    dshared: np.ndarray
    #: float64 local-model delta (what the worker folds as ``gamma * dmodel``)
    dmodel: np.ndarray
    #: modelled fault-free compute seconds (simulated backends) or real
    #: elapsed seconds (process backends)
    compute_s: float = 0.0
    #: coordinate updates performed
    n_updates: int = 0
    #: ledger phase the compute time bills to
    component: str = "compute_host"


@dataclass
class RoundOutcome:
    """Everything one synchronous round produced, before aggregation."""

    delivered: list[WorkerUpdate] = field(default_factory=list)
    #: Algorithm 4's worker-side scalars, summed in delivery order
    model_dot: float = 0.0
    dmodel_norm_sq: float = 0.0
    dmodel_dot_y: float = 0.0
    #: max over workers of fault-free compute (what the ledger bills)
    fault_free_compute_s: float = 0.0
    #: max over workers including straggler multipliers
    max_compute_s: float = 0.0
    #: max over workers including exposed shard streaming
    max_wall_s: float = 0.0
    #: modelled retry/backoff overhead of transient transfer failures
    retry_s: float = 0.0
    compute_component: str = "compute_host"
    any_computed: bool = False
    n_updates: int = 0
    #: per-rank wall seconds this round (modelled or real) — the measurement
    #: the :class:`~repro.cluster.membership.LoadBalancer` rebalances from
    worker_wall: dict[int, float] = field(default_factory=dict)
    #: asynchronous backends report arrivals here (they keep no delivered
    #: list — updates were already applied at push time)
    n_arrived: int = 0


# ---------------------------------------------------------------------------
# FaultPolicy seam
# ---------------------------------------------------------------------------
@dataclass
class FaultPolicy:
    """Degraded-mode semantics around a (possibly absent) fault injector.

    ``stale_buffering`` — a delayed update is buffered and joins the *next*
    aggregation round (the simulated SCD engine); when ``False`` stale
    updates are simply lost (SDCA keeps no stale buffer; real processes have
    no next-round buffer either).  ``count_retry_exhausted`` preserves each
    engine's historical report bookkeeping: only the stale-buffering engine
    itemizes retry-exhausted losses separately.
    """

    injector: FaultInjector | None = None
    stale_buffering: bool = True
    count_retry_exhausted: bool = True
    retry: RetryPolicy = DEFAULT_RETRY

    def open_report(self) -> FaultReport | None:
        return FaultReport() if self.injector is not None else None

    def plan(self, epoch: int, n_workers: int):
        if self.injector is None:
            return None
        return self.injector.plan_epoch(epoch, n_workers)

    def verdict(self, wf: WorkerEpochFaults) -> tuple[str, bool]:
        """``("deliver" | "stale" | "lost", retry_exhausted)`` for one worker."""
        exhausted = self.retry.exhausted(wf.send_failures)
        if self.stale_buffering:
            if wf.drop_update or exhausted:
                return "lost", exhausted
            if wf.stale_update:
                return "stale", exhausted
            return "deliver", exhausted
        if wf.drop_update or wf.stale_update or exhausted:
            return "lost", exhausted
        return "deliver", exhausted


# ---------------------------------------------------------------------------
# LocalSolver seam
# ---------------------------------------------------------------------------
class LocalSolver(Protocol):
    """What one worker does between barriers, for the in-process backend.

    Implementations wrap the existing kernel machinery:
    ``core.distributed._ScdWorkerPool`` binds :class:`KernelFactory` kernels
    (CPU sequential or planned TPA-SCD GPU engines);
    ``core.distributed_svm._SvmWorkerPool`` runs the inline clipped-SDCA
    step.  All methods are rank-addressed; the pool owns the worker state.
    """

    n_workers: int

    def bind(self, problem, tracer) -> None:
        """Partition the problem and bind local data (shards: assemble)."""

    def local_round(self, rank: int, shared: np.ndarray) -> WorkerUpdate:
        """Run one local round against a snapshot of the shared vector."""

    def delivery_stats(self, rank: int, upd: WorkerUpdate) -> tuple[float, float, float]:
        """Algorithm 4 worker scalars ``(<w, dw>, ||dw||^2, <dw, y_k>)``."""

    def fold(self, rank: int, gamma: float, upd: WorkerUpdate) -> None:
        """Fold a delivered update into local state with the round's gamma."""

    def discard(self, rank: int, upd: WorkerUpdate) -> None:
        """A lost update: restore local state consistent with the broadcast."""

    def streamer(self, rank: int):
        """The worker's shard streamer, or ``None`` for in-memory data."""

    def gap_objective(self, problem) -> tuple[float, float]:
        """Offline (gap, objective) of the assembled global model."""

    def global_model(self, problem, shared: np.ndarray) -> np.ndarray:
        """The assembled global model vector in the engine's formulation.

        Consulted only when an ``on_epoch`` publish callback is installed —
        never on the plain training path, so facades without serving pay
        nothing.
        """

    def close(self) -> None:
        """Release out-of-core resources."""


# ---------------------------------------------------------------------------
# CommBackend seam
# ---------------------------------------------------------------------------
class CommBackend(Protocol):
    """One synchronous round's execution + communication substrate."""

    #: True when the backend prices time with the performance models
    #: (sim_time = modelled seconds); False when epochs run on real
    #: wall-clock (sim_time = elapsed seconds, ledger bills real compute)
    models_time: bool
    n_workers: int

    def install(self, tracer) -> None: ...

    def open(self, problem, tracer) -> None: ...

    def run_round(
        self, epoch, shared, plan, report, policy, ledger, comm_bytes, needs_stats
    ) -> RoundOutcome: ...

    def reduce(self, parts: list[np.ndarray], like: np.ndarray) -> np.ndarray: ...

    def finish_round(self, gamma: float, outcome: RoundOutcome) -> None: ...

    def network_seconds(self, nbytes: int, n_scalars: int) -> float: ...

    def gap_objective(self, problem) -> tuple[float, float]: ...

    def global_model(self, problem, shared: np.ndarray) -> np.ndarray: ...

    def close(self) -> None: ...


class InProcessBackend:
    """Workers execute in-process; communication time is *modelled*.

    Local solves are delegated to a :class:`LocalSolver` pool; Reduce,
    Broadcast, the adaptive rule's scalars and transient-failure retries are
    priced by a :class:`~repro.cluster.comm.SimCommunicator`.  Stale-update
    buffers (one slot per rank) live here: a buffered update is delivered at
    the *start* of the next round, before that round's dropout check.
    """

    models_time = True

    def __init__(self, comm: SimCommunicator, solver: LocalSolver) -> None:
        self.comm = comm
        self.solver = solver
        self._stale: list[WorkerUpdate | None] = []

    @property
    def n_workers(self) -> int:
        return self.solver.n_workers

    def install(self, tracer) -> None:
        self.comm.metrics = tracer.metrics if tracer.enabled else None

    def open(self, problem, tracer) -> None:
        self.solver.bind(problem, tracer)
        self._stale = [None] * self.solver.n_workers

    def _deliver(self, out: RoundOutcome, upd: WorkerUpdate, needs_stats: bool) -> None:
        out.delivered.append(upd)
        if needs_stats:
            md, dn, dy = self.solver.delivery_stats(upd.rank, upd)
            out.model_dot += md
            out.dmodel_norm_sq += dn
            out.dmodel_dot_y += dy

    def run_round(
        self, epoch, shared, plan, report, policy, ledger, comm_bytes, needs_stats
    ) -> RoundOutcome:
        solver, comm = self.solver, self.comm
        out = RoundOutcome()
        for rank in range(self.n_workers):
            wf = plan[rank] if plan is not None else _BENIGN
            buffered = self._stale[rank]
            if buffered is not None:
                # last round's delayed update arrives now and is folded with
                # this round's gamma
                self._stale[rank] = None
                self._deliver(out, buffered, needs_stats)
            if wf.dropout:
                report.dropouts += 1
                continue
            upd = solver.local_round(rank, shared)
            out.fault_free_compute_s = max(out.fault_free_compute_s, upd.compute_s)
            worker_wall = upd.compute_s * wf.straggler_multiplier
            out.max_compute_s = max(out.max_compute_s, worker_wall)
            streamer = solver.streamer(rank)
            if streamer is not None:
                # stream the shard group once per local round; with prefetch
                # only the excess over compute extends this worker's wall clock
                worker_wall += streamer.stream_epoch(ledger, compute_s=worker_wall)
            out.max_wall_s = max(out.max_wall_s, worker_wall)
            out.worker_wall[rank] = worker_wall
            out.compute_component = upd.component
            out.n_updates += upd.n_updates
            out.any_computed = True
            if report is not None:
                if wf.straggler_multiplier > 1.0:
                    report.stragglers += 1
                report.transient_failures += wf.send_failures + wf.recv_failures
            out.retry_s += comm.retry_seconds(comm_bytes, wf.send_failures)
            out.retry_s += comm.retry_seconds(comm_bytes, wf.recv_failures)
            verdict, exhausted = policy.verdict(wf)
            if verdict == "lost":
                # the update never reached the master; the worker restores
                # state consistent with the broadcast shared vector
                report.dropped_updates += 1
                if exhausted and policy.count_retry_exhausted:
                    report.retry_exhausted += 1
                solver.discard(rank, upd)
                continue
            if verdict == "stale":
                self._stale[rank] = upd
                report.stale_updates += 1
                continue
            self._deliver(out, upd, needs_stats)
        return out

    def resize(self, problem, tracer, n_workers: int, capacities=None) -> int:
        """Elastic membership: repartition the pool to ``n_workers`` ranks.

        Delegates the state-preserving repartition to the local-solver pool
        (which must implement ``repartition``), resizes the communicator so
        collective pricing tracks the new pool, and invalidates the stale
        buffers — a buffered update's delta indices refer to the *old*
        partition and cannot be folded after the reshuffle.  Returns the
        number of buffered updates dropped.
        """
        repartition = getattr(self.solver, "repartition", None)
        if repartition is None:
            raise ValueError(
                f"{type(self.solver).__name__} does not implement "
                "repartition(); it cannot run under elastic membership"
            )
        dropped = sum(1 for upd in self._stale if upd is not None)
        repartition(problem, tracer, n_workers, capacities)
        self.comm.n_workers = int(n_workers)
        self._stale = [None] * int(n_workers)
        return dropped

    def partition_sizes(self) -> list[int]:
        return self.solver.partition_sizes()

    def reduce(self, parts: list[np.ndarray], like: np.ndarray) -> np.ndarray:
        return self.comm.reduce_sum_partial(parts, like=like)

    def finish_round(self, gamma: float, outcome: RoundOutcome) -> None:
        for upd in outcome.delivered:
            self.solver.fold(upd.rank, gamma, upd)

    def network_seconds(self, nbytes: int, n_scalars: int) -> float:
        return (
            self.comm.reduce_seconds(nbytes)
            + self.comm.bcast_seconds(nbytes)
            + self.comm.scalars_seconds(n_scalars)
        )

    def gap_objective(self, problem) -> tuple[float, float]:
        return self.solver.gap_objective(problem)

    def global_model(self, problem, shared: np.ndarray) -> np.ndarray:
        return self.solver.global_model(problem, shared)

    def close(self) -> None:
        self.solver.close()


class PipeProcessBackend:
    """Real ``multiprocessing`` workers over pipes; time is real wall-clock.

    The parent broadcasts the shared vector, children run one local epoch and
    reply ``(dshared, dweights, stats, elapsed)``; after aggregation the
    parent sends gamma back (0 for a lost update, so the child reverts and
    stays consistent with the broadcast).  Dropout faults skip the send
    entirely — the child's permutation stream does not advance, matching the
    simulated engine's semantics.  Time-only faults (stragglers, retry
    latency) have no meaning against real wall-clock and are ignored by the
    caller's :class:`FaultPolicy` configuration (``models_time = False``).
    """

    models_time = False

    def __init__(
        self,
        *,
        ctx,
        worker_target: Callable,
        payloads: list[dict],
        parts: list[np.ndarray],
        n_model_coords: int,
        gap_fn: Callable[[np.ndarray], tuple[float, float]],
    ) -> None:
        self.ctx = ctx
        self.worker_target = worker_target
        self.payloads = payloads
        self.parts = parts
        self.n_model_coords = n_model_coords
        self.gap_fn = gap_fn
        self.n_workers = len(payloads)
        self.weights_by_rank = [np.zeros(p.shape[0]) for p in parts]
        self.pipes: list[Any] = []
        self.procs: list[Any] = []
        self._active: list[int] = []
        self._dweights: dict[int, np.ndarray] = {}

    def install(self, tracer) -> None:
        pass

    def open(self, problem, tracer) -> None:
        for payload in self.payloads:
            parent_conn, child_conn = self.ctx.Pipe()
            proc = self.ctx.Process(
                target=self.worker_target, args=(child_conn, payload), daemon=True
            )
            proc.start()
            child_conn.close()
            self.pipes.append(parent_conn)
            self.procs.append(proc)

    def run_round(
        self, epoch, shared, plan, report, policy, ledger, comm_bytes, needs_stats
    ) -> RoundOutcome:
        out = RoundOutcome()
        active = [
            rank
            for rank in range(self.n_workers)
            if plan is None or not plan[rank].dropout
        ]
        if report is not None:
            report.dropouts += self.n_workers - len(active)
        for rank in active:
            self.pipes[rank].send(("epoch", shared))
        self._active = active
        self._dweights = {}
        for rank in active:
            dshared, dweights, stats, elapsed = self.pipes[rank].recv()
            wf = plan[rank] if plan is not None else _BENIGN
            out.fault_free_compute_s = max(out.fault_free_compute_s, elapsed)
            out.n_updates += self.parts[rank].shape[0]
            out.worker_wall[rank] = elapsed
            self._dweights[rank] = dweights
            verdict, _ = policy.verdict(wf)
            if verdict == "lost":
                if report is not None:
                    report.dropped_updates += 1
                continue
            out.delivered.append(
                WorkerUpdate(
                    rank=rank,
                    dshared=dshared,
                    dmodel=dweights,
                    compute_s=elapsed,
                    n_updates=self.parts[rank].shape[0],
                )
            )
            out.model_dot += stats[0]
            out.dmodel_norm_sq += stats[1]
            out.dmodel_dot_y += stats[2]
        out.any_computed = bool(active)
        return out

    def reduce(self, parts: list[np.ndarray], like: np.ndarray) -> np.ndarray:
        # master-side accumulation over whatever arrived, in rank order
        out = np.zeros_like(like)
        for p in parts:
            out += p
        return out

    def finish_round(self, gamma: float, outcome: RoundOutcome) -> None:
        arrived = {upd.rank for upd in outcome.delivered}
        for rank in self._active:
            # a lost update folds gamma = 0 so the child reverts and stays
            # consistent with the broadcast shared vector
            g = gamma if rank in arrived else 0.0
            self.pipes[rank].send(g)
            self.weights_by_rank[rank] = (
                self.weights_by_rank[rank] + g * self._dweights[rank]
            )
        self._active = []
        self._dweights = {}

    def network_seconds(self, nbytes: int, n_scalars: int) -> float:
        return 0.0  # real pipes: network time is inside the measured elapsed

    def global_weights(self) -> np.ndarray:
        return scatter_weights(
            zip(self.parts, self.weights_by_rank), self.n_model_coords
        )

    def gap_objective(self, problem) -> tuple[float, float]:
        return self.gap_fn(self.global_weights())

    def global_model(self, problem, shared: np.ndarray) -> np.ndarray:
        return self.global_weights()

    def close(self) -> None:
        for conn in self.pipes:
            try:
                conn.send(("stop", None))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung child guard
                proc.terminate()
        self.pipes = []
        self.procs = []


# ---------------------------------------------------------------------------
# the runtime
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeProfile:
    """Per-facade surface configuration (spans, history extras, time folds).

    These knobs exist to keep each facade's observable surface — span names,
    history ``extras`` and the exact float association of the per-epoch time
    accumulation — bitwise identical to its pre-runtime implementation.
    """

    root_span: str = "distributed.train"
    bind_span: bool = True
    local_compute_span: bool = True
    aggregate_span: bool = True
    #: "gamma+survivors" | "gamma" | "none"
    extras: str = "gamma+survivors"
    #: True  -> epoch_time += (net_s + retry_s)   (ridge engines)
    #: False -> epoch_time = (epoch_time + net_s) + retry_s  (SVM engine);
    #: the two differ by float association, which the goldens pin
    group_net_retry: bool = True


@dataclass
class RuntimeResult:
    """What one :meth:`ClusterRuntime.run` produced (facades shape results)."""

    shared: np.ndarray
    history: ConvergenceHistory
    ledger: Any
    gammas: list[float]
    report: FaultReport | None
    tracer: Any
    #: applied membership/rebalance steps (empty for static pools)
    membership_log: list = field(default_factory=list)


class ClusterRuntime:
    """One synchronous-epoch training loop over pluggable seams.

    Each epoch: (1) ``backend.run_round`` executes the local solves under the
    fault plan, collecting the delivered :class:`WorkerUpdate`\\ s and billing
    metadata; (2) the delivered shared-vector deltas are Reduced and the
    aggregator's gamma applied to the shared vector; (3) ``finish_round``
    folds ``gamma * dmodel`` into the surviving workers (Broadcast);
    (4) modelled backends book compute / straggler wait / PCIe / network /
    retry phases into the ledger and advance the simulated clock; (5) at
    monitored epochs the assembled global model's duality gap is recorded.
    """

    def __init__(
        self,
        *,
        backend: CommBackend,
        aggregator: Aggregator,
        formulation: str,
        faults: FaultPolicy | None = None,
        profile: RuntimeProfile | None = None,
        name: Callable[[], str] | str = "cluster",
        pcie=None,
        host_model=None,
        membership=None,
        rebalance=None,
    ) -> None:
        self.backend = backend
        self.aggregator = aggregator
        self.formulation = formulation
        self.faults = faults or FaultPolicy()
        self.profile = profile or RuntimeProfile()
        self._name = name if callable(name) else (lambda: name)
        self.pcie = pcie
        self.host_model = host_model
        #: optional :class:`~repro.cluster.membership.MembershipSchedule`
        self.membership = membership
        #: optional :class:`~repro.cluster.membership.LoadBalancer`
        self.rebalance = rebalance
        if (membership is not None or rebalance is not None) and not hasattr(
            backend, "resize"
        ):
            raise ValueError(
                f"{type(backend).__name__} does not support elastic "
                "membership: its workers are bound at open() and cannot be "
                "repartitioned mid-run; run elastic schedules on the "
                "in-process simulated backends"
            )

    def _membership_step(
        self, epoch, backend, problem, tracer, consec_down, log
    ) -> None:
        """Apply membership/rebalance policy at one epoch boundary.

        Joins/leaves come from the schedule; evictions retire ranks the
        fault injector kept offline ``evict_after`` consecutive epochs;
        a :class:`LoadBalancer` repartitions load-proportionally from
        measured per-rank wall time.  Any change routes through
        ``backend.resize`` — the global model is preserved across the
        reshuffle, and the survivor-rescaled aggregation (gamma* over
        whatever pool exists *this* epoch) needs no special casing.
        """
        from .membership import MembershipRecord

        k = backend.n_workers
        joins = leaves = evictions = 0
        schedule = self.membership
        if schedule is not None:
            joins, leaves = schedule.delta_at(epoch)
            if schedule.evict_after is not None:
                evictions = sum(
                    1 for n in consec_down.values() if n >= schedule.evict_after
                )
            new_k = schedule.clamp(k + joins - leaves - evictions)
        else:
            new_k = k
        # a same-size pool still reshuffles when its composition changed
        # (evictions always take effect; a leave paired with a join swaps a
        # rank); clamp-denied changes do not
        changed = new_k != k or evictions > 0 or (joins > 0 and leaves > 0)
        balancer = self.rebalance
        rebalanced = balancer is not None and (changed or balancer.due(epoch))
        if not changed and not rebalanced:
            return
        capacities = balancer.capacities(new_k) if balancer is not None else None
        span_name = (
            "cluster.membership.apply" if changed else "cluster.rebalance.apply"
        )
        with tracer.span(
            span_name, category="cluster", epoch=epoch,
            k_before=k, k_after=new_k,
        ):
            dropped = backend.resize(problem, tracer, new_k, capacities)
        consec_down.clear()
        if changed:
            tracer.count("cluster.membership.changes")
            tracer.count("cluster.membership.joins", joins)
            tracer.count("cluster.membership.leaves", leaves + evictions)
            tracer.observe("cluster.membership.size", float(new_k))
        if rebalanced:
            tracer.count("cluster.rebalance.count")
        if dropped:
            tracer.count("cluster.rebalance.dropped_stale", dropped)
        log.append(
            MembershipRecord(
                epoch=epoch, k_before=k, k_after=new_k, joins=joins,
                leaves=leaves, evictions=evictions, rebalanced=bool(rebalanced),
                dropped_stale=dropped,
                capacities=list(capacities) if capacities is not None else None,
            )
        )

    def run(
        self,
        problem,
        n_epochs: int,
        *,
        shared_len: int,
        comm_bytes: int = 0,
        paper_shared: int = 0,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
        on_epoch=None,
    ) -> RuntimeResult:
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        tracer = resolve_tracer(tracer)
        backend = self.backend
        profile = self.profile
        policy = self.faults
        aggregator = self.aggregator
        needs_stats = getattr(aggregator, "needs_stats", True)
        backend.install(tracer)

        shared = np.zeros(shared_len, dtype=np.float64)
        gammas: list[float] = []
        report = policy.open_report()
        asynchronous = bool(getattr(backend, "asynchronous", False))
        elastic = self.membership is not None or self.rebalance is not None
        membership_log: list = []
        consec_down: dict[int, int] = {}
        root = tracer.span(
            profile.root_span, category="driver", solver=self._name(),
            n_workers=backend.n_workers, n_epochs=n_epochs,
        )
        with root:
            try:
                bind_cm = (
                    tracer.span("bind", category="driver")
                    if profile.bind_span
                    else nullcontext()
                )
                with bind_cm:
                    backend.open(problem, tracer)
                history = ConvergenceHistory(label=self._name())
                ledger = tracer.open_ledger()
                t0 = time.perf_counter()
                with tracer.span("gap_eval", category="monitor", epoch=0):
                    gap, obj = backend.gap_objective(problem)
                history.append(
                    ConvergenceRecord(
                        epoch=0, gap=gap, objective=obj, sim_time=0.0,
                        wall_time=0.0, updates=0,
                    )
                )
                sim_time = 0.0
                updates = 0
                for epoch in range(1, n_epochs + 1):
                    if elastic:
                        self._membership_step(
                            epoch, backend, problem, tracer, consec_down,
                            membership_log,
                        )
                    with tracer.span("epoch", category="driver", epoch=epoch):
                        plan = policy.plan(epoch, backend.n_workers)
                        if report is not None:
                            report.epochs += 1
                        lc_cm = (
                            tracer.span(
                                "local_compute", category="cluster", epoch=epoch
                            )
                            if profile.local_compute_span
                            else nullcontext()
                        )
                        with lc_cm:
                            out = backend.run_round(
                                epoch, shared, plan, report, policy, ledger,
                                comm_bytes, needs_stats,
                            )
                        updates += out.n_updates
                        n_arrived = (
                            out.n_arrived if asynchronous else len(out.delivered)
                        )
                        if report is not None:
                            report.survivor_counts.append(n_arrived)
                        if asynchronous:
                            # the backend already applied every push to the
                            # shared vector, booked its per-cycle ledger
                            # phases and advanced its own simulated clock —
                            # there is no aggregation round and no gamma
                            gamma = 1.0
                            sim_time = backend.sim_seconds
                        else:
                            agg_cm = (
                                tracer.span(
                                    "aggregate", category="cluster",
                                    epoch=epoch, survivors=n_arrived,
                                )
                                if profile.aggregate_span
                                else nullcontext()
                            )
                            with agg_cm:
                                if n_arrived:
                                    dshared = backend.reduce(
                                        [u.dshared for u in out.delivered], shared
                                    )
                                    if needs_stats:
                                        if self.formulation == "primal":
                                            resid_dot = float(
                                                (shared - problem.y.astype(np.float64))
                                                @ dshared
                                            )
                                        else:
                                            resid_dot = float(shared @ dshared)
                                        dshared_norm_sq = float(dshared @ dshared)
                                    else:
                                        resid_dot = 0.0
                                        dshared_norm_sq = 0.0
                                    gamma = aggregator.gamma(
                                        AggregationStats(
                                            formulation=self.formulation,
                                            n=problem.n,
                                            lam=problem.lam,
                                            n_workers=n_arrived,
                                            resid_dot_dshared=resid_dot,
                                            dshared_norm_sq=dshared_norm_sq,
                                            model_dot_dmodel=out.model_dot,
                                            dmodel_norm_sq=out.dmodel_norm_sq,
                                            dmodel_dot_y=out.dmodel_dot_y,
                                        )
                                    )
                                    shared += gamma * dshared
                                else:
                                    # nothing arrived (every update lost or every
                                    # worker out): the shared vector stands and
                                    # training proceeds next epoch
                                    gamma = 0.0
                                backend.finish_round(gamma, out)
                            gammas.append(gamma)

                            # -- time accounting ----------------------------
                            ledger.add(out.compute_component, out.fault_free_compute_s)
                            if backend.models_time:
                                epoch_time = max(out.max_compute_s, out.max_wall_s)
                                straggler_wait = (
                                    out.max_compute_s - out.fault_free_compute_s
                                )
                                if straggler_wait > 0.0:
                                    ledger.add("wait_straggler", straggler_wait)
                                    tracer.count(
                                        "dist.straggler_wait_s", straggler_wait
                                    )
                                if self.pcie is not None and out.any_computed:
                                    pcie_s = 2.0 * self.pcie.transfer_seconds(
                                        4 * paper_shared
                                    )
                                    host_s = self.host_model.epoch_seconds(paper_shared)
                                    ledger.add("comm_pcie", pcie_s)
                                    ledger.add("compute_host", host_s)
                                    epoch_time += pcie_s + host_s
                                net_s = backend.network_seconds(
                                    comm_bytes, aggregator.n_extra_scalars
                                )
                                ledger.add("comm_network", net_s)
                                if out.retry_s > 0.0:
                                    ledger.add("comm_retry", out.retry_s)
                                if profile.group_net_retry:
                                    epoch_time += net_s + out.retry_s
                                else:
                                    epoch_time = epoch_time + net_s + out.retry_s
                                sim_time += epoch_time
                        if elastic:
                            if plan is not None:
                                for rank, wf in enumerate(plan):
                                    if wf.dropout:
                                        consec_down[rank] = (
                                            consec_down.get(rank, 0) + 1
                                        )
                                    else:
                                        consec_down[rank] = 0
                            if self.rebalance is not None and out.worker_wall:
                                self.rebalance.record(
                                    backend.partition_sizes(), out.worker_wall
                                )
                    tracer.count("dist.epochs")
                    tracer.observe("dist.gamma", gamma)
                    tracer.observe("dist.survivors", n_arrived)
                    if epoch % monitor_every == 0 or epoch == n_epochs:
                        with tracer.span("gap_eval", category="monitor", epoch=epoch):
                            gap, obj = backend.gap_objective(problem)
                        record_kwargs: dict = {}
                        if profile.extras == "gamma+survivors":
                            extras = {"gamma": gamma}
                            if policy.injector is not None:
                                extras["survivors"] = float(n_arrived)
                            record_kwargs["extras"] = extras
                        elif profile.extras == "gamma":
                            record_kwargs["extras"] = {"gamma": gamma}
                        history.append(
                            ConvergenceRecord(
                                epoch=epoch,
                                gap=gap,
                                objective=obj,
                                sim_time=(
                                    sim_time
                                    if backend.models_time
                                    else time.perf_counter() - t0
                                ),
                                wall_time=time.perf_counter() - t0,
                                updates=updates,
                                **record_kwargs,
                            )
                        )
                        if on_epoch is not None:
                            # assembled only when a publisher listens — the
                            # plain training path stays byte-for-byte what the
                            # runtime goldens pin
                            on_epoch(
                                EpochEvent(
                                    epoch=epoch,
                                    weights=backend.global_model(problem, shared),
                                    formulation=self.formulation,
                                    sim_time=(
                                        sim_time
                                        if backend.models_time
                                        else time.perf_counter() - t0
                                    ),
                                    gap=gap,
                                    solver=self._name(),
                                )
                            )
                        if target_gap is not None and gap <= target_gap:
                            break
            finally:
                backend.close()
        if tracer.enabled and report is not None:
            report.record_to(tracer.metrics)
        return RuntimeResult(
            shared=shared, history=history, ledger=ledger, gammas=gammas,
            report=report, tracer=tracer, membership_log=membership_log,
        )
