"""Correlation-aware coordinate partitioning (Section IV's closing remark).

The paper: "The scaling behavior strongly depends on the nature of the
underlying dataset. ... If there exists some additional structure (for
instance, a large number of one-hot encoded categorical variables) then one
can partition the coordinates in an intelligent way to achieve a faster
convergence and thus better scaling [22]."

This module implements that intelligent partitioning: coordinates that
co-occur (features sharing examples, or examples sharing features) are
correlated, and the distributed per-epoch slow-down comes precisely from
correlated coordinates living on *different* workers updating against stale
state.  We build the coordinate co-occurrence graph, find its communities
(connected components, refined by greedy modularity via networkx when a
component is too large), and bin communities onto workers balancing
coordinate counts — so correlated coordinates stay together.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "cooccurrence_graph",
    "communities_of",
    "pack_communities",
    "correlation_aware_partition",
    "make_correlation_partitioner",
    "load_proportional_partition",
    "make_capacity_partitioner",
    "validate_capacities",
]


def validate_capacities(capacities, n_items: int) -> np.ndarray:
    """Normalize and sanity-check per-rank capacity shares.

    Heterogeneous clusters size each rank's shard by its measured capacity
    (coordinates per second).  Two degenerate inputs would silently produce
    empty shards downstream, so they are rejected here with pointed errors:
    a rank reporting zero (or negative) capacity, and more ranks than rows.
    """
    caps = np.asarray(capacities, dtype=np.float64)
    if caps.ndim != 1 or caps.shape[0] < 1:
        raise ValueError("capacities must be a non-empty 1-D sequence")
    dead = np.flatnonzero(~(caps > 0.0))
    if dead.size:
        raise ValueError(
            f"rank(s) {dead.tolist()} have zero or non-positive capacity: a "
            "rank that can do no work must leave the cluster (membership "
            "leave/eviction), not receive an empty shard"
        )
    if caps.shape[0] > n_items:
        raise ValueError(
            f"cannot cut {n_items} rows into {caps.shape[0]} load-"
            "proportional shards: more ranks than rows always strands at "
            "least one rank with an empty shard — shrink the cluster or "
            "grow the dataset"
        )
    return caps


def load_proportional_partition(
    n_items: int, capacities, rng: np.random.Generator
) -> list[np.ndarray]:
    """Random partition sized by per-rank capacity (heterogeneous pools).

    The synchronous epoch ends when the *slowest* rank finishes, so a mixed
    GPU + CPU pool with equal shards idles the fast devices.  Sizing each
    rank's shard proportional to its measured capacity equalizes per-epoch
    wall time.  Degenerate capacities raise pointed errors (see
    :func:`validate_capacities`) instead of emitting empty shards.
    """
    from .partition import proportional_partition

    caps = validate_capacities(capacities, n_items)
    return proportional_partition(n_items, caps, rng)


def make_capacity_partitioner(capacities):
    """A ``(n_items, n_parts, rng)`` partitioner with fixed capacity shares.

    Feeds :func:`load_proportional_partition` through the standard
    partitioner seam of the distributed engines; ``n_parts`` must match the
    number of capacity entries.
    """
    caps = list(capacities)

    def partitioner(
        n_items: int, n_parts: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        if n_parts != len(caps):
            raise ValueError(
                f"capacity partitioner built for {len(caps)} ranks, "
                f"asked to split for {n_parts}"
            )
        return load_proportional_partition(n_items, caps, rng)

    return partitioner


def cooccurrence_graph(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_coords: int,
    *,
    max_clique: int = 12,
) -> nx.Graph:
    """Build the co-occurrence graph over the *minor*-axis coordinates.

    For a CSC matrix, pass its arrays with ``n_coords = n_columns``?  No —
    this helper walks *major*-axis segments and connects the minor indices
    they contain.  To partition features (primal), pass the **CSR** arrays
    (each row's features co-occur); to partition examples (dual), pass the
    **CSC** arrays (each column's examples co-occur).

    Short segments contribute a full clique; longer ones contribute a ring,
    which keeps the construction O(nnz) while preserving connectivity (what
    community detection needs).
    """
    g = nx.Graph()
    g.add_nodes_from(range(n_coords))
    n_major = indptr.shape[0] - 1
    for j in range(n_major):
        seg = indices[indptr[j] : indptr[j + 1]]
        k = seg.shape[0]
        if k < 2:
            continue
        if k <= max_clique:
            pairs = [(int(seg[a]), int(seg[b])) for a in range(k) for b in range(a + 1, k)]
        else:
            nxt = np.roll(seg, -1)
            pairs = list(zip(seg.tolist(), nxt.tolist()))
        for u, v in pairs:
            if g.has_edge(u, v):
                g[u][v]["weight"] += 1
            else:
                g.add_edge(u, v, weight=1)
    return g


def communities_of(
    graph: nx.Graph, *, refine_above: int | None = None
) -> list[np.ndarray]:
    """Coordinate communities: connected components, optionally refined.

    Block-structured data (one-hot groups, topic clusters) typically yields
    many components directly.  A component larger than ``refine_above`` is
    split further with greedy modularity maximization.
    """
    out: list[np.ndarray] = []
    for comp in nx.connected_components(graph):
        comp = sorted(comp)
        if refine_above is not None and len(comp) > refine_above:
            sub = graph.subgraph(comp)
            for community in nx.algorithms.community.greedy_modularity_communities(
                sub, weight="weight"
            ):
                out.append(np.fromiter(sorted(community), dtype=np.int64))
        else:
            out.append(np.asarray(comp, dtype=np.int64))
    return out


def pack_communities(
    communities: Sequence[np.ndarray], n_parts: int, capacities=None
) -> list[np.ndarray]:
    """Greedy largest-first bin packing of communities onto workers.

    Balances coordinate counts; a community is never split, so correlated
    coordinates always share a worker.  With ``capacities`` (one positive
    share per part), the pack balances *normalized* load ``count/capacity``
    so faster ranks receive proportionally more coordinates — the
    correlation-aware analogue of :func:`load_proportional_partition`.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    total = sum(c.shape[0] for c in communities)
    if total < n_parts:
        raise ValueError(
            f"cannot fill {n_parts} parts from {total} coordinates: more "
            "ranks than coordinates always strands at least one rank with "
            "an empty shard — shrink the cluster or grow the dataset"
        )
    weights = np.ones(n_parts)
    if capacities is not None:
        caps = validate_capacities(capacities, total)
        if caps.shape[0] != n_parts:
            raise ValueError(
                f"got {caps.shape[0]} capacities for {n_parts} parts"
            )
        weights = caps / caps.sum()
    heap = [(0.0, k) for k in range(n_parts)]
    heapq.heapify(heap)
    bins: list[list[np.ndarray]] = [[] for _ in range(n_parts)]
    for comm in sorted(communities, key=len, reverse=True):
        load, k = heapq.heappop(heap)
        bins[k].append(comm)
        heapq.heappush(heap, (load + comm.shape[0] / weights[k], k))
    parts = [
        np.sort(np.concatenate(b)) if b else np.empty(0, dtype=np.int64)
        for b in bins
    ]
    # guarantee non-empty parts (the engine requires them): steal singles
    # from the largest part for any empty one
    for k, p in enumerate(parts):
        if p.shape[0] == 0:
            donor = int(np.argmax([q.shape[0] for q in parts]))
            parts[k] = parts[donor][-1:]
            parts[donor] = parts[donor][:-1]
    return parts


def correlation_aware_partition(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_coords: int,
    n_parts: int,
    *,
    refine_above: int | None = None,
) -> list[np.ndarray]:
    """End-to-end: graph -> communities -> balanced packing."""
    graph = cooccurrence_graph(indptr, indices, n_coords)
    comms = communities_of(graph, refine_above=refine_above)
    return pack_communities(comms, n_parts)


def make_correlation_partitioner(
    matrix, *, refine_above: int | None = None
) -> Callable[[int, int, np.random.Generator], list[np.ndarray]]:
    """Adapter producing the partitioner signature ``DistributedSCD`` wants.

    ``matrix`` must be compressed along the *opposite* axis of the
    coordinates being partitioned: pass the dataset's **CSR** to partition
    features (primal), or its **CSC** to partition examples (dual).
    """

    def partitioner(
        n_items: int, n_parts: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        if n_items != matrix.n_minor:
            raise ValueError(
                f"partitioner built for {matrix.n_minor} coordinates, "
                f"asked to split {n_items}"
            )
        return correlation_aware_partition(
            matrix.indptr,
            matrix.indices,
            n_items,
            n_parts,
            refine_above=refine_above,
        )

    return partitioner
