"""Correlation-aware coordinate partitioning (Section IV's closing remark).

The paper: "The scaling behavior strongly depends on the nature of the
underlying dataset. ... If there exists some additional structure (for
instance, a large number of one-hot encoded categorical variables) then one
can partition the coordinates in an intelligent way to achieve a faster
convergence and thus better scaling [22]."

This module implements that intelligent partitioning: coordinates that
co-occur (features sharing examples, or examples sharing features) are
correlated, and the distributed per-epoch slow-down comes precisely from
correlated coordinates living on *different* workers updating against stale
state.  We build the coordinate co-occurrence graph, find its communities
(connected components, refined by greedy modularity via networkx when a
component is too large), and bin communities onto workers balancing
coordinate counts — so correlated coordinates stay together.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "cooccurrence_graph",
    "communities_of",
    "pack_communities",
    "correlation_aware_partition",
    "make_correlation_partitioner",
]


def cooccurrence_graph(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_coords: int,
    *,
    max_clique: int = 12,
) -> nx.Graph:
    """Build the co-occurrence graph over the *minor*-axis coordinates.

    For a CSC matrix, pass its arrays with ``n_coords = n_columns``?  No —
    this helper walks *major*-axis segments and connects the minor indices
    they contain.  To partition features (primal), pass the **CSR** arrays
    (each row's features co-occur); to partition examples (dual), pass the
    **CSC** arrays (each column's examples co-occur).

    Short segments contribute a full clique; longer ones contribute a ring,
    which keeps the construction O(nnz) while preserving connectivity (what
    community detection needs).
    """
    g = nx.Graph()
    g.add_nodes_from(range(n_coords))
    n_major = indptr.shape[0] - 1
    for j in range(n_major):
        seg = indices[indptr[j] : indptr[j + 1]]
        k = seg.shape[0]
        if k < 2:
            continue
        if k <= max_clique:
            pairs = [(int(seg[a]), int(seg[b])) for a in range(k) for b in range(a + 1, k)]
        else:
            nxt = np.roll(seg, -1)
            pairs = list(zip(seg.tolist(), nxt.tolist()))
        for u, v in pairs:
            if g.has_edge(u, v):
                g[u][v]["weight"] += 1
            else:
                g.add_edge(u, v, weight=1)
    return g


def communities_of(
    graph: nx.Graph, *, refine_above: int | None = None
) -> list[np.ndarray]:
    """Coordinate communities: connected components, optionally refined.

    Block-structured data (one-hot groups, topic clusters) typically yields
    many components directly.  A component larger than ``refine_above`` is
    split further with greedy modularity maximization.
    """
    out: list[np.ndarray] = []
    for comp in nx.connected_components(graph):
        comp = sorted(comp)
        if refine_above is not None and len(comp) > refine_above:
            sub = graph.subgraph(comp)
            for community in nx.algorithms.community.greedy_modularity_communities(
                sub, weight="weight"
            ):
                out.append(np.fromiter(sorted(community), dtype=np.int64))
        else:
            out.append(np.asarray(comp, dtype=np.int64))
    return out


def pack_communities(
    communities: Sequence[np.ndarray], n_parts: int
) -> list[np.ndarray]:
    """Greedy largest-first bin packing of communities onto workers.

    Balances coordinate counts; a community is never split, so correlated
    coordinates always share a worker.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    total = sum(c.shape[0] for c in communities)
    if total < n_parts:
        raise ValueError(
            f"cannot fill {n_parts} parts from {total} coordinates"
        )
    heap = [(0, k) for k in range(n_parts)]
    heapq.heapify(heap)
    bins: list[list[np.ndarray]] = [[] for _ in range(n_parts)]
    for comm in sorted(communities, key=len, reverse=True):
        load, k = heapq.heappop(heap)
        bins[k].append(comm)
        heapq.heappush(heap, (load + comm.shape[0], k))
    parts = [
        np.sort(np.concatenate(b)) if b else np.empty(0, dtype=np.int64)
        for b in bins
    ]
    # guarantee non-empty parts (the engine requires them): steal singles
    # from the largest part for any empty one
    for k, p in enumerate(parts):
        if p.shape[0] == 0:
            donor = int(np.argmax([q.shape[0] for q in parts]))
            parts[k] = parts[donor][-1:]
            parts[donor] = parts[donor][:-1]
    return parts


def correlation_aware_partition(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_coords: int,
    n_parts: int,
    *,
    refine_above: int | None = None,
) -> list[np.ndarray]:
    """End-to-end: graph -> communities -> balanced packing."""
    graph = cooccurrence_graph(indptr, indices, n_coords)
    comms = communities_of(graph, refine_above=refine_above)
    return pack_communities(comms, n_parts)


def make_correlation_partitioner(
    matrix, *, refine_above: int | None = None
) -> Callable[[int, int, np.random.Generator], list[np.ndarray]]:
    """Adapter producing the partitioner signature ``DistributedSCD`` wants.

    ``matrix`` must be compressed along the *opposite* axis of the
    coordinates being partitioned: pass the dataset's **CSR** to partition
    features (primal), or its **CSC** to partition examples (dual).
    """

    def partitioner(
        n_items: int, n_parts: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        if n_items != matrix.n_minor:
            raise ValueError(
                f"partitioner built for {matrix.n_minor} coordinates, "
                f"asked to split {n_items}"
            )
        return correlation_aware_partition(
            matrix.indptr,
            matrix.indices,
            n_items,
            n_parts,
            refine_above=refine_above,
        )

    return partitioner
