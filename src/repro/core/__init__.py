"""The paper's contributions: TPA-SCD, distributed SCD, adaptive aggregation.

Also hosts the extension engines: the asynchronous parameter-server
alternative and the additional aggregation rules.
"""

from .aggregation import (
    AdaptiveAggregator,
    AddingAggregator,
    AggregationStats,
    Aggregator,
    AveragingAggregator,
    LineSearchAggregator,
    ScaledAggregator,
    make_aggregator,
)
from .async_ps import AsyncParameterServer
from .distributed import DistributedSCD, DistributedTrainResult, HostModel
from .distributed_svm import DistributedSvm, SvmTrainResult
from .glm_tpa import TpaElasticNet, TpaSvm
from .planner import ClusterSpec, ExecutionPlan, plan_execution
from .scale import CRITEO_PAPER, WEBSPAM_PAPER, PaperScale
from .tpa_scd import TpaScd, TpaScdKernelFactory, scaled_wave_size

__all__ = [
    "AdaptiveAggregator",
    "AddingAggregator",
    "AggregationStats",
    "Aggregator",
    "AveragingAggregator",
    "LineSearchAggregator",
    "ScaledAggregator",
    "make_aggregator",
    "AsyncParameterServer",
    "DistributedSCD",
    "DistributedSvm",
    "DistributedTrainResult",
    "SvmTrainResult",
    "HostModel",
    "PaperScale",
    "WEBSPAM_PAPER",
    "CRITEO_PAPER",
    "TpaScd",
    "TpaScdKernelFactory",
    "scaled_wave_size",
    "TpaElasticNet",
    "TpaSvm",
    "ClusterSpec",
    "ExecutionPlan",
    "plan_execution",
]
