"""Aggregation rules for distributed SCD (Section IV-B).

After every synchronous epoch the master combines the workers' shared-vector
and model updates as ``x(t+1) = x(t) + gamma_t * sum_k dx(t,k)``.  The rule
choosing ``gamma_t`` is pluggable:

* :class:`AveragingAggregator` — ``gamma = 1/K`` (Algorithm 3; CoCoA with
  sigma' = 1, the paper's baseline);
* :class:`AddingAggregator` — ``gamma = 1`` (CoCoA+-style adding);
* :class:`AdaptiveAggregator` — the paper's contribution: the exact
  minimizer of the aggregated objective, computed in a distributed manner
  from a handful of scalars (Algorithm 4 / Eq. 7).

Note on Eq. 7: as printed, the paper's primal expression reads
``-(<w, dw> + N lam <beta, dbeta>) / (||dw||^2 + N lam ||dbeta||^2)``.
Setting the derivative of ``P(beta + gamma dbeta)`` to zero actually gives
``<w - y, dw>`` in the numerator's first term (the residual, not the shared
vector).  The dual expression in the paper is consistent with the analogous
derivation, so we take the primal ``w - y`` form to be the intended one and
implement that; ``tests/test_aggregation.py`` verifies both gammas against
numerical minimization of the true objectives.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AggregationStats",
    "Aggregator",
    "AveragingAggregator",
    "AddingAggregator",
    "AdaptiveAggregator",
    "ScaledAggregator",
    "LineSearchAggregator",
    "make_aggregator",
]


@dataclass(frozen=True)
class AggregationStats:
    """Scalar statistics available to the master at aggregation time.

    Primal meaning (dual meaning in parentheses):

    * ``resid_dot_dshared`` — ``<w - y, dw>``  (``<wbar, dwbar>``)
    * ``dshared_norm_sq``  — ``||dw||^2``      (``||dwbar||^2``)
    * ``model_dot_dmodel`` — ``sum_k <beta_k, dbeta_k>`` (``sum_k <alpha_k, dalpha_k>``)
    * ``dmodel_norm_sq``   — ``sum_k ||dbeta_k||^2``     (``sum_k ||dalpha_k||^2``)
    * ``dmodel_dot_y``     — unused           (``sum_k <dalpha_k, y_k>``)

    The ``sum_k`` quantities are exactly the scalars Algorithm 4 ships over
    the network; the shared-vector quantities are computed master-side.
    """

    formulation: str
    n: int
    lam: float
    n_workers: int
    resid_dot_dshared: float
    dshared_norm_sq: float
    model_dot_dmodel: float
    dmodel_norm_sq: float
    dmodel_dot_y: float = 0.0


class Aggregator:
    """Base class: maps per-epoch statistics to an aggregation parameter."""

    name = "base"
    #: extra float64 scalars communicated per epoch beyond the shared vector
    n_extra_scalars = 0
    #: whether :meth:`gamma` reads the dot-product statistics; rules that
    #: don't (averaging / adding / scaled) let the cluster runtime skip
    #: computing them entirely, exactly as the pre-runtime SVM engine did
    needs_stats = False

    def gamma(self, stats: AggregationStats) -> float:
        raise NotImplementedError


class AveragingAggregator(Aggregator):
    """gamma = 1/K — averaging the workers' updates (Algorithm 3)."""

    name = "averaging"

    def gamma(self, stats: AggregationStats) -> float:
        return 1.0 / stats.n_workers


class AddingAggregator(Aggregator):
    """gamma = 1 — adding the workers' updates (CoCoA+ regime)."""

    name = "adding"

    def gamma(self, stats: AggregationStats) -> float:
        return 1.0


class AdaptiveAggregator(Aggregator):
    """Exact per-epoch optimization of gamma (the paper's Section IV-B).

    Primal:  gamma* = -(<w - y, dw> + N lam <beta, dbeta>)
                      / (||dw||^2 + N lam ||dbeta||^2)
    Dual:    gamma* = (<dalpha, y> - N <alpha, dalpha> - (1/lam) <wbar, dwbar>)
                      / ((1/lam) ||dwbar||^2 + N ||dalpha||^2)

    Falls back to averaging when the update is identically zero (denominator
    vanishes), which can only happen at exact convergence.
    """

    name = "adaptive"
    n_extra_scalars = 3
    needs_stats = True

    def gamma(self, stats: AggregationStats) -> float:
        n, lam = stats.n, stats.lam
        if stats.formulation == "primal":
            denom = stats.dshared_norm_sq + n * lam * stats.dmodel_norm_sq
            if denom <= 0.0:
                return 1.0 / stats.n_workers
            num = stats.resid_dot_dshared + n * lam * stats.model_dot_dmodel
            return -num / denom
        if stats.formulation == "dual":
            denom = stats.dshared_norm_sq / lam + n * stats.dmodel_norm_sq
            if denom <= 0.0:
                return 1.0 / stats.n_workers
            num = (
                stats.dmodel_dot_y
                - n * stats.model_dot_dmodel
                - stats.resid_dot_dshared / lam
            )
            return num / denom
        raise ValueError(f"unknown formulation {stats.formulation!r}")


class ScaledAggregator(Aggregator):
    """gamma = sigma'/K — CoCoA+'s sub-linearity parameter (Ma et al. [24]).

    ``sigma_prime = 1`` recovers averaging, ``sigma_prime = K`` recovers
    adding; values in between trade aggressiveness against stability.  The
    paper runs the sigma' = 1 special case; this rule exposes the knob for
    the aggregation ablation.
    """

    n_extra_scalars = 0

    def __init__(self, sigma_prime: float) -> None:
        if sigma_prime <= 0:
            raise ValueError("sigma_prime must be positive")
        self.sigma_prime = float(sigma_prime)
        self.name = f"scaled(sigma'={self.sigma_prime:g})"

    def gamma(self, stats: AggregationStats) -> float:
        return self.sigma_prime / stats.n_workers


class LineSearchAggregator(Aggregator):
    """Numerical line search over gamma (Trofimov & Genkin [21] style).

    Evaluates the aggregated objective restricted to the gamma line — which
    for ridge regression is an exact quadratic in gamma, reconstructible
    from the same scalar statistics the adaptive rule uses — and minimizes
    it by golden-section search over ``[0, gamma_max]``.

    For ridge the result coincides with :class:`AdaptiveAggregator`'s closed
    form (the tests assert this); the class exists to demonstrate that the
    paper's exact formula subsumes line-search approaches at strictly lower
    cost, and as the fallback strategy for objectives without a closed form.
    """

    name = "line-search"
    n_extra_scalars = 3
    needs_stats = True

    def __init__(self, gamma_max: float = 4.0, tol: float = 1e-10) -> None:
        if gamma_max <= 0:
            raise ValueError("gamma_max must be positive")
        self.gamma_max = float(gamma_max)
        self.tol = float(tol)

    def _objective_delta(self, stats: AggregationStats, gamma: float) -> float:
        """Change of the (primal-min / dual-max flipped) objective at gamma.

        Both restricted objectives are quadratics ``a/2 gamma^2 + b gamma``
        in terms of the aggregation statistics; constants cancel.
        """
        n, lam = stats.n, stats.lam
        if stats.formulation == "primal":
            a = (stats.dshared_norm_sq + n * lam * stats.dmodel_norm_sq) / n
            b = (stats.resid_dot_dshared + n * lam * stats.model_dot_dmodel) / n
        elif stats.formulation == "dual":
            # maximize D -> minimize -D
            a = n * stats.dmodel_norm_sq + stats.dshared_norm_sq / lam
            b = -(
                stats.dmodel_dot_y
                - n * stats.model_dot_dmodel
                - stats.resid_dot_dshared / lam
            )
        else:
            raise ValueError(f"unknown formulation {stats.formulation!r}")
        return 0.5 * a * gamma * gamma + b * gamma

    def gamma(self, stats: AggregationStats) -> float:
        if stats.dshared_norm_sq <= 0.0 and stats.dmodel_norm_sq <= 0.0:
            return 1.0 / stats.n_workers
        lo, hi = 0.0, self.gamma_max
        invphi = (5**0.5 - 1) / 2
        c = hi - invphi * (hi - lo)
        d = lo + invphi * (hi - lo)
        fc = self._objective_delta(stats, c)
        fd = self._objective_delta(stats, d)
        while hi - lo > self.tol:
            if fc < fd:
                hi, d, fd = d, c, fc
                c = hi - invphi * (hi - lo)
                fc = self._objective_delta(stats, c)
            else:
                lo, c, fc = c, d, fd
                d = lo + invphi * (hi - lo)
                fd = self._objective_delta(stats, d)
        return 0.5 * (lo + hi)


def make_aggregator(rule: str | Aggregator) -> Aggregator:
    """Resolve an aggregation rule by name or pass an instance through."""
    if isinstance(rule, Aggregator):
        return rule
    table = {
        "averaging": AveragingAggregator,
        "adding": AddingAggregator,
        "adaptive": AdaptiveAggregator,
        "line-search": LineSearchAggregator,
    }
    try:
        return table[rule]()
    except KeyError:
        raise ValueError(
            f"unknown aggregation rule {rule!r}; choose from {sorted(table)}"
        ) from None
