"""Deprecated shim: the async parameter server is now a CommBackend.

The asynchronous parameter-server alternative (Li et al. [6]) used to live
here as a standalone engine.  It has been folded into the unified cluster
runtime as :class:`~repro.cluster.async_backend.AsyncParamServerBackend` —
sync vs async is now a configuration flag::

    DistributedSCD(factory, "dual", n_workers=4, comm="async",
                   batch_fraction=1 / 16, comm_overlap=0.9)

or, through the one-call facade, ``repro.train(problem, "distributed",
comm="async")``.  The new path also supports a bounded-staleness pull
schedule (``staleness_bound``), fault injection (dropout/straggler) and
elastic membership — none of which the old engine had.

:class:`AsyncParameterServer` remains as a thin forwarder so existing call
sites keep working bit-for-bit (the ``async-dual-k3`` runtime golden pins
the trajectory through this shim).  It warns once per process, mirroring
the ``SvmTrainResult.__iter__`` tuple-unpack latch.
"""

from __future__ import annotations

import warnings
from typing import Callable

from ..perf.link import Link
from ..solvers.base import KernelFactory
from .distributed import DistributedSCD, DistributedTrainResult
from .scale import PaperScale

__all__ = ["AsyncParameterServer"]

#: once-per-process latch — a sweep constructing many engines must not
#: flood stderr (same pattern as ``SvmTrainResult.__iter__``)
_ASYNC_PS_WARNED = False


def _reset_async_ps_warning() -> None:
    """Re-arm the once-per-process deprecation latch (test helper)."""
    global _ASYNC_PS_WARNED
    _ASYNC_PS_WARNED = False


class AsyncParameterServer:
    """Deprecated forwarder to ``DistributedSCD(..., comm="async")``.

    Accepts the historical constructor signature and returns the same
    :class:`~repro.core.distributed.DistributedTrainResult` (with
    ``gammas=[]`` — the parameter server has no aggregation round).
    """

    def __init__(
        self,
        worker_factory: KernelFactory | Callable[[int], KernelFactory],
        formulation: str = "dual",
        *,
        n_workers: int = 4,
        batch_fraction: float = 1 / 16,
        comm_overlap: float = 0.9,
        network: Link | None = None,
        paper_scale: PaperScale | None = None,
        seed: int = 0,
    ) -> None:
        global _ASYNC_PS_WARNED
        if not _ASYNC_PS_WARNED:
            _ASYNC_PS_WARNED = True
            warnings.warn(
                "repro.core.async_ps.AsyncParameterServer is deprecated; "
                "use DistributedSCD(..., comm='async') or "
                "repro.train(problem, 'distributed', comm='async') instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self._engine = DistributedSCD(
            worker_factory,
            formulation,
            n_workers=n_workers,
            network=network,
            paper_scale=paper_scale,
            seed=seed,
            comm="async",
            batch_fraction=batch_fraction,
            comm_overlap=comm_overlap,
        )

    @property
    def name(self) -> str:
        return self._engine.name

    @property
    def formulation(self) -> str:
        return self._engine.formulation

    @property
    def n_workers(self) -> int:
        return self._engine.n_workers

    @property
    def batch_fraction(self) -> float:
        return self._engine.batch_fraction

    @property
    def comm_overlap(self) -> float:
        return self._engine.comm_overlap

    @property
    def seed(self) -> int:
        return self._engine.seed

    def solve(
        self,
        problem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
    ) -> DistributedTrainResult:
        return self._engine.solve(
            problem,
            n_epochs,
            monitor_every=monitor_every,
            target_gap=target_gap,
        )
