"""Asynchronous distributed SCD via a parameter server (Li et al. [6]).

The paper contrasts its synchronous scheme with the asynchronous
parameter-server alternative: "a method was proposed whereby worker nodes
perform stochastic updates of a local model and asynchronously communicate
their model updates to a parameter server".  This module implements that
alternative so the two distribution styles can be compared on equal footing:

* a **server** owns the shared vector;
* each worker repeatedly (1) computes a *batch* of coordinate updates
  against its last pulled snapshot, (2) pushes the shared-vector delta
  (applied atomically at the server — no update is lost), (3) pulls a fresh
  snapshot;
* workers are scheduled round-robin, so a worker's snapshot is stale by
  exactly ``K - 1`` other workers' batches when its next batch runs — the
  classic bounded-staleness regime.

Because there is no barrier, the modelled wall-clock per scheduling cycle is
``max(batch compute) + (1 - overlap) * comm`` — pushes/pulls overlap with
computation (``comm_overlap`` fraction), which is the mechanism by which
asynchronous designs hide communication that the synchronous Algorithm 3
must pay additively.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..cluster.comm import SimCommunicator
from ..cluster.partition import random_partition
from ..cluster.runtime import PermutationStream, scatter_weights
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.ridge import RidgeProblem, gap_and_objective
from ..perf.ledger import TimeLedger
from ..perf.link import Link
from ..solvers.base import KernelFactory
from .distributed import DistributedTrainResult
from .scale import PaperScale

__all__ = ["AsyncParameterServer"]


class AsyncParameterServer:
    """Asynchronous parameter-server training engine.

    Parameters mirror :class:`~repro.core.distributed.DistributedSCD` where
    they overlap; the distinguishing knobs are:

    batch_fraction:
        Fraction of a worker's local coordinates per push/pull batch.
        Smaller batches mean fresher snapshots (less staleness) but more
        communication events.
    comm_overlap:
        Fraction of each batch's push+pull time hidden behind computation
        (double buffering); 1.0 models perfect overlap, 0.0 a fully
        serialized worker loop.
    """

    def __init__(
        self,
        worker_factory: KernelFactory | Callable[[int], KernelFactory],
        formulation: str = "dual",
        *,
        n_workers: int = 4,
        batch_fraction: float = 1 / 16,
        comm_overlap: float = 0.9,
        network: Link | None = None,
        paper_scale: PaperScale | None = None,
        seed: int = 0,
    ) -> None:
        if formulation not in ("primal", "dual"):
            raise ValueError(f"unknown formulation {formulation!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if not 0.0 <= comm_overlap <= 1.0:
            raise ValueError("comm_overlap must be in [0, 1]")
        if callable(worker_factory) and not hasattr(worker_factory, "bind_primal"):
            self._factory_for = worker_factory
        else:
            fac = worker_factory
            self._factory_for = lambda rank: fac
        self.formulation = formulation
        self.n_workers = int(n_workers)
        self.batch_fraction = float(batch_fraction)
        self.comm_overlap = float(comm_overlap)
        self.comm = (
            SimCommunicator(self.n_workers, network)
            if network
            else SimCommunicator(self.n_workers)
        )
        self.paper_scale = paper_scale
        self.seed = int(seed)
        self._solver_label = ""

    @property
    def name(self) -> str:
        return (
            f"AsyncPS[{self._solver_label or 'SCD'} x{self.n_workers}, "
            f"b={self.batch_fraction:g}, {self.formulation}]"
        )

    # -- setup (mirrors the synchronous engine's worker construction) -------
    def _build(self, problem: RidgeProblem):
        rng = np.random.default_rng(self.seed)
        if self.formulation == "primal":
            matrix, n_total = problem.dataset.csc, problem.m
        else:
            matrix, n_total = problem.dataset.csr, problem.n
        parts = random_partition(n_total, self.n_workers, rng)
        total_nnz = matrix.nnz
        workers = []
        for rank, coords in enumerate(parts):
            local = matrix.take_major(coords)
            factory = self._factory_for(rank)
            if self.paper_scale is not None:
                factory.timing_workload = self.paper_scale.worker_workload(
                    self.formulation,
                    coords.shape[0] / n_total,
                    (local.nnz / total_nnz) if total_nnz else 0.0,
                )
            if self.formulation == "primal":
                bound = factory.bind_primal(local, problem.y, problem.n, problem.lam)
            else:
                bound = factory.bind_dual(
                    local, problem.y[coords], problem.n, problem.lam
                )
            if not self._solver_label:
                self._solver_label = factory.name
            rng = np.random.default_rng(self.seed + 2000 + rank)
            workers.append(
                {
                    "coords": coords,
                    "bound": bound,
                    "weights": np.zeros(coords.shape[0], dtype=bound.dtype),
                    "rng": rng,
                    # shares ``rng`` with the kernel, like the sync runtime
                    "stream": PermutationStream(coords.shape[0], rng),
                    "snapshot": None,
                    "epoch_seconds": bound.epoch_seconds(),
                }
            )
        return workers

    def _shared_len(self, problem: RidgeProblem) -> int:
        return problem.n if self.formulation == "primal" else problem.m

    def _gap(self, weights: np.ndarray, problem: RidgeProblem):
        return gap_and_objective(problem, weights, self.formulation)

    def _global_weights(self, workers, problem) -> np.ndarray:
        n_coords = problem.m if self.formulation == "primal" else problem.n
        return scatter_weights(
            ((wk["coords"], wk["weights"]) for wk in workers), n_coords
        )

    # -- training -------------------------------------------------------------
    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
    ) -> DistributedTrainResult:
        """Train for up to ``n_epochs`` epoch-equivalents of updates.

        One "epoch" = every worker passing once over its local coordinates,
        i.e. ``ceil(1 / batch_fraction)`` scheduling cycles.  Monitoring and
        early stopping are per epoch-equivalent, as in the synchronous
        engine.
        """
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        workers = self._build(problem)
        shared = np.zeros(self._shared_len(problem), dtype=np.float64)
        for wk in workers:
            wk["snapshot"] = shared.copy()
        history = ConvergenceHistory(label=self.name)
        ledger = TimeLedger()
        if self.paper_scale is not None:
            vec_bytes = 4 * self.paper_scale.shared_len(self.formulation)
        else:
            vec_bytes = 4 * shared.shape[0]
        # point-to-point push + pull per batch per worker; K workers push to
        # one server whose NIC serializes them within a cycle
        push_pull_s = 2.0 * self.comm.link.transfer_seconds(vec_bytes)
        cycles_per_epoch = int(np.ceil(1.0 / self.batch_fraction))

        t0 = time.perf_counter()
        weights = self._global_weights(workers, problem)
        gap, obj = self._gap(weights, problem)
        history.append(
            ConvergenceRecord(
                epoch=0, gap=gap, objective=obj, sim_time=0.0, wall_time=0.0, updates=0
            )
        )
        sim_time = 0.0
        updates = 0
        compute_component = "compute_host"
        for epoch in range(1, n_epochs + 1):
            for _cycle in range(cycles_per_epoch):
                max_batch = 0.0
                for wk in workers:
                    bound = wk["bound"]
                    n_batch = max(
                        1,
                        int(round(self.batch_fraction * wk["coords"].shape[0])),
                    )
                    perm = wk["stream"].take(n_batch)
                    local_view = wk["snapshot"].astype(bound.dtype)
                    before = local_view.copy()
                    bound.run_epoch(wk["weights"], local_view, perm, wk["rng"])
                    delta = local_view.astype(np.float64) - before.astype(np.float64)
                    # push: atomic server-side application (all updates land)
                    shared += delta
                    # pull: fresh snapshot for the worker's next batch
                    wk["snapshot"] = shared.copy()
                    max_batch = max(
                        max_batch, wk["epoch_seconds"] * self.batch_fraction
                    )
                    compute_component = bound.timing.component
                    updates += perm.shape[0]
                comm_exposed = (1.0 - self.comm_overlap) * (
                    push_pull_s if self.n_workers > 1 else 0.0
                )
                cycle_s = max_batch + comm_exposed
                ledger.add(compute_component, max_batch)
                ledger.add("comm_network", comm_exposed)
                sim_time += cycle_s
            if epoch % monitor_every == 0 or epoch == n_epochs:
                weights = self._global_weights(workers, problem)
                gap, obj = self._gap(weights, problem)
                history.append(
                    ConvergenceRecord(
                        epoch=epoch,
                        gap=gap,
                        objective=obj,
                        sim_time=sim_time,
                        wall_time=time.perf_counter() - t0,
                        updates=updates,
                    )
                )
                if target_gap is not None and gap <= target_gap:
                    break

        return DistributedTrainResult(
            formulation=self.formulation,
            weights=self._global_weights(workers, problem),
            shared=shared,
            history=history,
            ledger=ledger,
            partitions=[wk["coords"] for wk in workers],
            solver_name=self.name,
            gammas=[],
        )
