"""Distributed synchronous SCD (Algorithms 3 and 4, and Section V).

One facade covers all three distributed configurations in the paper:

* Algorithm 3 — distributed SCD with averaging aggregation, CPU local
  solvers, data partitioned by feature (primal) or by example (dual);
* Algorithm 4 — the same with adaptively-optimized aggregation;
* Section V   — distributed TPA-SCD: GPU local solvers, with the shared
  vector crossing PCIe on and off each device every epoch.

The synchronous epoch scheme itself — local solve, Reduce, gamma_t
aggregation, Broadcast, ledger booking — lives in
:class:`~repro.cluster.runtime.ClusterRuntime`; this module contributes the
SCD-specific parts: the :class:`_ScdWorkerPool` local-solver adapter that
binds :class:`KernelFactory` kernels (CPU or GPU) to the worker partitions,
and the Section V PCIe/host-model pricing passed into the runtime.

Modelled wall-clock per epoch = max over workers of local compute
(+ host-side vector handling and PCIe transfers for GPU workers)
+ Reduce + Broadcast network time; each term is booked into a
:class:`~repro.perf.ledger.TimeLedger` so Fig. 9's breakdown is a direct
read-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..cluster.async_backend import AsyncParamServerBackend
from ..cluster.comm import SimCommunicator
from ..cluster.faults import FaultInjector, FaultReport, FaultSpec, make_fault_injector
from ..cluster.membership import LoadBalancer, MembershipSchedule
from ..cluster.partition import random_partition
from ..cluster.runtime import (
    ClusterRuntime,
    FaultPolicy,
    InProcessBackend,
    PermutationStream,
    RuntimeProfile,
    WorkerUpdate,
    plan_partitions,
    scatter_weights,
    shared_sizing,
)
from ..cluster.smart_partition import make_capacity_partitioner
from ..objectives.ridge import RidgeProblem, gap_and_objective
from ..perf.link import Link
from ..shards import ShardingConfig, ShardStore, ShardStreamer
from ..solvers.base import BoundKernel, KernelFactory, TrainResult
from .aggregation import Aggregator, make_aggregator
from .scale import PaperScale

__all__ = ["DistributedSCD", "DistributedTrainResult", "HostModel"]


@dataclass(frozen=True)
class HostModel:
    """Host-side per-epoch vector handling for GPU workers.

    Each epoch the worker's host assembles the delta buffer, stages the
    pinned transfer and unpacks the broadcast shared vector —
    ``vector_passes`` streaming passes over the shared vector at
    ``bandwidth_gbytes`` effective memory bandwidth.
    """

    vector_passes: int = 4
    bandwidth_gbytes: float = 8.0

    def epoch_seconds(self, shared_len: int, itemsize: int = 4) -> float:
        return self.vector_passes * shared_len * itemsize / (
            self.bandwidth_gbytes * 1e9
        )


@dataclass
class _WorkerState:
    coords: np.ndarray
    bound: BoundKernel
    weights: np.ndarray
    y_local: np.ndarray
    rng: np.random.Generator
    epoch_compute_s: float
    #: chained permutations over the local coordinates; shares ``rng`` with
    #: the kernel so the draw order matches the single stream the paper uses
    stream: PermutationStream
    #: out-of-core data path for this worker's shard group (None = in-memory)
    streamer: ShardStreamer | None = None


#: span surface of the asynchronous backend: the parameter server has no
#: aggregate round, and the retired engine recorded no per-epoch extras
_ASYNC_PROFILE = RuntimeProfile(
    root_span="async_ps.train",
    local_compute_span=False,
    aggregate_span=False,
    extras="none",
)


@dataclass(kw_only=True)
class DistributedTrainResult(TrainResult):
    """Outcome of a distributed run — the canonical shape plus cluster detail."""

    partitions: list[np.ndarray]
    gammas: list[float]
    #: populated when a :class:`FaultInjector` was installed, else ``None``
    fault_report: FaultReport | None = None
    #: applied membership/rebalance steps (empty for static pools)
    membership_log: list = field(default_factory=list)


class _ScdWorkerPool:
    """LocalSolver adapter: SCD kernel workers for the in-process backend.

    Owns the per-rank :class:`_WorkerState` and implements the runtime's
    local-round contract: compute against a shared-vector snapshot, report
    Algorithm 4's worker scalars at delivery time, fold ``gamma * dweights``
    after aggregation.  A lost update needs no rollback — the scratch
    weights are simply discarded, the bound state never changed.
    """

    def __init__(self, engine: "DistributedSCD") -> None:
        self.engine = engine
        self.n_workers = engine.n_workers
        self.workers: list[_WorkerState] = []
        #: bumps on every repartition; salts the reborn workers' RNG seeds
        self._generation = 0

    def bind(self, problem: RidgeProblem, tracer) -> None:
        eng = self.engine
        if eng.formulation == "primal":
            matrix = problem.dataset.csc
            n_coords_total = problem.m
        else:
            matrix = problem.dataset.csr
            n_coords_total = problem.n
        parts, groups = plan_partitions(
            n_coords_total, eng.n_workers, eng.seed, eng.partitioner,
            eng.shards, matrix.shape,
        )
        total_nnz = matrix.nnz
        for rank, coords in enumerate(parts):
            streamer = None
            if groups is not None:
                streamer = ShardStreamer(
                    eng.shards, groups[rank], tracer=tracer, worker=rank
                )
                local = streamer.assemble()
            else:
                local = matrix.take_major(coords)
            factory = eng._factory_for(rank)
            if tracer is not None and tracer.enabled:
                # device factories forward the tracer to their wave engines
                factory.tracer = tracer
            if streamer is not None:
                # device factories skip the bulk dataset allocation: the
                # shard cache books residency against device memory instead
                factory.out_of_core = True
            if eng.paper_scale is not None:
                factory.timing_workload = eng.paper_scale.worker_workload(
                    eng.formulation,
                    coords.shape[0] / n_coords_total,
                    (local.nnz / total_nnz) if total_nnz else 0.0,
                )
            if eng.formulation == "primal":
                bound = factory.bind_primal(local, problem.y, problem.n, problem.lam)
                y_local = problem.y
            else:
                y_local = problem.y[coords]
                bound = factory.bind_dual(local, y_local, problem.n, problem.lam)
            if streamer is not None:
                device = getattr(factory, "device", None)
                if device is not None:
                    # residency competes with the solver's vectors on-device;
                    # attach after bind so the reset device is the budget
                    streamer.attach_device(device.memory)
            if not eng._solver_label:
                eng._solver_label = factory.name
            rng = np.random.default_rng(eng.seed + 1000 + rank)
            self.workers.append(
                _WorkerState(
                    coords=coords,
                    bound=bound,
                    weights=np.zeros(coords.shape[0], dtype=bound.dtype),
                    y_local=y_local.astype(bound.dtype, copy=False),
                    rng=rng,
                    epoch_compute_s=bound.epoch_seconds(),
                    stream=PermutationStream(coords.shape[0], rng),
                    streamer=streamer,
                )
            )

    def local_round(self, rank: int, shared: np.ndarray) -> WorkerUpdate:
        wk = self.workers[rank]
        round_fraction = self.engine.round_fraction
        local_shared = shared.astype(wk.bound.dtype)
        weights_work = wk.weights.copy()
        n_round = max(1, int(round(round_fraction * wk.coords.shape[0])))
        perm = wk.stream.take(n_round)
        wk.bound.run_epoch(weights_work, local_shared, perm, wk.rng)
        return WorkerUpdate(
            rank=rank,
            dshared=local_shared.astype(np.float64) - shared,
            dmodel=(weights_work - wk.weights).astype(np.float64),
            compute_s=wk.epoch_compute_s * round_fraction,
            n_updates=perm.shape[0],
            component=wk.bound.timing.component,
        )

    def delivery_stats(
        self, rank: int, upd: WorkerUpdate
    ) -> tuple[float, float, float]:
        wk = self.workers[rank]
        w64 = wk.weights.astype(np.float64)
        dy = 0.0
        if self.engine.formulation == "dual":
            dy = float(upd.dmodel @ wk.y_local.astype(np.float64))
        return (
            float(w64 @ upd.dmodel),
            float(upd.dmodel @ upd.dmodel),
            dy,
        )

    def fold(self, rank: int, gamma: float, upd: WorkerUpdate) -> None:
        wk = self.workers[rank]
        wk.weights = (wk.weights.astype(np.float64) + gamma * upd.dmodel).astype(
            wk.bound.dtype
        )

    def discard(self, rank: int, upd: WorkerUpdate) -> None:
        pass  # scratch weights were never folded; nothing to roll back

    def streamer(self, rank: int):
        return self.workers[rank].streamer

    def partition_sizes(self) -> list[int]:
        return [wk.coords.shape[0] for wk in self.workers]

    def repartition(
        self, problem: RidgeProblem, tracer, n_workers: int, capacities=None
    ) -> None:
        """Elastic membership: re-deal the coordinates over ``n_workers``.

        The learned global model is assembled first and every new worker
        starts from its slice of it, so the reshuffle moves no information —
        only ownership.  Out-of-core runs stay shard-aligned (the new parts
        are the store's ``n_workers``-way shard groups); in-memory runs use
        measured ``capacities`` (load-proportional) when given, else the
        engine's partitioner.  Worker RNG streams restart at a
        generation-salted seed: a departed worker's stream must not be
        replayed by whichever rank inherits its coordinates.
        """
        eng = self.engine
        if eng.formulation == "primal":
            matrix = problem.dataset.csc
            n_coords_total = problem.m
        else:
            matrix = problem.dataset.csr
            n_coords_total = problem.n
        global_w = self.global_weights(problem)
        for wk in self.workers:
            if wk.streamer is not None:
                wk.streamer.close()
        self._generation += 1
        gen = self._generation
        groups = None
        if eng.shards is not None:
            groups = eng.shards.store.partition(n_workers)
            parts = [eng.shards.store.coords_of(g) for g in groups]
        else:
            rng = np.random.default_rng(eng.seed + 7_000_000 + 10_000 * gen)
            if capacities is not None:
                from ..cluster.smart_partition import load_proportional_partition

                parts = load_proportional_partition(
                    n_coords_total, capacities, rng
                )
            else:
                parts = list(eng.partitioner(n_coords_total, n_workers, rng))
        total_nnz = matrix.nnz
        self.workers = []
        for rank, coords in enumerate(parts):
            streamer = None
            if groups is not None:
                streamer = ShardStreamer(
                    eng.shards, groups[rank], tracer=tracer, worker=rank
                )
                local = streamer.assemble()
            else:
                local = matrix.take_major(coords)
            factory = eng._factory_for(rank)
            if tracer is not None and tracer.enabled:
                factory.tracer = tracer
            if streamer is not None:
                factory.out_of_core = True
            if eng.paper_scale is not None:
                factory.timing_workload = eng.paper_scale.worker_workload(
                    eng.formulation,
                    coords.shape[0] / n_coords_total,
                    (local.nnz / total_nnz) if total_nnz else 0.0,
                )
            if eng.formulation == "primal":
                bound = factory.bind_primal(local, problem.y, problem.n, problem.lam)
                y_local = problem.y
            else:
                y_local = problem.y[coords]
                bound = factory.bind_dual(local, y_local, problem.n, problem.lam)
            if streamer is not None:
                device = getattr(factory, "device", None)
                if device is not None:
                    streamer.attach_device(device.memory)
            rng = np.random.default_rng(
                eng.seed + 1000 + rank + 100_000 * gen
            )
            self.workers.append(
                _WorkerState(
                    coords=coords,
                    bound=bound,
                    weights=global_w[coords].astype(bound.dtype),
                    y_local=y_local.astype(bound.dtype, copy=False),
                    rng=rng,
                    epoch_compute_s=bound.epoch_seconds(),
                    stream=PermutationStream(coords.shape[0], rng),
                    streamer=streamer,
                )
            )
        self.n_workers = int(n_workers)

    def global_weights(self, problem: RidgeProblem) -> np.ndarray:
        n_coords = problem.m if self.engine.formulation == "primal" else problem.n
        return scatter_weights(
            ((wk.coords, wk.weights) for wk in self.workers), n_coords
        )

    def global_model(self, problem: RidgeProblem, shared: np.ndarray) -> np.ndarray:
        return self.global_weights(problem)

    def gap_objective(self, problem: RidgeProblem) -> tuple[float, float]:
        return gap_and_objective(
            problem, self.global_weights(problem), self.engine.formulation
        )

    def close(self) -> None:
        for wk in self.workers:
            if wk.streamer is not None:
                wk.streamer.close()


class DistributedSCD:
    """The synchronous distributed training engine.

    Parameters
    ----------
    worker_factory:
        A :class:`KernelFactory` shared by all workers, or a callable
        ``rank -> KernelFactory`` (required for GPU workers, which each own
        a device).  When ``paper_scale`` is given, the engine sets each
        factory's ``timing_workload`` to that worker's paper-scale share.
    formulation:
        ``"primal"`` partitions by feature; ``"dual"`` partitions by example.
    n_workers:
        K, the number of workers.
    aggregation:
        ``"averaging"`` (Algorithm 3), ``"adaptive"`` (Algorithm 4),
        ``"adding"``, or an :class:`Aggregator` instance.
    network:
        Inter-worker link (default 10 GbE as in the paper's CPU/M4000
        clusters); pass the PCIe link for the single-box Titan X cluster.
    pcie:
        When set, each epoch additionally pays two shared-vector transfers
        per worker over this link (device<->host staging, overlapped across
        workers) — the Section V data path.
    host_model:
        Host-side vector handling cost, only applied when ``pcie`` is set.
    paper_scale:
        Original dataset dimensions used to price compute and communication.
    round_fraction:
        Fraction of a worker's local coordinates processed between
        aggregation rounds (default 1.0, the paper's one-epoch rounds).
        Smaller fractions communicate more often: convergence per coordinate
        update improves (fresher shared vector) at the cost of more network
        rounds — the infrastructure-dependent trade-off of Duenner et al.
        [23], which the paper points to as future tuning.  With
        ``round_fraction < 1`` each history "epoch" is one aggregation
        round.
    faults:
        Optional fault injection: a :class:`FaultInjector`, a
        :class:`FaultSpec`, or a scenario name from
        :data:`~repro.cluster.faults.SCENARIOS`.  When set, each epoch
        proceeds with the K' <= K update vectors that actually arrive and
        the aggregation parameter (including the adaptive gamma* of Eq. 7)
        is recomputed over the survivors; retry, timeout and straggler wait
        time are booked into the ledger's ``comm_retry`` /
        ``wait_straggler`` phases.  A zero-rate injector is a bit-identical
        no-op.  See ``docs/fault_model.md``.
    shards:
        Out-of-core data path: a :class:`~repro.shards.ShardingConfig` (or a
        bare :class:`~repro.shards.ShardStore`, wrapped with defaults).
        Worker partitions then map 1:1 onto contiguous shard groups
        (``partitioner`` is ignored), each worker streams its group through
        a byte-budgeted :class:`~repro.shards.ShardCache` every epoch, and
        the re-read transfers are billed into the ledger's ``shard_stream``
        / ``shard_retry`` phases.  The store's axis must match the
        formulation (``cols`` for primal, ``rows`` for dual).  Training is
        bit-identical to the in-memory path under
        :func:`~repro.cluster.partition.shard_aligned_partition`.  See
        ``docs/data_pipeline.md``.
    """

    def __init__(
        self,
        worker_factory: KernelFactory | Callable[[int], KernelFactory],
        formulation: str = "primal",
        *,
        n_workers: int = 4,
        aggregation: str | Aggregator = "averaging",
        network: Link | None = None,
        pcie: Link | None = None,
        host_model: HostModel | None = None,
        paper_scale: PaperScale | None = None,
        seed: int = 0,
        partitioner: Callable[[int, int, np.random.Generator], Sequence[np.ndarray]]
        | None = None,
        round_fraction: float = 1.0,
        faults: FaultInjector | FaultSpec | str | None = None,
        shards: ShardingConfig | ShardStore | None = None,
        comm: str = "sync",
        batch_fraction: float = 1 / 16,
        comm_overlap: float = 0.9,
        staleness_bound: int = 0,
        membership: MembershipSchedule | Sequence | None = None,
        rebalance_every: int = 0,
        capacities: Sequence[float] | None = None,
    ) -> None:
        if formulation not in ("primal", "dual"):
            raise ValueError(f"unknown formulation {formulation!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not 0.0 < round_fraction <= 1.0:
            raise ValueError("round_fraction must be in (0, 1]")
        if comm not in ("sync", "async"):
            raise ValueError(f"unknown comm mode {comm!r}; use 'sync' or 'async'")
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if not 0.0 <= comm_overlap <= 1.0:
            raise ValueError("comm_overlap must be in [0, 1]")
        if staleness_bound < 0:
            raise ValueError("staleness_bound must be >= 0")
        if rebalance_every < 0:
            raise ValueError("rebalance_every must be >= 0")
        if comm == "async":
            if pcie is not None:
                raise ValueError(
                    "the async parameter-server backend has no PCIe data "
                    "path; use comm='sync' for the Section V GPU cluster"
                )
            if shards is not None:
                raise ValueError(
                    "the async parameter-server backend does not stream "
                    "shards; use comm='sync' for out-of-core runs"
                )
            if round_fraction != 1.0:
                raise ValueError(
                    "round_fraction is a synchronous knob; tune "
                    "batch_fraction for comm='async'"
                )
        self._factory_for: Callable[[int], KernelFactory]
        if callable(worker_factory) and not hasattr(worker_factory, "bind_primal"):
            self._factory_for = worker_factory  # type: ignore[assignment]
        else:
            fac = worker_factory
            self._factory_for = lambda rank: fac  # type: ignore[return-value]
        self.formulation = formulation
        self.n_workers = int(n_workers)
        self.aggregator = make_aggregator(aggregation)
        self.comm = SimCommunicator(self.n_workers, network) if network else (
            SimCommunicator(self.n_workers)
        )
        self.pcie = pcie
        self.host_model = host_model or (HostModel() if pcie else None)
        self.paper_scale = paper_scale
        self.seed = int(seed)
        if partitioner is None and capacities is not None:
            partitioner = make_capacity_partitioner(capacities)
        self.partitioner = partitioner or random_partition
        self.round_fraction = float(round_fraction)
        self.comm_mode = comm
        self.batch_fraction = float(batch_fraction)
        self.comm_overlap = float(comm_overlap)
        self.staleness_bound = int(staleness_bound)
        if membership is not None and not isinstance(membership, MembershipSchedule):
            membership = MembershipSchedule(membership)
        self.membership = membership
        self.rebalance = LoadBalancer(rebalance_every) if rebalance_every else None
        #: populated by :meth:`solve`: applied membership/rebalance steps
        self.membership_log: list = []
        self.faults = make_fault_injector(faults)
        if isinstance(shards, ShardStore):
            shards = ShardingConfig(store=shards)
        self.shards = shards
        if self.shards is not None:
            axis = "cols" if formulation == "primal" else "rows"
            if self.shards.store.axis != axis:
                raise ValueError(
                    f"{formulation} formulation needs a {axis!r}-axis shard "
                    f"set, got {self.shards.store.axis!r}"
                )
        self._solver_label: str = ""
        self._last_report: FaultReport | None = None

    @property
    def name(self) -> str:
        if self.comm_mode == "async":
            return (
                f"AsyncPS[{self._solver_label or 'SCD'} x{self.n_workers}, "
                f"b={self.batch_fraction:g}, {self.formulation}]"
            )
        agg = self.aggregator.name
        return (
            f"Distributed[{self._solver_label or 'SCD'} x{self.n_workers}, "
            f"{agg}, {self.formulation}]"
        )

    def _set_label(self, label: str) -> None:
        if not self._solver_label:
            self._solver_label = label

    # -- training ------------------------------------------------------------------
    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
        on_epoch=None,
    ) -> DistributedTrainResult:
        pool = None
        if self.comm_mode == "async":
            backend = AsyncParamServerBackend(
                self.comm,
                self._factory_for,
                self.formulation,
                batch_fraction=self.batch_fraction,
                comm_overlap=self.comm_overlap,
                staleness_bound=self.staleness_bound,
                paper_scale=self.paper_scale,
                seed=self.seed,
                on_label=self._set_label,
            )
            profile = _ASYNC_PROFILE
        else:
            pool = _ScdWorkerPool(self)
            backend = InProcessBackend(self.comm, pool)
            profile = None
        runtime = ClusterRuntime(
            backend=backend,
            aggregator=self.aggregator,
            formulation=self.formulation,
            faults=FaultPolicy(injector=self.faults, retry=self.comm.retry),
            profile=profile,
            name=lambda: self.name,
            pcie=self.pcie,
            host_model=self.host_model,
            membership=self.membership,
            rebalance=self.rebalance,
        )
        shared_len, comm_bytes, paper_shared = shared_sizing(
            self.formulation, problem, self.paper_scale
        )
        rt = runtime.run(
            problem,
            n_epochs,
            shared_len=shared_len,
            comm_bytes=comm_bytes,
            paper_shared=paper_shared,
            monitor_every=monitor_every,
            target_gap=target_gap,
            tracer=tracer,
            on_epoch=on_epoch,
        )
        self._last_report = rt.report
        self.membership_log = rt.membership_log
        if self.comm_mode == "async":
            weights = backend.global_weights(problem)
            partitions = [wk["coords"] for wk in backend.workers]
        else:
            weights = pool.global_weights(problem)
            partitions = [wk.coords for wk in pool.workers]
        return DistributedTrainResult(
            formulation=self.formulation,
            weights=weights,
            shared=rt.shared,
            history=rt.history,
            ledger=rt.ledger,
            partitions=partitions,
            solver_name=self.name,
            gammas=rt.gammas,
            fault_report=rt.report,
            membership_log=rt.membership_log,
            trace=rt.tracer if rt.tracer.enabled else None,
            metrics=rt.tracer.metrics if rt.tracer.enabled else None,
        )
