"""Distributed synchronous SCD (Algorithms 3 and 4, and Section V).

One engine covers all three distributed configurations in the paper:

* Algorithm 3 — distributed SCD with averaging aggregation, CPU local
  solvers, data partitioned by feature (primal) or by example (dual);
* Algorithm 4 — the same with adaptively-optimized aggregation;
* Section V   — distributed TPA-SCD: GPU local solvers, with the shared
  vector crossing PCIe on and off each device every epoch.

Every epoch follows the paper's synchronous scheme:

1. each worker runs one local epoch against its copy of the shared vector;
2. shared-vector deltas are Reduced to the master (binomial-tree network
   cost) together with the adaptive rule's few scalars;
3. the master computes gamma_t, applies the aggregated update and
   Broadcasts the new shared vector;
4. workers fold ``gamma_t * dmodel`` into their local weights.

Modelled wall-clock per epoch = max over workers of local compute
(+ host-side vector handling and PCIe transfers for GPU workers)
+ Reduce + Broadcast network time; each term is booked into a
:class:`~repro.perf.ledger.TimeLedger` so Fig. 9's breakdown is a direct
read-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..cluster.comm import SimCommunicator
from ..cluster.faults import (
    FaultInjector,
    FaultReport,
    FaultSpec,
    WorkerEpochFaults,
    make_fault_injector,
)
from ..cluster.partition import random_partition
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.ridge import RidgeProblem
from ..obs import resolve_tracer
from ..perf.link import Link
from ..shards import ShardingConfig, ShardStore, ShardStreamer
from ..solvers.base import BoundKernel, KernelFactory, TrainResult
from .aggregation import AggregationStats, Aggregator, make_aggregator
from .scale import PaperScale

__all__ = ["DistributedSCD", "DistributedTrainResult", "HostModel"]


@dataclass(frozen=True)
class HostModel:
    """Host-side per-epoch vector handling for GPU workers.

    Each epoch the worker's host assembles the delta buffer, stages the
    pinned transfer and unpacks the broadcast shared vector —
    ``vector_passes`` streaming passes over the shared vector at
    ``bandwidth_gbytes`` effective memory bandwidth.
    """

    vector_passes: int = 4
    bandwidth_gbytes: float = 8.0

    def epoch_seconds(self, shared_len: int, itemsize: int = 4) -> float:
        return self.vector_passes * shared_len * itemsize / (
            self.bandwidth_gbytes * 1e9
        )


@dataclass
class _WorkerState:
    coords: np.ndarray
    bound: BoundKernel
    weights: np.ndarray
    y_local: np.ndarray
    rng: np.random.Generator
    epoch_compute_s: float
    perm: np.ndarray | None = None
    cursor: int = 0
    #: out-of-core data path for this worker's shard group (None = in-memory)
    streamer: ShardStreamer | None = None
    #: update computed last epoch but delayed in transit (stale-update fault);
    #: delivered to the next aggregation round
    stale_buffer: tuple[np.ndarray, np.ndarray] | None = None

    def next_coords(self, count: int) -> np.ndarray:
        """The next ``count`` local coordinates of the permutation stream.

        Fresh random permutations are chained so partial rounds still visit
        every coordinate exactly once per full pass (epoch-equivalent).
        """
        out: list[np.ndarray] = []
        remaining = count
        n_local = self.coords.shape[0]
        while remaining > 0:
            if self.perm is None or self.cursor >= n_local:
                self.perm = self.rng.permutation(n_local)
                self.cursor = 0
            take = min(remaining, n_local - self.cursor)
            out.append(self.perm[self.cursor : self.cursor + take])
            self.cursor += take
            remaining -= take
        return np.concatenate(out) if len(out) > 1 else out[0]


@dataclass(kw_only=True)
class DistributedTrainResult(TrainResult):
    """Outcome of a distributed run — the canonical shape plus cluster detail."""

    partitions: list[np.ndarray]
    gammas: list[float]
    #: populated when a :class:`FaultInjector` was installed, else ``None``
    fault_report: FaultReport | None = None


class DistributedSCD:
    """The synchronous distributed training engine.

    Parameters
    ----------
    worker_factory:
        A :class:`KernelFactory` shared by all workers, or a callable
        ``rank -> KernelFactory`` (required for GPU workers, which each own
        a device).  When ``paper_scale`` is given, the engine sets each
        factory's ``timing_workload`` to that worker's paper-scale share.
    formulation:
        ``"primal"`` partitions by feature; ``"dual"`` partitions by example.
    n_workers:
        K, the number of workers.
    aggregation:
        ``"averaging"`` (Algorithm 3), ``"adaptive"`` (Algorithm 4),
        ``"adding"``, or an :class:`Aggregator` instance.
    network:
        Inter-worker link (default 10 GbE as in the paper's CPU/M4000
        clusters); pass the PCIe link for the single-box Titan X cluster.
    pcie:
        When set, each epoch additionally pays two shared-vector transfers
        per worker over this link (device<->host staging, overlapped across
        workers) — the Section V data path.
    host_model:
        Host-side vector handling cost, only applied when ``pcie`` is set.
    paper_scale:
        Original dataset dimensions used to price compute and communication.
    round_fraction:
        Fraction of a worker's local coordinates processed between
        aggregation rounds (default 1.0, the paper's one-epoch rounds).
        Smaller fractions communicate more often: convergence per coordinate
        update improves (fresher shared vector) at the cost of more network
        rounds — the infrastructure-dependent trade-off of Duenner et al.
        [23], which the paper points to as future tuning.  With
        ``round_fraction < 1`` each history "epoch" is one aggregation
        round.
    faults:
        Optional fault injection: a :class:`FaultInjector`, a
        :class:`FaultSpec`, or a scenario name from
        :data:`~repro.cluster.faults.SCENARIOS`.  When set, each epoch
        proceeds with the K' <= K update vectors that actually arrive and
        the aggregation parameter (including the adaptive gamma* of Eq. 7)
        is recomputed over the survivors; retry, timeout and straggler wait
        time are booked into the ledger's ``comm_retry`` /
        ``wait_straggler`` phases.  A zero-rate injector is a bit-identical
        no-op.  See ``docs/fault_model.md``.
    shards:
        Out-of-core data path: a :class:`~repro.shards.ShardingConfig` (or a
        bare :class:`~repro.shards.ShardStore`, wrapped with defaults).
        Worker partitions then map 1:1 onto contiguous shard groups
        (``partitioner`` is ignored), each worker streams its group through
        a byte-budgeted :class:`~repro.shards.ShardCache` every epoch, and
        the re-read transfers are billed into the ledger's ``shard_stream``
        / ``shard_retry`` phases.  The store's axis must match the
        formulation (``cols`` for primal, ``rows`` for dual).  Training is
        bit-identical to the in-memory path under
        :func:`~repro.cluster.partition.shard_aligned_partition`.  See
        ``docs/data_pipeline.md``.
    """

    def __init__(
        self,
        worker_factory: KernelFactory | Callable[[int], KernelFactory],
        formulation: str = "primal",
        *,
        n_workers: int = 4,
        aggregation: str | Aggregator = "averaging",
        network: Link | None = None,
        pcie: Link | None = None,
        host_model: HostModel | None = None,
        paper_scale: PaperScale | None = None,
        seed: int = 0,
        partitioner: Callable[[int, int, np.random.Generator], Sequence[np.ndarray]]
        | None = None,
        round_fraction: float = 1.0,
        faults: FaultInjector | FaultSpec | str | None = None,
        shards: ShardingConfig | ShardStore | None = None,
    ) -> None:
        if formulation not in ("primal", "dual"):
            raise ValueError(f"unknown formulation {formulation!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not 0.0 < round_fraction <= 1.0:
            raise ValueError("round_fraction must be in (0, 1]")
        self._factory_for: Callable[[int], KernelFactory]
        if callable(worker_factory) and not hasattr(worker_factory, "bind_primal"):
            self._factory_for = worker_factory  # type: ignore[assignment]
        else:
            fac = worker_factory
            self._factory_for = lambda rank: fac  # type: ignore[return-value]
        self.formulation = formulation
        self.n_workers = int(n_workers)
        self.aggregator = make_aggregator(aggregation)
        self.comm = SimCommunicator(self.n_workers, network) if network else (
            SimCommunicator(self.n_workers)
        )
        self.pcie = pcie
        self.host_model = host_model or (HostModel() if pcie else None)
        self.paper_scale = paper_scale
        self.seed = int(seed)
        self.partitioner = partitioner or random_partition
        self.round_fraction = float(round_fraction)
        self.faults = make_fault_injector(faults)
        if isinstance(shards, ShardStore):
            shards = ShardingConfig(store=shards)
        self.shards = shards
        if self.shards is not None:
            axis = "cols" if formulation == "primal" else "rows"
            if self.shards.store.axis != axis:
                raise ValueError(
                    f"{formulation} formulation needs a {axis!r}-axis shard "
                    f"set, got {self.shards.store.axis!r}"
                )
        self._solver_label: str = ""

    @property
    def name(self) -> str:
        agg = self.aggregator.name
        return (
            f"Distributed[{self._solver_label or 'SCD'} x{self.n_workers}, "
            f"{agg}, {self.formulation}]"
        )

    # -- setup -------------------------------------------------------------
    def _build_workers(
        self, problem: RidgeProblem, tracer=None
    ) -> list[_WorkerState]:
        rng = np.random.default_rng(self.seed)
        if self.formulation == "primal":
            matrix = problem.dataset.csc
            n_coords_total = problem.m
        else:
            matrix = problem.dataset.csr
            n_coords_total = problem.n
        groups: list[list[int]] | None = None
        if self.shards is not None:
            store = self.shards.store
            if store.n_major != n_coords_total or store.shape != matrix.shape:
                raise ValueError(
                    f"shard set covers a {store.shape} matrix, "
                    f"problem matrix is {matrix.shape}"
                )
            groups = store.partition(self.n_workers)
            parts = [store.coords_of(g) for g in groups]
        else:
            parts = list(self.partitioner(n_coords_total, self.n_workers, rng))
        total_nnz = matrix.nnz
        workers: list[_WorkerState] = []
        for rank, coords in enumerate(parts):
            streamer = None
            if groups is not None:
                streamer = ShardStreamer(
                    self.shards, groups[rank], tracer=tracer, worker=rank
                )
                local = streamer.assemble()
            else:
                local = matrix.take_major(coords)
            factory = self._factory_for(rank)
            if tracer is not None and tracer.enabled:
                # device factories forward the tracer to their wave engines
                factory.tracer = tracer
            if streamer is not None:
                # device factories skip the bulk dataset allocation: the
                # shard cache books residency against device memory instead
                factory.out_of_core = True
            if self.paper_scale is not None:
                factory.timing_workload = self.paper_scale.worker_workload(
                    self.formulation,
                    coords.shape[0] / n_coords_total,
                    (local.nnz / total_nnz) if total_nnz else 0.0,
                )
            if self.formulation == "primal":
                bound = factory.bind_primal(local, problem.y, problem.n, problem.lam)
                y_local = problem.y
            else:
                y_local = problem.y[coords]
                bound = factory.bind_dual(local, y_local, problem.n, problem.lam)
            if streamer is not None:
                device = getattr(factory, "device", None)
                if device is not None:
                    # residency competes with the solver's vectors on-device;
                    # attach after bind so the reset device is the budget
                    streamer.attach_device(device.memory)
            if not self._solver_label:
                self._solver_label = factory.name
            workers.append(
                _WorkerState(
                    coords=coords,
                    bound=bound,
                    weights=np.zeros(coords.shape[0], dtype=bound.dtype),
                    y_local=y_local.astype(bound.dtype, copy=False),
                    rng=np.random.default_rng(self.seed + 1000 + rank),
                    epoch_compute_s=bound.epoch_seconds(),
                    streamer=streamer,
                )
            )
        return workers

    def _shared_len(self, problem: RidgeProblem) -> int:
        return problem.n if self.formulation == "primal" else problem.m

    def _comm_shared_bytes(self, problem: RidgeProblem) -> int:
        if self.paper_scale is not None:
            return 4 * self.paper_scale.shared_len(self.formulation)
        return 4 * self._shared_len(problem)

    def _paper_shared_len(self, problem: RidgeProblem) -> int:
        if self.paper_scale is not None:
            return self.paper_scale.shared_len(self.formulation)
        return self._shared_len(problem)

    # -- gap evaluation ---------------------------------------------------------
    def _global_weights(
        self, workers: list[_WorkerState], problem: RidgeProblem
    ) -> np.ndarray:
        n_coords = problem.m if self.formulation == "primal" else problem.n
        out = np.zeros(n_coords, dtype=np.float64)
        for wk in workers:
            out[wk.coords] = wk.weights.astype(np.float64)
        return out

    def _gap(self, weights: np.ndarray, problem: RidgeProblem) -> tuple[float, float]:
        if self.formulation == "primal":
            return problem.primal_gap(weights), problem.primal_objective(weights)
        return problem.dual_gap(weights), problem.dual_objective(weights)

    # -- training ------------------------------------------------------------------
    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
    ) -> DistributedTrainResult:
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        tracer = resolve_tracer(tracer)
        self.comm.metrics = tracer.metrics if tracer.enabled else None
        span = tracer.span(
            "distributed.train", category="driver", solver=self.name,
            n_workers=self.n_workers, n_epochs=n_epochs,
        )
        with span:
            with tracer.span("bind", category="driver"):
                workers = self._build_workers(problem, tracer)
            shared_len = self._shared_len(problem)
            shared = np.zeros(shared_len, dtype=np.float64)
            history = ConvergenceHistory(label=self.name)
            ledger = tracer.open_ledger()
            gammas: list[float] = []
            comm_bytes = self._comm_shared_bytes(problem)
            paper_shared = self._paper_shared_len(problem)
            t0 = time.perf_counter()

            weights = self._global_weights(workers, problem)
            with tracer.span("gap_eval", category="monitor", epoch=0):
                gap, obj = self._gap(weights, problem)
            history.append(
                ConvergenceRecord(
                    epoch=0, gap=gap, objective=obj, sim_time=0.0,
                    wall_time=0.0, updates=0,
                )
            )
            try:
                self._run_epochs(
                    problem, workers, shared, history, ledger, gammas,
                    comm_bytes, paper_shared, t0, n_epochs, monitor_every,
                    target_gap, tracer,
                )
            finally:
                for wk in workers:
                    if wk.streamer is not None:
                        wk.streamer.close()

        weights = self._global_weights(workers, problem)
        report = self._last_report
        if tracer.enabled and report is not None:
            report.record_to(tracer.metrics)
        return DistributedTrainResult(
            formulation=self.formulation,
            weights=weights,
            shared=shared,
            history=history,
            ledger=ledger,
            partitions=[wk.coords for wk in workers],
            solver_name=self.name,
            gammas=gammas,
            fault_report=report,
            trace=tracer if tracer.enabled else None,
            metrics=tracer.metrics if tracer.enabled else None,
        )

    def _run_epochs(
        self,
        problem: RidgeProblem,
        workers: list[_WorkerState],
        shared: np.ndarray,
        history: ConvergenceHistory,
        ledger,
        gammas: list[float],
        comm_bytes: int,
        paper_shared: int,
        t0: float,
        n_epochs: int,
        monitor_every: int,
        target_gap: float | None,
        tracer,
    ) -> None:

        injector = self.faults
        report = FaultReport() if injector is not None else None
        self._last_report = report
        benign = WorkerEpochFaults()
        retry = self.comm.retry

        sim_time = 0.0
        updates = 0
        for epoch in range(1, n_epochs + 1):
            with tracer.span("epoch", category="driver", epoch=epoch):
                plan = (
                    injector.plan_epoch(epoch, self.n_workers)
                    if injector is not None
                    else None
                )
                if report is not None:
                    report.epochs += 1
                dshared_parts: list[np.ndarray] = []
                pending_folds: list[tuple[_WorkerState, np.ndarray]] = []
                model_dot_dmodel = 0.0
                dmodel_norm_sq = 0.0
                dmodel_dot_y = 0.0
                max_compute = 0.0
                max_wall = 0.0  # compute + exposed shard streaming per worker
                fault_free_compute = 0.0
                retry_s = 0.0
                any_computed = False
                compute_component = "compute_host"

                def deliver(wk: _WorkerState, dshared_part, dweights) -> None:
                    """One arrived update vector joins this round's aggregation."""
                    nonlocal model_dot_dmodel, dmodel_norm_sq, dmodel_dot_y
                    dshared_parts.append(dshared_part)
                    pending_folds.append((wk, dweights))
                    w64 = wk.weights.astype(np.float64)
                    model_dot_dmodel += float(w64 @ dweights)
                    dmodel_norm_sq += float(dweights @ dweights)
                    if self.formulation == "dual":
                        dmodel_dot_y += float(
                            dweights @ wk.y_local.astype(np.float64)
                        )

                with tracer.span(
                    "local_compute", category="cluster", epoch=epoch
                ):
                    for rank, wk in enumerate(workers):
                        wf = plan[rank] if plan is not None else benign
                        if wk.stale_buffer is not None:
                            # last epoch's delayed update arrives now and is
                            # folded with this round's gamma
                            sb_dshared, sb_dweights = wk.stale_buffer
                            wk.stale_buffer = None
                            deliver(wk, sb_dshared, sb_dweights)
                        if wf.dropout:
                            report.dropouts += 1
                            continue
                        local_shared = shared.astype(wk.bound.dtype)
                        weights_work = wk.weights.copy()
                        n_round = max(
                            1, int(round(self.round_fraction * wk.coords.shape[0]))
                        )
                        perm = wk.next_coords(n_round)
                        wk.bound.run_epoch(weights_work, local_shared, perm, wk.rng)
                        dweights = (weights_work - wk.weights).astype(np.float64)
                        dshared_part = local_shared.astype(np.float64) - shared
                        compute_s = wk.epoch_compute_s * self.round_fraction
                        fault_free_compute = max(fault_free_compute, compute_s)
                        worker_wall = compute_s * wf.straggler_multiplier
                        max_compute = max(max_compute, worker_wall)
                        if wk.streamer is not None:
                            # stream the shard group once per local epoch;
                            # with prefetch only the excess over compute
                            # extends this worker's wall clock
                            worker_wall += wk.streamer.stream_epoch(
                                ledger, compute_s=worker_wall
                            )
                        max_wall = max(max_wall, worker_wall)
                        compute_component = wk.bound.timing.component
                        updates += perm.shape[0]
                        any_computed = True
                        if report is not None:
                            if wf.straggler_multiplier > 1.0:
                                report.stragglers += 1
                            report.transient_failures += (
                                wf.send_failures + wf.recv_failures
                            )
                        retry_s += self.comm.retry_seconds(
                            comm_bytes, wf.send_failures
                        )
                        retry_s += self.comm.retry_seconds(
                            comm_bytes, wf.recv_failures
                        )
                        exhausted = retry.exhausted(wf.send_failures)
                        if wf.drop_update or exhausted:
                            # the update vector never reached the master; the
                            # worker discards its local work to stay consistent
                            # with the broadcast shared vector
                            report.dropped_updates += 1
                            if exhausted:
                                report.retry_exhausted += 1
                            continue
                        if wf.stale_update:
                            wk.stale_buffer = (dshared_part, dweights)
                            report.stale_updates += 1
                            continue
                        deliver(wk, dshared_part, dweights)

                n_arrived = len(pending_folds)
                if report is not None:
                    report.survivor_counts.append(n_arrived)
                with tracer.span(
                    "aggregate", category="cluster",
                    epoch=epoch, survivors=n_arrived,
                ):
                    if n_arrived:
                        dshared = self.comm.reduce_sum_partial(
                            dshared_parts, like=shared
                        )
                        if self.formulation == "primal":
                            resid_dot = float(
                                (shared - problem.y.astype(np.float64)) @ dshared
                            )
                        else:
                            resid_dot = float(shared @ dshared)
                        stats = AggregationStats(
                            formulation=self.formulation,
                            n=problem.n,
                            lam=problem.lam,
                            n_workers=n_arrived,
                            resid_dot_dshared=resid_dot,
                            dshared_norm_sq=float(dshared @ dshared),
                            model_dot_dmodel=model_dot_dmodel,
                            dmodel_norm_sq=dmodel_norm_sq,
                            dmodel_dot_y=dmodel_dot_y,
                        )
                        gamma = self.aggregator.gamma(stats)
                        shared += gamma * dshared
                        for wk, dw in pending_folds:
                            wk.weights = (
                                wk.weights.astype(np.float64) + gamma * dw
                            ).astype(wk.bound.dtype)
                    else:
                        # nothing arrived (every update lost or every worker
                        # out): the shared vector stands and training proceeds
                        # next epoch
                        gamma = 0.0
                gammas.append(gamma)

                # -- time accounting ----------------------------------------
                ledger.add(compute_component, fault_free_compute)
                epoch_time = max(max_compute, max_wall)
                straggler_wait = max_compute - fault_free_compute
                if straggler_wait > 0.0:
                    ledger.add("wait_straggler", straggler_wait)
                    tracer.count("dist.straggler_wait_s", straggler_wait)
                if self.pcie is not None and any_computed:
                    pcie_s = 2.0 * self.pcie.transfer_seconds(4 * paper_shared)
                    host_s = self.host_model.epoch_seconds(paper_shared)
                    ledger.add("comm_pcie", pcie_s)
                    ledger.add("compute_host", host_s)
                    epoch_time += pcie_s + host_s
                net_s = (
                    self.comm.reduce_seconds(comm_bytes)
                    + self.comm.bcast_seconds(comm_bytes)
                    + self.comm.scalars_seconds(self.aggregator.n_extra_scalars)
                )
                ledger.add("comm_network", net_s)
                if retry_s > 0.0:
                    ledger.add("comm_retry", retry_s)
                epoch_time += net_s + retry_s
                sim_time += epoch_time

            tracer.count("dist.epochs")
            tracer.observe("dist.gamma", gamma)
            tracer.observe("dist.survivors", n_arrived)
            if epoch % monitor_every == 0 or epoch == n_epochs:
                weights = self._global_weights(workers, problem)
                with tracer.span("gap_eval", category="monitor", epoch=epoch):
                    gap, obj = self._gap(weights, problem)
                extras = {"gamma": gamma}
                if injector is not None:
                    extras["survivors"] = float(n_arrived)
                history.append(
                    ConvergenceRecord(
                        epoch=epoch,
                        gap=gap,
                        objective=obj,
                        sim_time=sim_time,
                        wall_time=time.perf_counter() - t0,
                        updates=updates,
                        extras=extras,
                    )
                )
                if target_gap is not None and gap <= target_gap:
                    break
