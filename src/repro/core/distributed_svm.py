"""Distributed SVM training — CoCoA's canonical instantiation (ref [7]).

Algorithm 3 "can be thought of as a special case of the more general CoCoA
framework applied specifically to the ridge regression problem"; CoCoA
itself was introduced for communication-efficient distributed *SDCA* — the
hinge-loss SVM.  This facade closes that loop: examples are partitioned
across K workers, each runs local SDCA epochs against its copy of the
primal weight vector ``w`` (the SVM's shared vector), and the master
aggregates the workers' ``delta w`` with gamma = sigma'/K.

The synchronous epoch loop is :class:`~repro.cluster.runtime.ClusterRuntime`
with a :class:`ScaledAggregator` aggregation policy; this module contributes
the SDCA local solver (:class:`_SvmWorkerPool`), whose model state is the
dual variables ``alpha`` — a lost update reverts them, a gamma-scaled
aggregation rescales them to stay consistent with the global ``w``.

Monitoring uses the true hinge duality gap; the per-epoch time model reuses
the CPU cost models and the binomial-tree communicator.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..cluster.comm import SimCommunicator
from ..cluster.faults import FaultInjector, FaultReport, FaultSpec, make_fault_injector
from ..cluster.membership import LoadBalancer, MembershipSchedule
from ..cluster.partition import random_partition
from ..cluster.smart_partition import load_proportional_partition
from ..cluster.runtime import (
    ClusterRuntime,
    FaultPolicy,
    InProcessBackend,
    RuntimeProfile,
    WorkerUpdate,
    plan_partitions,
)
from ..cpu import XEON_8C, CpuSpec, SequentialCpuTiming
from ..objectives.svm import SvmProblem
from ..perf.link import Link
from ..perf.timing import EpochWorkload
from ..shards import ShardingConfig, ShardStore, ShardStreamer
from ..solvers.base import TrainResult
from .aggregation import ScaledAggregator
from .scale import PaperScale

__all__ = ["DistributedSvm", "SvmTrainResult"]

#: once-per-process latch for the tuple-unpacking deprecation below — the
#: warning must fire exactly once, not once per result object, so a training
#: sweep over many runs does not flood stderr
_TUPLE_UNPACK_WARNED = False


def _reset_tuple_unpack_warning() -> None:
    """Re-arm the once-per-process deprecation latch (test helper)."""
    global _TUPLE_UNPACK_WARNED
    _TUPLE_UNPACK_WARNED = False

_SVM_PROFILE = RuntimeProfile(
    bind_span=False,
    local_compute_span=False,
    extras="none",
    group_net_retry=False,
)


@dataclass(kw_only=True)
class SvmTrainResult(TrainResult):
    """SVM outcome: the canonical shape plus the dual variables.

    Iterating yields ``(w, alpha, history, ledger)`` so legacy
    tuple-unpacking call sites keep working; that path is deprecated —
    read the named :class:`~repro.solvers.base.TrainResult` fields instead.
    """

    alpha: np.ndarray
    fault_report: FaultReport | None = None
    #: applied membership/rebalance steps, in epoch order (empty when static)
    membership_log: list = field(default_factory=list)

    def primal_weights(self, problem=None) -> np.ndarray:
        """The SVM's shared vector *is* the primal model."""
        return self.weights

    def __iter__(self) -> Iterator:
        global _TUPLE_UNPACK_WARNED
        if not _TUPLE_UNPACK_WARNED:
            _TUPLE_UNPACK_WARNED = True
            warnings.warn(
                "tuple-unpacking SvmTrainResult is deprecated; use the named "
                "fields (.weights, .alpha, .history, .ledger) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return iter((self.weights, self.alpha, self.history, self.ledger))


class _SvmWorkerPool:
    """LocalSolver adapter: per-worker clipped SDCA over example partitions.

    Model state is the dual vector ``alpha`` (updated in place during the
    local round); the shared-vector delta is ``local_w - w``.  Because the
    dual update is applied eagerly, consistency with the gamma-scaled global
    step is restored *after* aggregation: a delivered update rescales
    ``alpha -= (1 - gamma) * pending`` (clipped to the box), a lost one
    reverts ``alpha -= pending``.
    """

    def __init__(self, engine: "DistributedSvm") -> None:
        self.engine = engine
        self.n_workers = engine.n_workers
        self.workers: list[dict] = []
        self.problem: SvmProblem | None = None
        self.timing: SequentialCpuTiming | None = None
        self._generation = 0

    def _bind_worker(
        self, rank, rows, csr, y, tracer, groups, rng_seed, alpha_global=None
    ) -> dict:
        eng = self.engine
        streamer = None
        if groups is not None:
            streamer = ShardStreamer(
                eng.shards, groups[rank], tracer=tracer, worker=rank
            )
            local = streamer.assemble()
        else:
            local = csr.take_rows(rows)
        if alpha_global is None:
            alpha = np.zeros(rows.shape[0])
        else:
            alpha = alpha_global[rows].copy()
        return {
            "rows": rows,
            "indptr": local.indptr,
            "indices": local.indices,
            "data": local.data.astype(np.float64),
            "norms": local.row_norms_sq().astype(np.float64),
            "y": y[rows],
            "alpha": alpha,
            "rng": np.random.default_rng(rng_seed),
            "nnz": local.nnz,
            "streamer": streamer,
        }

    def bind(self, problem: SvmProblem, tracer) -> None:
        eng = self.engine
        self.problem = problem
        csr = problem.dataset.csr
        parts, groups = plan_partitions(
            problem.n, eng.n_workers, eng.seed, eng.partitioner,
            eng.shards, csr.shape,
        )
        y = problem.y.astype(np.float64)
        for rank, rows in enumerate(parts):
            self.workers.append(
                self._bind_worker(
                    rank, rows, csr, y, tracer, groups, eng.seed + 1000 + rank
                )
            )
        self.timing = SequentialCpuTiming(eng.spec)

    def partition_sizes(self) -> list[int]:
        return [wk["rows"].shape[0] for wk in self.workers]

    def repartition(
        self, problem: SvmProblem, tracer, n_workers: int, capacities=None
    ) -> None:
        """Elastic membership: re-deal the examples across ``n_workers``.

        The learned dual variables are preserved — the global ``alpha`` is
        assembled from the departing pool and sliced back out along the new
        partition, so the run continues from the same dual point.  Reborn
        workers draw from generation-salted RNG streams (a rank id is reused
        across generations; its permutation stream must not be).
        """
        eng = self.engine
        alpha_global = self.alpha_global()
        for wk in self.workers:
            if wk["streamer"] is not None:
                wk["streamer"].close()
        self._generation += 1
        gen = self._generation
        csr = problem.dataset.csr
        if eng.shards is not None:
            groups = eng.shards.store.partition(n_workers)
            parts = [eng.shards.store.coords_of(g) for g in groups]
        else:
            groups = None
            rng = np.random.default_rng(eng.seed + 7_000_000 + 10_000 * gen)
            if capacities is not None:
                parts = load_proportional_partition(problem.n, capacities, rng)
            else:
                parts = eng.partitioner(problem.n, n_workers, rng)
        y = problem.y.astype(np.float64)
        self.workers = [
            self._bind_worker(
                rank, rows, csr, y, tracer, groups,
                eng.seed + 1000 + rank + 100_000 * gen,
                alpha_global=alpha_global,
            )
            for rank, rows in enumerate(parts)
        ]
        self.n_workers = int(n_workers)

    def local_round(self, rank: int, shared: np.ndarray) -> WorkerUpdate:
        eng = self.engine
        problem = self.problem
        inv_lam_n = 1.0 / (problem.lam * problem.n)
        wk = self.workers[rank]
        local_w = shared.copy()
        indptr, indices, data = wk["indptr"], wk["indices"], wk["data"]
        alpha, y_loc, norms = wk["alpha"], wk["y"], wk["norms"]
        pending = np.zeros(alpha.shape[0])
        for i in wk["rng"].permutation(alpha.shape[0]):
            lo, hi = indptr[i], indptr[i + 1]
            idx = indices[lo:hi]
            v = data[lo:hi]
            margin = float(v @ local_w[idx]) if lo != hi else 0.0
            # inline clipped SDCA step with the *local* labels
            if norms[i] > 0.0:
                grad = (
                    problem.lam * problem.n * (1.0 - y_loc[i] * margin)
                    / norms[i]
                )
                new_a = min(max(alpha[i] + grad, 0.0), 1.0)
            else:
                new_a = 1.0
            d = new_a - alpha[i]
            if d != 0.0:
                pending[i] += d
                alpha[i] = new_a
                if lo != hi:
                    local_w[idx] += v * (d * y_loc[i] * inv_lam_n)
        wl = EpochWorkload(
            n_coords=alpha.shape[0]
            if eng.paper_scale is None
            else max(1, eng.paper_scale.n_examples // eng.n_workers),
            nnz=wk["nnz"]
            if eng.paper_scale is None
            else max(1, eng.paper_scale.nnz // eng.n_workers),
            shared_len=problem.m,
        )
        return WorkerUpdate(
            rank=rank,
            dshared=local_w - shared,
            dmodel=pending,
            compute_s=self.timing.epoch_seconds(wl),
            n_updates=alpha.shape[0],
        )

    def delivery_stats(
        self, rank: int, upd: WorkerUpdate
    ) -> tuple[float, float, float]:
        # never consulted: the scaled rule's gamma = sigma'/K' reads no stats
        return 0.0, 0.0, 0.0

    def fold(self, rank: int, gamma: float, upd: WorkerUpdate) -> None:
        # scale the local dual variables to stay consistent with the
        # gamma-scaled global update
        if gamma != 1.0:
            alpha = self.workers[rank]["alpha"]
            alpha -= (1.0 - gamma) * upd.dmodel
            np.clip(alpha, 0.0, 1.0, out=alpha)

    def discard(self, rank: int, upd: WorkerUpdate) -> None:
        # the master never saw this delta; revert the local dual variables
        # so they stay consistent with w
        self.workers[rank]["alpha"] -= upd.dmodel

    def streamer(self, rank: int):
        return self.workers[rank]["streamer"]

    def alpha_global(self) -> np.ndarray:
        out = np.zeros(self.problem.n)
        for wk in self.workers:
            out[wk["rows"]] = wk["alpha"]
        return out

    def gap_objective(self, problem: SvmProblem) -> tuple[float, float]:
        alpha_global = self.alpha_global()
        return (
            problem.duality_gap(alpha_global),
            problem.dual_objective(alpha_global),
        )

    def global_model(self, problem: SvmProblem, shared: np.ndarray) -> np.ndarray:
        # the SVM's shared vector *is* the primal model w
        return shared.copy()

    def close(self) -> None:
        for wk in self.workers:
            if wk["streamer"] is not None:
                wk["streamer"].close()


class DistributedSvm:
    """Synchronous distributed SDCA for the hinge-loss SVM.

    Parameters mirror the ridge engine where they apply; ``sigma_prime``
    scales the aggregation between averaging (1) and adding (K).
    ``partitioner`` overrides the paper's random example partition;
    ``shards`` switches the data path to an out-of-core
    :class:`~repro.shards.ShardStore` (rows axis), with worker partitions
    aligned to shard-group boundaries and per-epoch streaming billed into
    the ledger's ``shard_stream`` / ``shard_retry`` phases.
    """

    def __init__(
        self,
        *,
        n_workers: int = 4,
        sigma_prime: float = 1.0,
        network: Link | None = None,
        spec: CpuSpec = XEON_8C,
        paper_scale: PaperScale | None = None,
        seed: int = 0,
        faults: FaultInjector | FaultSpec | str | None = None,
        partitioner=None,
        shards: ShardingConfig | ShardStore | None = None,
        membership: MembershipSchedule | Sequence | None = None,
        rebalance_every: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if sigma_prime <= 0:
            raise ValueError("sigma_prime must be positive")
        if rebalance_every < 0:
            raise ValueError("rebalance_every must be >= 0")
        self.n_workers = int(n_workers)
        self.sigma_prime = float(sigma_prime)
        self.comm = (
            SimCommunicator(self.n_workers, network)
            if network
            else SimCommunicator(self.n_workers)
        )
        self.spec = spec
        self.paper_scale = paper_scale
        self.seed = int(seed)
        self.faults = make_fault_injector(faults)
        self.partitioner = partitioner or random_partition
        if isinstance(shards, ShardStore):
            shards = ShardingConfig(store=shards)
        self.shards = shards
        if self.shards is not None and self.shards.store.axis != "rows":
            raise ValueError(
                "DistributedSvm partitions examples: needs a 'rows'-axis "
                f"shard set, got {self.shards.store.axis!r}"
            )
        if membership is not None and not isinstance(membership, MembershipSchedule):
            membership = MembershipSchedule(membership)
        self.membership = membership
        self.rebalance = LoadBalancer(rebalance_every) if rebalance_every else None
        #: populated by :meth:`solve`: applied membership/rebalance steps
        self.membership_log: list = []
        #: populated by :meth:`solve` when fault injection is active
        self.fault_report: FaultReport | None = None
        self.name = f"DistributedSVM[x{self.n_workers}, sigma'={sigma_prime:g}]"

    def solve(
        self,
        problem: SvmProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
        on_epoch=None,
    ) -> SvmTrainResult:
        """Train; returns a :class:`SvmTrainResult` (the legacy
        ``(w, alpha, history, ledger)`` tuple-unpack is deprecated)."""
        pool = _SvmWorkerPool(self)
        runtime = ClusterRuntime(
            backend=InProcessBackend(self.comm, pool),
            aggregator=ScaledAggregator(self.sigma_prime),
            formulation="dual",
            faults=FaultPolicy(
                injector=self.faults,
                stale_buffering=False,  # SDCA keeps no stale buffer: lost
                count_retry_exhausted=False,
                retry=self.comm.retry,
            ),
            profile=_SVM_PROFILE,
            name=lambda: self.name,
            membership=self.membership,
            rebalance=self.rebalance,
        )
        shared_bytes = 4 * (
            self.paper_scale.n_features if self.paper_scale else problem.m
        )
        rt = runtime.run(
            problem,
            n_epochs,
            shared_len=problem.m,
            comm_bytes=shared_bytes,
            monitor_every=monitor_every,
            target_gap=target_gap,
            tracer=tracer,
            on_epoch=on_epoch,
        )
        self.fault_report = rt.report
        self.membership_log = rt.membership_log
        return SvmTrainResult(
            formulation="dual",
            weights=rt.shared,
            shared=rt.shared,
            history=rt.history,
            solver_name=self.name,
            ledger=rt.ledger,
            alpha=pool.alpha_global(),
            fault_report=rt.report,
            membership_log=rt.membership_log,
            trace=rt.tracer if rt.tracer.enabled else None,
            metrics=rt.tracer.metrics if rt.tracer.enabled else None,
        )
