"""Distributed SVM training — CoCoA's canonical instantiation (ref [7]).

Algorithm 3 "can be thought of as a special case of the more general CoCoA
framework applied specifically to the ridge regression problem"; CoCoA
itself was introduced for communication-efficient distributed *SDCA* — the
hinge-loss SVM.  This engine closes that loop: examples are partitioned
across K workers, each runs local SDCA epochs against its copy of the
primal weight vector ``w`` (the SVM's shared vector), and the master
aggregates the workers' ``delta w`` with gamma = sigma'/K.

Monitoring uses the true hinge duality gap; the per-epoch time model reuses
the CPU cost models and the binomial-tree communicator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..cluster.comm import SimCommunicator
from ..cluster.faults import (
    FaultInjector,
    FaultReport,
    FaultSpec,
    WorkerEpochFaults,
    make_fault_injector,
)
from ..cluster.partition import random_partition
from ..cpu import XEON_8C, CpuSpec, SequentialCpuTiming
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.svm import SvmProblem
from ..obs import resolve_tracer
from ..perf.link import Link
from ..perf.timing import EpochWorkload
from ..shards import ShardingConfig, ShardStore, ShardStreamer
from ..solvers.base import TrainResult
from .scale import PaperScale

__all__ = ["DistributedSvm", "SvmTrainResult"]


@dataclass(kw_only=True)
class SvmTrainResult(TrainResult):
    """SVM outcome: the canonical shape plus the dual variables.

    Iterating yields ``(w, alpha, history, ledger)`` so legacy
    tuple-unpacking call sites keep working unchanged.
    """

    alpha: np.ndarray
    fault_report: FaultReport | None = None

    def primal_weights(self, problem=None) -> np.ndarray:
        """The SVM's shared vector *is* the primal model."""
        return self.weights

    def __iter__(self) -> Iterator:
        return iter((self.weights, self.alpha, self.history, self.ledger))


class DistributedSvm:
    """Synchronous distributed SDCA for the hinge-loss SVM.

    Parameters mirror the ridge engine where they apply; ``sigma_prime``
    scales the aggregation between averaging (1) and adding (K).
    ``partitioner`` overrides the paper's random example partition;
    ``shards`` switches the data path to an out-of-core
    :class:`~repro.shards.ShardStore` (rows axis), with worker partitions
    aligned to shard-group boundaries and per-epoch streaming billed into
    the ledger's ``shard_stream`` / ``shard_retry`` phases.
    """

    def __init__(
        self,
        *,
        n_workers: int = 4,
        sigma_prime: float = 1.0,
        network: Link | None = None,
        spec: CpuSpec = XEON_8C,
        paper_scale: PaperScale | None = None,
        seed: int = 0,
        faults: FaultInjector | FaultSpec | str | None = None,
        partitioner=None,
        shards: ShardingConfig | ShardStore | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if sigma_prime <= 0:
            raise ValueError("sigma_prime must be positive")
        self.n_workers = int(n_workers)
        self.sigma_prime = float(sigma_prime)
        self.comm = (
            SimCommunicator(self.n_workers, network)
            if network
            else SimCommunicator(self.n_workers)
        )
        self.spec = spec
        self.paper_scale = paper_scale
        self.seed = int(seed)
        self.faults = make_fault_injector(faults)
        self.partitioner = partitioner or random_partition
        if isinstance(shards, ShardStore):
            shards = ShardingConfig(store=shards)
        self.shards = shards
        if self.shards is not None and self.shards.store.axis != "rows":
            raise ValueError(
                "DistributedSvm partitions examples: needs a 'rows'-axis "
                f"shard set, got {self.shards.store.axis!r}"
            )
        #: populated by :meth:`solve` when fault injection is active
        self.fault_report: FaultReport | None = None
        self.name = f"DistributedSVM[x{self.n_workers}, sigma'={sigma_prime:g}]"

    def solve(
        self,
        problem: SvmProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
    ) -> SvmTrainResult:
        """Train; returns a :class:`SvmTrainResult` (iterable as the legacy
        ``(w, alpha, history, ledger)`` tuple)."""
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        tracer = resolve_tracer(tracer)
        self.comm.metrics = tracer.metrics if tracer.enabled else None
        rng = np.random.default_rng(self.seed)
        csr = problem.dataset.csr
        groups: list[list[int]] | None = None
        if self.shards is not None:
            store = self.shards.store
            if store.n_major != problem.n or store.shape != csr.shape:
                raise ValueError(
                    f"shard set covers a {store.shape} matrix, "
                    f"problem matrix is {csr.shape}"
                )
            groups = store.partition(self.n_workers)
            parts = [store.coords_of(g) for g in groups]
        else:
            parts = list(self.partitioner(problem.n, self.n_workers, rng))
        y = problem.y.astype(np.float64)
        inv_lam_n = 1.0 / (problem.lam * problem.n)

        workers = []
        for rank, rows in enumerate(parts):
            streamer = None
            if groups is not None:
                streamer = ShardStreamer(
                    self.shards, groups[rank], tracer=tracer, worker=rank
                )
                local = streamer.assemble()
            else:
                local = csr.take_rows(rows)
            workers.append(
                {
                    "rows": rows,
                    "indptr": local.indptr,
                    "indices": local.indices,
                    "data": local.data.astype(np.float64),
                    "norms": local.row_norms_sq().astype(np.float64),
                    "y": y[rows],
                    "alpha": np.zeros(rows.shape[0]),
                    "rng": np.random.default_rng(self.seed + 1000 + rank),
                    "nnz": local.nnz,
                    "streamer": streamer,
                }
            )

        shared_bytes = 4 * (
            self.paper_scale.n_features if self.paper_scale else problem.m
        )
        timing = SequentialCpuTiming(self.spec)
        w = np.zeros(problem.m)
        history = ConvergenceHistory(label=self.name)
        ledger = tracer.open_ledger()
        t0 = time.perf_counter()

        def gap_of() -> tuple[float, float]:
            alpha_global = np.zeros(problem.n)
            for wk in workers:
                alpha_global[wk["rows"]] = wk["alpha"]
            return (
                problem.duality_gap(alpha_global),
                problem.dual_objective(alpha_global),
            )

        root_span = tracer.span(
            "distributed.train", category="driver", solver=self.name,
            n_workers=self.n_workers, n_epochs=n_epochs,
        )
        root_span.__enter__()
        with tracer.span("gap_eval", category="monitor", epoch=0):
            gap, obj = gap_of()
        history.append(
            ConvergenceRecord(
                epoch=0, gap=gap, objective=obj, sim_time=0.0, wall_time=0.0, updates=0
            )
        )
        injector = self.faults
        report = FaultReport() if injector is not None else None
        self.fault_report = report
        benign = WorkerEpochFaults()

        sim = 0.0
        updates = 0
        try:
            for epoch in range(1, n_epochs + 1):
                epoch_span = tracer.span("epoch", category="driver", epoch=epoch)
                epoch_span.__enter__()
                plan = (
                    injector.plan_epoch(epoch, self.n_workers)
                    if injector is not None
                    else None
                )
                if report is not None:
                    report.epochs += 1
                arrived: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
                max_compute = 0.0
                max_wall = 0.0  # compute + exposed shard streaming per worker
                fault_free_compute = 0.0
                retry_s = 0.0
                for rank, wk in enumerate(workers):
                    wf = plan[rank] if plan is not None else benign
                    if wf.dropout:
                        report.dropouts += 1
                        continue
                    local_w = w.copy()
                    indptr, indices, data = wk["indptr"], wk["indices"], wk["data"]
                    alpha, y_loc, norms = wk["alpha"], wk["y"], wk["norms"]
                    pending = np.zeros(alpha.shape[0])
                    for i in wk["rng"].permutation(alpha.shape[0]):
                        lo, hi = indptr[i], indptr[i + 1]
                        idx = indices[lo:hi]
                        v = data[lo:hi]
                        margin = float(v @ local_w[idx]) if lo != hi else 0.0
                        # inline clipped SDCA step with the *local* labels
                        if norms[i] > 0.0:
                            grad = (
                                problem.lam * problem.n * (1.0 - y_loc[i] * margin)
                                / norms[i]
                            )
                            new_a = min(max(alpha[i] + grad, 0.0), 1.0)
                        else:
                            new_a = 1.0
                        d = new_a - alpha[i]
                        if d != 0.0:
                            pending[i] += d
                            alpha[i] = new_a
                            if lo != hi:
                                local_w[idx] += v * (d * y_loc[i] * inv_lam_n)
                    wl = EpochWorkload(
                        n_coords=alpha.shape[0]
                        if self.paper_scale is None
                        else max(1, self.paper_scale.n_examples // self.n_workers),
                        nnz=wk["nnz"]
                        if self.paper_scale is None
                        else max(1, self.paper_scale.nnz // self.n_workers),
                        shared_len=problem.m,
                    )
                    compute_s = timing.epoch_seconds(wl)
                    fault_free_compute = max(fault_free_compute, compute_s)
                    worker_wall = compute_s * wf.straggler_multiplier
                    max_compute = max(max_compute, worker_wall)
                    if wk["streamer"] is not None:
                        # stream the shard group once per local epoch; with
                        # prefetch only the excess over compute extends this
                        # worker's wall clock
                        worker_wall += wk["streamer"].stream_epoch(
                            ledger, compute_s=worker_wall
                        )
                    max_wall = max(max_wall, worker_wall)
                    updates += alpha.shape[0]
                    if report is not None:
                        if wf.straggler_multiplier > 1.0:
                            report.stragglers += 1
                        report.transient_failures += (
                            wf.send_failures + wf.recv_failures
                        )
                    retry_s += self.comm.retry_seconds(shared_bytes, wf.send_failures)
                    retry_s += self.comm.retry_seconds(shared_bytes, wf.recv_failures)
                    lost = (
                        wf.drop_update
                        or wf.stale_update  # SDCA keeps no stale buffer: lost
                        or self.comm.retry.exhausted(wf.send_failures)
                    )
                    if lost:
                        report.dropped_updates += 1
                        # the master never saw this delta; revert the local dual
                        # variables so they stay consistent with w
                        alpha -= pending
                        continue
                    arrived.append((local_w - w, pending, alpha))

                n_arrived = len(arrived)
                if report is not None:
                    report.survivor_counts.append(n_arrived)
                with tracer.span(
                    "aggregate", category="cluster", epoch=epoch, survivors=n_arrived
                ):
                    # CoCoA's gamma = sigma'/K, rescaled over the K' survivors
                    gamma = self.sigma_prime / n_arrived if n_arrived else 0.0
                    dw_total = np.zeros(problem.m)
                    for dw, pending, alpha_ref in arrived:
                        dw_total += dw
                        # scale the local dual variables to stay consistent with
                        # the gamma-scaled global update
                        if gamma != 1.0:
                            alpha_ref -= (1.0 - gamma) * pending
                            np.clip(alpha_ref, 0.0, 1.0, out=alpha_ref)
                    w += gamma * dw_total
                per_epoch_net = self.comm.allreduce_seconds(shared_bytes)
                ledger.add("compute_host", fault_free_compute)
                straggler_wait = max_compute - fault_free_compute
                if straggler_wait > 0.0:
                    ledger.add("wait_straggler", straggler_wait)
                    tracer.count("dist.straggler_wait_s", straggler_wait)
                ledger.add("comm_network", per_epoch_net)
                if retry_s > 0.0:
                    ledger.add("comm_retry", retry_s)
                sim += max(max_compute, max_wall) + per_epoch_net + retry_s
                epoch_span.__exit__(None, None, None)
                tracer.count("dist.epochs")
                tracer.observe("dist.gamma", gamma)
                tracer.observe("dist.survivors", n_arrived)
                if epoch % monitor_every == 0 or epoch == n_epochs:
                    with tracer.span("gap_eval", category="monitor", epoch=epoch):
                        gap, obj = gap_of()
                    history.append(
                        ConvergenceRecord(
                            epoch=epoch,
                            gap=gap,
                            objective=obj,
                            sim_time=sim,
                            wall_time=time.perf_counter() - t0,
                            updates=updates,
                        )
                    )
                    if target_gap is not None and gap <= target_gap:
                        break
        finally:
            for wk in workers:
                if wk["streamer"] is not None:
                    wk["streamer"].close()

        root_span.__exit__(None, None, None)
        alpha_global = np.zeros(problem.n)
        for wk in workers:
            alpha_global[wk["rows"]] = wk["alpha"]
        if tracer.enabled and report is not None:
            report.record_to(tracer.metrics)
        return SvmTrainResult(
            formulation="dual",
            weights=w,
            shared=w,
            history=history,
            solver_name=self.name,
            ledger=ledger,
            alpha=alpha_global,
            fault_report=report,
            trace=tracer if tracer.enabled else None,
            metrics=tracer.metrics if tracer.enabled else None,
        )
