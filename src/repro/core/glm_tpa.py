"""GPU (TPA) solvers for the GLM extensions: elastic net and SVM.

The paper's Section I argument — stochastic coordinate methods power more
than ridge regression — made concrete: the same twice-parallel asynchronous
execution (waves of thread blocks, strided tree-reduced inner products,
atomic scatter) drives the elastic-net soft-threshold update and the SVM's
box-clipped SDCA step via :class:`~repro.gpu.glm_engine.GlmTpaEngine`.
"""

from __future__ import annotations

import time

import numpy as np

from ..gpu.device import GpuDevice
from ..gpu.glm_engine import ElasticNetPrimalRule, GlmTpaEngine, SvmDualRule
from ..gpu.profiler import KernelProfile
from ..gpu.spec import GTX_TITAN_X, GpuSpec
from ..gpu.timing import GpuTimingModel
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.elasticnet import ElasticNetProblem
from ..objectives.svm import SvmProblem
from ..obs import resolve_tracer
from ..perf.timing import EpochWorkload

__all__ = ["TpaElasticNet", "TpaSvm"]


class _GlmTpaBase:
    """Shared scaffolding: device booking, timing, epoch loop."""

    def __init__(
        self,
        device: GpuDevice | GpuSpec = GTX_TITAN_X,
        *,
        n_threads: int = 256,
        wave_size: int | None = None,
        dtype=np.float32,
        seed: int = 0,
        profiler: KernelProfile | None = None,
        timing_workload: EpochWorkload | None = None,
        planned: bool = True,
    ) -> None:
        if isinstance(device, GpuSpec):
            device = GpuDevice(device)
        self.device = device
        self.n_threads = int(n_threads)
        self.wave_size = wave_size
        self.dtype = np.dtype(dtype)
        self.seed = int(seed)
        self.profiler = profiler
        self.timing_workload = timing_workload
        self.planned = bool(planned)

    def _effective_wave(self) -> int:
        return self.wave_size or self.device.spec.resident_blocks

    def _book(self, matrix, n_vec: int) -> None:
        self.device.reset()
        nbytes = (
            matrix.indptr.nbytes
            + matrix.indices.nbytes
            + matrix.nnz * self.dtype.itemsize
        )
        self.device.memory.alloc("dataset", nbytes)
        self.device.alloc_vector("vectors", n_vec, self.dtype.itemsize)

    def _epoch_seconds(self, matrix, shared_len: int) -> float:
        wl = self.timing_workload or EpochWorkload(
            n_coords=matrix.n_major, nnz=matrix.nnz, shared_len=shared_len
        )
        return GpuTimingModel(self.device.spec).epoch_seconds(wl)


class TpaElasticNet(_GlmTpaBase):
    """Elastic-net coordinate descent on the simulated GPU."""

    name = "TPA-ElasticNet"

    def solve(
        self,
        problem: ElasticNetProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        tol: float | None = None,
        tracer=None,
    ):
        """Train; returns ``(beta, history)`` like the CPU solver."""
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        tracer = resolve_tracer(tracer)
        ledger = tracer.open_ledger()
        csc = problem.dataset.csc
        self._book(csc, problem.m + problem.n)
        rule = ElasticNetPrimalRule(
            csc.col_norms_sq(), problem.n, problem.lam, problem.l1_ratio,
            dtype=self.dtype,
        )
        engine = GlmTpaEngine(
            csc.indptr,
            csc.indices,
            csc.data,
            rule=rule,
            wave_size=self._effective_wave(),
            n_threads=self.n_threads,
            dtype=self.dtype,
            y=problem.y,
            profiler=self.profiler,
            tracer=tracer,
            planned=self.planned,
        )
        beta = np.zeros(problem.m, dtype=self.dtype)
        w = np.zeros(problem.n, dtype=self.dtype)
        rng = np.random.default_rng(self.seed)
        history = ConvergenceHistory(label=self.name)
        epoch_s = self._epoch_seconds(csc, problem.n)
        with tracer.span(
            "train", category="driver", solver=self.name, n_epochs=n_epochs
        ):
            t0 = time.perf_counter()
            history.append(
                ConvergenceRecord(
                    epoch=0,
                    gap=problem.subgradient_optimality(beta.astype(np.float64)),
                    objective=problem.objective(beta.astype(np.float64)),
                    sim_time=0.0,
                    wall_time=0.0,
                    updates=0,
                )
            )
            sim = 0.0
            updates = 0
            for epoch in range(1, n_epochs + 1):
                with tracer.span("epoch", category="driver", epoch=epoch):
                    engine.run_epoch(beta, w, rng.permutation(problem.m), rng)
                    ledger.add("compute_gpu", epoch_s)
                sim += epoch_s
                updates += problem.m
                tracer.count("train.epochs")
                tracer.count("scd.updates", problem.m)
                if epoch % monitor_every == 0 or epoch == n_epochs:
                    b64 = beta.astype(np.float64)
                    with tracer.span("gap_eval", category="monitor", epoch=epoch):
                        kkt = problem.subgradient_optimality(b64)
                    history.append(
                        ConvergenceRecord(
                            epoch=epoch,
                            gap=kkt,
                            objective=problem.objective(b64),
                            sim_time=sim,
                            wall_time=time.perf_counter() - t0,
                            updates=updates,
                            extras={"nnz_beta": int(np.count_nonzero(beta))},
                        )
                    )
                    if tol is not None and kkt <= tol:
                        break
        return beta.astype(np.float64), history


class TpaSvm(_GlmTpaBase):
    """SVM-SDCA on the simulated GPU."""

    name = "TPA-SVM"

    def solve(
        self,
        problem: SvmProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
    ):
        """Train; returns ``(w, alpha, history)`` like the CPU solver."""
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        tracer = resolve_tracer(tracer)
        ledger = tracer.open_ledger()
        csr = problem.dataset.csr
        self._book(csr, problem.n + problem.m)
        rule = SvmDualRule(
            problem.y, csr.row_norms_sq(), problem.n, problem.lam, dtype=self.dtype
        )
        engine = GlmTpaEngine(
            csr.indptr,
            csr.indices,
            csr.data,
            rule=rule,
            wave_size=self._effective_wave(),
            n_threads=self.n_threads,
            dtype=self.dtype,
            profiler=self.profiler,
            tracer=tracer,
            planned=self.planned,
        )
        alpha = np.zeros(problem.n, dtype=self.dtype)
        w = np.zeros(problem.m, dtype=self.dtype)
        rng = np.random.default_rng(self.seed)
        history = ConvergenceHistory(label=self.name)
        epoch_s = self._epoch_seconds(csr, problem.m)
        with tracer.span(
            "train", category="driver", solver=self.name, n_epochs=n_epochs
        ):
            t0 = time.perf_counter()
            history.append(
                ConvergenceRecord(
                    epoch=0,
                    gap=problem.duality_gap(alpha.astype(np.float64)),
                    objective=problem.dual_objective(alpha.astype(np.float64)),
                    sim_time=0.0,
                    wall_time=0.0,
                    updates=0,
                )
            )
            sim = 0.0
            updates = 0
            for epoch in range(1, n_epochs + 1):
                with tracer.span("epoch", category="driver", epoch=epoch):
                    engine.run_epoch(alpha, w, rng.permutation(problem.n), rng)
                    ledger.add("compute_gpu", epoch_s)
                sim += epoch_s
                updates += problem.n
                tracer.count("train.epochs")
                tracer.count("scd.updates", problem.n)
                if epoch % monitor_every == 0 or epoch == n_epochs:
                    a64 = np.clip(alpha.astype(np.float64), 0.0, 1.0)
                    with tracer.span("gap_eval", category="monitor", epoch=epoch):
                        gap = problem.duality_gap(a64)
                    history.append(
                        ConvergenceRecord(
                            epoch=epoch,
                            gap=gap,
                            objective=problem.dual_objective(a64),
                            sim_time=sim,
                            wall_time=time.perf_counter() - t0,
                            updates=updates,
                            extras={"support_vectors": int(np.count_nonzero(alpha))},
                        )
                    )
                    if target_gap is not None and gap <= target_gap:
                        break
        return (
            w.astype(np.float64),
            np.clip(alpha.astype(np.float64), 0.0, 1.0),
            history,
        )
