"""Cluster execution planner: from (dataset, cluster) to a training plan.

The paper's deployment decisions are made by hand: solve the dual and
partition by example for criteo, pick 4 Titan Xs because 40 GB does not fit
fewer, communicate over PCIe because the devices share a box.  This module
automates those decisions with the library's own device/fabric models:

1. **formulation** — primal broadcasts a length-N shared vector, dual a
   length-M one; compute per epoch (nnz) is identical, so the cheaper
   aggregation payload wins (ties go to the dual, the paper's large-scale
   choice);
2. **worker count** — grown in powers of two until every partition fits its
   device's memory (the Section V-B gate), or fixed by an explicit device
   list;
3. **waves** — staleness-preserving wave sizes per device;
4. **partitioner** — throughput-proportional when the devices are
   heterogeneous, uniform random otherwise;
5. **aggregation** — adaptive (Algorithm 4) whenever K > 1;
6. **predicted epoch cost** — straight from the same cost models the
   engine will book, so the plan's estimate matches the run's ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.comm import SimCommunicator
from ..cluster.partition import proportional_partition
from ..cpu import XEON_8C, CpuSpec, SequentialCpuTiming
from ..data import Dataset
from ..gpu.device import GpuDevice
from ..gpu.spec import GpuSpec
from ..gpu.timing import GpuTimingModel
from ..objectives.ridge import RidgeProblem
from ..perf.link import ETHERNET_10G, PCIE3_X16_PINNED, Link
from ..solvers.scd import SequentialKernelFactory
from .distributed import DistributedSCD
from .scale import PaperScale
from .tpa_scd import TpaScdKernelFactory, scaled_wave_size

__all__ = ["ClusterSpec", "ExecutionPlan", "plan_execution"]

#: CSR/CSC bytes per stored nonzero at 32-bit types (index + value)
_BYTES_PER_NNZ = 8


@dataclass(frozen=True)
class ClusterSpec:
    """What hardware is available for a training run.

    ``devices`` is either a fixed list of GPUs (one worker each), a single
    :class:`GpuSpec` that may be replicated up to ``max_workers`` times, or
    ``None`` for CPU-only workers.
    """

    devices: list[GpuSpec] | GpuSpec | None = None
    max_workers: int = 8
    network: Link = ETHERNET_10G
    pcie: Link = PCIE3_X16_PINNED
    cpu: CpuSpec = XEON_8C

    def device_list(self, k: int) -> list[GpuSpec] | None:
        if self.devices is None:
            return None
        if isinstance(self.devices, GpuSpec):
            return [self.devices] * k
        return list(self.devices)


@dataclass
class ExecutionPlan:
    """A fully-resolved training configuration plus its predicted cost."""

    formulation: str
    n_workers: int
    aggregation: str
    devices: list[GpuSpec] | None
    wave_sizes: list[int] | None
    partitioner_kind: str
    predicted_compute_s: float
    predicted_network_s: float
    predicted_pcie_s: float
    per_worker_bytes: int
    fits: bool
    notes: list[str] = field(default_factory=list)

    @property
    def predicted_epoch_seconds(self) -> float:
        return (
            self.predicted_compute_s
            + self.predicted_network_s
            + self.predicted_pcie_s
        )

    def describe(self) -> str:
        dev = (
            "CPU workers"
            if self.devices is None
            else ", ".join(d.name for d in self.devices)
        )
        return (
            f"{self.formulation} x{self.n_workers} [{dev}] "
            f"agg={self.aggregation} part={self.partitioner_kind} "
            f"epoch~{self.predicted_epoch_seconds:.3g}s "
            f"(compute {self.predicted_compute_s:.3g}, "
            f"net {self.predicted_network_s:.3g}, "
            f"pcie {self.predicted_pcie_s:.3g})"
        )

    # -- engine construction -------------------------------------------------
    def build_engine(
        self,
        problem: RidgeProblem,
        *,
        cluster: ClusterSpec,
        paper_scale: PaperScale | None = None,
        seed: int = 0,
    ) -> DistributedSCD:
        """Instantiate the distributed engine this plan describes."""
        if not self.fits:
            raise ValueError(
                "plan does not fit device memory; increase max_workers or "
                "use larger devices"
            )
        partitioner = None
        if self.partitioner_kind == "proportional" and self.devices is not None:
            speeds = np.array(
                [d.mem_bandwidth_gbs * d.mem_efficiency for d in self.devices]
            )
            partitioner = lambda n, k, rng: proportional_partition(n, speeds, rng)

        if self.devices is None:
            factory = SequentialKernelFactory(cluster.cpu)
            worker_factory = factory
            pcie = None
        else:
            devices = self.devices
            waves = self.wave_sizes or [None] * len(devices)

            def worker_factory(rank: int) -> TpaScdKernelFactory:
                return TpaScdKernelFactory(
                    GpuDevice(devices[rank], pcie=cluster.pcie),
                    wave_size=waves[rank],
                )

            pcie = cluster.pcie
        return DistributedSCD(
            worker_factory,
            self.formulation,
            n_workers=self.n_workers,
            aggregation=self.aggregation,
            network=cluster.network,
            pcie=pcie,
            paper_scale=paper_scale,
            seed=seed,
            partitioner=partitioner,
        )


def _dims(dataset: Dataset, paper_scale: PaperScale | None):
    if paper_scale is not None:
        return (
            paper_scale.n_examples,
            paper_scale.n_features,
            paper_scale.nnz,
        )
    return dataset.n_examples, dataset.n_features, dataset.nnz


def plan_execution(
    dataset: Dataset,
    *,
    cluster: ClusterSpec | None = None,
    paper_scale: PaperScale | None = None,
) -> ExecutionPlan:
    """Resolve a training plan for ``dataset`` on ``cluster``.

    When ``paper_scale`` is given the plan is sized and priced for the
    paper-scale footprint (memory gating, payloads) rather than the
    in-process arrays.
    """
    cluster = cluster or ClusterSpec()
    n, m, nnz = _dims(dataset, paper_scale)
    notes: list[str] = []

    # 1) formulation by aggregation payload (compute cost is identical)
    formulation = "dual" if m <= n else "primal"
    shared_len = m if formulation == "dual" else n
    notes.append(
        f"shared vector: {'M' if formulation == 'dual' else 'N'}="
        f"{shared_len:,} floats -> {formulation} formulation"
    )

    total_bytes = nnz * _BYTES_PER_NNZ

    # 2) worker count: fixed list, or grow K until partitions fit
    fixed = isinstance(cluster.devices, list)
    if fixed:
        k_candidates = [len(cluster.devices)]
    elif cluster.devices is None:
        k_candidates = [min(cluster.max_workers, 4)]  # CPU: pick a default
    else:
        k_candidates = [
            k for k in (1, 2, 4, 8, 16, 32) if k <= cluster.max_workers
        ]

    chosen_k = None
    fits = True
    if cluster.devices is None:
        chosen_k = k_candidates[0]
        per_worker = total_bytes // chosen_k
    else:
        per_worker = total_bytes
        for k in k_candidates:
            devices = cluster.device_list(k)
            per_worker = total_bytes // k
            capacity = min(d.mem_capacity_bytes for d in devices)
            # leave ~5% headroom for the model/shared vectors — the paper's
            # 7.3 GB webspam sample must still fit the 8 GB M4000
            if per_worker <= 0.95 * capacity:
                chosen_k = k
                break
        if chosen_k is None:
            chosen_k = k_candidates[-1]
            fits = False
            notes.append(
                f"{per_worker / 2**30:.1f} GiB per worker exceeds the "
                "smallest device even at the maximum worker count"
            )
        else:
            notes.append(
                f"{total_bytes / 2**30:.2f} GiB total -> "
                f"{per_worker / 2**30:.2f} GiB/worker fits at K={chosen_k}"
            )

    devices = cluster.device_list(chosen_k)

    # 3) staleness-preserving waves
    wave_sizes = None
    if devices is not None:
        coords_paper = n if formulation == "dual" else m
        coords_local = max(1, coords_paper // chosen_k)
        scaled_coords = (
            dataset.n_examples if formulation == "dual" else dataset.n_features
        )
        scaled_local = max(1, scaled_coords // chosen_k)
        wave_sizes = [
            scaled_wave_size(d, scaled_local, coords_local) for d in devices
        ]

    # 4) partitioner
    if devices is not None and len(set(d.name for d in devices)) > 1:
        partitioner_kind = "proportional"
        notes.append("heterogeneous devices -> throughput-proportional shares")
    else:
        partitioner_kind = "random"

    # 5) aggregation
    aggregation = "adaptive" if chosen_k > 1 else "averaging"

    # 6) predicted epoch cost from the same models the engine books
    from ..perf.timing import EpochWorkload

    worker_wl = EpochWorkload(
        n_coords=max(1, (n if formulation == "dual" else m) // chosen_k),
        nnz=max(1, nnz // chosen_k),
        shared_len=shared_len,
    )
    if devices is None:
        compute = SequentialCpuTiming(cluster.cpu).epoch_seconds(worker_wl)
        pcie_s = 0.0
    else:
        from .distributed import HostModel

        compute = max(
            GpuTimingModel(d).epoch_seconds(worker_wl) for d in devices
        ) + HostModel().epoch_seconds(shared_len)
        pcie_s = 2.0 * cluster.pcie.transfer_seconds(4 * shared_len)
    comm = SimCommunicator(chosen_k, cluster.network)
    network_s = comm.allreduce_seconds(4 * shared_len)

    return ExecutionPlan(
        formulation=formulation,
        n_workers=chosen_k,
        aggregation=aggregation,
        devices=devices,
        wave_sizes=wave_sizes,
        partitioner_kind=partitioner_kind,
        predicted_compute_s=compute,
        predicted_network_s=network_s,
        predicted_pcie_s=pcie_s,
        per_worker_bytes=int(per_worker),
        fits=fits,
        notes=notes,
    )
