"""Paper-scale dataset dimensions used to price the reproduced time axes.

The reproduction runs the real algorithms on ~100x scaled-down synthetic
data, but the *time axes* of the paper's figures depend on the original
dataset dimensions (nonzeros per epoch, shared-vector bytes per aggregation
round).  A :class:`PaperScale` carries those original dimensions; the
experiment drivers hand per-worker slices of it to the device cost models so
modelled times keep the paper's compute/communication proportions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.timing import EpochWorkload

__all__ = ["PaperScale", "WEBSPAM_PAPER", "CRITEO_PAPER"]


@dataclass(frozen=True)
class PaperScale:
    """Original dimensions of one of the paper's datasets."""

    name: str
    n_examples: int
    n_features: int
    nnz: int

    def n_coords(self, formulation: str) -> int:
        """Coordinates per epoch: features (primal) or examples (dual)."""
        if formulation == "primal":
            return self.n_features
        if formulation == "dual":
            return self.n_examples
        raise ValueError(f"unknown formulation {formulation!r}")

    def shared_len(self, formulation: str) -> int:
        """Length of the vector aggregated over the network each epoch."""
        if formulation == "primal":
            return self.n_examples
        if formulation == "dual":
            return self.n_features
        raise ValueError(f"unknown formulation {formulation!r}")

    def worker_workload(
        self, formulation: str, coord_fraction: float, nnz_fraction: float
    ) -> EpochWorkload:
        """One worker's per-epoch workload at paper scale.

        ``coord_fraction`` / ``nnz_fraction`` are the worker's shares of the
        scaled dataset's coordinates and nonzeros, carried over to the
        original dimensions.
        """
        if not 0.0 < coord_fraction <= 1.0 or not 0.0 <= nnz_fraction <= 1.0:
            raise ValueError("fractions must lie in (0, 1]")
        return EpochWorkload(
            n_coords=max(1, round(self.n_coords(formulation) * coord_fraction)),
            nnz=max(1, round(self.nnz * nnz_fraction)),
            shared_len=self.shared_len(formulation),
        )


#: the paper's webspam training sample: 262,938 examples, 680,715 distinct
#: features, ~3,700 nonzeros/example (7.3 GB in 32-bit CSC/CSR).
WEBSPAM_PAPER = PaperScale(
    name="webspam",
    n_examples=262_938,
    n_features=680_715,
    nnz=980_000_000,
)

#: the paper's criteo 1-day sample: 200 M examples x 75 M features, 26 one-hot
#: categorical features per example (values all 1), ~40 GB in CSR.
CRITEO_PAPER = PaperScale(
    name="criteo-1day",
    n_examples=200_000_000,
    n_features=75_000_000,
    nnz=5_200_000_000,
)
