"""TPA-SCD: twice-parallel asynchronous SCD on the simulated GPU (Alg. 2).

This is the paper's primary contribution.  The kernel factory binds a data
partition onto a :class:`~repro.gpu.device.GpuDevice`: it books the device
memory (raising :class:`~repro.gpu.memory.GpuOutOfMemoryError` when the
partition does not fit, which is what forces the multi-GPU scale-out of
Section V), casts everything to float32 as the paper does, and wires the
wave-based :class:`~repro.gpu.engine.TpaScdEngine` to the generic solver
driver.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import GpuDevice
from ..gpu.engine import TpaScdEngine
from ..gpu.plan import plan_cache_stats
from ..gpu.profiler import KernelProfile
from ..gpu.spec import GTX_TITAN_X, GpuSpec
from ..gpu.timing import GpuTimingModel
from ..perf.timing import EpochWorkload
from ..solvers.base import BoundKernel, ScdSolver
from ..sparse import CscMatrix, CsrMatrix

__all__ = ["TpaScdKernelFactory", "TpaScd", "scaled_wave_size"]


def scaled_wave_size(spec: GpuSpec, n_coords_scaled: int, n_coords_paper: int) -> int:
    """Wave size preserving the paper's staleness *fraction* at reduced scale.

    On real hardware ``spec.resident_blocks`` thread blocks (a few hundred)
    run concurrently against hundreds of thousands of coordinates, so the
    fraction of an epoch executed against a stale shared vector is tiny.
    The reproduction datasets are ~100x smaller; running the full resident
    wave against them would make *every* update stale — a staleness regime
    the real system never enters.  This helper scales the wave so that
    ``wave / n_coords`` matches the paper's ratio.
    """
    if n_coords_scaled <= 0 or n_coords_paper <= 0:
        raise ValueError("coordinate counts must be positive")
    frac = spec.resident_blocks / n_coords_paper
    return max(1, round(frac * n_coords_scaled))


class TpaScdKernelFactory:
    """Binds TPA-SCD epochs to a simulated GPU.

    Parameters
    ----------
    device:
        A :class:`GpuDevice` or a bare :class:`GpuSpec` (a fresh device is
        created around it).
    n_threads:
        Threads per block (power of two); the paper's kernels use warp
        multiples — 256 is a typical choice.
    wave_size:
        Override for the number of concurrently resident thread blocks
        (defaults to the device's ``resident_blocks``); exposed for the
        staleness ablation.
    simulated_dataset_nbytes:
        Paper-scale footprint to book against device memory instead of the
        in-process array sizes (see Fig. 10's 40 GB criteo sample).
    out_of_core:
        When True the bulk ``"dataset"`` allocation is skipped at bind time:
        the data does not live resident on the device but streams through a
        :class:`~repro.shards.ShardCache`, which books per-shard residency
        against this device's memory itself.  Set automatically by the
        distributed engine when a ``shards=`` config is supplied.
    planned:
        Execute epochs through the compiled/pooled
        :class:`~repro.gpu.plan.WavePlan` runtime (default).  ``False``
        selects the per-wave seed path; both are bit-identical.
    """

    def __init__(
        self,
        device: GpuDevice | GpuSpec = GTX_TITAN_X,
        *,
        n_threads: int = 256,
        wave_size: int | None = None,
        dtype=np.float32,
        simulated_dataset_nbytes: int | None = None,
        out_of_core: bool = False,
        timing_workload: EpochWorkload | None = None,
        profiler: "KernelProfile | None" = None,
        tracer=None,
        planned: bool = True,
    ) -> None:
        if isinstance(device, GpuSpec):
            device = GpuDevice(device)
        self.device = device
        self.profiler = profiler
        self.tracer = tracer
        self.planned = bool(planned)
        self.n_threads = int(n_threads)
        self.wave_size = int(wave_size) if wave_size is not None else None
        self.dtype = np.dtype(dtype)
        self.simulated_dataset_nbytes = simulated_dataset_nbytes
        self.out_of_core = bool(out_of_core)
        self.timing_workload = timing_workload
        self.name = f"TPA-SCD({device.spec.name})"

    def _effective_wave(self) -> int:
        return self.wave_size or self.device.spec.resident_blocks

    def _build_engine(self, matrix) -> TpaScdEngine:
        """Construct the wave engine, booking plan-cache traffic when traced."""
        before = plan_cache_stats() if self.planned else None
        engine = TpaScdEngine(
            matrix.indptr,
            matrix.indices,
            matrix.data,
            wave_size=self._effective_wave(),
            n_threads=self.n_threads,
            dtype=self.dtype,
            profiler=self.profiler,
            tracer=self.tracer,
            planned=self.planned,
        )
        tracer = self.tracer
        if before is not None and tracer is not None and tracer.enabled:
            after = plan_cache_stats()
            hits = after["hits"] - before["hits"]
            misses = after["misses"] - before["misses"]
            if hits:
                tracer.count("gpu.plan_cache.hits", hits)
            if misses:
                tracer.count("gpu.plan_cache.misses", misses)
        return engine

    def _priced(self, workload: EpochWorkload) -> EpochWorkload:
        return self.timing_workload or workload

    def _book_memory(self, matrix, n_vec_elems: int) -> None:
        """Account for the partition + model/shared vectors on the device."""
        self.device.reset()
        if not self.out_of_core:
            nbytes = (
                self.simulated_dataset_nbytes
                if self.simulated_dataset_nbytes is not None
                else matrix.indptr.nbytes
                + matrix.indices.nbytes
                + matrix.nnz * self.dtype.itemsize
            )
            self.device.memory.alloc("dataset", int(nbytes))
        self.device.alloc_vector("vectors", n_vec_elems, self.dtype.itemsize)

    def bind_primal(
        self, csc: CscMatrix, y: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        self._book_memory(csc, csc.n_major + csc.shape[0])
        engine = self._build_engine(csc)
        y32 = y.astype(self.dtype, copy=False)
        nlam = self.dtype.type(n_global * lam)
        inv_denom = (1.0 / (csc.col_norms_sq().astype(np.float64) + n_global * lam)).astype(
            self.dtype
        )

        def run_epoch(beta, w, perm, rng):
            return engine.run_primal_epoch(y32, inv_denom, nlam, beta, w, perm)

        return BoundKernel(
            run_epoch=run_epoch,
            workload=self._priced(
                EpochWorkload(
                    n_coords=csc.n_major, nnz=csc.nnz, shared_len=csc.shape[0]
                )
            ),
            timing=GpuTimingModel(self.device.spec),
            n_coords=csc.n_major,
            shared_len=csc.shape[0],
            dtype=self.dtype,
        )

    def bind_dual(
        self, csr: CsrMatrix, y_local: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        self._book_memory(csr, csr.n_major + csr.shape[1])
        engine = self._build_engine(csr)
        y32 = y_local.astype(self.dtype, copy=False)
        lam_t = self.dtype.type(lam)
        nlam = self.dtype.type(n_global * lam)
        inv_denom = (
            1.0 / (n_global * lam + csr.row_norms_sq().astype(np.float64))
        ).astype(self.dtype)

        def run_epoch(alpha, wbar, perm, rng):
            return engine.run_dual_epoch(
                y32, inv_denom, lam_t, nlam, alpha, wbar, perm
            )

        return BoundKernel(
            run_epoch=run_epoch,
            workload=self._priced(
                EpochWorkload(
                    n_coords=csr.n_major, nnz=csr.nnz, shared_len=csr.shape[1]
                )
            ),
            timing=GpuTimingModel(self.device.spec),
            n_coords=csr.n_major,
            shared_len=csr.shape[1],
            dtype=self.dtype,
        )


class TpaScd(ScdSolver):
    """User-facing TPA-SCD solver running on a simulated GPU."""

    def __init__(
        self,
        formulation: str = "primal",
        *,
        device: GpuDevice | GpuSpec = GTX_TITAN_X,
        n_threads: int = 256,
        wave_size: int | None = None,
        seed: int = 0,
        planned: bool = True,
    ) -> None:
        super().__init__(
            TpaScdKernelFactory(
                device, n_threads=n_threads, wave_size=wave_size, planned=planned
            ),
            formulation,
            seed,
        )
