"""CPU device models: Xeon spec and thread-scaling cost models."""

from .spec import XEON_8C, CpuSpec, SequentialCpuTiming, ThreadedCpuTiming

__all__ = ["CpuSpec", "XEON_8C", "SequentialCpuTiming", "ThreadedCpuTiming"]
