"""CPU device model standing in for the paper's Xeon test machines.

The paper's CPU baselines ran on 8-core Intel Xeon E5 machines at 2.40 GHz
with 2-way SMT (16 threads).  We model the three observations it reports:

* sequential SCD processes the data at a fixed nonzeros/second rate;
* A-SCD (atomic float adds) achieves only ~2x with 16 threads because the
  CPU lacks hardware float atomic-add ("we attribute [the modest speed-up]
  to the lack of hardware support for floating point atomic addition");
* PASSCoDe-Wild achieves ~4x because it skips the atomicity.

The scaling exponents below are calibrated so 16 threads land on those
factors while remaining monotone and sub-linear for other thread counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..perf.timing import EpochWorkload

__all__ = ["CpuSpec", "XEON_8C", "SequentialCpuTiming", "ThreadedCpuTiming"]


@dataclass(frozen=True)
class CpuSpec:
    """Calibrated CPU throughput model.

    ``seq_nnz_per_sec`` is the sustained rate at which the optimized
    single-thread C++ implementation streams stored nonzeros (inner product
    read + shared-vector write per nonzero); ``coord_overhead_s`` prices the
    per-coordinate bookkeeping (permutation lookup, scalar update).
    ``atomic_scaling`` / ``wild_scaling`` are the exponents ``p`` of the
    thread-scaling law ``speedup(T) = T^p``.
    """

    name: str
    n_cores: int
    threads_per_core: int
    clock_ghz: float
    seq_nnz_per_sec: float
    coord_overhead_s: float
    atomic_scaling: float
    wild_scaling: float
    #: last-level cache size; coordinate updates scatter into the shared
    #: vector, and once it no longer fits in LLC every update is a DRAM
    #: round-trip
    llc_bytes: int = 20 * 2**20
    #: fraction of the streaming rate sustained when the shared vector
    #: exceeds the LLC (random DRAM scatter).  webspam's shared vectors are
    #: cache-resident (1-2.7 MB); criteo's 300 MB dual shared vector is not —
    #: a large part of why the paper's GPU advantage grows to 20-40x there.
    dram_scatter_penalty: float = 0.35

    @property
    def max_threads(self) -> int:
        return self.n_cores * self.threads_per_core

    def thread_speedup(self, n_threads: int, mode: str) -> float:
        """Multiplicative speedup over one thread for the given write mode."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if n_threads > self.max_threads:
            raise ValueError(
                f"{self.name} supports at most {self.max_threads} threads"
            )
        if mode == "atomic":
            p = self.atomic_scaling
        elif mode == "wild":
            p = self.wild_scaling
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return n_threads**p


#: calibration: 16**0.25 = 2.0 (A-SCD's observed 2x) and 16**0.5 = 4.0
#: (PASSCoDe-Wild's observed 4x).  The sequential rate of 2e8 nnz/s matches
#: the paper's ~5 s/epoch on webspam's ~1e9 nonzeros.
XEON_8C = CpuSpec(
    name="xeon-8c-2.4GHz",
    n_cores=8,
    threads_per_core=2,
    clock_ghz=2.4,
    seq_nnz_per_sec=2.0e8,
    coord_overhead_s=2.0e-8,
    atomic_scaling=0.25,
    wild_scaling=0.50,
)


def _base_epoch_seconds(spec: CpuSpec, workload: EpochWorkload) -> float:
    """Single-thread epoch time, with the LLC-residency penalty applied."""
    rate = spec.seq_nnz_per_sec
    if workload.shared_len * 4 > spec.llc_bytes:
        rate *= spec.dram_scatter_penalty
    return workload.nnz / rate + workload.n_coords * spec.coord_overhead_s


class SequentialCpuTiming:
    """Cost model for single-threaded Algorithm 1."""

    component = "compute_host"

    def __init__(self, spec: CpuSpec = XEON_8C) -> None:
        self.spec = spec

    def epoch_seconds(self, workload: EpochWorkload) -> float:
        return _base_epoch_seconds(self.spec, workload)


class ThreadedCpuTiming:
    """Cost model for the asynchronous multi-threaded CPU solvers."""

    component = "compute_host"

    def __init__(
        self, spec: CpuSpec = XEON_8C, *, n_threads: int = 16, mode: str = "atomic"
    ) -> None:
        self.spec = spec
        self.n_threads = int(n_threads)
        self.mode = mode
        self._speedup = spec.thread_speedup(self.n_threads, mode)

    @property
    def speedup(self) -> float:
        return self._speedup

    def epoch_seconds(self, workload: EpochWorkload) -> float:
        return _base_epoch_seconds(self.spec, workload) / self._speedup


def _check_calibration() -> None:  # pragma: no cover - module self-check
    assert math.isclose(XEON_8C.thread_speedup(16, "atomic"), 2.0)
    assert math.isclose(XEON_8C.thread_speedup(16, "wild"), 4.0)


_check_calibration()
