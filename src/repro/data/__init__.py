"""Datasets: container, synthetic generators, LibSVM I/O, splitting."""

from .dataset import Dataset, train_test_split
from .io import load_libsvm, save_libsvm
from .preprocess import (
    binarize_labels,
    clip_values,
    normalize_rows,
    scale_columns,
)
from .store import (
    load_dataset_npz,
    load_history_json,
    save_dataset_npz,
    save_history_json,
)
from .synthetic import (
    make_block_correlated,
    make_criteo_like,
    make_dense_gaussian,
    make_sparse_regression,
    make_webspam_like,
    powerlaw_indices,
)

__all__ = [
    "Dataset",
    "train_test_split",
    "load_libsvm",
    "save_libsvm",
    "normalize_rows",
    "scale_columns",
    "clip_values",
    "binarize_labels",
    "save_dataset_npz",
    "load_dataset_npz",
    "save_history_json",
    "load_history_json",
    "make_block_correlated",
    "make_criteo_like",
    "make_dense_gaussian",
    "make_sparse_regression",
    "make_webspam_like",
    "powerlaw_indices",
]
