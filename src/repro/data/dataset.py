"""Dataset container used throughout the library.

A :class:`Dataset` pairs a training matrix with its label vector and caches
both compressed layouts: CSC is what the primal solver wants (coordinates are
feature columns), CSR is what the dual solver wants (coordinates are example
rows).  Conversion is done once and memoized, mirroring how the paper keeps a
format-appropriate copy resident in GPU memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..sparse import CscMatrix, CsrMatrix

__all__ = ["Dataset", "train_test_split"]


@dataclass
class Dataset:
    """A labelled sparse dataset.

    Parameters
    ----------
    matrix:
        Training matrix in either compressed layout; the other layout is
        derived lazily on first use.
    y:
        Label / target vector of length ``n_examples``.
    name:
        Human-readable identifier used in experiment reports.
    meta:
        Free-form provenance (generator parameters, file of origin, ...).
    """

    matrix: CscMatrix | CsrMatrix
    y: np.ndarray
    name: str = "unnamed"
    meta: dict[str, Any] = field(default_factory=dict)
    _csc: CscMatrix | None = field(default=None, repr=False)
    _csr: CsrMatrix | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y)
        if self.y.ndim != 1:
            raise ValueError("y must be a 1-D vector")
        if self.y.shape[0] != self.matrix.shape[0]:
            raise ValueError(
                f"y has {self.y.shape[0]} labels for {self.matrix.shape[0]} examples"
            )
        if isinstance(self.matrix, CscMatrix):
            self._csc = self.matrix
        elif isinstance(self.matrix, CsrMatrix):
            self._csr = self.matrix
        else:
            raise TypeError("matrix must be CscMatrix or CsrMatrix")

    # -- geometry -----------------------------------------------------------
    @property
    def n_examples(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def nbytes(self) -> int:
        """Size of one compressed copy — what a GPU worker must hold."""
        return self.matrix.nbytes + self.y.nbytes

    # -- layout access ---------------------------------------------------------
    @property
    def csc(self) -> CscMatrix:
        """Column-compressed layout (primal coordinates)."""
        if self._csc is None:
            assert self._csr is not None
            self._csc = self._csr.to_csc()
        return self._csc

    @property
    def csr(self) -> CsrMatrix:
        """Row-compressed layout (dual coordinates)."""
        if self._csr is None:
            assert self._csc is not None
            self._csr = self._csc.to_csr()
        return self._csr

    def astype(self, dtype) -> "Dataset":
        """Return a copy with matrix values and labels cast to ``dtype``."""
        return Dataset(
            matrix=self.matrix.astype(dtype),
            y=self.y.astype(dtype),
            name=self.name,
            meta=dict(self.meta),
        )

    def describe(self) -> str:
        """One-line summary used by the experiment drivers."""
        mb = self.nbytes / 2**20
        return (
            f"{self.name}: {self.n_examples} examples x {self.n_features} features, "
            f"nnz={self.nnz} (density {self.matrix.density:.2e}), {mb:.1f} MiB"
        )


def train_test_split(
    dataset: Dataset, test_fraction: float, rng: np.random.Generator
) -> tuple[Dataset, Dataset]:
    """Uniformly split examples into train/test partitions.

    This mirrors the paper's 75/25 uniform sampling of webspam.  Splitting is
    by row, so it is performed on the CSR layout.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = dataset.n_examples
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_rows = np.sort(perm[:n_test])
    train_rows = np.sort(perm[n_test:])
    csr = dataset.csr
    train = Dataset(
        matrix=csr.take_rows(train_rows),
        y=dataset.y[train_rows],
        name=f"{dataset.name}-train",
        meta=dict(dataset.meta),
    )
    test = Dataset(
        matrix=csr.take_rows(test_rows),
        y=dataset.y[test_rows],
        name=f"{dataset.name}-test",
        meta=dict(dataset.meta),
    )
    return train, test
