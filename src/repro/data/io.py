"""LibSVM-format text I/O.

The paper's datasets (webspam, criteo) ship in LibSVM sparse text format
(``label idx:val idx:val ...`` with 1-based indices).  We implement a reader
and writer so users can run the solvers on the real files when they have
them; the test-suite round-trips synthetic data through this format.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..sparse import from_coo
from .dataset import Dataset

__all__ = ["load_libsvm", "save_libsvm"]


def load_libsvm(
    path: str | Path | io.TextIOBase,
    *,
    n_features: int | None = None,
    dtype=np.float64,
    name: str | None = None,
) -> Dataset:
    """Parse a LibSVM-format file into a :class:`Dataset` (CSR layout).

    Parameters
    ----------
    path:
        File path or open text stream.
    n_features:
        Declared feature-space size; inferred from the data when omitted.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh: io.TextIOBase = open(path, "r", encoding="utf-8")
        close = True
        inferred_name = Path(path).name
    else:
        fh = path
        inferred_name = "stream"

    labels: list[float] = []
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    try:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                label = float(parts[0])
            except ValueError as exc:
                raise ValueError(f"line {line_no + 1}: bad label {parts[0]!r}") from exc
            if not np.isfinite(label):
                raise ValueError(
                    f"line {line_no + 1}: non-finite label {parts[0]!r}"
                )
            labels.append(label)
            i = len(labels) - 1
            for tok in parts[1:]:
                try:
                    idx_s, val_s = tok.split(":", 1)
                    idx = int(idx_s)
                    val = float(val_s)
                except ValueError as exc:
                    raise ValueError(
                        f"line {line_no + 1}: bad feature token {tok!r}"
                    ) from exc
                if idx < 1:
                    raise ValueError(
                        f"line {line_no + 1}: LibSVM indices are 1-based, got {idx}"
                    )
                if not np.isfinite(val):
                    raise ValueError(
                        f"line {line_no + 1}: non-finite value in token {tok!r}"
                    )
                rows.append(i)
                cols.append(idx - 1)
                vals.append(val)
    finally:
        if close:
            fh.close()

    n_examples = len(labels)
    max_col = (max(cols) + 1) if cols else 0
    if n_features is None:
        n_features = max_col
    elif max_col > n_features:
        raise ValueError(
            f"file contains feature index {max_col} > declared n_features={n_features}"
        )
    matrix = from_coo(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=dtype),
        (n_examples, n_features),
        fmt="csr",
        dtype=dtype,
    )
    return Dataset(
        matrix=matrix,
        y=np.asarray(labels, dtype=dtype),
        name=name or inferred_name,
        meta={"source": "libsvm"},
    )


def save_libsvm(dataset: Dataset, path: str | Path | io.TextIOBase) -> None:
    """Write a :class:`Dataset` in LibSVM text format (1-based indices)."""
    close = False
    if isinstance(path, (str, Path)):
        fh: io.TextIOBase = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    csr = dataset.csr
    try:
        for i in range(dataset.n_examples):
            idx, val = csr.row(i)
            feats = " ".join(f"{int(j) + 1}:{v:.10g}" for j, v in zip(idx, val))
            label = dataset.y[i]
            fh.write(f"{label:.10g} {feats}\n" if feats else f"{label:.10g}\n")
    finally:
        if close:
            fh.close()
