"""Sparse-safe preprocessing transforms.

The LibSVM text datasets the paper trains on are conventionally used with
unit-L2-normalized examples; criteo's categorical features are one-hot.
These helpers expose the corresponding transforms on the library's own
compressed formats, preserving sparsity (no centering — that would
densify).
"""

from __future__ import annotations

import numpy as np

from ..sparse import CsrMatrix
from .dataset import Dataset

__all__ = ["normalize_rows", "scale_columns", "clip_values", "binarize_labels"]


def normalize_rows(dataset: Dataset, *, norm_floor: float = 1e-12) -> Dataset:
    """Scale every example to unit L2 norm (zero rows left untouched)."""
    csr = dataset.csr
    norms = np.sqrt(csr.row_norms_sq())
    scale = np.where(norms > norm_floor, 1.0 / np.maximum(norms, norm_floor), 1.0)
    data = csr.data * np.repeat(scale, csr.row_nnz())
    matrix = CsrMatrix(csr.shape, csr.indptr, csr.indices, data, check=False)
    return Dataset(
        matrix=matrix,
        y=dataset.y,
        name=dataset.name,
        meta={**dataset.meta, "normalized_rows": True},
    )


def scale_columns(dataset: Dataset, *, norm_floor: float = 1e-12) -> Dataset:
    """Scale every feature column to unit L2 norm (sparse-safe standardize).

    Without centering this keeps the pattern intact while equalizing
    per-coordinate curvature — the preprocessing that makes coordinate
    descent's unit steps comparable across features.
    """
    csc = dataset.csc
    norms = np.sqrt(csc.col_norms_sq())
    scale = np.where(norms > norm_floor, 1.0 / np.maximum(norms, norm_floor), 1.0)
    data = csc.data * np.repeat(scale, csc.col_nnz())
    from ..sparse import CscMatrix

    matrix = CscMatrix(csc.shape, csc.indptr, csc.indices, data, check=False)
    return Dataset(
        matrix=matrix,
        y=dataset.y,
        name=dataset.name,
        meta={**dataset.meta, "scaled_columns": True},
    )


def clip_values(dataset: Dataset, *, low: float, high: float) -> Dataset:
    """Clip stored values into ``[low, high]`` (outlier control)."""
    if low > high:
        raise ValueError("low must not exceed high")
    csr = dataset.csr
    matrix = CsrMatrix(
        csr.shape,
        csr.indptr,
        csr.indices,
        np.clip(csr.data, low, high),
        check=False,
    )
    return Dataset(
        matrix=matrix,
        y=dataset.y,
        name=dataset.name,
        meta={**dataset.meta, "clipped": (low, high)},
    )


def binarize_labels(dataset: Dataset, *, threshold: float = 0.5) -> Dataset:
    """Map labels to -1/+1 by thresholding (criteo's 0/1 clicks -> SVM-ready)."""
    y = np.where(dataset.y > threshold, 1.0, -1.0)
    return Dataset(
        matrix=dataset.matrix,
        y=y,
        name=dataset.name,
        meta={**dataset.meta, "binarized_at": threshold},
    )
