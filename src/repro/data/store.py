"""Binary persistence for datasets and convergence histories.

Synthetic datasets are cheap to regenerate, but reproducible experiment
pipelines want to snapshot exactly what was trained on; ``.npz`` keeps the
compressed arrays intact (unlike the LibSVM text round-trip, which is
lossy at the 1e-10 level from decimal formatting).  Histories serialize to
JSON for the same reason: EXPERIMENTS.md regeneration and notebook
post-processing without re-running solvers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..sparse import CsrMatrix
from .dataset import Dataset

__all__ = [
    "save_dataset_npz",
    "load_dataset_npz",
    "save_history_json",
    "load_history_json",
]


def save_dataset_npz(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset (CSR canonical form + labels + metadata) to .npz."""
    csr = dataset.csr
    np.savez_compressed(
        path,
        indptr=csr.indptr,
        indices=csr.indices,
        data=csr.data,
        y=dataset.y,
        shape=np.asarray(csr.shape, dtype=np.int64),
        name=np.asarray(dataset.name),
        meta=np.asarray(json.dumps(dataset.meta, default=str)),
    )


def load_dataset_npz(path: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset_npz`."""
    with np.load(path, allow_pickle=False) as archive:
        required = {"indptr", "indices", "data", "y", "shape", "name", "meta"}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"{path}: not a repro dataset archive (missing {missing})")
        shape = tuple(int(v) for v in archive["shape"])
        matrix = CsrMatrix(
            shape, archive["indptr"], archive["indices"], archive["data"]
        )
        return Dataset(
            matrix=matrix,
            y=archive["y"],
            name=str(archive["name"]),
            meta=json.loads(str(archive["meta"])),
        )


def save_history_json(history: ConvergenceHistory, path: str | Path) -> None:
    """Write a convergence history (label + all records) to JSON."""
    payload = {
        "label": history.label,
        "records": [
            {
                "epoch": r.epoch,
                "gap": r.gap,
                "objective": r.objective,
                "sim_time": r.sim_time,
                "wall_time": r.wall_time,
                "updates": r.updates,
                "extras": r.extras,
            }
            for r in history
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1, default=float), "utf-8")


def load_history_json(path: str | Path) -> ConvergenceHistory:
    """Load a history previously written by :func:`save_history_json`."""
    payload = json.loads(Path(path).read_text("utf-8"))
    if "records" not in payload:
        raise ValueError(f"{path}: not a repro history file")
    history = ConvergenceHistory(label=payload.get("label", ""))
    for r in payload["records"]:
        history.append(
            ConvergenceRecord(
                epoch=int(r["epoch"]),
                gap=float(r["gap"]),
                objective=float(r["objective"]),
                sim_time=float(r["sim_time"]),
                wall_time=float(r["wall_time"]),
                updates=int(r["updates"]),
                extras=r.get("extras", {}),
            )
        )
    return history
