"""Synthetic dataset generators standing in for the paper's datasets.

The paper evaluates on two real datasets we cannot ship:

* **webspam** (262,938 examples x 680,715 features, sparse text n-grams) —
  substituted by :func:`make_webspam_like`, which matches the qualitative
  structure: heavy-tailed (power-law) feature popularity, positive values,
  row-normalized examples, +/-1 labels from a sparse ground-truth model.
* **criteo** 1-day sample (200 M x 75 M, *all stored values are 1*,
  categorical click logs) — substituted by :func:`make_criteo_like`:
  one active one-hot feature per categorical group per example, power-law
  popularity within each group, all values 1, 0/1 click labels.

Sizes default to laptop scale; every generator is fully seeded and the
experiment drivers record the generator parameters in ``Dataset.meta``.
"""

from __future__ import annotations

import numpy as np

from ..sparse import from_coo
from .dataset import Dataset

__all__ = [
    "make_sparse_regression",
    "make_webspam_like",
    "make_criteo_like",
    "make_dense_gaussian",
    "make_block_correlated",
    "powerlaw_indices",
]


def powerlaw_indices(
    n_draws: int, n_values: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n_draws`` integers in ``[0, n_values)`` with power-law mass.

    Uses the inverse-CDF trick ``idx = floor(n * u^exponent)``: larger
    ``exponent`` concentrates more mass on small indices (popular features).
    ``exponent = 1`` is uniform.
    """
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    if exponent < 1.0:
        raise ValueError("exponent must be >= 1 (1 = uniform)")
    u = rng.random(n_draws)
    idx = np.floor(n_values * u**exponent).astype(np.int64)
    return np.minimum(idx, n_values - 1)


def _labels_from_model(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    n_examples: int,
    n_features: int,
    rng: np.random.Generator,
    *,
    model_density: float,
    noise: float,
    binarize: bool,
) -> np.ndarray:
    """Generate targets from a sparse ground-truth linear model."""
    beta = np.zeros(n_features)
    n_active = max(1, int(round(model_density * n_features)))
    active = rng.choice(n_features, size=n_active, replace=False)
    beta[active] = rng.standard_normal(n_active)
    scores = np.zeros(n_examples)
    np.add.at(scores, rows, vals * beta[cols])
    scale = scores.std() or 1.0
    scores = scores / scale + noise * rng.standard_normal(n_examples)
    if binarize:
        return np.where(scores > np.median(scores), 1.0, -1.0)
    return scores


def make_sparse_regression(
    n_examples: int,
    n_features: int,
    *,
    nnz_per_example: int = 10,
    feature_exponent: float = 2.0,
    noise: float = 0.1,
    model_density: float = 0.1,
    binarize: bool = False,
    dtype=np.float64,
    rng: np.random.Generator | None = None,
    name: str = "sparse-regression",
) -> Dataset:
    """General sparse regression/classification generator.

    Each example draws ``nnz_per_example`` features (duplicates merged) with
    power-law popularity and standard-normal values, then examples are
    L2-normalized — the common preprocessing for the LibSVM text datasets the
    paper uses.
    """
    rng = rng or np.random.default_rng(0)
    if n_examples <= 0 or n_features <= 0:
        raise ValueError("dimensions must be positive")
    if nnz_per_example <= 0:
        raise ValueError("nnz_per_example must be positive")
    rows = np.repeat(np.arange(n_examples), nnz_per_example)
    cols = powerlaw_indices(
        n_examples * nnz_per_example, n_features, feature_exponent, rng
    )
    vals = np.abs(rng.standard_normal(rows.shape[0])) + 0.1

    # L2-normalize each example (duplicates merge later, but the normalization
    # here is close enough and keeps the generator one-pass).
    norms_sq = np.zeros(n_examples)
    np.add.at(norms_sq, rows, vals * vals)
    vals = vals / np.sqrt(norms_sq)[rows]

    y = _labels_from_model(
        rows,
        cols,
        vals,
        n_examples,
        n_features,
        rng,
        model_density=model_density,
        noise=noise,
        binarize=binarize,
    )
    matrix = from_coo(rows, cols, vals, (n_examples, n_features), fmt="csr", dtype=dtype)
    return Dataset(
        matrix=matrix,
        y=y.astype(dtype),
        name=name,
        meta={
            "generator": "make_sparse_regression",
            "nnz_per_example": nnz_per_example,
            "feature_exponent": feature_exponent,
            "noise": noise,
            "binarize": binarize,
        },
    )


def make_webspam_like(
    n_examples: int = 2_000,
    n_features: int = 6_000,
    *,
    nnz_per_example: int = 60,
    seed: int = 7,
    dtype=np.float64,
) -> Dataset:
    """Scaled-down stand-in for the webspam training sample.

    The real sample has ~2,600 nonzeros per example over 680 K features with
    strongly heavy-tailed feature popularity; we keep the same aspect ratio
    regime (features > examples, ~1e-2 row density) at ~100x smaller scale so
    the full benchmark suite regenerates in seconds.
    """
    rng = np.random.default_rng(seed)
    ds = make_sparse_regression(
        n_examples,
        n_features,
        nnz_per_example=nnz_per_example,
        feature_exponent=2.5,
        noise=0.2,
        model_density=0.05,
        binarize=True,
        dtype=dtype,
        rng=rng,
        name="webspam-like",
    )
    ds.meta["paper_dataset"] = "webspam (262,938 x 680,715)"
    ds.meta["seed"] = seed
    return ds


def make_criteo_like(
    n_examples: int = 8_000,
    *,
    n_groups: int = 26,
    group_cardinality: int = 600,
    seed: int = 11,
    click_rate: float = 0.25,
    dtype=np.float64,
) -> Dataset:
    """Scaled-down stand-in for the criteo 1-day click-log sample.

    Mirrors the structure the paper footnotes: every stored value is exactly
    1 (one-hot encoded categorical variables), the feature space is the union
    of per-group vocabularies, and popularity within each group is power-law.
    Labels are 0/1 clicks from a logistic ground-truth model over the one-hot
    features, thresholded to hit ``click_rate`` prevalence.
    """
    rng = np.random.default_rng(seed)
    if n_groups <= 0 or group_cardinality <= 0:
        raise ValueError("n_groups and group_cardinality must be positive")
    n_features = n_groups * group_cardinality
    rows = np.repeat(np.arange(n_examples), n_groups)
    # per-group power-law draw, offset into the global one-hot space
    within = powerlaw_indices(n_examples * n_groups, group_cardinality, 2.0, rng)
    group_of = np.tile(np.arange(n_groups), n_examples)
    cols = group_of * group_cardinality + within
    vals = np.ones(rows.shape[0])

    beta = rng.standard_normal(n_features) * (rng.random(n_features) < 0.2)
    scores = np.zeros(n_examples)
    np.add.at(scores, rows, beta[cols])
    thresh = np.quantile(scores, 1.0 - click_rate)
    y = (scores > thresh).astype(np.float64)

    matrix = from_coo(rows, cols, vals, (n_examples, n_features), fmt="csr", dtype=dtype)
    return Dataset(
        matrix=matrix,
        y=y.astype(dtype),
        name="criteo-like",
        meta={
            "generator": "make_criteo_like",
            "paper_dataset": "criteo 1-day (200M x 75M, values all 1)",
            "n_groups": n_groups,
            "group_cardinality": group_cardinality,
            "click_rate": click_rate,
            "seed": seed,
        },
    )


def make_block_correlated(
    n_examples: int = 2_000,
    n_features: int = 2_000,
    *,
    n_blocks: int = 8,
    nnz_per_example: int = 16,
    cross_block_prob: float = 0.0,
    noise: float = 0.1,
    seed: int = 17,
    dtype=np.float64,
) -> Dataset:
    """Block-structured design exercising intelligent partitioning.

    Features are grouped into ``n_blocks`` disjoint blocks; each example
    draws all its features from a single block (except with probability
    ``cross_block_prob`` per nonzero, which leaks across blocks).  The
    feature co-occurrence graph then has (nearly) one connected component
    per block, so a correlation-aware partitioner can place each block on
    one worker and make the distributed sub-problems (almost) independent —
    the structure Section IV's closing remark and Rendle et al. [22] exploit.
    """
    rng = np.random.default_rng(seed)
    if n_blocks <= 0 or n_features % n_blocks != 0:
        raise ValueError("n_features must be a positive multiple of n_blocks")
    block_size = n_features // n_blocks
    rows = np.repeat(np.arange(n_examples), nnz_per_example)
    block_of_example = rng.integers(0, n_blocks, size=n_examples)
    block_of_entry = np.repeat(block_of_example, nnz_per_example)
    leak = rng.random(rows.shape[0]) < cross_block_prob
    block_of_entry[leak] = rng.integers(0, n_blocks, size=int(leak.sum()))
    within = rng.integers(0, block_size, size=rows.shape[0])
    cols = block_of_entry * block_size + within
    vals = np.abs(rng.standard_normal(rows.shape[0])) + 0.1
    norms_sq = np.zeros(n_examples)
    np.add.at(norms_sq, rows, vals * vals)
    vals = vals / np.sqrt(norms_sq)[rows]

    y = _labels_from_model(
        rows,
        cols,
        vals,
        n_examples,
        n_features,
        rng,
        model_density=0.1,
        noise=noise,
        binarize=False,
    )
    matrix = from_coo(rows, cols, vals, (n_examples, n_features), fmt="csr", dtype=dtype)
    return Dataset(
        matrix=matrix,
        y=y.astype(dtype),
        name="block-correlated",
        meta={
            "generator": "make_block_correlated",
            "n_blocks": n_blocks,
            "cross_block_prob": cross_block_prob,
            "seed": seed,
        },
    )


def make_dense_gaussian(
    n_examples: int,
    n_features: int,
    *,
    noise: float = 0.1,
    seed: int = 0,
    dtype=np.float64,
) -> Dataset:
    """Small dense Gaussian design, mainly for exactness tests.

    Stored in the sparse container (fully dense pattern) so every solver code
    path is exercised; closed-form ridge solutions are cheap at this scale.
    """
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n_examples, n_features))
    beta = rng.standard_normal(n_features)
    y = dense @ beta + noise * rng.standard_normal(n_examples)
    rows, cols = np.nonzero(np.ones_like(dense, dtype=bool))
    matrix = from_coo(
        rows, cols, dense[rows, cols], (n_examples, n_features), fmt="csr", dtype=dtype
    )
    return Dataset(
        matrix=matrix,
        y=y.astype(dtype),
        name="dense-gaussian",
        meta={"generator": "make_dense_gaussian", "noise": noise, "seed": seed},
    )
