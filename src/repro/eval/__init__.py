"""``repro.eval`` — declarative experiment orchestration.

One front door for every experiment in the repo: a ``configs/*.toml`` file
declares *what* to run (drivers from the shared registry, a sweep matrix, a
scale, a seed) and *how* to report it; this package plans the run matrix
with stable content hashes, executes cells in parallel with resumable
caching, and renders a self-contained HTML report.

Typical use::

    from repro.eval import load_config, plan, run_plan, render_report

    config = load_config("configs/fig1.toml")
    run = run_plan(plan(config))
    path = render_report(run, "eval-reports")

or, in one call, :func:`run_eval` — which is exactly what the
``repro eval`` CLI subcommand does.
"""

from __future__ import annotations

from pathlib import Path

from .config import (
    REPORT_SECTIONS,
    ConfigError,
    EvalConfig,
    ReportConfig,
    load_config,
    parse_config,
)
from .planner import CELL_SCHEMA, EvalPlan, RunCell, cell_hash, plan
from .provenance import collect_provenance, html_footer, markdown_footer
from .report import build_report, render_report
from .runner import (
    DEFAULT_CACHE_DIR,
    CellResult,
    EvalRun,
    run_drivers,
    run_plan,
)

__all__ = [
    "CELL_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "REPORT_SECTIONS",
    "CellResult",
    "ConfigError",
    "EvalConfig",
    "EvalPlan",
    "EvalRun",
    "ReportConfig",
    "RunCell",
    "build_report",
    "cell_hash",
    "collect_provenance",
    "html_footer",
    "load_config",
    "markdown_footer",
    "parse_config",
    "plan",
    "render_report",
    "run_drivers",
    "run_eval",
    "run_plan",
]


def run_eval(
    config_path: str | Path,
    *,
    scale: str | None = None,
    out_dir: str | Path = "eval-reports",
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    jobs: int | None = None,
    force: bool = False,
    run_bench: bool = True,
) -> tuple[EvalRun, Path]:
    """Load, plan, run (resuming), and render one config end to end."""
    config = load_config(config_path)
    run = run_plan(
        plan(config, scale_override=scale),
        cache_dir=cache_dir,
        jobs=jobs,
        force=force,
    )
    path = render_report(run, out_dir, run_bench=run_bench)
    return run, path
