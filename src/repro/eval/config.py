"""Declarative experiment configs: the ``configs/*.toml`` schema.

A config declares *what* to run and *how* to report it; the planner
(:mod:`repro.eval.planner`) expands it into a run matrix and the runner
executes the cells.  The schema:

.. code-block:: toml

    [experiment]
    id = "fig1"                      # required: report identifier
    title = "Fig. 1 convergence"     # optional
    description = "..."              # optional

    [run]
    scale = "quick"                  # tiny | quick | full (default: quick)
    seed = 0                         # master seed recorded per cell
    jobs = 1                         # parallel cell workers (0 = cpu count)

    [matrix]
    driver = ["fig1"]                # required axis: registry driver ids
    scale = ["tiny", "quick"]        # optional axis, overrides run.scale
    scenario = ["lossy-link"]        # any declared driver param is an axis

    [report]
    sections = ["figures", "ledger", "bench"]
    bench_profile = "default"        # repro.perf.bench profile for the dashboard
    bench_baseline = "latest"        # newest committed BENCH_PR*.json, or a path
    bench_threshold = 0.4
    log_y = true                     # log-scale convergence plots

Validation is strict: unknown sections or keys are rejected with a pointed
error naming the offender and the allowed set, axis values must be flat
lists of scalars, driver ids must exist in the registry, and every extra
axis must be a parameter each selected driver declared sweepable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..experiments.config import SCALES
from ..experiments.registry import get_driver
from .toml_compat import loads

__all__ = [
    "EvalConfig",
    "ReportConfig",
    "ConfigError",
    "load_config",
    "parse_config",
    "REPORT_SECTIONS",
]

#: renderable report sections, in presentation order
REPORT_SECTIONS = ("figures", "ledger", "bench")

_TOP_LEVEL = ("experiment", "run", "matrix", "report")
_EXPERIMENT_KEYS = ("id", "title", "description")
_RUN_KEYS = ("scale", "seed", "jobs")
_REPORT_KEYS = (
    "sections",
    "bench_profile",
    "bench_baseline",
    "bench_threshold",
    "log_y",
)
#: matrix keys with dedicated handling; anything else must be a driver param
_MATRIX_BUILTIN = ("driver", "scale")


class ConfigError(ValueError):
    """A config failed validation; the message names file, key, and fix."""


@dataclass(frozen=True)
class ReportConfig:
    """The ``[report]`` table, defaults applied."""

    sections: tuple[str, ...] = REPORT_SECTIONS
    bench_profile: str = "default"
    #: a payload path, or ``"latest"`` — resolved at report time to the
    #: newest committed ``BENCH_PR*.json`` (numeric PR order), so the
    #: dashboard never silently diffs against a stale landmark
    bench_baseline: str | None = "latest"
    bench_threshold: float = 0.4
    log_y: bool = True


@dataclass(frozen=True)
class EvalConfig:
    """One parsed, validated experiment declaration."""

    experiment_id: str
    title: str = ""
    description: str = ""
    scale: str = "quick"
    seed: int = 0
    jobs: int = 1
    #: sweep axes in declaration order: (name, values); always includes
    #: ``driver`` and ``scale``
    axes: tuple[tuple[str, tuple], ...] = ()
    report: ReportConfig = field(default_factory=ReportConfig)
    source: str = "<memory>"

    @property
    def drivers(self) -> tuple[str, ...]:
        return dict(self.axes)["driver"]

    def n_cells(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n


def _err(source: str, msg: str) -> ConfigError:
    return ConfigError(f"{source}: {msg}")


def _check_keys(source: str, table: dict, name: str, allowed: tuple) -> None:
    unknown = sorted(set(table) - set(allowed))
    if unknown:
        raise _err(
            source,
            f"unknown key {unknown[0]!r} in [{name}]; "
            f"allowed keys: {', '.join(allowed)}",
        )


def _as_list(value, source: str, where: str) -> list:
    """Promote a scalar to a one-item axis; reject nested/empty lists."""
    if isinstance(value, (list, tuple)):
        values = list(value)
    else:
        values = [value]
    if not values:
        raise _err(source, f"{where} must not be an empty list")
    for v in values:
        if isinstance(v, (list, tuple, dict)):
            raise _err(
                source, f"{where} must be a flat list of scalars, got {v!r}"
            )
    if len(set(map(repr, values))) != len(values):
        raise _err(source, f"{where} contains duplicate values")
    return values


def parse_config(doc: dict, *, source: str = "<memory>") -> EvalConfig:
    """Validate a parsed TOML document into an :class:`EvalConfig`."""
    if not isinstance(doc, dict):
        raise _err(source, "config must be a TOML document")
    unknown = sorted(set(doc) - set(_TOP_LEVEL))
    if unknown:
        raise _err(
            source,
            f"unknown section [{unknown[0]}]; "
            f"expected sections: {', '.join(_TOP_LEVEL)}",
        )
    for name in _TOP_LEVEL:
        if name in doc and not isinstance(doc[name], dict):
            raise _err(source, f"[{name}] must be a table")

    # [experiment]
    experiment = doc.get("experiment", {})
    _check_keys(source, experiment, "experiment", _EXPERIMENT_KEYS)
    if "id" not in experiment:
        raise _err(source, "[experiment] must declare an 'id'")
    experiment_id = experiment["id"]
    if not isinstance(experiment_id, str) or not experiment_id:
        raise _err(source, "[experiment] id must be a non-empty string")
    title = experiment.get("title", "")
    description = experiment.get("description", "")
    for key, value in (("title", title), ("description", description)):
        if not isinstance(value, str):
            raise _err(source, f"[experiment] {key} must be a string")

    # [run]
    run = doc.get("run", {})
    _check_keys(source, run, "run", _RUN_KEYS)
    scale = run.get("scale", "quick")
    if scale not in SCALES:
        raise _err(
            source,
            f"[run] scale {scale!r} is not one of {sorted(SCALES)}",
        )
    seed = run.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise _err(source, "[run] seed must be an integer")
    jobs = run.get("jobs", 1)
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0:
        raise _err(source, "[run] jobs must be a non-negative integer (0 = auto)")

    # [matrix]
    matrix = doc.get("matrix", {})
    if "driver" not in matrix:
        raise _err(source, "[matrix] must declare a 'driver' axis")
    drivers = _as_list(matrix["driver"], source, "[matrix] driver")
    specs = []
    for driver_id in drivers:
        if not isinstance(driver_id, str):
            raise _err(source, f"[matrix] driver ids must be strings, got {driver_id!r}")
        try:
            specs.append(get_driver(driver_id))
        except KeyError as exc:
            raise _err(source, str(exc).strip('"')) from None

    scales = _as_list(matrix.get("scale", [scale]), source, "[matrix] scale")
    for s in scales:
        if s not in SCALES:
            raise _err(
                source, f"[matrix] scale {s!r} is not one of {sorted(SCALES)}"
            )

    axes: list[tuple[str, tuple]] = [
        ("driver", tuple(drivers)),
        ("scale", tuple(scales)),
    ]
    for axis, values in matrix.items():
        if axis in _MATRIX_BUILTIN:
            continue
        values = _as_list(values, source, f"[matrix] {axis}")
        for spec in specs:
            if axis not in spec.params:
                raise _err(
                    source,
                    f"[matrix] axis {axis!r} is not a sweepable parameter of "
                    f"driver {spec.driver_id!r} (declared params: "
                    f"{list(spec.params) or 'none'})",
                )
        axes.append((axis, tuple(values)))

    # [report]
    report = doc.get("report", {})
    _check_keys(source, report, "report", _REPORT_KEYS)
    sections = report.get("sections", list(REPORT_SECTIONS))
    if not isinstance(sections, (list, tuple)):
        raise _err(source, "[report] sections must be a list")
    for section in sections:
        if section not in REPORT_SECTIONS:
            raise _err(
                source,
                f"[report] unknown section {section!r}; "
                f"known sections: {', '.join(REPORT_SECTIONS)}",
            )
    bench_profile = report.get("bench_profile", "default")
    from ..perf.bench import PROFILES

    if bench_profile not in PROFILES:
        raise _err(
            source,
            f"[report] bench_profile {bench_profile!r} is not one of "
            f"{sorted(PROFILES)}",
        )
    bench_baseline = report.get("bench_baseline", "latest")
    if bench_baseline is not None and not isinstance(bench_baseline, str):
        raise _err(
            source, "[report] bench_baseline must be a path string or 'latest'"
        )
    bench_threshold = report.get("bench_threshold", 0.4)
    if (
        not isinstance(bench_threshold, (int, float))
        or isinstance(bench_threshold, bool)
        or not 0.0 < float(bench_threshold) < 1.0
    ):
        raise _err(source, "[report] bench_threshold must be in (0, 1)")
    log_y = report.get("log_y", True)
    if not isinstance(log_y, bool):
        raise _err(source, "[report] log_y must be a boolean")

    return EvalConfig(
        experiment_id=experiment_id,
        title=title,
        description=description,
        scale=scale,
        seed=seed,
        jobs=jobs,
        axes=tuple(axes),
        report=ReportConfig(
            sections=tuple(sections),
            bench_profile=bench_profile,
            bench_baseline=bench_baseline,
            bench_threshold=float(bench_threshold),
            log_y=log_y,
        ),
        source=source,
    )


def load_config(path: str | Path) -> EvalConfig:
    """Read and validate one ``*.toml`` experiment config."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read config {path}: {exc}") from exc
    try:
        doc = loads(text)
    except ValueError as exc:
        raise ConfigError(f"{path}: invalid TOML: {exc}") from exc
    return parse_config(doc, source=str(path))
