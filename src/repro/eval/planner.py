"""Expand a validated config into a run matrix of content-hashed cells.

Each cell is one driver invocation — (driver, scale, seed, params) — and
carries a **stable content hash**: the SHA-256 of the canonical JSON of
exactly the inputs that determine the cell's numbers.  Canonical means
sorted keys and no whitespace variance, so two configs declaring the same
matrix with tables or keys in a different order plan *identical* hashes,
and the runner's result cache (keyed by hash) resumes across reruns.

Report settings deliberately do not participate in the hash: re-styling a
report must never invalidate computed results.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field

from .config import EvalConfig

__all__ = ["RunCell", "EvalPlan", "plan", "plan_cells", "cell_hash"]

#: bump when the cached cell payload layout changes incompatibly
CELL_SCHEMA = "repro.eval-cell/v1"


def cell_hash(driver_id: str, scale: str, seed: int, params: dict) -> str:
    """Canonical content hash of one cell's inputs."""
    doc = {
        "schema": CELL_SCHEMA,
        "driver": driver_id,
        "scale": scale,
        "seed": seed,
        "params": {str(k): params[k] for k in sorted(params)},
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunCell:
    """One planned driver invocation."""

    driver_id: str
    scale: str
    seed: int
    params: tuple[tuple[str, object], ...] = ()
    config_hash: str = ""

    @property
    def cell_id(self) -> str:
        """Human-readable cell label: ``fig1 scale=quick scenario=chaos``."""
        parts = [self.driver_id, f"scale={self.scale}"]
        parts += [f"{k}={v}" for k, v in self.params]
        return " ".join(parts)

    @property
    def short_hash(self) -> str:
        return self.config_hash[:12]

    def params_dict(self) -> dict:
        return dict(self.params)

    def to_dict(self) -> dict:
        return {
            "driver": self.driver_id,
            "scale": self.scale,
            "seed": self.seed,
            "params": self.params_dict(),
            "hash": self.config_hash,
        }


@dataclass(frozen=True)
class EvalPlan:
    """The expanded matrix for one config."""

    config: EvalConfig
    cells: tuple[RunCell, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.cells)

    def describe(self) -> str:
        axes = ", ".join(
            f"{name}[{len(values)}]" for name, values in self.config.axes
        )
        return (
            f"experiment {self.config.experiment_id!r}: {len(self.cells)} "
            f"cell(s) from axes {axes}"
        )


def plan_cells(
    config: EvalConfig, *, scale_override: str | None = None
) -> list[RunCell]:
    """Cartesian expansion of the config's axes into hashed cells.

    ``scale_override`` (the CLI ``--scale`` flag) replaces the scale axis
    wholesale — every cell runs at that scale.
    """
    axes = dict(config.axes)
    if scale_override is not None:
        axes["scale"] = (scale_override,)
    names = list(axes)
    cells = []
    for combo in itertools.product(*(axes[name] for name in names)):
        bound = dict(zip(names, combo))
        driver_id = bound.pop("driver")
        scale = bound.pop("scale")
        params = tuple(sorted(bound.items()))
        cells.append(
            RunCell(
                driver_id=driver_id,
                scale=scale,
                seed=config.seed,
                params=params,
                config_hash=cell_hash(driver_id, scale, config.seed, bound),
            )
        )
    return cells


def plan(config: EvalConfig, *, scale_override: str | None = None) -> EvalPlan:
    """Expand ``config`` into an :class:`EvalPlan`."""
    return EvalPlan(
        config=config,
        cells=tuple(plan_cells(config, scale_override=scale_override)),
    )
