"""Provenance capture: make every published number auditable.

Generated artifacts (HTML reports, EXPERIMENTS.md) end with a footer
recording exactly what produced them: the git commit (and whether the tree
was dirty), the ``REPRO_SCALE`` in effect, the seeds, and the software
versions.  Collection is best-effort — a missing ``git`` binary or a
non-repo checkout degrades to ``"unknown"`` rather than failing the run.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from pathlib import Path

__all__ = ["collect_provenance", "markdown_footer", "html_footer"]


def _git(args: list[str], cwd: Path) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def collect_provenance(
    *, seeds: list[int] | None = None, root: str | Path | None = None
) -> dict:
    """Snapshot the run context as a flat JSON-serialisable dict."""
    import numpy

    from .. import __version__

    root = Path(root) if root is not None else Path.cwd()
    commit = _git(["rev-parse", "HEAD"], root)
    dirty = None
    if commit is not None:
        status = _git(["status", "--porcelain"], root)
        dirty = bool(status) if status is not None else None
    return {
        "git_commit": commit or "unknown",
        "git_dirty": dirty,
        "repro_scale": os.environ.get("REPRO_SCALE", "quick (default)"),
        "seeds": sorted(set(seeds or [])),
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "generated_at": time.strftime("%Y-%m-%d %H:%M:%S %Z"),
    }


def _commit_label(prov: dict) -> str:
    commit = prov["git_commit"]
    label = commit[:12] if commit != "unknown" else commit
    if prov.get("git_dirty"):
        label += " (dirty tree)"
    return label


def markdown_footer(prov: dict) -> list[str]:
    """Footer lines for generated markdown (EXPERIMENTS.md)."""
    seeds = ", ".join(str(s) for s in prov["seeds"]) or "driver defaults"
    return [
        "---",
        "",
        "*Provenance: commit `" + _commit_label(prov) + "`, "
        f"`REPRO_SCALE={prov['repro_scale']}`, seeds {seeds}, "
        f"repro {prov['repro_version']}, python {prov['python']}, "
        f"numpy {prov['numpy']}; generated {prov['generated_at']}.*",
        "",
    ]


def html_footer(prov: dict) -> str:
    """Footer block for generated HTML reports."""
    seeds = ", ".join(str(s) for s in prov["seeds"]) or "driver defaults"
    return (
        '<footer class="provenance">Provenance: commit '
        f"<code>{_commit_label(prov)}</code> · "
        f"<code>REPRO_SCALE={prov['repro_scale']}</code> · seeds {seeds} · "
        f"repro {prov['repro_version']} · python {prov['python']} · "
        f"numpy {prov['numpy']} · generated {prov['generated_at']}</footer>"
    )
