"""Render an :class:`~repro.eval.runner.EvalRun` into one self-contained HTML file.

The report needs no network, no JS libraries, and no external assets: charts
are inline SVG (:mod:`repro.eval.svg`), styling is one embedded stylesheet,
and tooltips are native SVG ``<title>`` elements.  Sections (selected by the
config's ``[report] sections``):

* **figures** — one convergence/line chart per (x, y) axis pair of every
  cell's figure, each followed by its data table and driver notes;
* **ledger** — Fig. 9-style modelled-time breakdowns: a stacked bar across
  cells plus the per-component table;
* **bench** — the kernel micro-benchmark suite re-run at report time and
  diffed against a committed ``BENCH_*.json`` baseline, with the regression
  gate's verdict per case.

Every run summary row links the cell's Chrome trace sidecar, and the page
ends with the provenance footer (commit, scale, seeds, versions).
"""

from __future__ import annotations

import math
from html import escape
from pathlib import Path

from ..perf.ledger import COMPONENTS
from .provenance import collect_provenance, html_footer
from .runner import EvalRun
from .svg import CHROME, line_plot, stacked_bar

__all__ = ["build_report", "render_report"]

_STYLE = f"""
:root {{
  --surface: {CHROME["surface"]};
  --ink: {CHROME["ink"]};
  --ink2: {CHROME["ink2"]};
  --muted: {CHROME["muted"]};
  --grid: {CHROME["grid"]};
  --axis: {CHROME["axis"]};
}}
html {{ background: var(--surface); }}
body {{
  font-family: system-ui, sans-serif; color: var(--ink);
  max-width: 860px; margin: 2rem auto; padding: 0 1rem; line-height: 1.45;
}}
h1 {{ font-size: 1.45rem; margin-bottom: 0.2rem; }}
h2 {{ font-size: 1.15rem; margin-top: 2.2rem; border-bottom: 1px solid var(--grid);
     padding-bottom: 0.25rem; }}
h3 {{ font-size: 1rem; margin-top: 1.6rem; }}
p.desc {{ color: var(--ink2); margin-top: 0.2rem; }}
table {{ border-collapse: collapse; margin: 0.6rem 0; font-size: 0.85rem; }}
th, td {{
  text-align: left; padding: 0.25rem 0.7rem; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}}
th {{ color: var(--ink2); font-weight: 600; }}
td.num {{ text-align: right; }}
code {{ font-size: 0.85em; background: #f1f0ea; padding: 0.05rem 0.25rem;
       border-radius: 3px; }}
a {{ color: #2a78d6; }}
.note {{ color: var(--ink2); font-size: 0.85rem; }}
.ok {{ color: var(--ink); }}
.status-icon {{ font-weight: 700; margin-right: 0.3rem; }}
details {{ margin: 0.5rem 0; }}
summary {{ cursor: pointer; color: var(--ink2); font-size: 0.85rem; }}
footer.provenance {{
  margin-top: 3rem; padding-top: 0.8rem; border-top: 1px solid var(--grid);
  color: var(--muted); font-size: 0.8rem;
}}
figure {{ margin: 1rem 0; }}
"""


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if math.isnan(v):
            return "-"
        if v == 0:
            return "0"
        if 1e-3 <= abs(v) < 1e5:
            return f"{v:.4g}"
        return f"{v:.3e}"
    return str(v)


def _series_table(figure) -> str:
    """Accessible data-table view of every series in a figure."""
    rows = []
    for s in figure.series:
        head = (
            f"<tr><th>{escape(s.label)}</th>"
            f"<th colspan=99>{escape(s.x_name)} → {escape(s.y_name)}</th></tr>"
        )
        n = len(s.x)
        idx = range(n) if n <= 10 else sorted(
            {round(i * (n - 1) / 9) for i in range(10)}
        )
        xs = "".join(f'<td class="num">{_fmt(float(s.x[i]))}</td>' for i in idx)
        ys = "".join(f'<td class="num">{_fmt(float(s.y[i]))}</td>' for i in idx)
        rows.append(
            head
            + f"<tr><td>{escape(s.x_name)}</td>{xs}</tr>"
            + f"<tr><td>{escape(s.y_name)}</td>{ys}</tr>"
        )
    return (
        "<details><summary>data table</summary><table>"
        + "".join(rows)
        + "</table></details>"
    )


def _figure_section(result, log_y: bool) -> list[str]:
    """Charts for one cell: one plot per (x_name, y_name) pair."""
    figure = result.figure
    out = [f"<h3>{escape(result.cell.cell_id)} — {escape(figure.title)}</h3>"]
    groups: dict[tuple[str, str], list] = {}
    for s in figure.series:
        groups.setdefault((s.x_name, s.y_name), []).append(s)
    for (x_name, y_name), group in groups.items():
        series = [
            {"label": s.label, "x": list(s.x), "y": list(s.y)} for s in group
        ]
        # log-y only suits positive, decaying quantities (gaps, errors)
        use_log = log_y and all(
            float(y) > 0 for s in group for y in s.y if math.isfinite(float(y))
        )
        out.append("<figure>")
        out.append(
            line_plot(
                series,
                x_label=x_name,
                y_label=y_name,
                log_y=use_log,
                desc=f"{figure.title}: {y_name} vs {x_name}",
            )
        )
        out.append("</figure>")
    for note in figure.notes:
        out.append(f'<p class="note">{escape(note)}</p>')
    out.append(_series_table(figure))
    return out


def _summary_section(run: EvalRun) -> list[str]:
    out = [
        "<h2>Run summary</h2>",
        f"<p class='note'>{escape(run.plan.describe())} — "
        f"{run.executed} executed, {run.resumed} resumed from cache, "
        f"wall clock {run.elapsed_s:.2f}s.</p>",
        "<table><tr><th>cell</th><th>hash</th><th>status</th>"
        "<th>driver time</th><th>trace</th></tr>",
    ]
    for r in run.results:
        trace = r.trace_path
        trace_cell = (
            f'<a href="{escape(str(trace), quote=True)}">trace</a>'
            if trace
            else "-"
        )
        status = "resumed" if r.cached else "executed"
        out.append(
            f"<tr><td>{escape(r.cell.cell_id)}</td>"
            f"<td><code>{r.cell.short_hash}</code></td>"
            f"<td>{status}</td>"
            f'<td class="num">{r.elapsed_s:.3f}s</td>'
            f"<td>{trace_cell}</td></tr>"
        )
    out.append("</table>")
    return out


def _ledger_section(run: EvalRun) -> list[str]:
    """Fig. 9-style modelled-time breakdown across cells."""
    ledgers = [(r.cell.cell_id, r.ledger) for r in run.results if r.ledger]
    out = ["<h2>Modelled time breakdown</h2>"]
    if not ledgers:
        out.append(
            '<p class="note">No cell recorded a modelled-time ledger '
            "(in-process drivers do not bill simulated components).</p>"
        )
        return out
    labels = [c for c in COMPONENTS if any(l.get(c) for _, l in ledgers)]
    categories = [cell_id for cell_id, _ in ledgers]
    components = {
        label: [float(l.get(label, 0.0)) for _, l in ledgers]
        for label in labels
    }
    out.append("<figure>")
    out.append(
        stacked_bar(
            categories,
            components,
            x_label="cell",
            y_label="modelled seconds",
            desc="modelled time per component per cell",
        )
    )
    out.append("</figure>")
    out.append(
        "<table><tr><th>cell</th>"
        + "".join(f"<th>{escape(c)}</th>" for c in labels)
        + "<th>total</th></tr>"
    )
    for cell_id, ledger in ledgers:
        cells = "".join(
            f'<td class="num">{_fmt(float(ledger.get(c, 0.0)))}</td>'
            for c in labels
        )
        total = sum(float(v) for v in ledger.values())
        out.append(
            f"<tr><td>{escape(cell_id)}</td>{cells}"
            f'<td class="num">{_fmt(total)}</td></tr>'
        )
    out.append("</table>")
    return out


def _bench_section(
    run: EvalRun,
    bench_new: dict | None,
    bench_baseline: dict | None,
    baseline_label: str | None = None,
) -> list[str]:
    """Bench-regression dashboard: this machine vs the committed baseline."""
    from ..perf.bench import _GATED_CASES, compare

    report = run.plan.config.report
    out = ["<h2>Kernel bench regression dashboard</h2>"]
    if bench_new is None:
        out.append(
            '<p class="note">Bench suite skipped for this report '
            "(no baseline configured or --no-bench).</p>"
        )
        return out
    new_rel = bench_new["derived"]["normalized_throughput"]
    if bench_baseline is None:
        out.append(
            f'<p class="note">Profile <code>{escape(bench_new["profile"])}'
            "</code>; no baseline payload available — showing this run "
            "without a gate.</p>"
        )
        base_rel = {}
        regressions: list[str] = []
    else:
        regressions = compare(
            bench_new, bench_baseline, threshold=report.bench_threshold
        )
        base_rel = bench_baseline["derived"]["normalized_throughput"]
        gate = (
            f'<span class="status-icon">✗</span>{len(regressions)} regression(s)'
            if regressions
            else '<span class="status-icon">✓</span>no regressions'
        )
        label = baseline_label or report.bench_baseline or ""
        out.append(
            f'<p class="note">Profile <code>{escape(bench_new["profile"])}'
            f"</code> vs baseline <code>{escape(label)}"
            f"</code> (threshold {report.bench_threshold * 100:.0f}%): "
            f"{gate}.</p>"
        )
    out.append(
        "<table><tr><th>case</th><th>median</th><th>vs seq (this run)</th>"
        "<th>vs seq (baseline)</th><th>ratio</th><th>gate</th></tr>"
    )
    for name, case in bench_new["cases"].items():
        rel = new_rel.get(name, 0.0)
        base = base_rel.get(name)
        ratio = (rel / base) if base else None
        gated = name in _GATED_CASES and base
        regressed = any(msg.startswith(f"{name}:") for msg in regressions)
        if not gated:
            verdict = "—"
        elif regressed:
            verdict = '<span class="status-icon">✗</span>REGRESSED'
        else:
            verdict = '<span class="status-icon">✓</span>ok'
        out.append(
            f"<tr><td>{escape(name)}</td>"
            f'<td class="num">{case["median_s"] * 1e3:.3f} ms</td>'
            f'<td class="num">{rel:.3f}×</td>'
            f'<td class="num">{_fmt(base) + "×" if base else "-"}</td>'
            f'<td class="num">{f"{ratio:.3f}" if ratio else "-"}</td>'
            f"<td>{verdict}</td></tr>"
        )
    out.append("</table>")
    for msg in regressions:
        out.append(f'<p class="note"><strong>{escape(msg)}</strong></p>')
    return out


def build_report(
    run: EvalRun,
    *,
    bench_new: dict | None = None,
    bench_baseline: dict | None = None,
    bench_baseline_label: str | None = None,
) -> str:
    """Assemble the full HTML document for one eval run."""
    config = run.plan.config
    report = config.report
    title = config.title or f"Experiment {config.experiment_id}"
    body: list[str] = [f"<h1>{escape(title)}</h1>"]
    if config.description:
        body.append(f'<p class="desc">{escape(config.description)}</p>')
    body += _summary_section(run)
    if "figures" in report.sections:
        body.append("<h2>Figures</h2>")
        for result in run.results:
            body += _figure_section(result, report.log_y)
    if "ledger" in report.sections:
        body += _ledger_section(run)
    if "bench" in report.sections:
        body += _bench_section(
            run, bench_new, bench_baseline, bench_baseline_label
        )
    prov = collect_provenance(seeds=[r.cell.seed for r in run.results])
    body.append(html_footer(prov))
    return (
        "<!DOCTYPE html>\n<html lang='en'>\n<head>\n"
        "<meta charset='utf-8'>\n"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>\n"
        f"<title>{escape(title)}</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


def render_report(
    run: EvalRun,
    out_dir: str | Path = "eval-reports",
    *,
    run_bench: bool = True,
) -> Path:
    """Write ``<out_dir>/<experiment_id>.html`` and return its path.

    When the config enables the ``bench`` section, the micro-benchmark suite
    runs here (report time), and the committed baseline named by
    ``[report] bench_baseline`` is loaded relative to the current directory.
    The default value ``"latest"`` resolves to the newest committed
    ``BENCH_PR*.json`` (numeric PR order) so the dashboard always diffs
    against the current landmark, not a hard-coded historical one.
    """
    config = run.plan.config
    bench_new = bench_baseline = None
    baseline_label = None
    if run_bench and "bench" in config.report.sections:
        from ..perf.bench import latest_baseline, load_payload, run_suite

        bench_new = run_suite(config.report.bench_profile)
        requested = config.report.bench_baseline
        base_path = (
            latest_baseline(".") if requested == "latest"
            else Path(requested) if requested else None
        )
        if base_path is not None and base_path.exists():
            bench_baseline = load_payload(base_path)
            baseline_label = base_path.name
    html = build_report(
        run,
        bench_new=bench_new,
        bench_baseline=bench_baseline,
        bench_baseline_label=baseline_label,
    )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{config.experiment_id}.html"
    path.write_text(html, encoding="utf-8")
    return path
