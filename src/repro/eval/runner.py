"""Execute planned cells: parallel where independent, resumable on rerun.

Every cell runs its driver under a fresh :class:`~repro.obs.Tracer` and
produces one JSON payload (schema ``repro.eval-cell/v1``) holding the
figure, the modelled-time ledger breakdown, the metrics counters, and the
cell's provenance.  Payloads are persisted to ``<cache_dir>/<hash>.json``
— the hash is the planner's content hash of the cell's inputs — so a rerun
of the same config loads every completed cell instead of recomputing it.
A Chrome trace (``<hash>.trace.json``) is written beside each payload and
linked from the HTML report.

Independent cells run in a ``ProcessPoolExecutor`` when ``jobs > 1``; the
parent process does all cache writes, so parallelism never races on files.
The parent also opens an ``eval.cell`` span per cell (attrs: driver, hash,
cached) so an eval run is billed through ``repro.obs`` like every other
orchestrated workload.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..experiments.config import SCALES
from ..experiments.registry import get_driver
from ..experiments.results import FigureResult
from ..obs import Tracer, chrome_trace, metrics_json, use_tracer
from .config import EvalConfig, ReportConfig
from .planner import CELL_SCHEMA, EvalPlan, RunCell, plan
from .provenance import collect_provenance

__all__ = [
    "CellResult",
    "EvalRun",
    "run_plan",
    "run_drivers",
    "DEFAULT_CACHE_DIR",
]

DEFAULT_CACHE_DIR = ".eval-cache"


@dataclass(frozen=True)
class CellResult:
    """One executed-or-resumed cell and its payload."""

    cell: RunCell
    payload: dict = field(repr=False)
    cached: bool = False

    @property
    def figure(self) -> FigureResult:
        return FigureResult.from_dict(self.payload["figure"])

    @property
    def elapsed_s(self) -> float:
        return float(self.payload.get("elapsed_s", 0.0))

    @property
    def ledger(self) -> dict:
        return dict(self.payload.get("ledger", {}))

    @property
    def trace_path(self) -> str | None:
        return self.payload.get("trace_path")


@dataclass(frozen=True)
class EvalRun:
    """The outcome of running one plan."""

    plan: EvalPlan
    results: tuple[CellResult, ...]
    cache_dir: str
    elapsed_s: float

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def resumed(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def figures(self) -> dict[str, FigureResult]:
        """cell_id -> figure, in plan order."""
        return {r.cell.cell_id: r.figure for r in self.results}


def _execute_cell(cell_doc: dict) -> dict:
    """Run one cell (importable top-level so process pools can pickle it)."""
    driver_id = cell_doc["driver"]
    scale_name = cell_doc["scale"]
    params = dict(cell_doc["params"])
    spec = get_driver(driver_id)
    if "seed" in spec.params and "seed" not in params:
        params["seed"] = cell_doc["seed"]
    tracer = Tracer()
    t0 = time.perf_counter()
    with use_tracer(tracer):
        with tracer.span(
            "eval.cell", "eval", driver=driver_id, hash=cell_doc["hash"]
        ):
            fig = spec.run(SCALES[scale_name], **params)
    elapsed = time.perf_counter() - t0
    metrics = metrics_json(tracer)
    return {
        "schema": CELL_SCHEMA,
        "cell": cell_doc,
        "figure": fig.to_dict(),
        "elapsed_s": elapsed,
        "ledger": {k: v for k, v in tracer.ledger.breakdown().items() if v},
        "modelled_total_s": tracer.ledger.total,
        "counters": metrics["metrics"].get("counters", {}),
        "trace": chrome_trace(tracer),
        "provenance": collect_provenance(seeds=[cell_doc["seed"]]),
    }


def _load_cached(path: Path, cell: RunCell) -> dict | None:
    """A valid cached payload for ``cell``, or ``None`` to recompute."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != CELL_SCHEMA:
        return None
    cached_cell = payload.get("cell", {})
    if cached_cell.get("hash") != cell.config_hash:
        return None
    if "figure" not in payload:
        return None
    return payload


def _persist(payload: dict, cache_dir: Path, cell: RunCell) -> dict:
    """Write the payload (+ sidecar trace) and return the slimmed payload."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    trace = payload.pop("trace", None)
    if trace is not None:
        trace_path = cache_dir / f"{cell.config_hash}.trace.json"
        trace_path.write_text(json.dumps(trace), encoding="utf-8")
        payload["trace_path"] = str(trace_path)
    path = cache_dir / f"{cell.config_hash}.json"
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return payload


def _resolve_jobs(jobs: int, n_pending: int) -> int:
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_pending)) if n_pending else 1


def run_plan(
    eval_plan: EvalPlan,
    *,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    jobs: int | None = None,
    resume: bool = True,
    force: bool = False,
    tracer: Tracer | None = None,
) -> EvalRun:
    """Run (or resume) every cell of ``eval_plan``.

    ``force`` recomputes everything; ``resume=False`` merely skips reading
    the cache but still writes fresh results into it.
    """
    cache = Path(cache_dir)
    tracer = tracer or Tracer()
    jobs = eval_plan.config.jobs if jobs is None else jobs
    t0 = time.perf_counter()

    results: dict[int, CellResult] = {}
    pending: list[tuple[int, RunCell]] = []
    for i, cell in enumerate(eval_plan.cells):
        payload = None
        if resume and not force:
            payload = _load_cached(cache / f"{cell.config_hash}.json", cell)
        if payload is not None:
            with tracer.span(
                "eval.cell",
                "eval",
                driver=cell.driver_id,
                hash=cell.short_hash,
                cached=True,
            ):
                results[i] = CellResult(cell=cell, payload=payload, cached=True)
        else:
            pending.append((i, cell))

    n_workers = _resolve_jobs(jobs, len(pending))
    if pending and n_workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                (i, cell, pool.submit(_execute_cell, cell.to_dict()))
                for i, cell in pending
            ]
            for i, cell, future in futures:
                with tracer.span(
                    "eval.cell",
                    "eval",
                    driver=cell.driver_id,
                    hash=cell.short_hash,
                    cached=False,
                ):
                    payload = _persist(future.result(), cache, cell)
                results[i] = CellResult(cell=cell, payload=payload)
    else:
        for i, cell in pending:
            with tracer.span(
                "eval.cell",
                "eval",
                driver=cell.driver_id,
                hash=cell.short_hash,
                cached=False,
            ):
                payload = _persist(_execute_cell(cell.to_dict()), cache, cell)
            results[i] = CellResult(cell=cell, payload=payload)

    ordered = tuple(results[i] for i in range(len(eval_plan.cells)))
    return EvalRun(
        plan=eval_plan,
        results=ordered,
        cache_dir=str(cache),
        elapsed_s=time.perf_counter() - t0,
    )


def run_drivers(
    driver_ids: list[str],
    *,
    scale: str | None = None,
    seed: int = 0,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    jobs: int = 1,
    resume: bool = True,
    force: bool = False,
) -> dict[str, FigureResult]:
    """Run a list of registry drivers through the eval runner.

    The shared front door for orchestration scripts (the EXPERIMENTS.md
    generator uses this): same cache, same hashing, same spans as
    ``repro eval`` — returns ``driver_id -> FigureResult``.
    """
    from ..experiments.config import active_scale

    scale = scale or active_scale().name
    config = EvalConfig(
        experiment_id="drivers",
        scale=scale,
        seed=seed,
        jobs=jobs,
        axes=(("driver", tuple(driver_ids)), ("scale", (scale,))),
        report=ReportConfig(),
    )
    run = run_plan(
        plan(config),
        cache_dir=cache_dir,
        jobs=jobs,
        resume=resume,
        force=force,
    )
    return {r.cell.driver_id: r.figure for r in run.results}
