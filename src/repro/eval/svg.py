"""Dependency-free inline-SVG charts for the HTML report renderer.

Design rules (kept deliberately boring and consistent):

* categorical series colors come from a fixed, colorblind-validated order
  and are assigned by position, never cycled — past eight series the
  remainder renders in muted ink and relies on the legend and data table;
* one y-axis per chart, thin 2px lines, recessive hairline grid, muted
  axis labels, primary-ink text;
* every chart with two or more series carries a legend; every plotted
  point/segment carries a native ``<title>`` tooltip;
* log-scale plots use decade ticks and silently drop non-positive points
  (duality gaps are positive; an all-non-positive series falls back to a
  linear axis).
"""

from __future__ import annotations

import math
from html import escape

__all__ = ["line_plot", "stacked_bar", "PALETTE", "CHROME"]

#: fixed categorical order (validated palette; see docs/evaluation.md)
PALETTE = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: chart chrome: surface, inks, grid, axis
CHROME = {
    "surface": "#fcfcfb",
    "ink": "#0b0b0b",
    "ink2": "#52514e",
    "muted": "#898781",
    "grid": "#e1e0d9",
    "axis": "#c3c2b7",
}

_FONT = 'font-family="system-ui, sans-serif"'


def series_color(index: int) -> str:
    """Positional color assignment; beyond the palette, muted ink."""
    return PALETTE[index] if index < len(PALETTE) else CHROME["muted"]


def _fmt(v: float) -> str:
    """Compact tick/tooltip number formatting."""
    if v == 0:
        return "0"
    if not math.isfinite(v):
        return "inf" if v > 0 else "-inf"
    a = abs(v)
    if 1e-3 <= a < 1e5:
        s = f"{v:.4g}"
        return s
    return f"{v:.2e}"


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round linear tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + (abs(lo) if lo else 1.0)
    span = hi - lo
    raw = span / max(1, n)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if span / step <= n:
            break
    start = math.ceil(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-12 * span:
        ticks.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Decade ticks covering [lo, hi] (both > 0)."""
    lo_e = math.floor(math.log10(lo))
    hi_e = math.ceil(math.log10(hi))
    every = max(1, (hi_e - lo_e) // 8)
    return [10.0**e for e in range(lo_e, hi_e + 1, every)]


class _Frame:
    """Maps data space onto one padded SVG plot frame."""

    def __init__(self, width, height, pad_l, pad_r, pad_t, pad_b):
        self.width, self.height = width, height
        self.x0, self.x1 = pad_l, width - pad_r
        self.y0, self.y1 = pad_t, height - pad_b

    def sx(self, v, lo, hi, log=False):
        if log:
            v, lo, hi = math.log10(v), math.log10(lo), math.log10(hi)
        if hi <= lo:
            return (self.x0 + self.x1) / 2
        return self.x0 + (v - lo) / (hi - lo) * (self.x1 - self.x0)

    def sy(self, v, lo, hi, log=False):
        if log:
            v, lo, hi = math.log10(v), math.log10(lo), math.log10(hi)
        if hi <= lo:
            return (self.y0 + self.y1) / 2
        return self.y1 - (v - lo) / (hi - lo) * (self.y1 - self.y0)


def _svg_open(width: int, height: int, desc: str) -> list[str]:
    return [
        f'<svg role="img" xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width} {height}" width="{width}" height="{height}">',
        f"<desc>{escape(desc)}</desc>",
        f'<rect width="{width}" height="{height}" fill="{CHROME["surface"]}"/>',
    ]


def _axis_labels(
    out: list, frame: _Frame, x_label: str, y_label: str
) -> None:
    cx = (frame.x0 + frame.x1) / 2
    out.append(
        f'<text x="{cx:.1f}" y="{frame.height - 6}" text-anchor="middle" '
        f'{_FONT} font-size="12" fill="{CHROME["ink2"]}">{escape(x_label)}</text>'
    )
    cy = (frame.y0 + frame.y1) / 2
    out.append(
        f'<text x="14" y="{cy:.1f}" text-anchor="middle" {_FONT} '
        f'font-size="12" fill="{CHROME["ink2"]}" '
        f'transform="rotate(-90 14 {cy:.1f})">{escape(y_label)}</text>'
    )


def _legend(out: list, frame: _Frame, labels: list[str]) -> None:
    """Legend rows along the top of the frame (always shown for >= 2)."""
    x, y = frame.x0, 16
    for i, label in enumerate(labels):
        color = series_color(i)
        text = escape(label)
        est = 18 + 6.4 * len(label)
        if x + est > frame.x1 and x > frame.x0:
            x, y = frame.x0, y + 16
        out.append(
            f'<rect x="{x:.1f}" y="{y - 8}" width="10" height="10" rx="2" '
            f'fill="{color}"/>'
            f'<text x="{x + 14:.1f}" y="{y + 1}" {_FONT} font-size="11" '
            f'fill="{CHROME["ink2"]}">{text}</text>'
        )
        x += est + 10


def line_plot(
    series: list[dict],
    *,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
    width: int = 680,
    height: int = 340,
    desc: str = "",
) -> str:
    """Multi-series line chart. ``series``: dicts with label/x/y lists."""
    pts_by_series: list[tuple[str, list[tuple[float, float]]]] = []
    for s in series:
        pts = [
            (float(x), float(y))
            for x, y in zip(s["x"], s["y"])
            if math.isfinite(float(x)) and math.isfinite(float(y))
        ]
        pts_by_series.append((str(s["label"]), pts))

    use_log = log_y and any(
        sum(1 for _, y in pts if y > 0) >= 1 for _, pts in pts_by_series
    )
    if use_log:
        pts_by_series = [
            (label, [(x, y) for x, y in pts if y > 0])
            for label, pts in pts_by_series
        ]

    all_pts = [p for _, pts in pts_by_series for p in pts]
    n_series = len(pts_by_series)
    legend_rows = 0
    if n_series >= 2:
        # estimate legend height with the same flow the renderer uses
        est_x, legend_rows = 0.0, 1
        for label, _ in pts_by_series:
            est = 28 + 6.4 * len(label)
            if est_x + est > (width - 110) and est_x > 0:
                est_x, legend_rows = 0.0, legend_rows + 1
            est_x += est
    pad_t = 14 + 16 * legend_rows
    frame = _Frame(width, height, 62, 16, pad_t, 34)
    out = _svg_open(width, height, desc or f"{y_label} vs {x_label}")

    if not all_pts:
        out.append(
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle" '
            f'{_FONT} font-size="12" fill="{CHROME["muted"]}">no finite data'
            "</text>"
        )
        out.append("</svg>")
        return "\n".join(out)

    x_lo = min(p[0] for p in all_pts)
    x_hi = max(p[0] for p in all_pts)
    y_lo = min(p[1] for p in all_pts)
    y_hi = max(p[1] for p in all_pts)
    if use_log:
        y_ticks = _log_ticks(y_lo, y_hi)
        y_lo = min(y_lo, y_ticks[0])
        y_hi = max(y_hi, y_ticks[-1])
    else:
        if y_lo > 0 and y_lo < 0.25 * y_hi:
            y_lo = 0.0  # anchor near-zero linear axes at zero
        y_ticks = _nice_ticks(y_lo, y_hi)
        y_lo = min(y_lo, y_ticks[0])
        y_hi = max(y_hi, y_ticks[-1])
    x_ticks = _nice_ticks(x_lo, x_hi)
    x_lo = min(x_lo, x_ticks[0])
    x_hi = max(x_hi, x_ticks[-1])

    # grid + tick labels (recessive)
    for t in y_ticks:
        y = frame.sy(t, y_lo, y_hi, use_log)
        out.append(
            f'<line x1="{frame.x0}" y1="{y:.1f}" x2="{frame.x1}" y2="{y:.1f}" '
            f'stroke="{CHROME["grid"]}" stroke-width="1"/>'
            f'<text x="{frame.x0 - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'{_FONT} font-size="10.5" fill="{CHROME["muted"]}" '
            f'style="font-variant-numeric: tabular-nums">{_fmt(t)}</text>'
        )
    for t in x_ticks:
        x = frame.sx(t, x_lo, x_hi)
        out.append(
            f'<text x="{x:.1f}" y="{frame.y1 + 14}" text-anchor="middle" '
            f'{_FONT} font-size="10.5" fill="{CHROME["muted"]}" '
            f'style="font-variant-numeric: tabular-nums">{_fmt(t)}</text>'
        )
    # baseline axis
    out.append(
        f'<line x1="{frame.x0}" y1="{frame.y1}" x2="{frame.x1}" '
        f'y2="{frame.y1}" stroke="{CHROME["axis"]}" stroke-width="1"/>'
    )

    for i, (label, pts) in enumerate(pts_by_series):
        if not pts:
            continue
        color = series_color(i)
        coords = " ".join(
            f"{frame.sx(x, x_lo, x_hi):.1f},{frame.sy(y, y_lo, y_hi, use_log):.1f}"
            for x, y in pts
        )
        tooltip = escape(label)
        if len(pts) == 1:
            x, y = pts[0]
            out.append(
                f'<circle cx="{frame.sx(x, x_lo, x_hi):.1f}" '
                f'cy="{frame.sy(y, y_lo, y_hi, use_log):.1f}" r="4" '
                f'fill="{color}"><title>{tooltip}: {_fmt(y)}</title></circle>'
            )
            continue
        out.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round" '
            f'stroke-linecap="round"><title>{tooltip}</title></polyline>'
        )
        if len(pts) <= 24:  # point markers only when they stay readable
            for x, y in pts:
                out.append(
                    f'<circle cx="{frame.sx(x, x_lo, x_hi):.1f}" '
                    f'cy="{frame.sy(y, y_lo, y_hi, use_log):.1f}" r="3" '
                    f'fill="{color}" stroke="{CHROME["surface"]}" '
                    f'stroke-width="1.5"><title>{tooltip}: '
                    f"({_fmt(x)}, {_fmt(y)})</title></circle>"
                )

    if n_series >= 2:
        _legend(out, frame, [label for label, _ in pts_by_series])
    _axis_labels(out, frame, x_label, y_label)
    out.append("</svg>")
    return "\n".join(out)


def stacked_bar(
    categories: list[str],
    components: dict[str, list[float]],
    *,
    x_label: str = "",
    y_label: str = "",
    width: int = 680,
    height: int = 300,
    desc: str = "",
) -> str:
    """Vertical stacked bars (Fig. 9-style breakdowns).

    ``components`` maps component label -> one value per category, stacked
    in insertion order with a 2px surface gap between segments.
    """
    n = len(categories)
    labels = list(components)
    totals = [
        sum(components[label][i] for label in labels) for i in range(n)
    ]
    hi = max(totals) if totals else 1.0
    legend_rows = 1 + (len(labels) > 4)
    frame = _Frame(width, height, 62, 16, 14 + 16 * legend_rows, 34)
    out = _svg_open(
        width, height, desc or f"stacked breakdown of {y_label or 'values'}"
    )
    y_ticks = _nice_ticks(0.0, hi if hi > 0 else 1.0)
    hi = max(hi, y_ticks[-1]) or 1.0
    for t in y_ticks:
        y = frame.sy(t, 0.0, hi)
        out.append(
            f'<line x1="{frame.x0}" y1="{y:.1f}" x2="{frame.x1}" y2="{y:.1f}" '
            f'stroke="{CHROME["grid"]}" stroke-width="1"/>'
            f'<text x="{frame.x0 - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'{_FONT} font-size="10.5" fill="{CHROME["muted"]}" '
            f'style="font-variant-numeric: tabular-nums">{_fmt(t)}</text>'
        )
    slot = (frame.x1 - frame.x0) / max(1, n)
    bar_w = min(64.0, slot * 0.56)
    for i, cat in enumerate(categories):
        cx = frame.x0 + slot * (i + 0.5)
        y_cursor = 0.0
        for j, label in enumerate(labels):
            v = float(components[label][i])
            if v <= 0:
                y_cursor += max(v, 0.0)
                continue
            y_top = frame.sy(y_cursor + v, 0.0, hi)
            y_bot = frame.sy(y_cursor, 0.0, hi)
            out.append(
                f'<rect x="{cx - bar_w / 2:.1f}" y="{y_top:.1f}" '
                f'width="{bar_w:.1f}" height="{max(y_bot - y_top, 0.5):.1f}" '
                f'fill="{series_color(j)}" stroke="{CHROME["surface"]}" '
                f'stroke-width="2"><title>{escape(cat)} — {escape(label)}: '
                f"{_fmt(v)}</title></rect>"
            )
            y_cursor += v
        out.append(
            f'<text x="{cx:.1f}" y="{frame.y1 + 14}" text-anchor="middle" '
            f'{_FONT} font-size="10.5" fill="{CHROME["muted"]}">'
            f"{escape(str(cat))}</text>"
        )
    out.append(
        f'<line x1="{frame.x0}" y1="{frame.y1}" x2="{frame.x1}" '
        f'y2="{frame.y1}" stroke="{CHROME["axis"]}" stroke-width="1"/>'
    )
    if len(labels) >= 2:
        _legend(out, frame, labels)
    _axis_labels(out, frame, x_label, y_label)
    out.append("</svg>")
    return "\n".join(out)
