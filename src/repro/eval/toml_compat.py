"""TOML loading without new dependencies.

Python >= 3.11 ships :mod:`tomllib`; the repo still supports 3.10, and the
container policy forbids installing a backport.  :func:`loads` uses the
stdlib parser when present and otherwise falls back to a small parser for
the well-formed subset the ``configs/*.toml`` schema actually uses:

* ``[section]`` and ``[section.sub]`` tables,
* ``key = value`` with string / int / float / bool scalars,
* single-line arrays of those scalars (trailing comma tolerated),
* ``#`` comments and blank lines.

The fallback is deliberately strict — anything outside the subset raises
``ValueError`` rather than guessing — and the eval test-suite pins it
against ``tomllib`` on every shipped config whenever both are available.
"""

from __future__ import annotations

import re

try:  # Python >= 3.11
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 only
    _tomllib = None

__all__ = ["loads", "parse_toml_subset", "HAVE_TOMLLIB"]

HAVE_TOMLLIB = _tomllib is not None

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def loads(text: str) -> dict:
    """Parse TOML text into nested dicts (stdlib when available)."""
    if _tomllib is not None:
        return _tomllib.loads(text)
    return parse_toml_subset(text)


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a quoted string."""
    out = []
    in_str: str | None = None
    for ch in line:
        if in_str:
            out.append(ch)
            if ch == in_str:
                in_str = None
        elif ch in "\"'":
            out.append(ch)
            in_str = ch
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).strip()


def _parse_scalar(token: str, where: str):
    token = token.strip()
    if not token:
        raise ValueError(f"{where}: empty value")
    if token[0] in "\"'":
        if len(token) < 2 or token[-1] != token[0]:
            raise ValueError(f"{where}: unterminated string {token!r}")
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"{where}: unsupported value {token!r} (fallback TOML parser "
            "accepts strings, ints, floats, bools, and flat arrays)"
        ) from None


def _split_array_items(body: str, where: str) -> list[str]:
    items, depth, cur, in_str = [], 0, [], None
    for ch in body:
        if in_str:
            cur.append(ch)
            if ch == in_str:
                in_str = None
        elif ch in "\"'":
            cur.append(ch)
            in_str = ch
        elif ch == "[":
            depth += 1
            raise ValueError(f"{where}: nested arrays are not supported")
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            items.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    items.append("".join(cur))
    return [i for i in (item.strip() for item in items) if i]


def _parse_value(token: str, where: str):
    token = token.strip()
    if token.startswith("["):
        if not token.endswith("]"):
            raise ValueError(
                f"{where}: arrays must open and close on one line"
            )
        return [
            _parse_scalar(item, where)
            for item in _split_array_items(token[1:-1], where)
        ]
    return _parse_scalar(token, where)


def parse_toml_subset(text: str) -> dict:
    """Parse the supported TOML subset (see module docstring)."""
    root: dict = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        line = _strip_comment(raw)
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]") or line.startswith("[["):
                raise ValueError(f"{where}: malformed table header {line!r}")
            path = line[1:-1].strip()
            table = root
            for part in path.split("."):
                part = part.strip()
                if not _BARE_KEY.match(part):
                    raise ValueError(f"{where}: malformed table name {path!r}")
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise ValueError(f"{where}: {path!r} redefines a value")
            continue
        if "=" not in line:
            raise ValueError(f"{where}: expected 'key = value', got {line!r}")
        key, _, value = line.partition("=")
        key = key.strip().strip("\"'")
        if not _BARE_KEY.match(key):
            raise ValueError(f"{where}: malformed key {key!r}")
        if key in table:
            raise ValueError(f"{where}: duplicate key {key!r}")
        table[key] = _parse_value(value, where)
    return root
