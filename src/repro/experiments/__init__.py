"""Experiment drivers: one runner per figure/table of the paper."""

from .ablations import (
    run_aggregation_ablation,
    run_all_ablations,
    run_gpu_write_ablation,
    run_pcie_ablation,
    run_precision_ablation,
    run_wave_ablation,
)
from .config import (
    LAMBDA,
    SCALES,
    ScaleConfig,
    active_scale,
    criteo_problem,
    webspam_problem,
)
from .convergence import SOLVER_LABELS, run_convergence, run_fig1, run_fig2
from .extensions import (
    run_async_vs_sync,
    run_batch_vs_stochastic,
    run_comm_tradeoff,
    run_glm_gpu,
    run_heterogeneous_cluster,
    run_sigma_sweep,
    run_smart_partition,
    run_weak_scaling,
)
from .distributed_figs import (
    EPS_TARGETS,
    WORKER_COUNTS,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
)
from .faults import (
    FAULT_SCENARIOS,
    run_fault_breakdown,
    run_fault_tolerance,
    scenario_table,
)
from .gpu_cluster import run_fig8, run_fig9
from .headline import PAPER_SPEEDUPS, run_headline
from .large_scale import run_fig10
from .ascii_plot import ascii_plot
from .results import CurveSeries, FigureResult

#: registry used by the EXPERIMENTS.md generator and the bench harness
ALL_EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3-primal": lambda scale=None: run_fig3("primal", scale),
    "fig3-dual": lambda scale=None: run_fig3("dual", scale),
    "fig4-primal": lambda scale=None: run_fig4("primal", scale),
    "fig4-dual": lambda scale=None: run_fig4("dual", scale),
    "fig5-primal": lambda scale=None: run_fig5("primal", scale),
    "fig5-dual": lambda scale=None: run_fig5("dual", scale),
    "fig6-primal": lambda scale=None: run_fig6("primal", scale),
    "fig6-dual": lambda scale=None: run_fig6("dual", scale),
    "fig8-m4000": lambda scale=None: run_fig8("m4000", scale),
    "fig8-titanx": lambda scale=None: run_fig8("titanx", scale),
    "fig9": run_fig9,
    "fig10": run_fig10,
    "headline": run_headline,
    "ablation-wave": run_wave_ablation,
    "ablation-gpu-write": run_gpu_write_ablation,
    "ablation-aggregation": run_aggregation_ablation,
    "ablation-precision": run_precision_ablation,
    "ablation-pcie": run_pcie_ablation,
    "ext-smart-partition": run_smart_partition,
    "ext-comm-tradeoff": run_comm_tradeoff,
    "ext-sigma-sweep": run_sigma_sweep,
    "ext-async-vs-sync": run_async_vs_sync,
    "ext-heterogeneous": run_heterogeneous_cluster,
    "ext-glm-gpu": run_glm_gpu,
    "ext-batch-vs-stochastic": run_batch_vs_stochastic,
    "ext-weak-scaling": run_weak_scaling,
    "ext-fault-tolerance": run_fault_tolerance,
    "ext-fault-breakdown": run_fault_breakdown,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "CurveSeries",
    "FigureResult",
    "ascii_plot",
    "LAMBDA",
    "SCALES",
    "ScaleConfig",
    "active_scale",
    "criteo_problem",
    "webspam_problem",
    "SOLVER_LABELS",
    "EPS_TARGETS",
    "WORKER_COUNTS",
    "PAPER_SPEEDUPS",
    "run_convergence",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_headline",
    "run_all_ablations",
    "run_wave_ablation",
    "run_gpu_write_ablation",
    "run_aggregation_ablation",
    "run_precision_ablation",
    "run_pcie_ablation",
    "run_smart_partition",
    "run_comm_tradeoff",
    "run_sigma_sweep",
    "run_async_vs_sync",
    "run_heterogeneous_cluster",
    "run_glm_gpu",
    "run_batch_vs_stochastic",
    "run_weak_scaling",
    "FAULT_SCENARIOS",
    "run_fault_tolerance",
    "run_fault_breakdown",
    "scenario_table",
]
