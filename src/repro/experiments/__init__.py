"""Experiment drivers: one runner per figure/table of the paper."""

from .ablations import (
    run_aggregation_ablation,
    run_all_ablations,
    run_gpu_write_ablation,
    run_pcie_ablation,
    run_precision_ablation,
    run_wave_ablation,
)
from .config import (
    LAMBDA,
    SCALES,
    ScaleConfig,
    active_scale,
    criteo_problem,
    webspam_problem,
)
from .convergence import SOLVER_LABELS, run_convergence, run_fig1, run_fig2
from .extensions import (
    run_async_vs_sync,
    run_batch_vs_stochastic,
    run_comm_tradeoff,
    run_glm_gpu,
    run_heterogeneous_cluster,
    run_sigma_sweep,
    run_smart_partition,
    run_weak_scaling,
)
from .distributed_figs import (
    EPS_TARGETS,
    WORKER_COUNTS,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
)
from .faults import (
    FAULT_SCENARIOS,
    run_fault_breakdown,
    run_fault_tolerance,
    scenario_table,
)
from .gpu_cluster import run_fig8, run_fig9
from .headline import PAPER_SPEEDUPS, run_headline
from .large_scale import run_fig10, run_fig10_outofcore
from .ascii_plot import ascii_plot
from .results import CurveSeries, FigureResult
from .serving_fig import run_serving
from . import registry
from .registry import REGISTRY, DriverSpec, get_driver, run_driver

#: id -> bare callable, derived from the single driver registry
#: (:mod:`repro.experiments.registry`); the CLI, the EXPERIMENTS.md
#: generator, and the bench harness all discover drivers from there
ALL_EXPERIMENTS = {spec.driver_id: spec.fn for spec in REGISTRY.values()}

__all__ = [
    "ALL_EXPERIMENTS",
    "REGISTRY",
    "DriverSpec",
    "get_driver",
    "run_driver",
    "registry",
    "run_serving",
    "CurveSeries",
    "FigureResult",
    "ascii_plot",
    "LAMBDA",
    "SCALES",
    "ScaleConfig",
    "active_scale",
    "criteo_problem",
    "webspam_problem",
    "SOLVER_LABELS",
    "EPS_TARGETS",
    "WORKER_COUNTS",
    "PAPER_SPEEDUPS",
    "run_convergence",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig10_outofcore",
    "run_headline",
    "run_all_ablations",
    "run_wave_ablation",
    "run_gpu_write_ablation",
    "run_aggregation_ablation",
    "run_precision_ablation",
    "run_pcie_ablation",
    "run_smart_partition",
    "run_comm_tradeoff",
    "run_sigma_sweep",
    "run_async_vs_sync",
    "run_heterogeneous_cluster",
    "run_glm_gpu",
    "run_batch_vs_stochastic",
    "run_weak_scaling",
    "FAULT_SCENARIOS",
    "run_fault_tolerance",
    "run_fault_breakdown",
    "scenario_table",
]
