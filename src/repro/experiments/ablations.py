"""Ablations of the design choices DESIGN.md calls out.

These are not paper figures; they probe *why* the paper's choices matter:

1. ``run_wave_ablation``      — staleness window (resident blocks) sweep:
   TPA-SCD's near-sequential convergence relies on the fine-grained
   asynchronous updates; huge waves degrade or destabilize convergence.
2. ``run_gpu_write_ablation`` — atomic vs wild write-back at GPU-like
   concurrency: the wild variant hits a duality-gap floor, which is why
   TPA-SCD uses float atomic adds.
3. ``run_aggregation_ablation`` — averaging vs adding vs adaptive at K=4:
   adding diverges, averaging is slow, adaptive wins.
4. ``run_precision_ablation`` — float32 (paper) vs float64 TPA-SCD: fp32
   reaches a gap floor near machine precision, fp64 keeps descending.
5. ``run_pcie_ablation``      — pinned vs pageable host memory for the
   per-epoch shared-vector transfers (the paper explicitly uses pinned).
"""

from __future__ import annotations

import numpy as np

from ..core.distributed import DistributedSCD
from ..core.tpa_scd import TpaScdKernelFactory
from ..gpu.device import GpuDevice
from ..gpu.spec import GTX_TITAN_X, QUADRO_M4000
from ..perf.link import ETHERNET_10G, PCIE3_X16_PAGEABLE, PCIE3_X16_PINNED
from ..solvers.ascd import AsyncCpuKernelFactory
from ..solvers.base import ScdSolver
from .config import (
    ScaleConfig,
    active_scale,
    epochs,
    sequential_factory,
    tpa_factory,
    webspam_problem,
)
from .results import CurveSeries, FigureResult

__all__ = [
    "run_wave_ablation",
    "run_gpu_write_ablation",
    "run_aggregation_ablation",
    "run_precision_ablation",
    "run_pcie_ablation",
    "run_all_ablations",
]


def run_wave_ablation(scale: ScaleConfig | None = None) -> FigureResult:
    """Ablation 1: convergence vs the asynchronous staleness window."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(30, scale)
    waves = (1, 4, 16, 64, 256)
    fig = FigureResult(
        figure_id="ablation-wave",
        title="TPA-SCD staleness window (wave size) sweep, dual form",
        meta={"n_epochs": n_epochs, "scale": scale.name},
    )
    for wave in waves:
        factory = TpaScdKernelFactory(GpuDevice(GTX_TITAN_X), wave_size=wave)
        # extreme waves legitimately diverge in fp32 — that is the point of
        # the ablation; silence the overflow warnings the divergence emits
        with np.errstate(over="ignore", invalid="ignore"):
            res = ScdSolver(factory, "dual", seed=0).solve(
                problem, n_epochs, monitor_every=max(1, n_epochs // 10)
            )
        fig.add(
            CurveSeries(
                label=f"wave={wave}",
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"wave": wave},
            )
        )
    fig.notes.append(
        "expected: small waves track sequential; very large waves degrade "
        "per-epoch convergence (extreme staleness)"
    )
    return fig


def run_gpu_write_ablation(scale: ScaleConfig | None = None) -> FigureResult:
    """Ablation 2: atomic vs wild write-back at GPU-scale concurrency."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(30, scale)
    concurrency = 16  # simultaneously-writing lanes (the CPU model's max)
    fig = FigureResult(
        figure_id="ablation-gpu-write",
        title="Write-back semantics at GPU-scale concurrency, primal form",
        meta={"n_epochs": n_epochs, "concurrency": concurrency},
    )
    for mode in ("atomic", "wild"):
        factory = AsyncCpuKernelFactory(n_threads=concurrency, write_mode=mode)
        res = ScdSolver(factory, "primal", seed=0).solve(
            problem, n_epochs, monitor_every=max(1, n_epochs // 10)
        )
        fig.add(
            CurveSeries(
                label=mode,
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"mode": mode, "lost_updates": res.lost_updates},
            )
        )
    fig.notes.append(
        "expected: atomic converges to ~0; wild plateaus — this is why "
        "TPA-SCD pays for float atomic adds"
    )
    return fig


def run_aggregation_ablation(scale: ScaleConfig | None = None) -> FigureResult:
    """Ablation 3: averaging vs adding vs adaptive aggregation at K=4."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(40, scale)
    fig = FigureResult(
        figure_id="ablation-aggregation",
        title="Aggregation rules at K=4, dual form",
        meta={"n_epochs": n_epochs},
    )
    for rule in ("averaging", "adding", "adaptive"):
        eng = DistributedSCD(
            sequential_factory(paper, "dual"),
            "dual",
            n_workers=4,
            aggregation=rule,
            paper_scale=paper,
            seed=3,
        )
        res = eng.solve(problem, n_epochs, monitor_every=max(1, n_epochs // 10))
        fig.add(
            CurveSeries(
                label=rule,
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"rule": rule},
            )
        )
    fig.notes.append("expected: adding diverges; adaptive beats averaging")
    return fig


def run_precision_ablation(scale: ScaleConfig | None = None) -> FigureResult:
    """Ablation 4: float32 (paper) vs float64 TPA-SCD arithmetic."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(60, scale)
    fig = FigureResult(
        figure_id="ablation-precision",
        title="TPA-SCD arithmetic precision, dual form",
        meta={"n_epochs": n_epochs},
    )
    for dtype, label in ((np.float32, "float32"), (np.float64, "float64")):
        factory = TpaScdKernelFactory(
            GpuDevice(GTX_TITAN_X), wave_size=2, dtype=dtype
        )
        res = ScdSolver(factory, "dual", seed=0).solve(
            problem, n_epochs, monitor_every=max(1, n_epochs // 10)
        )
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"dtype": label},
            )
        )
    fig.notes.append(
        "expected: fp32 floors near single-precision accuracy; fp64 descends "
        "further"
    )
    return fig


def run_pcie_ablation(scale: ScaleConfig | None = None) -> FigureResult:
    """Ablation 5: pinned vs pageable PCIe for the per-epoch transfers."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(16, scale)
    fig = FigureResult(
        figure_id="ablation-pcie",
        title="Pinned vs pageable PCIe transfers, distributed TPA-SCD K=4",
        meta={"n_epochs": n_epochs},
    )
    results = {}
    for link, label in (
        (PCIE3_X16_PINNED, "pinned"),
        (PCIE3_X16_PAGEABLE, "pageable"),
    ):
        eng = DistributedSCD(
            lambda rank: tpa_factory(
                QUADRO_M4000, paper, "dual", problem, n_workers=4
            ),
            "dual",
            n_workers=4,
            aggregation="averaging",
            network=ETHERNET_10G,
            pcie=link,
            paper_scale=paper,
            seed=3,
        )
        res = eng.solve(problem, n_epochs, monitor_every=max(1, n_epochs // 4))
        results[label] = res
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.sim_times,
                y=res.history.gaps,
                x_name="time(s)",
                y_name="gap",
                meta={
                    "pcie_seconds": res.ledger.get("comm_pcie"),
                    "total_seconds": res.ledger.total,
                },
            )
        )
    fig.notes.append(
        "expected: pageable transfers inflate the PCIe share of each epoch"
    )
    return fig


def run_all_ablations(scale: ScaleConfig | None = None) -> list[FigureResult]:
    """Run every ablation; used by the benchmark harness."""
    return [
        run_wave_ablation(scale),
        run_gpu_write_ablation(scale),
        run_aggregation_ablation(scale),
        run_precision_ablation(scale),
        run_pcie_ablation(scale),
    ]
