"""Terminal rendering of figure series as ASCII log-plots.

`python -m repro run fig2 --plot` draws the duality-gap curves the paper
plots, without any plotting dependency: y on a log10 grid, one glyph per
series, shared axes across the figure.
"""

from __future__ import annotations

import math

import numpy as np

from .results import FigureResult

__all__ = ["ascii_plot"]

_GLYPHS = "*o+x#@%&^~"


def _log_safe(values: np.ndarray, floor: float) -> np.ndarray:
    return np.log10(np.maximum(values, floor))


def ascii_plot(
    fig: FigureResult,
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    label_filter: str | None = None,
) -> str:
    """Render a figure's series into an ASCII chart string.

    ``label_filter`` keeps only series whose label contains the substring
    (e.g. ``"| time"`` for the time panels of Figs. 1-2).  The y axis is
    always log10 (every reproduced figure is a log-gap plot); x is linear
    unless ``logx``.
    """
    series = [
        s
        for s in fig.series
        if (label_filter is None or label_filter in s.label) and s.x.size
    ]
    if not series:
        return f"(no series to plot for {fig.figure_id})"

    finite_y = np.concatenate(
        [s.y[np.isfinite(s.y) & (s.y > 0)] for s in series]
    )
    if finite_y.size == 0:
        return f"(no positive finite values to plot for {fig.figure_id})"
    y_floor = float(finite_y.min()) * 0.5
    y_lo = math.log10(y_floor)
    y_hi = math.log10(float(finite_y.max()) * 2.0)

    xs = np.concatenate([s.x for s in series])
    xs = xs[np.isfinite(xs)]
    if logx:
        xs = xs[xs > 0]
        if xs.size == 0:
            return f"(no positive x values for log x-axis in {fig.figure_id})"
        x_lo, x_hi = math.log10(xs.min()), math.log10(max(xs.max(), xs.min() * 10))
    else:
        x_lo, x_hi = float(xs.min()), float(xs.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for xv, yv in zip(s.x, s.y):
            if not (np.isfinite(xv) and np.isfinite(yv)) or yv <= 0:
                continue
            xpos = math.log10(xv) if logx else xv
            if logx and xv <= 0:
                continue
            col = int((xpos - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int(
                (math.log10(max(yv, y_floor)) - y_lo) / (y_hi - y_lo) * (height - 1)
            )
            row = height - 1 - min(max(row, 0), height - 1)
            col = min(max(col, 0), width - 1)
            grid[row][col] = glyph

    lines = [f"{fig.figure_id}: {fig.title}"]
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        y_val = 10 ** (y_lo + frac * (y_hi - y_lo))
        axis = f"{y_val:8.1e} |" if r % 4 == 0 else "         |"
        lines.append(axis + "".join(row))
    x_left = f"{10**x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_right = f"{10**x_hi:.3g}" if logx else f"{x_hi:.3g}"
    x_name = series[0].x_name
    pad = max(0, width - len(x_left) - len(x_right) - len(x_name) - 2)
    lines.append(
        "         +" + "-" * width
    )
    lines.append(
        f"          {x_left} {x_name}{' ' * pad}{x_right}"
    )
    for si, s in enumerate(series):
        lines.append(f"   {_GLYPHS[si % len(_GLYPHS)]} {s.label}")
    return "\n".join(lines)
