"""Shared experiment configuration: dataset scales and solver builders.

The drivers run at one of three scales:

* ``tiny``  — smallest smoke scale; used by CI trace validation and anywhere
  a sub-second end-to-end run is needed.
* ``quick`` — default; every figure regenerates in seconds.  Used by the
  test-suite and the pytest-benchmark harness.
* ``full``  — larger synthetic stand-ins (still laptop friendly) for closer
  convergence curves.  Select with ``REPRO_SCALE=full``.

Both scales pair the scaled-down data with the *paper-scale* dimensions
(:class:`~repro.core.scale.PaperScale`) used by the device cost models, so
the reproduced time axes stay comparable to the published ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.scale import CRITEO_PAPER, WEBSPAM_PAPER, PaperScale
from ..core.tpa_scd import TpaScdKernelFactory, scaled_wave_size
from ..data import Dataset, make_criteo_like, make_webspam_like
from ..gpu.device import GpuDevice
from ..gpu.spec import GpuSpec
from ..objectives.ridge import RidgeProblem
from ..solvers.ascd import AsyncCpuKernelFactory
from ..solvers.scd import SequentialKernelFactory

__all__ = [
    "ScaleConfig",
    "SCALES",
    "active_scale",
    "webspam_problem",
    "criteo_problem",
    "sequential_factory",
    "async_factory",
    "tpa_factory",
    "LAMBDA",
    "PAPER_LAMBDA",
]

#: the regularization strength the paper uses on webspam
PAPER_LAMBDA = 1e-3

#: the strength the reproduction experiments use.  What governs coordinate
#: descent behaviour is the *effective* regularization ``lambda * N`` in the
#: update denominators: the paper's lambda=1e-3 at N=262,938 gives
#: ``lambda*N ~ 263`` against unit-normalized examples.  At our ~100x smaller
#: N, keeping lambda=1e-3 would under-regularize (``lambda*N ~ 1``, a much
#: harder problem with a long slow tail the paper never exhibits), while
#: scaling lambda fully would trivialize the optimum.  lambda=5e-3 is the
#: calibrated middle ground that reproduces the published convergence shapes:
#: dual SCD converging in a handful of epochs, primal in tens, and every
#: distributed gap target reachable at all K.
LAMBDA = 5e-3


@dataclass(frozen=True)
class ScaleConfig:
    """Sizes and epoch budgets for one experiment scale."""

    name: str
    webspam_n: int
    webspam_m: int
    webspam_nnz_per_example: int
    criteo_n: int
    criteo_groups: int
    criteo_cardinality: int
    epoch_factor: float  # multiplies the per-figure epoch budgets


SCALES: dict[str, ScaleConfig] = {
    "tiny": ScaleConfig(
        name="tiny",
        webspam_n=400,
        webspam_m=1_200,
        webspam_nnz_per_example=20,
        criteo_n=1_000,
        criteo_groups=12,
        criteo_cardinality=120,
        epoch_factor=0.25,
    ),
    "quick": ScaleConfig(
        name="quick",
        webspam_n=1_000,
        webspam_m=3_000,
        webspam_nnz_per_example=40,
        criteo_n=3_000,
        criteo_groups=20,
        criteo_cardinality=300,
        epoch_factor=0.5,
    ),
    "full": ScaleConfig(
        name="full",
        webspam_n=2_600,
        webspam_m=6_800,
        webspam_nnz_per_example=100,
        criteo_n=8_000,
        criteo_groups=26,
        criteo_cardinality=600,
        epoch_factor=1.0,
    ),
}


def active_scale() -> ScaleConfig:
    """Resolve the scale from ``REPRO_SCALE`` (default ``quick``)."""
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r} is not one of {sorted(SCALES)}"
        ) from None


def epochs(base: int, scale: ScaleConfig) -> int:
    """Scale a full-size epoch budget to the active scale."""
    return max(2, int(round(base * scale.epoch_factor)))


def webspam_problem(
    scale: ScaleConfig | None = None, *, seed: int = 7
) -> tuple[RidgeProblem, PaperScale]:
    """The webspam-like problem every Fig. 1-9 driver trains on."""
    scale = scale or active_scale()
    ds = make_webspam_like(
        scale.webspam_n,
        scale.webspam_m,
        nnz_per_example=scale.webspam_nnz_per_example,
        seed=seed,
    )
    return RidgeProblem(ds, LAMBDA), WEBSPAM_PAPER


def criteo_problem(
    scale: ScaleConfig | None = None, *, seed: int = 11
) -> tuple[RidgeProblem, PaperScale]:
    """The criteo-like problem for the Fig. 10 large-scale experiment."""
    scale = scale or active_scale()
    ds = make_criteo_like(
        scale.criteo_n,
        n_groups=scale.criteo_groups,
        group_cardinality=scale.criteo_cardinality,
        seed=seed,
    )
    return RidgeProblem(ds, LAMBDA), CRITEO_PAPER


# -- solver factory builders (paper-scale priced) ---------------------------


def sequential_factory(
    paper: PaperScale, formulation: str
) -> SequentialKernelFactory:
    """Single-thread SCD priced at the full paper-scale workload."""
    return SequentialKernelFactory(
        timing_workload=paper.worker_workload(formulation, 1.0, 1.0)
    )


def async_factory(
    paper: PaperScale,
    formulation: str,
    *,
    write_mode: str,
    n_threads: int = 16,
) -> AsyncCpuKernelFactory:
    """A-SCD / PASSCoDe-Wild factory priced at paper scale."""
    return AsyncCpuKernelFactory(
        n_threads=n_threads,
        write_mode=write_mode,
        timing_workload=paper.worker_workload(formulation, 1.0, 1.0),
    )


def tpa_factory(
    spec: GpuSpec,
    paper: PaperScale,
    formulation: str,
    problem: RidgeProblem,
    *,
    n_workers: int = 1,
) -> TpaScdKernelFactory:
    """TPA-SCD factory with scale-preserving staleness and paper pricing.

    ``n_workers`` shrinks both the scaled and the paper coordinate counts so
    per-worker wave sizing stays consistent in the distributed setting.
    """
    n_coords_scaled = (
        problem.m if formulation == "primal" else problem.n
    ) // n_workers
    n_coords_paper = paper.n_coords(formulation) // n_workers
    wave = scaled_wave_size(spec, max(1, n_coords_scaled), max(1, n_coords_paper))
    return TpaScdKernelFactory(
        GpuDevice(spec),
        wave_size=wave,
        timing_workload=paper.worker_workload(
            formulation, 1.0 / n_workers, 1.0 / n_workers
        ),
    )
