"""Figs. 1 and 2 — single-node convergence of all five solver configurations.

Reproduces: duality gap as a function of epochs and of (modelled) training
time for SCD (1 thread), A-SCD (16 threads), PASSCoDe-Wild (16 threads),
TPA-SCD on the Quadro M4000 and TPA-SCD on the GTX Titan X, on the
webspam-like dataset with lambda = 1e-3.  Fig. 1 is the primal form,
Fig. 2 the dual form.

Expected shapes (paper):
* per-epoch convergence of A-SCD and both TPA-SCD runs matches sequential;
* PASSCoDe-Wild plateaus at a nonzero gap (optimality violated);
* time-axis ordering: Titan X < M4000 < Wild < A-SCD < sequential.
"""

from __future__ import annotations

from ..gpu.spec import GTX_TITAN_X, QUADRO_M4000
from ..solvers.base import ScdSolver
from .config import (
    ScaleConfig,
    active_scale,
    async_factory,
    epochs,
    sequential_factory,
    tpa_factory,
    webspam_problem,
)
from .results import CurveSeries, FigureResult

__all__ = ["run_convergence", "run_fig1", "run_fig2", "SOLVER_LABELS"]

SOLVER_LABELS = (
    "SCD (1 thread)",
    "A-SCD (16 threads)",
    "PASSCoDe-Wild (16 threads)",
    "TPA-SCD (M4000)",
    "TPA-SCD (Titan X)",
)


def run_convergence(
    formulation: str, scale: ScaleConfig | None = None, *, seed: int = 0
) -> FigureResult:
    """Run the five-solver convergence comparison for one formulation."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(60 if formulation == "primal" else 16, scale)
    monitor = max(1, n_epochs // 15)

    solvers: list[tuple[str, ScdSolver]] = [
        (
            SOLVER_LABELS[0],
            ScdSolver(sequential_factory(paper, formulation), formulation, seed),
        ),
        (
            SOLVER_LABELS[1],
            ScdSolver(
                async_factory(paper, formulation, write_mode="atomic"),
                formulation,
                seed,
            ),
        ),
        (
            SOLVER_LABELS[2],
            ScdSolver(
                async_factory(paper, formulation, write_mode="wild"),
                formulation,
                seed,
            ),
        ),
        (
            SOLVER_LABELS[3],
            ScdSolver(
                tpa_factory(QUADRO_M4000, paper, formulation, problem),
                formulation,
                seed,
            ),
        ),
        (
            SOLVER_LABELS[4],
            ScdSolver(
                tpa_factory(GTX_TITAN_X, paper, formulation, problem),
                formulation,
                seed,
            ),
        ),
    ]

    fig_id = "fig1" if formulation == "primal" else "fig2"
    fig = FigureResult(
        figure_id=fig_id,
        title=(
            f"Convergence in duality gap, {formulation} ridge regression "
            f"(webspam-like, lambda=1e-3)"
        ),
        meta={"formulation": formulation, "n_epochs": n_epochs, "scale": scale.name},
    )
    for label, solver in solvers:
        res = solver.solve(problem, n_epochs, monitor_every=monitor)
        h = res.history
        fig.add(
            CurveSeries(
                label=f"{label} | epochs",
                x=h.epochs,
                y=h.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"solver": label},
            )
        )
        fig.add(
            CurveSeries(
                label=f"{label} | time",
                x=h.sim_times,
                y=h.gaps,
                x_name="time(s)",
                y_name="gap",
                meta={"solver": label},
            )
        )
    fig.notes.append(
        "expected: atomic/GPU per-epoch curves track sequential; Wild plateaus; "
        "time ordering TitanX < M4000 < Wild < A-SCD < SCD"
    )
    return fig


def run_fig1(scale: ScaleConfig | None = None) -> FigureResult:
    """Fig. 1: primal-form convergence comparison."""
    return run_convergence("primal", scale)


def run_fig2(scale: ScaleConfig | None = None) -> FigureResult:
    """Fig. 2: dual-form convergence comparison."""
    return run_convergence("dual", scale)
