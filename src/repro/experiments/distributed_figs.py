"""Figs. 3-6 — distributed SCD on the CPU cluster (webspam-like data).

* Fig. 3 — duality gap vs epochs for K = 1, 2, 4, 8 workers (averaging
  aggregation): the per-epoch convergence slows roughly linearly in K.
* Fig. 4 — averaging vs adaptive aggregation at K = 8.
* Fig. 5 — the evolution of the optimal aggregation parameter gamma_t; it
  climbs and settles well above the averaging value 1/K.
* Fig. 6 — time to reach duality-gap targets vs K, averaging vs adaptive:
  scale-out keeps training time roughly constant.
"""

from __future__ import annotations

import numpy as np

from ..core.distributed import DistributedSCD
from ..objectives.ridge import RidgeProblem
from .config import (
    ScaleConfig,
    active_scale,
    epochs,
    sequential_factory,
    webspam_problem,
)
from .results import CurveSeries, FigureResult

__all__ = [
    "WORKER_COUNTS",
    "EPS_TARGETS",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "distributed_epoch_budget",
]

WORKER_COUNTS = (1, 2, 4, 8)

#: duality-gap targets for the time-to-epsilon figures (paper values)
EPS_TARGETS = (3e-3, 3e-4, 3e-5)


def distributed_epoch_budget(formulation: str, scale: ScaleConfig) -> int:
    """Epoch budgets mirroring the paper's axes (primal needs more)."""
    return epochs(120 if formulation == "primal" else 40, scale)


def _engine(
    formulation: str,
    n_workers: int,
    aggregation: str,
    paper,
    *,
    seed: int = 3,
) -> DistributedSCD:
    return DistributedSCD(
        sequential_factory(paper, formulation),
        formulation,
        n_workers=n_workers,
        aggregation=aggregation,
        paper_scale=paper,
        seed=seed,
    )


def run_fig3(
    formulation: str = "primal", scale: ScaleConfig | None = None
) -> FigureResult:
    """Fig. 3: distributed convergence vs epochs for growing K."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = distributed_epoch_budget(formulation, scale)
    monitor = max(1, n_epochs // 20)
    fig = FigureResult(
        figure_id=f"fig3-{formulation}",
        title=f"Distributed SCD convergence ({formulation}, averaging)",
        meta={"formulation": formulation, "n_epochs": n_epochs, "scale": scale.name},
    )
    for k in WORKER_COUNTS:
        res = _engine(formulation, k, "averaging", paper).solve(
            problem, n_epochs, monitor_every=monitor
        )
        fig.add(
            CurveSeries(
                label=f"{k} Worker{'s' if k > 1 else ''}",
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"n_workers": k},
            )
        )
    fig.notes.append("expected: approximately linear slow-down in epochs with K")
    return fig


def run_fig4(
    formulation: str = "primal", scale: ScaleConfig | None = None
) -> FigureResult:
    """Fig. 4: averaging vs adaptive aggregation at K = 8."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = distributed_epoch_budget(formulation, scale)
    monitor = max(1, n_epochs // 20)
    fig = FigureResult(
        figure_id=f"fig4-{formulation}",
        title=f"Adaptive vs averaging aggregation, K=8 ({formulation})",
        meta={"formulation": formulation, "n_epochs": n_epochs, "scale": scale.name},
    )
    for agg, label in (
        ("averaging", "Averaging Aggregation"),
        ("adaptive", "Adaptive Aggregation"),
    ):
        res = _engine(formulation, 8, agg, paper).solve(
            problem, n_epochs, monitor_every=monitor
        )
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"aggregation": agg},
            )
        )
    fig.notes.append(
        "expected: adaptive reaches small gaps in fewer epochs (primal ~2x)"
    )
    return fig


def run_fig5(
    formulation: str = "primal", scale: ScaleConfig | None = None
) -> FigureResult:
    """Fig. 5: evolution of the optimal aggregation parameter gamma_t."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(80 if formulation == "primal" else 25, scale)
    fig = FigureResult(
        figure_id=f"fig5-{formulation}",
        title=f"Optimal aggregation parameter evolution ({formulation})",
        meta={"formulation": formulation, "n_epochs": n_epochs, "scale": scale.name},
    )
    for k in WORKER_COUNTS:
        res = _engine(formulation, k, "adaptive", paper).solve(
            problem, n_epochs, monitor_every=1
        )
        gammas = np.asarray(res.gammas)
        # once the run is fully converged the updates vanish and gamma* is a
        # 0/0 ratio; report the gamma where the run is still meaningfully
        # optimizing (first epoch below a small-but-not-converged gap) as the
        # "settled" value the paper's Fig. 5 plateaus at
        settle_epoch = res.history.epochs_to_gap(1e-6)
        if not np.isfinite(settle_epoch):
            settle_epoch = gammas.shape[0]
        settled = float(gammas[min(int(settle_epoch), gammas.shape[0]) - 1])
        fig.add(
            CurveSeries(
                label=f"{k} Worker{'s' if k > 1 else ''}",
                x=np.arange(1, gammas.shape[0] + 1),
                y=gammas,
                x_name="epochs",
                y_name="gamma",
                meta={
                    "n_workers": k,
                    "averaging_value": 1.0 / k,
                    "settled_gamma": settled,
                },
            )
        )
    fig.notes.append(
        "expected: gamma starts low, rises, and settles well above 1/K"
    )
    return fig


def run_fig6(
    formulation: str = "primal", scale: ScaleConfig | None = None
) -> FigureResult:
    """Fig. 6: time to reach gap targets vs number of workers."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    base_epochs = distributed_epoch_budget(formulation, scale)
    fig = FigureResult(
        figure_id=f"fig6-{formulation}",
        title=f"Time to reach duality gap vs workers ({formulation})",
        meta={"formulation": formulation, "base_epochs": base_epochs, "scale": scale.name},
    )
    eps_min = min(EPS_TARGETS)
    for agg, label in (("averaging", "Averaging"), ("adaptive", "Adaptive")):
        histories = {}
        for k in WORKER_COUNTS:
            # convergence in epochs slows ~linearly in K (Fig. 3), so the
            # epoch cap scales with K to let every run reach the targets
            res = _engine(formulation, k, agg, paper).solve(
                problem, base_epochs * k, monitor_every=2, target_gap=eps_min
            )
            histories[k] = res.history
        for eps in EPS_TARGETS:
            fig.add(
                CurveSeries(
                    label=f"{label} eps={eps:g}",
                    x=np.asarray(WORKER_COUNTS, dtype=float),
                    y=np.asarray(
                        [histories[k].time_to_gap(eps) for k in WORKER_COUNTS]
                    ),
                    x_name="workers",
                    y_name="time(s)",
                    meta={"aggregation": agg, "eps": eps},
                )
            )
    fig.notes.append(
        "expected: roughly flat time with K (adaptive); compute speedup "
        "cancels the convergence slow-down"
    )
    return fig
