"""Elastic cluster membership as a registered experiment driver.

One cell trains the same seeded problem twice through the synchronous
ClusterRuntime: once with a fixed K-worker pool, once with an elastic pool
that loses a rank mid-run and gains one back later (plus, optionally, a
load-rebalance cadence under straggler faults).  The figure carries both
duality-gap trajectories and a membership timeline, and its meta records
the issue's acceptance check directly: the elastic run's final gap must
stay within 2x of the fixed-membership run on the same seed
(``meta["within_2x"]``).  ``configs/elastic.toml`` sweeps this driver
through the eval front door.
"""

from __future__ import annotations

import numpy as np

from ..cluster.faults import FaultSpec
from ..cluster.membership import MembershipSchedule
from ..core.distributed import DistributedSCD
from ..solvers.scd import SequentialKernelFactory
from .config import ScaleConfig, active_scale, epochs, webspam_problem
from .results import CurveSeries, FigureResult

__all__ = ["run_elastic"]


def run_elastic(
    scale: ScaleConfig | None = None,
    *,
    workers: int = 4,
    comm: str = "sync",
    rebalance_every: int = 0,
    seed: int = 3,
) -> FigureResult:
    """Fixed vs elastic membership on the same problem and seed.

    The elastic schedule loses one rank a third of the way in and regains
    one at two thirds — the departure exercises survivor-rescaled
    aggregation and shard-aligned repartitioning, the join exercises
    state-preserving scale-up.  ``comm="async"`` runs the same comparison
    through the asynchronous parameter-server backend;
    ``rebalance_every > 0`` adds straggler faults so the load balancer has
    an imbalance to chase.
    """
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = max(6, epochs(30, scale))
    leave_at = max(2, n_epochs // 3)
    join_at = max(leave_at + 1, (2 * n_epochs) // 3)
    schedule = MembershipSchedule(
        [(leave_at, "leave"), (join_at, "join")]
    )
    faults = (
        FaultSpec(straggler_rate=0.4, straggler_multiplier=6.0, seed=seed)
        if rebalance_every
        else None
    )
    common: dict = dict(
        n_workers=workers,
        paper_scale=paper,
        seed=seed,
        faults=faults,
    )
    if comm == "async":
        common.update(comm="async", batch_fraction=1 / 16)
    results = {}
    for label, extra in (
        ("fixed membership", {}),
        (
            "elastic (leave@%d, join@%d)" % (leave_at, join_at),
            dict(membership=schedule, rebalance_every=rebalance_every),
        ),
    ):
        eng = DistributedSCD(
            SequentialKernelFactory(), "dual", **common, **extra
        )
        with np.errstate(over="ignore", invalid="ignore"):
            results[label] = eng.solve(problem, n_epochs, monitor_every=1)

    (fixed_label, fixed), (elastic_label, elastic) = results.items()
    fixed_gap = fixed.history.final_gap()
    elastic_gap = elastic.history.final_gap()
    log = elastic.membership_log
    fig = FigureResult(
        figure_id="elastic",
        title=(
            f"Elastic membership, K={workers} ({comm}): one departure, "
            "one join, same seed"
        ),
        meta={
            "workers": workers,
            "comm": comm,
            "rebalance_every": rebalance_every,
            "seed": seed,
            "scale": scale.name,
            "n_epochs": n_epochs,
            "leave_epoch": leave_at,
            "join_epoch": join_at,
            "final_gap_fixed": fixed_gap,
            "final_gap_elastic": elastic_gap,
            "gap_ratio": (elastic_gap / fixed_gap) if fixed_gap else float("inf"),
            "within_2x": bool(elastic_gap <= 2.0 * fixed_gap),
            "membership_changes": len(log),
            "rebalances": sum(1 for r in log if r.rebalanced),
        },
    )
    for label, res in results.items():
        records = res.history.records
        fig.add(
            CurveSeries(
                label=label,
                x=np.asarray([r.epoch for r in records], dtype=float),
                y=np.asarray([r.gap for r in records], dtype=float),
                x_name="epoch",
                y_name="duality gap",
            )
        )
    if log:
        fig.add(
            CurveSeries(
                label="cluster size",
                x=np.asarray(
                    [0.0] + [float(r.epoch) for r in log], dtype=float
                ),
                y=np.asarray(
                    [float(log[0].k_before)]
                    + [float(r.k_after) for r in log],
                    dtype=float,
                ),
                x_name="epoch",
                y_name="workers",
            )
        )
    for r in log:
        fig.notes.append(
            f"epoch {r.epoch}: {r.k_before}->{r.k_after} workers "
            f"(+{r.joins}/-{r.leaves}, evicted {r.evictions}"
            + (", rebalanced" if r.rebalanced else "")
            + ")"
        )
    fig.notes.append(
        f"final gap elastic/fixed = {elastic_gap:.3e}/{fixed_gap:.3e} "
        f"(ratio {fig.meta['gap_ratio']:.2f}, within 2x: "
        f"{fig.meta['within_2x']})"
    )
    return fig
