"""Extension experiments: the future-work directions the paper names.

* ``run_smart_partition`` — Section IV's closing remark ([22]): on data with
  block structure, partitioning correlated coordinates onto the same worker
  (networkx community detection over the co-occurrence graph) plus adaptive
  aggregation recovers near-sequential convergence at K=8.
* ``run_comm_tradeoff`` — the computation/communication ratio ([23]): the
  paper notes "by carefully tuning the ratio of communication to
  computation, it may be possible to improve the convergence behavior ...
  but we consider such optimizations beyond the scope of this paper".  We
  sweep the fraction of a local epoch between aggregations on two fabrics
  and show the optimum is infrastructure-dependent.
* ``run_sigma_sweep`` — the CoCoA(+) aggregation scaling sigma' ([24]):
  gamma = sigma'/K between averaging (1) and adding (K).
"""

from __future__ import annotations

import numpy as np

from ..cluster.partition import proportional_partition
from ..cluster.smart_partition import make_correlation_partitioner
from ..core.aggregation import ScaledAggregator
from ..core.glm_tpa import TpaElasticNet, TpaSvm
from ..core.distributed import DistributedSCD
from ..data.synthetic import make_block_correlated
from ..objectives.ridge import RidgeProblem
from ..gpu.spec import GTX_TITAN_X, QUADRO_M4000
from ..objectives.elasticnet import ElasticNetProblem
from ..objectives.svm import SvmProblem
from ..perf.link import ETHERNET_10G, ETHERNET_100G, PCIE3_X16_PINNED
from ..solvers.batch_gd import BatchGD
from ..solvers.sgd import SgdSolver
from ..solvers.scd import SequentialKernelFactory
from .config import (
    LAMBDA,
    ScaleConfig,
    active_scale,
    epochs,
    webspam_problem,
)
from .results import CurveSeries, FigureResult

__all__ = [
    "run_smart_partition",
    "run_comm_tradeoff",
    "run_sigma_sweep",
    "run_async_vs_sync",
    "run_heterogeneous_cluster",
    "run_glm_gpu",
    "run_batch_vs_stochastic",
    "run_weak_scaling",
]


def run_smart_partition(scale: ScaleConfig | None = None) -> FigureResult:
    """Random vs correlation-aware partitioning on block-structured data."""
    scale = scale or active_scale()
    ds = make_block_correlated(
        n_examples=max(600, scale.webspam_n),
        n_features=1_600,
        n_blocks=8,
        seed=17,
    )
    problem = RidgeProblem(ds, LAMBDA)
    n_epochs = epochs(24, scale)
    smart = make_correlation_partitioner(ds.csr)
    fig = FigureResult(
        figure_id="ext-smart-partition",
        title="Random vs correlation-aware partitioning (K=8, primal, adaptive)",
        meta={"n_epochs": n_epochs, "n_blocks": 8},
    )
    for label, part in (("random", None), ("correlation-aware", smart)):
        eng = DistributedSCD(
            SequentialKernelFactory(),
            "primal",
            n_workers=8,
            aggregation="adaptive",
            seed=3,
            partitioner=part,
        )
        res = eng.solve(problem, n_epochs, monitor_every=max(1, n_epochs // 12))
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"partitioner": label},
            )
        )
    fig.notes.append(
        "expected: correlation-aware partitioning converges markedly faster "
        "per epoch (the distributed sub-problems decouple)"
    )
    return fig


def run_comm_tradeoff(scale: ScaleConfig | None = None) -> FigureResult:
    """Sweep the per-round local-update fraction on two network fabrics."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    fractions = (1.0, 0.25, 1 / 16, 1 / 64)
    base_epochs = epochs(96, scale)
    target = 3e-5
    fig = FigureResult(
        figure_id="ext-comm-tradeoff",
        title="Communication/computation trade-off (K=4, dual, averaging)",
        meta={"fractions": fractions, "target": target},
    )
    for link, label in ((ETHERNET_10G, "10GbE"), (ETHERNET_100G, "100GbE")):
        times = []
        for frac in fractions:
            eng = DistributedSCD(
                SequentialKernelFactory(),
                "dual",
                n_workers=4,
                aggregation="averaging",
                network=link,
                paper_scale=paper,
                seed=3,
                round_fraction=frac,
            )
            rounds = int(np.ceil(base_epochs / frac))
            res = eng.solve(
                problem, rounds, monitor_every=max(1, rounds // 40), target_gap=target
            )
            times.append(res.history.time_to_gap(target))
        fig.add(
            CurveSeries(
                label=label,
                x=np.asarray(fractions),
                y=np.asarray(times),
                x_name="round fraction",
                y_name="time(s)",
                meta={"link": label},
            )
        )
    fig.notes.append(
        "expected: more frequent communication helps until the network cost "
        "bites; the faster fabric tolerates (and prefers) smaller fractions"
    )
    return fig


def run_sigma_sweep(scale: ScaleConfig | None = None) -> FigureResult:
    """CoCoA+ sigma' sweep: gamma = sigma'/K between averaging and adding."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(32, scale)
    k = 8
    fig = FigureResult(
        figure_id="ext-sigma-sweep",
        title="Aggregation scaling sigma' (gamma = sigma'/K), K=8 dual",
        meta={"n_epochs": n_epochs},
    )
    for sigma in (1.0, 2.0, 4.0, 8.0):
        eng = DistributedSCD(
            SequentialKernelFactory(),
            "dual",
            n_workers=k,
            aggregation=ScaledAggregator(sigma),
            paper_scale=paper,
            seed=3,
        )
        with np.errstate(over="ignore", invalid="ignore"):
            res = eng.solve(problem, n_epochs, monitor_every=max(1, n_epochs // 8))
        fig.add(
            CurveSeries(
                label=f"sigma'={sigma:g}",
                x=res.history.epochs,
                y=res.history.gaps,
                x_name="epochs",
                y_name="gap",
                meta={"sigma_prime": sigma},
            )
        )
    fig.notes.append(
        "expected: moderate sigma' accelerates over averaging; sigma'=K "
        "(adding) diverges on correlated data"
    )
    return fig


def run_async_vs_sync(scale: ScaleConfig | None = None) -> FigureResult:
    """Synchronous Algorithm 3 vs an asynchronous parameter server.

    The paper's introduction contrasts the two distribution styles; this
    experiment makes the contrast concrete.  The asynchronous design applies
    workers' raw (unscaled) deltas against bounded-staleness snapshots: with
    large batches it diverges (the reason synchronous schemes scale updates),
    with small batches it converges fast and hides communication behind
    computation.
    """
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(60, scale)
    target = 3e-5
    fig = FigureResult(
        figure_id="ext-async-vs-sync",
        title="Synchronous distributed SCD vs asynchronous parameter server "
        "(K=4, dual)",
        meta={"target": target},
    )
    sync = DistributedSCD(
        SequentialKernelFactory(),
        "dual",
        n_workers=4,
        aggregation="averaging",
        paper_scale=paper,
        seed=3,
    )
    res = sync.solve(problem, n_epochs, monitor_every=2, target_gap=target)
    fig.add(
        CurveSeries(
            label="synchronous (averaging)",
            x=res.history.sim_times,
            y=res.history.gaps,
            x_name="time(s)",
            y_name="gap",
            meta={"time_to_target": res.history.time_to_gap(target)},
        )
    )
    for bf, label in ((0.25, "async batch=1/4 (too stale)"), (1 / 16, "async batch=1/16")):
        eng = DistributedSCD(
            SequentialKernelFactory(),
            "dual",
            n_workers=4,
            comm="async",
            batch_fraction=bf,
            paper_scale=paper,
            seed=3,
        )
        with np.errstate(over="ignore", invalid="ignore"):
            res = eng.solve(problem, n_epochs, monitor_every=2, target_gap=target)
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.sim_times,
                y=res.history.gaps,
                x_name="time(s)",
                y_name="gap",
                meta={
                    "batch_fraction": bf,
                    "time_to_target": res.history.time_to_gap(target),
                },
            )
        )
    fig.notes.append(
        "expected: small-batch async reaches the target faster than the "
        "synchronous engine; large-batch async diverges (stale adding)"
    )
    return fig


def run_heterogeneous_cluster(scale: ScaleConfig | None = None) -> FigureResult:
    """Heterogeneous GPU cluster: uniform vs throughput-proportional shares.

    A Titan X working alongside three M4000s: the synchronous engine's epoch
    time is the straggler's, so uniform partitions waste the fast device.
    Sizing partitions by device throughput equalizes per-epoch compute.
    """
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    from .config import tpa_factory

    specs = [GTX_TITAN_X, QUADRO_M4000, QUADRO_M4000, QUADRO_M4000]
    # sustained nnz throughput ~ bandwidth x calibrated efficiency
    speeds = np.array(
        [s.mem_bandwidth_gbs * s.mem_efficiency for s in specs]
    )
    n_epochs = epochs(40, scale)
    target = 3e-4
    fig = FigureResult(
        figure_id="ext-heterogeneous",
        title="Heterogeneous GPU cluster: uniform vs proportional partitions",
        meta={"devices": [s.name for s in specs], "target": target},
    )
    for label, part in (
        ("uniform", None),
        (
            "throughput-proportional",
            lambda n, k, rng: proportional_partition(n, speeds, rng),
        ),
    ):
        eng = DistributedSCD(
            lambda rank: tpa_factory(
                specs[rank], paper, "dual", problem, n_workers=4
            ),
            "dual",
            n_workers=4,
            aggregation="averaging",
            network=ETHERNET_10G,
            pcie=PCIE3_X16_PINNED,
            paper_scale=paper,
            seed=3,
            partitioner=part,
        )
        res = eng.solve(problem, n_epochs, monitor_every=2, target_gap=target)
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.sim_times,
                y=res.history.gaps,
                x_name="time(s)",
                y_name="gap",
                meta={
                    "partitioner": label,
                    "time_to_target": res.history.time_to_gap(target),
                },
            )
        )
    fig.notes.append(
        "expected: proportional shares reach the target sooner (no idle "
        "fast device waiting at the barrier)"
    )
    return fig


def run_glm_gpu(scale: ScaleConfig | None = None) -> FigureResult:
    """The GLM extensions on the GPU engine: elastic net and SVM.

    Demonstrates that the paper's twice-parallel execution generalizes to
    the other coordinate-solvable objectives it names: the GPU solvers must
    track their CPU counterparts' convergence per epoch.
    """
    scale = scale or active_scale()
    from ..data import make_webspam_like
    from ..solvers import ElasticNetCD, SvmSdca

    ds = make_webspam_like(
        scale.webspam_n, scale.webspam_m, nnz_per_example=scale.webspam_nnz_per_example
    )
    fig = FigureResult(
        figure_id="ext-glm-gpu",
        title="GLM extensions on the TPA engine (elastic net, SVM)",
        meta={"scale": scale.name},
    )
    n_epochs = epochs(24, scale)
    monitor = max(1, n_epochs // 8)

    enp = ElasticNetProblem(ds, LAMBDA, l1_ratio=0.5)
    _, h_cpu = ElasticNetCD(seed=0).solve(enp, n_epochs, monitor_every=monitor)
    _, h_gpu = TpaElasticNet(GTX_TITAN_X, wave_size=2, seed=0).solve(
        enp, n_epochs, monitor_every=monitor
    )
    fig.add(
        CurveSeries(
            "elastic-net CPU", h_cpu.epochs, h_cpu.gaps, "epochs", "KKT violation"
        )
    )
    fig.add(
        CurveSeries(
            "elastic-net TPA", h_gpu.epochs, h_gpu.gaps, "epochs", "KKT violation"
        )
    )

    svm = SvmProblem(ds, lam=1e-2)
    _, _, h_cpu = SvmSdca(seed=0).solve(svm, n_epochs, monitor_every=monitor)
    _, _, h_gpu = TpaSvm(GTX_TITAN_X, wave_size=2, seed=0).solve(
        svm, n_epochs, monitor_every=monitor
    )
    fig.add(CurveSeries("SVM CPU", h_cpu.epochs, h_cpu.gaps, "epochs", "gap"))
    fig.add(CurveSeries("SVM TPA", h_gpu.epochs, h_gpu.gaps, "epochs", "gap"))
    fig.notes.append(
        "expected: GPU curves track the CPU solvers per epoch down to the "
        "fp32 floor"
    )
    return fig


def run_batch_vs_stochastic(scale: ScaleConfig | None = None) -> FigureResult:
    """The introduction's motivating claim: SCD beats batch gradient descent.

    "It is well known that faster convergence can be achieved over batch
    methods by using stochastic learning algorithms such as [SGD] or [SCD]."
    One batch iteration touches every nonzero once — the same data traffic
    as one SCD epoch — so the per-epoch comparison is cost-fair.  Nesterov
    acceleration is included as the strongest batch baseline.
    """
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    n_epochs = epochs(120, scale)
    monitor = max(1, n_epochs // 20)
    fig = FigureResult(
        figure_id="ext-batch-vs-stochastic",
        title="Batch gradient descent vs stochastic coordinate descent "
        "(primal, per-epoch cost-fair)",
        meta={"n_epochs": n_epochs},
    )
    from ..solvers.base import ScdSolver

    wl = paper.worker_workload("primal", 1.0, 1.0)
    scd = ScdSolver(
        SequentialKernelFactory(timing_workload=wl), "primal", seed=0
    ).solve(problem, n_epochs, monitor_every=monitor)
    fig.add(
        CurveSeries(
            "SCD (Algorithm 1)", scd.history.epochs, scd.history.gaps,
            "epochs", "gap",
        )
    )
    for accelerated, label in ((False, "Batch GD"), (True, "Nesterov GD")):
        solver = BatchGD(accelerated=accelerated, seed=0)
        solver.timing_workload = wl
        res = solver.solve(problem, n_epochs, monitor_every=monitor)
        fig.add(
            CurveSeries(label, res.history.epochs, res.history.gaps, "epochs", "gap")
        )
    for threads, label in ((1, "SGD"), (16, "Hogwild (16 threads)")):
        sgd = SgdSolver(n_threads=threads, seed=0)
        sgd.timing_workload = wl
        res = sgd.solve(problem, n_epochs, monitor_every=monitor)
        fig.add(
            CurveSeries(label, res.history.epochs, res.history.gaps, "epochs", "gap")
        )
    fig.notes.append(
        "expected: SCD reaches small gaps in far fewer epochs than plain "
        "batch GD (the paper's Section I motivation); SGD's 1/t schedule "
        "plateaus at a noise ball while SCD's exact coordinate steps give a "
        "linear rate; Hogwild tracks sequential SGD per epoch"
    )
    return fig


def run_weak_scaling(scale: ScaleConfig | None = None) -> FigureResult:
    """Weak scaling: K workers on K-times the data (Section V's closing point).

    "The scaling behavior that has been demonstrated does not imply that
    training can be accelerated if the size of the dataset remains fixed.
    However, ... this scaling property allows one to leverage GPU
    acceleration when training massive datasets that do not fit inside the
    memory of a single GPU."  Here the dataset grows with the cluster: the
    GPU cluster's time-to-accuracy stays in the same ballpark while a
    single-thread CPU on the same growing data slows down linearly.
    """
    from ..core.scale import WEBSPAM_PAPER, PaperScale
    from ..data import make_webspam_like
    from ..solvers.base import ScdSolver

    scale = scale or active_scale()
    from ..gpu.spec import GTX_TITAN_X
    from .config import tpa_factory

    base_n = max(200, scale.webspam_n // 2)
    target = 3e-4
    ks = (1, 2, 4)
    gpu_times, cpu_times = [], []
    for k in ks:
        ds = make_webspam_like(
            base_n * k,
            scale.webspam_m,
            nnz_per_example=scale.webspam_nnz_per_example,
            seed=7,
        )
        problem = RidgeProblem(ds, LAMBDA)
        paper = PaperScale(
            name=f"webspam-x{k}",
            n_examples=WEBSPAM_PAPER.n_examples * k,
            n_features=WEBSPAM_PAPER.n_features,
            nnz=WEBSPAM_PAPER.nnz * k,
        )
        eng = DistributedSCD(
            lambda rank: tpa_factory(GTX_TITAN_X, paper, "dual", problem, n_workers=k),
            "dual",
            n_workers=k,
            aggregation="adaptive",
            network=ETHERNET_10G,
            paper_scale=paper,
            seed=3,
        )
        res = eng.solve(problem, 40 * k, monitor_every=2, target_gap=target)
        gpu_times.append(res.history.time_to_gap(target))

        cpu = ScdSolver(
            SequentialKernelFactory(
                timing_workload=paper.worker_workload("dual", 1.0, 1.0)
            ),
            "dual",
            seed=3,
        )
        res = cpu.solve(problem, 40, monitor_every=2, target_gap=target)
        cpu_times.append(res.history.time_to_gap(target))

    fig = FigureResult(
        figure_id="ext-weak-scaling",
        title="Weak scaling: K GPU workers on K-times the data vs one CPU",
        meta={"target": target, "base_n": base_n},
    )
    fig.add(
        CurveSeries(
            "distributed TPA-SCD (K workers)",
            np.asarray(ks, dtype=float),
            np.asarray(gpu_times),
            "workers (and data multiple)",
            "time(s)",
        )
    )
    fig.add(
        CurveSeries(
            "sequential CPU (same growing data)",
            np.asarray(ks, dtype=float),
            np.asarray(cpu_times),
            "workers (and data multiple)",
            "time(s)",
        )
    )
    fig.notes.append(
        "expected: the CPU's time grows ~linearly with the data; the GPU "
        "cluster absorbs the growth by scaling out"
    )
    return fig
