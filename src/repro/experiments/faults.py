"""Fault-tolerance experiments: convergence and cost under injected chaos.

The paper's distributed evaluation assumes perfectly synchronous, reliable
workers.  These drivers rerun the Fig. 3/9-style measurements with the
:class:`~repro.cluster.faults.FaultInjector` scenarios installed:

* ``run_fault_tolerance`` — duality gap vs epoch for distributed SCD under
  each named fault scenario, against the fault-free baseline.  The
  degraded-mode engine recomputes the adaptive gamma* over the K' surviving
  updates, so the faulty curves track the clean one instead of stalling.
* ``run_fault_breakdown`` — a Fig. 9-style execution-time breakdown at
  several K including the two fault-only phases (``comm_retry``,
  ``wait_straggler``), showing what a fault scenario costs in wall-clock.

Both use the webspam-like default at K=8 (dual, by-example partitioning) and
a fixed injector seed, so every run is bit-reproducible.
"""

from __future__ import annotations

import numpy as np

from ..cluster.faults import SCENARIOS, make_fault_injector
from ..core.distributed import DistributedSCD
from ..perf.ledger import COMPONENTS
from ..solvers.scd import SequentialKernelFactory
from .config import ScaleConfig, active_scale, epochs, webspam_problem
from .gpu_cluster import COMPONENT_LABELS
from .results import CurveSeries, FigureResult

__all__ = ["run_fault_tolerance", "run_fault_breakdown", "FAULT_SCENARIOS"]

#: the scenarios the drivers sweep, in presentation order
FAULT_SCENARIOS = (
    "none",
    "straggler-only",
    "lossy-link",
    "worker-dropout",
    "chaos",
)

#: the fixed injector seed the documentation quotes
FAULT_SEED = 42


def _engine(k: int, scenario: str, *, seed: int = 7) -> DistributedSCD:
    return DistributedSCD(
        SequentialKernelFactory(),
        "dual",
        n_workers=k,
        aggregation="adaptive",
        seed=seed,
        faults=make_fault_injector(scenario, seed=FAULT_SEED),
    )


def _select_scenarios(scenario: str | None) -> tuple[str, ...]:
    """One scenario (plus the fault-free baseline) or the full sweep."""
    if scenario is None:
        return FAULT_SCENARIOS
    if scenario not in FAULT_SCENARIOS:
        raise ValueError(
            f"unknown fault scenario {scenario!r}; "
            f"expected one of {list(FAULT_SCENARIOS)}"
        )
    return tuple(dict.fromkeys(("none", scenario)))


def run_fault_tolerance(
    scale: ScaleConfig | None = None, *, scenario: str | None = None
) -> FigureResult:
    """Gap vs epoch under each fault scenario (K=8, dual, adaptive).

    ``scenario`` restricts the sweep to one named scenario against the
    fault-free baseline — the axis ``repro.eval`` configs sweep over.
    """
    scale = scale or active_scale()
    scenarios = _select_scenarios(scenario)
    problem, _ = webspam_problem(scale)
    n_epochs = epochs(30, scale)
    fig = FigureResult(
        figure_id="ext-fault-tolerance",
        title=(
            "Duality gap under injected faults "
            "(K=8, dual, adaptive gamma over survivors)"
        ),
        meta={
            "n_epochs": n_epochs,
            "fault_seed": FAULT_SEED,
            "scenarios": list(scenarios),
        },
    )
    for scenario in scenarios:
        res = _engine(8, scenario).solve(problem, n_epochs)
        fig.add(
            CurveSeries(
                label=scenario,
                x=np.asarray(res.history.epochs, dtype=float),
                y=np.asarray(res.history.gaps),
                x_name="epoch",
                y_name="gap",
                meta={
                    "scenario": scenario,
                    "fault_note": res.fault_report.note(),
                    "fault_seconds": res.ledger.fault_seconds(),
                },
            )
        )
    fig.notes.append(
        "survivor-rescaled aggregation keeps every faulty trajectory "
        "decreasing; 'none' must match the injector-free baseline bit for bit"
    )
    return fig


def run_fault_breakdown(
    scale: ScaleConfig | None = None, *, scenario: str = "chaos"
) -> FigureResult:
    """Fig. 9-style time breakdown with fault phases (default: chaos)."""
    scale = scale or active_scale()
    if scenario not in FAULT_SCENARIOS:
        raise ValueError(
            f"unknown fault scenario {scenario!r}; "
            f"expected one of {list(FAULT_SCENARIOS)}"
        )
    problem, _ = webspam_problem(scale)
    n_epochs = epochs(20, scale)
    worker_counts = (2, 4, 8)
    fig = FigureResult(
        figure_id="ext-fault-breakdown",
        title=f"Execution-time breakdown under the {scenario!r} scenario (dual)",
        meta={"n_epochs": n_epochs, "scenario": scenario, "fault_seed": FAULT_SEED},
    )
    breakdowns = {}
    for k in worker_counts:
        res = _engine(k, scenario).solve(problem, n_epochs)
        breakdowns[k] = res.ledger.breakdown()
    ks = np.asarray(worker_counts, dtype=float)
    for comp in COMPONENTS:
        ys = np.asarray([breakdowns[k][comp] for k in worker_counts])
        if comp not in ("comm_retry", "wait_straggler") and not ys.any():
            continue  # CPU cluster: skip the all-zero GPU/PCIe rows
        fig.add(
            CurveSeries(
                label=COMPONENT_LABELS[comp],
                x=ks,
                y=ys,
                x_name="workers",
                y_name="time(s)",
                meta={"component": comp},
            )
        )
    fig.notes.append(
        "comm_retry and wait_straggler are the overhead the fault injector "
        "adds on top of the paper's four Fig. 9 phases"
    )
    return fig


def scenario_table() -> str:
    """Human-readable table of the named fault scenarios (CLI `faults`)."""
    rows = [
        "scenario         straggler  send-fail  recv-fail  drop   stale  "
        "dropout  disk"
    ]
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        rows.append(
            f"{name:<16} {s.straggler_rate:>9.2f}  {s.send_failure_rate:>9.2f}  "
            f"{s.recv_failure_rate:>9.2f}  {s.drop_rate:>5.2f}  "
            f"{s.stale_rate:>5.2f}  {s.dropout_rate:>7.2f}  "
            f"{s.shard_read_failure_rate:>4.2f}"
        )
    rows.append(
        "\nrates are per worker per epoch; see docs/fault_model.md for the "
        "taxonomy,\nretry policy and survivor-rescaled aggregation math"
    )
    return "\n".join(rows)
