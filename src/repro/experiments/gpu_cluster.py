"""Figs. 8 and 9 — distributed TPA-SCD across GPU clusters (Section V).

* Fig. 8 — time to reach duality-gap targets vs K for distributed SCD
  (1-thread CPU local solvers) and distributed TPA-SCD, on (a) a cluster of
  Quadro M4000s over 10 GbE and (b) GTX Titan Xs in one box over PCIe.
* Fig. 9 — the execution-time breakdown (GPU compute / host compute / PCIe /
  network) on the M4000 cluster at target gap 1e-5.

Both solve the dual formulation with the data partitioned by example, as in
the paper.
"""

from __future__ import annotations

import numpy as np

from ..core.distributed import DistributedSCD
from ..gpu.spec import GTX_TITAN_X, QUADRO_M4000, GpuSpec
from ..perf.ledger import COMPONENTS, PAPER_COMPONENTS
from ..perf.link import ETHERNET_10G, PCIE3_X16_PINNED, Link
from .config import (
    ScaleConfig,
    active_scale,
    epochs,
    sequential_factory,
    tpa_factory,
    webspam_problem,
)
from .distributed_figs import EPS_TARGETS, WORKER_COUNTS
from .results import CurveSeries, FigureResult

__all__ = ["run_fig8", "run_fig9", "COMPONENT_LABELS"]

COMPONENT_LABELS = {
    "compute_gpu": "Comp. Time (GPU)",
    "compute_host": "Comp. Time (Host)",
    "comm_pcie": "Comm. Time (PCIe)",
    "comm_network": "Comm. Time (Network)",
    "comm_retry": "Comm. Time (Retry)",
    "wait_straggler": "Wait Time (Straggler)",
    "shard_stream": "Stream Time (Shards)",
    "shard_retry": "Stream Time (Retry)",
}


def _tpa_engine(
    spec: GpuSpec,
    network: Link,
    n_workers: int,
    problem,
    paper,
    *,
    aggregation: str = "averaging",
    seed: int = 3,
) -> DistributedSCD:
    return DistributedSCD(
        lambda rank: tpa_factory(
            spec, paper, "dual", problem, n_workers=n_workers
        ),
        "dual",
        n_workers=n_workers,
        aggregation=aggregation,
        network=network,
        pcie=spec and PCIE3_X16_PINNED,
        paper_scale=paper,
        seed=seed,
    )


def run_fig8(
    cluster: str = "m4000", scale: ScaleConfig | None = None
) -> FigureResult:
    """Fig. 8: distributed SCD vs distributed TPA-SCD scaling (dual form).

    ``cluster`` selects ``"m4000"`` (8x M4000 over 10 GbE, Fig. 8a) or
    ``"titanx"`` (Titan Xs over PCIe in one machine, Fig. 8b).
    """
    scale = scale or active_scale()
    if cluster == "m4000":
        spec, network = QUADRO_M4000, ETHERNET_10G
    elif cluster == "titanx":
        spec, network = GTX_TITAN_X, PCIE3_X16_PINNED
    else:
        raise ValueError(f"unknown cluster {cluster!r}")
    problem, paper = webspam_problem(scale)
    base_epochs = epochs(40, scale)
    eps_min = min(EPS_TARGETS)

    fig = FigureResult(
        figure_id=f"fig8-{cluster}",
        title=f"Scaling out dual ridge regression on the {spec.name} cluster",
        meta={"cluster": cluster, "scale": scale.name},
    )
    histories: dict[tuple[str, int], object] = {}
    for k in WORKER_COUNTS:
        # epoch caps scale with K: per-epoch convergence slows ~linearly in K
        scd = DistributedSCD(
            sequential_factory(paper, "dual"),
            "dual",
            n_workers=k,
            aggregation="averaging",
            network=network,
            paper_scale=paper,
            seed=3,
        )
        histories[("SCD", k)] = scd.solve(
            problem, base_epochs * k, monitor_every=2, target_gap=eps_min
        ).history
        tpa = _tpa_engine(spec, network, k, problem, paper)
        histories[("TPA-SCD", k)] = tpa.solve(
            problem, base_epochs * k, monitor_every=2, target_gap=eps_min
        ).history

    ks = np.asarray(WORKER_COUNTS, dtype=float)
    for solver in ("SCD", "TPA-SCD"):
        for eps in EPS_TARGETS:
            fig.add(
                CurveSeries(
                    label=f"{solver} eps={eps:g}",
                    x=ks,
                    y=np.asarray(
                        [
                            histories[(solver, k)].time_to_gap(eps)
                            for k in WORKER_COUNTS
                        ]
                    ),
                    x_name="workers",
                    y_name="time(s)",
                    meta={"solver": solver, "eps": eps},
                )
            )
    fig.notes.append(
        "expected: TPA-SCD roughly an order of magnitude below SCD at every "
        "K, with similar (flat-ish) scaling"
    )
    return fig


def run_fig9(scale: ScaleConfig | None = None) -> FigureResult:
    """Fig. 9: computation vs communication breakdown, M4000 cluster."""
    scale = scale or active_scale()
    problem, paper = webspam_problem(scale)
    base_epochs = epochs(40, scale)
    target = 1e-5
    fig = FigureResult(
        figure_id="fig9",
        title="Computation vs communication on the M4000 cluster (dual, gap 1e-5)",
        meta={"target_gap": target, "scale": scale.name},
    )
    breakdowns = {}
    for k in WORKER_COUNTS:
        eng = _tpa_engine(QUADRO_M4000, ETHERNET_10G, k, problem, paper)
        res = eng.solve(
            problem, base_epochs * k, monitor_every=2, target_gap=target
        )
        breakdowns[k] = res.ledger.breakdown()
    ks = np.asarray(WORKER_COUNTS, dtype=float)
    for comp in COMPONENTS:
        ys = np.asarray([breakdowns[k][comp] for k in WORKER_COUNTS])
        if comp not in PAPER_COMPONENTS and not ys.any():
            continue  # fault-free in-memory run: keep the paper's four phases
        fig.add(
            CurveSeries(
                label=COMPONENT_LABELS[comp],
                x=ks,
                y=ys,
                x_name="workers",
                y_name="time(s)",
                meta={"component": comp},
            )
        )
    fig.notes.append(
        "expected: GPU compute dominates everywhere; communication share "
        "grows with K but stays a minority (paper: ~17% at K=8)"
    )
    return fig
