"""Headline speed-up table (abstract / Sections I and VI).

The paper's summary numbers:

* TPA-SCD on a single GPU trains up to **35x** faster than single-threaded
  CPU SCD (Titan X, dual form; 25x primal; M4000 14x primal / 10x dual);
* **~2x** for A-SCD and **~4x** for PASSCoDe-Wild over sequential;
* distributed TPA-SCD on 4 GPUs is **~20x** faster than the distributed
  16-thread CPU implementation and **~40x** faster than distributed
  single-thread SCD on the criteo sample.

This driver measures the same ratios from the reproduction runs and emits
them as a table (one series per row group).
"""

from __future__ import annotations

import math

import numpy as np

from ..metrics import speedup
from .config import ScaleConfig, active_scale
from .convergence import SOLVER_LABELS, run_convergence
from .large_scale import run_fig10
from .results import CurveSeries, FigureResult

__all__ = ["run_headline", "PAPER_SPEEDUPS"]

#: paper-reported speedup factors, for side-by-side comparison
PAPER_SPEEDUPS = {
    "A-SCD (16 threads)": 2.0,
    "PASSCoDe-Wild (16 threads)": 4.0,
    "TPA-SCD (M4000)": 10.0,
    "TPA-SCD (Titan X)": 35.0,
    "dist TPA-SCD vs dist SCD (K=4)": 40.0,
    "dist TPA-SCD vs dist PASSCoDe (K=4)": 20.0,
}


def _time_histories(fig):
    """Map solver label -> (times, gaps) from a convergence figure."""
    out = {}
    for label in SOLVER_LABELS:
        s = fig.get(f"{label} | time")
        out[label] = (s.x, s.y)
    return out


def _time_to_gap(times: np.ndarray, gaps: np.ndarray, eps: float) -> float:
    hit = np.nonzero(gaps <= eps)[0]
    return float(times[hit[0]]) if hit.size else math.inf


def run_headline(scale: ScaleConfig | None = None) -> FigureResult:
    """Measure the headline speed-ups on the dual webspam-like problem."""
    scale = scale or active_scale()
    fig2 = run_convergence("dual", scale)
    curves = _time_histories(fig2)

    # pick a target every converging solver comfortably reaches: the
    # sequential curve's gap ~60% of the way through its run (the atomic
    # solvers track it per-epoch but with some jitter, so the very last
    # point would be too tight a target; Wild is handled separately below)
    seq_t, seq_g = curves["SCD (1 thread)"]
    mid = max(1, int(0.6 * (len(seq_g) - 1)))
    eps = float(seq_g[mid]) * 2.0

    rows: list[tuple[str, float, float]] = []
    t_ref = _time_to_gap(seq_t, seq_g, eps)
    for label in SOLVER_LABELS[1:]:
        t, g = curves[label]
        target = eps
        if "Wild" in label:
            # Wild plateaus above the others' target; the paper's 4x is
            # measured at gap levels above its floor, so compare at the
            # smallest gap Wild itself attains
            target = float(np.nanmin(g[1:])) * 1.5
        t_new = _time_to_gap(t, g, target)
        t_seq_at = _time_to_gap(seq_t, seq_g, target)
        measured = (
            t_seq_at / t_new if math.isfinite(t_new) and t_new > 0 else 0.0
        )
        rows.append((label, measured, PAPER_SPEEDUPS.get(label, math.nan)))

    fig10 = run_fig10(scale)
    tpa = fig10.get("TPA-SCD (Titan X)")
    wild = fig10.get("PASSCoDe (16 threads)")
    scd = fig10.get("SCD (1 thread)")
    # measure where Wild is still descending: its own best (final) gap x2
    eps10 = float(np.nanmin(wild.y[1:])) * 2.0
    t_tpa = _time_to_gap(tpa.x, tpa.y, eps10)
    t_wild = _time_to_gap(wild.x, wild.y, eps10)
    t_scd = _time_to_gap(scd.x, scd.y, eps10)
    rows.append(
        (
            "dist TPA-SCD vs dist SCD (K=4)",
            (t_scd / t_tpa) if math.isfinite(t_scd) and t_tpa > 0 else 0.0,
            PAPER_SPEEDUPS["dist TPA-SCD vs dist SCD (K=4)"],
        )
    )
    rows.append(
        (
            "dist TPA-SCD vs dist PASSCoDe (K=4)",
            (t_wild / t_tpa) if math.isfinite(t_wild) and t_tpa > 0 else 0.0,
            PAPER_SPEEDUPS["dist TPA-SCD vs dist PASSCoDe (K=4)"],
        )
    )

    fig = FigureResult(
        figure_id="headline",
        title="Headline training-time speedups vs paper",
        meta={"eps_dual": eps, "eps_criteo": eps10, "scale": scale.name},
    )
    labels = [r[0] for r in rows]
    fig.add(
        CurveSeries(
            label="measured speedup",
            x=np.arange(len(rows), dtype=float),
            y=np.asarray([r[1] for r in rows]),
            x_name="row",
            y_name="speedup",
            meta={"rows": labels},
        )
    )
    fig.add(
        CurveSeries(
            label="paper speedup",
            x=np.arange(len(rows), dtype=float),
            y=np.asarray([r[2] for r in rows]),
            x_name="row",
            y_name="speedup",
            meta={"rows": labels},
        )
    )
    for name, measured, paper_val in rows:
        fig.notes.append(
            f"{name}: measured {measured:.1f}x, paper {paper_val:.0f}x"
        )
    return fig
