"""Fig. 10 — large-scale training on the criteo-like dataset (Section V-B).

The paper trains on a 40 GB criteo sample (200 M examples, 75 M features,
all values 1) that does not fit in any single GPU: it is partitioned by
example across 4 Titan X workers.  Three distributed configurations are
compared (K = 4 everywhere, dual formulation):

* distributed SCD with single-thread CPU local solvers;
* distributed SCD with PASSCoDe-Wild (16 threads) local solvers;
* distributed TPA-SCD on Titan X GPUs with adaptive aggregation.

We additionally reproduce the *memory gate*: booking the paper-scale 40 GB
footprint on one simulated Titan X raises ``GpuOutOfMemoryError``, while a
quarter of it fits on each of four devices.

:func:`run_fig10_outofcore` then *defeats* the gate: the same 40 GB
footprint trains on ONE 12 GB Titan X by streaming shard groups through a
device-budgeted :class:`~repro.shards.ShardCache`, with the re-read PCIe
traffic billed into the ledger's ``shard_stream`` phase — and the resulting
weights bit-identical to the resident run.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np

from ..cluster.partition import shard_aligned_partition
from ..core.distributed import DistributedSCD
from ..core.tpa_scd import TpaScdKernelFactory
from ..gpu.device import GpuDevice
from ..gpu.memory import GpuOutOfMemoryError
from ..gpu.spec import GTX_TITAN_X
from ..obs import Tracer, active_tracer
from ..perf.link import ETHERNET_10G, PCIE3_X16_PINNED
from ..shards import ShardingConfig, ShardStore, pack_dataset
from .config import (
    ScaleConfig,
    active_scale,
    async_factory,
    criteo_problem,
    epochs,
    sequential_factory,
    tpa_factory,
)
from .results import CurveSeries, FigureResult

__all__ = ["run_fig10", "run_fig10_outofcore", "CRITEO_PAPER_NBYTES"]

#: the paper's criteo sample occupies ~40 GB in CSR
CRITEO_PAPER_NBYTES = 40 * 2**30

N_WORKERS = 4


def _oom_check(problem, paper) -> dict:
    """Verify the 40 GB sample does not fit on one Titan X but 1/4 does."""
    single = TpaScdKernelFactory(
        GpuDevice(GTX_TITAN_X),
        simulated_dataset_nbytes=CRITEO_PAPER_NBYTES,
    )
    try:
        single.bind_dual(problem.dataset.csr, problem.y, problem.n, problem.lam)
        single_fits = True
    except GpuOutOfMemoryError:
        single_fits = False
    quarter = TpaScdKernelFactory(
        GpuDevice(GTX_TITAN_X),
        simulated_dataset_nbytes=CRITEO_PAPER_NBYTES // N_WORKERS,
    )
    quarter.bind_dual(problem.dataset.csr, problem.y, problem.n, problem.lam)
    return {"single_gpu_fits_40GB": single_fits, "quarter_fits": True}


def run_fig10(scale: ScaleConfig | None = None) -> FigureResult:
    """Fig. 10: gap vs time for the three K=4 distributed configurations."""
    scale = scale or active_scale()
    problem, paper = criteo_problem(scale)
    n_epochs = epochs(40, scale)
    monitor = max(1, n_epochs // 20)

    fig = FigureResult(
        figure_id="fig10",
        title="Large-scale criteo-like training, K=4 workers (dual form)",
        meta={"scale": scale.name, "n_epochs": n_epochs},
    )
    fig.meta.update(_oom_check(problem, paper))

    configs = [
        (
            "SCD (1 thread)",
            DistributedSCD(
                sequential_factory(paper, "dual"),
                "dual",
                n_workers=N_WORKERS,
                aggregation="averaging",
                network=ETHERNET_10G,
                paper_scale=paper,
                seed=5,
            ),
        ),
        (
            "PASSCoDe (16 threads)",
            DistributedSCD(
                async_factory(paper, "dual", write_mode="wild"),
                "dual",
                n_workers=N_WORKERS,
                aggregation="averaging",
                network=ETHERNET_10G,
                paper_scale=paper,
                seed=5,
            ),
        ),
        (
            # the paper's Titan X cluster is 4 GPUs in one machine whose
            # workers aggregate over the PCIe fabric, not Ethernet
            "TPA-SCD (Titan X)",
            DistributedSCD(
                lambda rank: tpa_factory(
                    GTX_TITAN_X, paper, "dual", problem, n_workers=N_WORKERS
                ),
                "dual",
                n_workers=N_WORKERS,
                aggregation="adaptive",
                network=PCIE3_X16_PINNED,
                pcie=PCIE3_X16_PINNED,
                paper_scale=paper,
                seed=5,
            ),
        ),
    ]
    for label, engine in configs:
        res = engine.solve(problem, n_epochs, monitor_every=monitor)
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.sim_times,
                y=res.history.gaps,
                x_name="time(s)",
                y_name="gap",
                meta={"solver": label},
            )
        )
    fig.notes.append(
        "expected: TPA-SCD fastest by >10x; PASSCoDe-Wild's gap does not "
        "converge to zero; paper reports ~4 s to high accuracy on 4 GPUs"
    )
    return fig


def run_fig10_outofcore(scale: ScaleConfig | None = None) -> FigureResult:
    """Fig. 10 out-of-core variant: 40 GB streamed through one 12 GB GPU.

    The criteo-like sample is packed into a rows-axis shard set billed at
    the paper's 40 GB footprint; a single Titan X worker streams the shard
    groups through a device-budgeted LRU cache (double-buffered prefetch
    over the PCIe link model) instead of holding the dataset resident.
    The run must finish without :class:`GpuOutOfMemoryError`, evict shards
    along the way, and produce weights bit-identical to the resident run.
    """
    scale = scale or active_scale()
    problem, paper = criteo_problem(scale)
    n_epochs = epochs(40, scale)
    monitor = max(1, n_epochs // 20)

    tracer = active_tracer()
    if not tracer.enabled:
        tracer = Tracer()

    def engine(**kwargs) -> DistributedSCD:
        return DistributedSCD(
            lambda rank: tpa_factory(
                GTX_TITAN_X, paper, "dual", problem, n_workers=1
            ),
            "dual",
            n_workers=1,
            aggregation="adaptive",
            network=PCIE3_X16_PINNED,
            pcie=PCIE3_X16_PINNED,
            paper_scale=paper,
            seed=5,
            **kwargs,
        )

    shard_dir = tempfile.mkdtemp(prefix="repro-fig10-shards-")
    try:
        pack_dataset(problem.dataset, shard_dir, axis="rows", n_shards=8)
        store = ShardStore(shard_dir)
        cfg = ShardingConfig(
            store,
            link=PCIE3_X16_PINNED,
            prefetch=True,
            simulated_total_nbytes=CRITEO_PAPER_NBYTES,
        )
        resident = engine(partitioner=shard_aligned_partition(store)).solve(
            problem, n_epochs, monitor_every=monitor
        )
        streamed = engine(shards=cfg).solve(
            problem, n_epochs, monitor_every=monitor, tracer=tracer
        )
    finally:
        shutil.rmtree(shard_dir, ignore_errors=True)

    metrics = tracer.metrics
    fig = FigureResult(
        figure_id="fig10-outofcore",
        title="40 GB criteo-like footprint on one 12 GB Titan X (out-of-core)",
        meta={
            "scale": scale.name,
            "n_epochs": n_epochs,
            "simulated_nbytes": CRITEO_PAPER_NBYTES,
            "device_capacity_gb": GTX_TITAN_X.mem_capacity_gb,
            "bit_identical": bool(
                np.array_equal(resident.weights, streamed.weights)
            ),
            "cache_misses": int(metrics.counter("shards.cache.miss")),
            "cache_hits": int(metrics.counter("shards.cache.hit")),
            "cache_evictions": int(metrics.counter("shards.cache.evict")),
            "shard_stream_s": streamed.ledger.get("shard_stream"),
        },
    )
    fig.add(
        CurveSeries(
            label="TPA-SCD (resident)",
            x=resident.history.sim_times,
            y=resident.history.gaps,
            x_name="time(s)",
            y_name="gap",
            meta={"solver": "resident"},
        )
    )
    fig.add(
        CurveSeries(
            label="TPA-SCD (out-of-core, 40 GB / 12 GB)",
            x=streamed.history.sim_times,
            y=streamed.history.gaps,
            x_name="time(s)",
            y_name="gap",
            meta={"solver": "out-of-core"},
        )
    )
    fig.notes.append(
        "identical gap-vs-epoch trajectory; the out-of-core time axis is "
        "stretched by the PCIe shard traffic the cache cannot hide"
    )
    return fig
