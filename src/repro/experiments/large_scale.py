"""Fig. 10 — large-scale training on the criteo-like dataset (Section V-B).

The paper trains on a 40 GB criteo sample (200 M examples, 75 M features,
all values 1) that does not fit in any single GPU: it is partitioned by
example across 4 Titan X workers.  Three distributed configurations are
compared (K = 4 everywhere, dual formulation):

* distributed SCD with single-thread CPU local solvers;
* distributed SCD with PASSCoDe-Wild (16 threads) local solvers;
* distributed TPA-SCD on Titan X GPUs with adaptive aggregation.

We additionally reproduce the *memory gate*: booking the paper-scale 40 GB
footprint on one simulated Titan X raises ``GpuOutOfMemoryError``, while a
quarter of it fits on each of four devices.
"""

from __future__ import annotations

from ..core.distributed import DistributedSCD
from ..core.tpa_scd import TpaScdKernelFactory
from ..gpu.device import GpuDevice
from ..gpu.memory import GpuOutOfMemoryError
from ..gpu.spec import GTX_TITAN_X
from ..perf.link import ETHERNET_10G, PCIE3_X16_PINNED
from .config import (
    ScaleConfig,
    active_scale,
    async_factory,
    criteo_problem,
    epochs,
    sequential_factory,
    tpa_factory,
)
from .results import CurveSeries, FigureResult

__all__ = ["run_fig10", "CRITEO_PAPER_NBYTES"]

#: the paper's criteo sample occupies ~40 GB in CSR
CRITEO_PAPER_NBYTES = 40 * 2**30

N_WORKERS = 4


def _oom_check(problem, paper) -> dict:
    """Verify the 40 GB sample does not fit on one Titan X but 1/4 does."""
    single = TpaScdKernelFactory(
        GpuDevice(GTX_TITAN_X),
        simulated_dataset_nbytes=CRITEO_PAPER_NBYTES,
    )
    try:
        single.bind_dual(problem.dataset.csr, problem.y, problem.n, problem.lam)
        single_fits = True
    except GpuOutOfMemoryError:
        single_fits = False
    quarter = TpaScdKernelFactory(
        GpuDevice(GTX_TITAN_X),
        simulated_dataset_nbytes=CRITEO_PAPER_NBYTES // N_WORKERS,
    )
    quarter.bind_dual(problem.dataset.csr, problem.y, problem.n, problem.lam)
    return {"single_gpu_fits_40GB": single_fits, "quarter_fits": True}


def run_fig10(scale: ScaleConfig | None = None) -> FigureResult:
    """Fig. 10: gap vs time for the three K=4 distributed configurations."""
    scale = scale or active_scale()
    problem, paper = criteo_problem(scale)
    n_epochs = epochs(40, scale)
    monitor = max(1, n_epochs // 20)

    fig = FigureResult(
        figure_id="fig10",
        title="Large-scale criteo-like training, K=4 workers (dual form)",
        meta={"scale": scale.name, "n_epochs": n_epochs},
    )
    fig.meta.update(_oom_check(problem, paper))

    configs = [
        (
            "SCD (1 thread)",
            DistributedSCD(
                sequential_factory(paper, "dual"),
                "dual",
                n_workers=N_WORKERS,
                aggregation="averaging",
                network=ETHERNET_10G,
                paper_scale=paper,
                seed=5,
            ),
        ),
        (
            "PASSCoDe (16 threads)",
            DistributedSCD(
                async_factory(paper, "dual", write_mode="wild"),
                "dual",
                n_workers=N_WORKERS,
                aggregation="averaging",
                network=ETHERNET_10G,
                paper_scale=paper,
                seed=5,
            ),
        ),
        (
            # the paper's Titan X cluster is 4 GPUs in one machine whose
            # workers aggregate over the PCIe fabric, not Ethernet
            "TPA-SCD (Titan X)",
            DistributedSCD(
                lambda rank: tpa_factory(
                    GTX_TITAN_X, paper, "dual", problem, n_workers=N_WORKERS
                ),
                "dual",
                n_workers=N_WORKERS,
                aggregation="adaptive",
                network=PCIE3_X16_PINNED,
                pcie=PCIE3_X16_PINNED,
                paper_scale=paper,
                seed=5,
            ),
        ),
    ]
    for label, engine in configs:
        res = engine.solve(problem, n_epochs, monitor_every=monitor)
        fig.add(
            CurveSeries(
                label=label,
                x=res.history.sim_times,
                y=res.history.gaps,
                x_name="time(s)",
                y_name="gap",
                meta={"solver": label},
            )
        )
    fig.notes.append(
        "expected: TPA-SCD fastest by >10x; PASSCoDe-Wild's gap does not "
        "converge to zero; paper reports ~4 s to high accuracy on 4 GPUs"
    )
    return fig
