"""The single experiment-driver registry.

Every figure, ablation, extension, and scenario driver registers here once,
with the metadata the orchestration layers need:

* the public ``driver_id`` (``fig1``, ``ext-fault-tolerance``, ``serving``),
* a one-line title for reports and listings,
* the callable (``fn(scale=None, **params) -> FigureResult``),
* the *sweepable* keyword parameters the driver accepts beyond ``scale`` —
  the axes a ``repro.eval`` config may put in its ``[matrix]``.

Both the ``repro.eval`` subsystem and ``tools/generate_experiments_md.py``
discover drivers from this table (and the CLI's ``ALL_EXPERIMENTS`` mapping
is derived from it), so adding a driver means one :func:`register` call —
not another bespoke import site in every orchestration script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .results import FigureResult

__all__ = [
    "DriverSpec",
    "REGISTRY",
    "register",
    "get_driver",
    "driver",
    "driver_ids",
    "run_driver",
]


@dataclass(frozen=True)
class DriverSpec:
    """One registered experiment driver and its sweepable surface."""

    driver_id: str
    title: str
    fn: Callable[..., FigureResult] = field(repr=False)
    #: grouping used by listings: figure | ablation | extension | scenario
    kind: str = "figure"
    #: keyword parameters (beyond ``scale``) a sweep axis may bind
    params: tuple[str, ...] = ()

    def run(self, scale=None, **params) -> FigureResult:
        """Invoke the driver, rejecting parameters it never declared."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise TypeError(
                f"driver {self.driver_id!r} does not accept parameter(s) "
                f"{unknown}; declared sweepable params: {list(self.params)}"
            )
        return self.fn(scale, **params)


#: driver_id -> spec, in registration (presentation) order
REGISTRY: dict[str, DriverSpec] = {}


def register(
    driver_id: str,
    title: str,
    fn: Callable[..., FigureResult],
    *,
    kind: str = "figure",
    params: tuple[str, ...] = (),
) -> DriverSpec:
    """Register one driver; duplicate ids are a programming error."""
    if driver_id in REGISTRY:
        raise ValueError(f"driver {driver_id!r} is already registered")
    spec = DriverSpec(driver_id, title, fn, kind=kind, params=params)
    REGISTRY[driver_id] = spec
    return spec


def unregister(driver_id: str) -> None:
    """Remove a registered driver (test scaffolding)."""
    REGISTRY.pop(driver_id, None)


def get_driver(driver_id: str) -> DriverSpec:
    """Resolve ``driver_id`` or fail with the list of known ids."""
    try:
        return REGISTRY[driver_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment driver {driver_id!r}; known drivers: "
            f"{', '.join(sorted(REGISTRY))}"
        ) from None


def driver(driver_id: str) -> Callable[..., FigureResult]:
    """The bare callable for ``driver_id`` (benchmarks use this)."""
    return get_driver(driver_id).fn


def driver_ids(kind: str | None = None) -> list[str]:
    """All registered ids, optionally restricted to one ``kind``."""
    return [
        spec.driver_id
        for spec in REGISTRY.values()
        if kind is None or spec.kind == kind
    ]


def run_driver(driver_id: str, scale=None, **params) -> FigureResult:
    """One-call convenience: resolve and run."""
    return get_driver(driver_id).run(scale, **params)


def _populate() -> None:
    """Register the built-in drivers (import-cycle-free, called once)."""
    from .ablations import (
        run_aggregation_ablation,
        run_gpu_write_ablation,
        run_pcie_ablation,
        run_precision_ablation,
        run_wave_ablation,
    )
    from .convergence import run_fig1, run_fig2
    from .distributed_figs import run_fig3, run_fig4, run_fig5, run_fig6
    from .extensions import (
        run_async_vs_sync,
        run_batch_vs_stochastic,
        run_comm_tradeoff,
        run_glm_gpu,
        run_heterogeneous_cluster,
        run_sigma_sweep,
        run_smart_partition,
        run_weak_scaling,
    )
    from .faults import run_fault_breakdown, run_fault_tolerance
    from .gpu_cluster import run_fig8, run_fig9
    from .elastic_fig import run_elastic
    from .headline import run_headline
    from .large_scale import run_fig10, run_fig10_outofcore
    from .serving_fig import run_serving
    from .syscd_fig import run_syscd_scaling

    def _form(fn, formulation):
        def _run(scale=None):
            return fn(formulation, scale)

        _run.__name__ = f"{fn.__name__}_{formulation}"
        return _run

    register("fig1", "Fig. 1 — primal convergence (five solvers)", run_fig1)
    register("fig2", "Fig. 2 — dual convergence (five solvers)", run_fig2)
    for formulation in ("primal", "dual"):
        tag = formulation
        register(
            f"fig3-{tag}",
            f"Fig. 3 — distributed SCD vs epochs ({tag})",
            _form(run_fig3, formulation),
        )
        register(
            f"fig4-{tag}",
            f"Fig. 4 — adaptive vs averaging aggregation ({tag})",
            _form(run_fig4, formulation),
        )
        register(
            f"fig5-{tag}",
            f"Fig. 5 — optimal gamma evolution ({tag})",
            _form(run_fig5, formulation),
        )
        register(
            f"fig6-{tag}",
            f"Fig. 6 — time to gap vs workers ({tag})",
            _form(run_fig6, formulation),
        )

    def _cluster(cluster):
        def _run(scale=None):
            return run_fig8(cluster, scale)

        _run.__name__ = f"run_fig8_{cluster}"
        return _run

    register("fig8-m4000", "Fig. 8a — M4000 cluster (10 GbE)", _cluster("m4000"))
    register("fig8-titanx", "Fig. 8b — Titan X cluster (PCIe)", _cluster("titanx"))
    register("fig9", "Fig. 9 — computation vs communication breakdown", run_fig9)
    register("fig10", "Fig. 10 — criteo-like large-scale training", run_fig10)
    register(
        "fig10-outofcore",
        "Fig. 10 (out-of-core) — 40 GB footprint on one 12 GB GPU",
        run_fig10_outofcore,
    )
    register("headline", "Headline speedups (abstract / Sections I & VI)", run_headline)

    register(
        "ablation-wave",
        "Ablation — wave size vs convergence and throughput",
        run_wave_ablation,
        kind="ablation",
    )
    register(
        "ablation-gpu-write",
        "Ablation — GPU global-write strategies",
        run_gpu_write_ablation,
        kind="ablation",
    )
    register(
        "ablation-aggregation",
        "Ablation — aggregation policies",
        run_aggregation_ablation,
        kind="ablation",
    )
    register(
        "ablation-precision",
        "Ablation — fp32 vs fp64 accumulation",
        run_precision_ablation,
        kind="ablation",
    )
    register(
        "ablation-pcie",
        "Ablation — PCIe generation sensitivity",
        run_pcie_ablation,
        kind="ablation",
    )

    register(
        "ext-smart-partition",
        "Extension — correlation-aware partitioning",
        run_smart_partition,
        kind="extension",
    )
    register(
        "ext-comm-tradeoff",
        "Extension — aggregation granularity vs fabric",
        run_comm_tradeoff,
        kind="extension",
    )
    register(
        "ext-sigma-sweep",
        "Extension — sigma' scaling sweep",
        run_sigma_sweep,
        kind="extension",
    )
    register(
        "ext-async-vs-sync",
        "Extension — asynchronous vs synchronous updates",
        run_async_vs_sync,
        kind="extension",
    )
    register(
        "ext-heterogeneous",
        "Extension — heterogeneous GPU cluster",
        run_heterogeneous_cluster,
        kind="extension",
    )
    register(
        "ext-glm-gpu",
        "Extension — TPA engine on elastic-net and SVM GLMs",
        run_glm_gpu,
        kind="extension",
    )
    register(
        "ext-batch-vs-stochastic",
        "Extension — batch vs stochastic methods",
        run_batch_vs_stochastic,
        kind="extension",
    )
    register(
        "ext-weak-scaling",
        "Extension — weak scaling as data grows with K",
        run_weak_scaling,
        kind="extension",
    )
    register(
        "ext-fault-tolerance",
        "Extension — duality gap under injected fault scenarios",
        run_fault_tolerance,
        kind="extension",
        params=("scenario",),
    )
    register(
        "ext-fault-breakdown",
        "Extension — execution-time breakdown under faults",
        run_fault_breakdown,
        kind="extension",
        params=("scenario",),
    )

    register(
        "serving",
        "Online serving — train-to-serve hot-swap under seeded traffic",
        run_serving,
        kind="scenario",
        params=("solver", "seed"),
    )

    register(
        "syscd",
        "SySCD — bucketed parallel CPU solver thread scaling (measured)",
        run_syscd_scaling,
        kind="scenario",
        params=("threads", "buckets", "merge_every"),
    )

    register(
        "elastic",
        "Elastic membership — fixed vs join/leave cluster on one seed",
        run_elastic,
        kind="scenario",
        params=("workers", "comm", "rebalance_every", "seed"),
    )


_populate()
