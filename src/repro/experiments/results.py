"""Result containers for the reproduced figures and tables.

Every experiment driver returns a :class:`FigureResult` holding one
:class:`CurveSeries` per plotted line (or one row group per table).  The
containers render to aligned text so the benchmark harness can print exactly
the rows/series the paper reports, and EXPERIMENTS.md is generated from the
same structures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["CurveSeries", "FigureResult", "format_float"]


def format_float(x: float) -> str:
    """Compact scientific/decimal formatting for report tables."""
    if x is None or (isinstance(x, float) and math.isnan(x)):
        return "-"
    if math.isinf(x):
        return "inf"
    if x == 0:
        return "0"
    if 1e-3 <= abs(x) < 1e4:
        return f"{x:.4g}"
    return f"{x:.3e}"


def _jsonify(value):
    """Recursively convert numpy scalars/arrays so ``json.dumps`` accepts it."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


@dataclass
class CurveSeries:
    """One plotted line: a label and matched x/y arrays."""

    label: str
    x: np.ndarray
    y: np.ndarray
    x_name: str = "x"
    y_name: str = "y"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.shape != self.y.shape:
            raise ValueError(
                f"series {self.label!r}: x has shape {self.x.shape}, "
                f"y has shape {self.y.shape}"
            )

    def final(self) -> float:
        return float(self.y[-1]) if self.y.size else math.nan

    def to_dict(self) -> dict:
        """JSON-serialisable form (numpy arrays become lists of floats)."""
        return {
            "label": self.label,
            "x_name": self.x_name,
            "y_name": self.y_name,
            "x": [float(v) for v in self.x],
            "y": [float(v) for v in self.y],
            "meta": _jsonify(self.meta),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CurveSeries":
        """Inverse of :meth:`to_dict` (used by the eval result cache)."""
        return cls(
            label=doc["label"],
            x=np.asarray(doc["x"], dtype=np.float64),
            y=np.asarray(doc["y"], dtype=np.float64),
            x_name=doc.get("x_name", "x"),
            y_name=doc.get("y_name", "y"),
            meta=dict(doc.get("meta", {})),
        )


@dataclass
class FigureResult:
    """A reproduced figure/table: id, title, series, and free-form notes."""

    figure_id: str
    title: str
    series: list[CurveSeries] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, series: CurveSeries) -> None:
        self.series.append(series)

    def get(self, label: str) -> CurveSeries:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")

    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    def to_dict(self) -> dict:
        """JSON-serialisable form of the whole figure."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "series": [s.to_dict() for s in self.series],
            "notes": list(self.notes),
            "meta": _jsonify(self.meta),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FigureResult":
        """Inverse of :meth:`to_dict` (used by the eval result cache)."""
        return cls(
            figure_id=doc["figure_id"],
            title=doc.get("title", ""),
            series=[CurveSeries.from_dict(s) for s in doc.get("series", [])],
            notes=list(doc.get("notes", [])),
            meta=dict(doc.get("meta", {})),
        )

    # -- rendering --------------------------------------------------------
    def render_text(self, *, max_rows: int = 12) -> str:
        """Aligned text rendering of every series (downsampled for length)."""
        lines = [f"== {self.figure_id}: {self.title} =="]
        for s in self.series:
            lines.append(f"-- {s.label}  ({s.x_name} -> {s.y_name})")
            n = s.x.shape[0]
            if n == 0:
                lines.append("   (empty)")
                continue
            idx: Sequence[int]
            if n <= max_rows:
                idx = range(n)
            else:
                idx = sorted(
                    set(np.linspace(0, n - 1, max_rows).astype(int).tolist())
                )
            row_x = "  ".join(f"{format_float(s.x[i]):>10}" for i in idx)
            row_y = "  ".join(f"{format_float(s.y[i]):>10}" for i in idx)
            lines.append(f"   {s.x_name:>10}: {row_x}")
            lines.append(f"   {s.y_name:>10}: {row_y}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render_text()
