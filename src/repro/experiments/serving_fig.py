"""The online-serving scenario as a registered experiment driver.

Wraps :func:`repro.serve.demo.train_to_serve` — the seeded train → publish →
hot-swap → oracle-audit demo — into a :class:`FigureResult` so the serving
layer is sweepable from ``repro.eval`` configs (solver matrix, seeds) and
rendered by the same report machinery as the paper figures.
"""

from __future__ import annotations

import numpy as np

from .config import ScaleConfig, active_scale
from .results import CurveSeries, FigureResult

__all__ = ["run_serving", "SERVING_SIZES"]

#: per-scale demo sizing: (n_examples, n_features, n_epochs, publish_every,
#: rate_hz, duration_s)
SERVING_SIZES: dict[str, tuple[int, int, int, int, float, float]] = {
    "tiny": (192, 48, 6, 2, 1_000.0, 0.5),
    "quick": (512, 128, 12, 3, 2_000.0, 1.0),
    "full": (1_024, 256, 12, 3, 4_000.0, 1.0),
}


def run_serving(
    scale: ScaleConfig | None = None,
    *,
    solver: str = "seq",
    seed: int = 0,
) -> FigureResult:
    """Train-to-serve demo as a figure: latency, staleness, audit verdict."""
    from ..serve import train_to_serve

    scale = scale or active_scale()
    n_examples, n_features, n_epochs, publish_every, rate_hz, duration_s = (
        SERVING_SIZES[scale.name]
    )
    report = train_to_serve(
        solver=solver,
        n_epochs=n_epochs,
        publish_every=publish_every,
        n_examples=n_examples,
        n_features=n_features,
        rate_hz=rate_hz,
        duration_s=duration_s,
        seed=seed,
    )

    fig = FigureResult(
        figure_id="serving",
        title=(
            f"Train-to-serve hot-swap ({solver}): {report.n_requests} seeded "
            "requests, bitwise oracle audit"
        ),
        meta={
            "solver": report.solver,
            "seed": seed,
            "scale": scale.name,
            "n_requests": report.n_requests,
            "n_served": report.n_served,
            "n_shed": report.n_shed,
            "versions_published": list(report.versions_published),
            "versions_served": list(report.versions_served),
            "fingerprints": [f"{fp:#010x}" for fp in report.fingerprints],
            "oracle_mismatches": len(report.oracle_mismatches),
            "p50_latency_s": report.p50_latency_s,
            "p99_latency_s": report.p99_latency_s,
            "ok": report.ok,
        },
    )
    swaps = report.staleness_at_swaps
    versions = np.asarray([v for v, _, _ in swaps], dtype=float)
    fig.add(
        CurveSeries(
            label="staleness before swap",
            x=versions,
            y=np.asarray([before for _, before, _ in swaps], dtype=float),
            x_name="version",
            y_name="staleness(epochs)",
        )
    )
    fig.add(
        CurveSeries(
            label="staleness after swap",
            x=versions,
            y=np.asarray([after for _, _, after in swaps], dtype=float),
            x_name="version",
            y_name="staleness(epochs)",
        )
    )
    fig.add(
        CurveSeries(
            label="modelled latency quantile",
            x=np.asarray([50.0, 99.0]),
            y=np.asarray([report.p50_latency_s, report.p99_latency_s]),
            x_name="percentile",
            y_name="latency(s)",
        )
    )
    fig.notes.append(
        "acceptance: >= 3 versions served, zero oracle mismatches, staleness "
        "falls at every swap, consecutive fingerprints distinct"
        + (" — OK" if report.ok else " — FAILED")
    )
    return fig
