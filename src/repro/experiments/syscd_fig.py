"""SySCD thread-scaling scenario as a registered experiment driver.

One cell trains the bucketed :class:`~repro.solvers.syscd.SySCD` solver at a
given ``(threads, buckets, merge_every)`` setting next to its own
single-thread exact reference, on the same webspam-like problem the paper
figures use.  The figure carries both convergence curves plus the *measured*
(wall-clock) per-epoch times of each path, so a ``repro.eval`` sweep over
``threads`` renders a thread-scaling report straight from the registry
(see ``configs/syscd.toml``).
"""

from __future__ import annotations

import time

import numpy as np

from .config import ScaleConfig, active_scale, epochs, webspam_problem
from .results import CurveSeries, FigureResult

__all__ = ["run_syscd_scaling"]


def _timed_solve(engine, problem, n_epochs: int) -> float:
    """Mean wall-clock seconds per epoch, monitoring only the final epoch."""
    start = time.perf_counter()
    engine.solve(problem, n_epochs, monitor_every=n_epochs)
    return (time.perf_counter() - start) / n_epochs


def run_syscd_scaling(
    scale: ScaleConfig | None = None,
    *,
    threads: int = 4,
    buckets: int = 0,
    merge_every: int = 1,
) -> FigureResult:
    """SySCD at one parallelism setting vs its exact 1-thread reference.

    ``buckets=0`` means cache-aware automatic bucket sizing (the solver's
    default); any positive value pins the bucket size exactly.
    """
    from ..solvers.syscd import SySCD

    scale = scale or active_scale()
    problem, _ = webspam_problem(scale)
    n_epochs = epochs(20, scale)
    bucket_size = None if buckets in (0, None) else int(buckets)

    reference = SySCD("primal", n_threads=1, kernel_backend="numpy", seed=0)
    solver = SySCD(
        "primal",
        n_threads=threads,
        bucket_size=bucket_size,
        merge_every=merge_every,
        seed=0,
    )
    ref_result = reference.solve(problem, n_epochs)
    par_result = solver.solve(problem, n_epochs)
    ref_epoch_s = _timed_solve(reference, problem, n_epochs)
    par_epoch_s = _timed_solve(solver, problem, n_epochs)
    measured_speedup = ref_epoch_s / par_epoch_s if par_epoch_s > 0 else 0.0

    fig = FigureResult(
        figure_id="syscd",
        title=(
            f"SySCD thread scaling: {threads} thread(s), "
            f"{'auto' if bucket_size is None else bucket_size}-coordinate "
            f"buckets, merge every {merge_every}"
        ),
        meta={
            "threads": threads,
            "buckets": buckets,
            "merge_every": merge_every,
            "scale": scale.name,
            "backend": solver.factory.backend,
            "ref_epoch_s": ref_epoch_s,
            "par_epoch_s": par_epoch_s,
            "measured_speedup": measured_speedup,
            "final_gap_ref": ref_result.history.final_gap(),
            "final_gap_par": par_result.history.final_gap(),
        },
    )
    for label, result in (
        ("exact reference (1 thread)", ref_result),
        (f"SySCD ({threads} threads)", par_result),
    ):
        records = result.history.records
        fig.add(
            CurveSeries(
                label=label,
                x=np.asarray([r.epoch for r in records], dtype=float),
                y=np.asarray([r.gap for r in records], dtype=float),
                x_name="epoch",
                y_name="duality gap",
            )
        )
    fig.add(
        CurveSeries(
            label="measured s/epoch",
            x=np.asarray([1.0, float(threads)]),
            y=np.asarray([ref_epoch_s, par_epoch_s]),
            x_name="threads",
            y_name="s/epoch (wall-clock)",
        )
    )
    fig.notes.append(
        f"measured wall-clock speedup at {threads} thread(s): "
        f"{measured_speedup:.2f}x over the exact single-thread numpy "
        f"reference (backend: {solver.factory.backend})"
    )
    return fig
