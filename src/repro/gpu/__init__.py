"""Simulated GPU substrate: specs, memory, execution engine, timing."""

from .device import GpuDevice
from .engine import TpaScdEngine, block_tree_dots
from .glm_engine import (
    CoordinateRule,
    ElasticNetPrimalRule,
    GlmTpaEngine,
    RidgeDualRule,
    RidgePrimalRule,
    SvmDualRule,
)
from .memory import DeviceMemory, GpuOutOfMemoryError
from .plan import (
    BufferPool,
    WavePlan,
    clear_plan_cache,
    get_plan,
    plan_cache_stats,
)
from .profiler import KernelProfile
from .spec import GTX_TITAN_X, QUADRO_M4000, TESLA_P100, GpuSpec
from .timing import BYTES_PER_NNZ, GpuTimingModel

__all__ = [
    "GpuDevice",
    "TpaScdEngine",
    "block_tree_dots",
    "CoordinateRule",
    "GlmTpaEngine",
    "RidgePrimalRule",
    "RidgeDualRule",
    "ElasticNetPrimalRule",
    "SvmDualRule",
    "DeviceMemory",
    "GpuOutOfMemoryError",
    "WavePlan",
    "BufferPool",
    "get_plan",
    "plan_cache_stats",
    "clear_plan_cache",
    "KernelProfile",
    "GpuSpec",
    "QUADRO_M4000",
    "GTX_TITAN_X",
    "TESLA_P100",
    "GpuTimingModel",
    "BYTES_PER_NNZ",
]
