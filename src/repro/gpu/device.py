"""A simulated GPU device: spec + memory + PCIe link.

Composes the static :class:`~repro.gpu.spec.GpuSpec`, the capacity-checked
:class:`~repro.gpu.memory.DeviceMemory`, and a host<->device PCIe
:class:`~repro.perf.link.Link`.  Training data is uploaded once at the start
of a run ("the dataset ... is transferred into the GPU memory once at the
beginning of operation and does not move"), while the shared vector crosses
PCIe twice per epoch in the distributed setting.
"""

from __future__ import annotations

from ..data import Dataset
from ..perf.link import PCIE3_X16_PINNED, Link
from .memory import DeviceMemory
from .spec import GpuSpec

__all__ = ["GpuDevice"]


class GpuDevice:
    """One simulated GPU attached to a host over PCIe.

    Parameters
    ----------
    spec:
        The device model (M4000, Titan X, ...).
    pcie:
        Host link; defaults to pinned-memory PCIe 3.0 x16, the configuration
        the paper uses for maximum transfer throughput.
    """

    def __init__(self, spec: GpuSpec, *, pcie: Link = PCIE3_X16_PINNED) -> None:
        self.spec = spec
        self.pcie = pcie
        self.memory = DeviceMemory(spec.mem_capacity_bytes)

    # -- data movement ------------------------------------------------------
    def upload_dataset(
        self, dataset: Dataset, *, simulated_nbytes: int | None = None
    ) -> float:
        """Allocate and transfer the training partition; returns seconds.

        ``simulated_nbytes`` lets large-scale experiments account for the
        *paper-scale* footprint of the partition (e.g. 10 GB of a 40 GB
        criteo sample per worker) while the in-process arrays remain laptop
        sized.  Raises :class:`GpuOutOfMemoryError` when the partition does
        not fit — the gate that forces the scale-out in Section V-B.
        """
        nbytes = dataset.nbytes if simulated_nbytes is None else int(simulated_nbytes)
        self.memory.alloc(f"dataset:{dataset.name}", nbytes)
        return self.pcie.transfer_seconds(nbytes)

    def alloc_vector(self, name: str, n_elements: int, itemsize: int = 4) -> None:
        """Reserve device memory for a model/shared vector."""
        self.memory.alloc(name, n_elements * itemsize)

    def vector_transfer_seconds(self, n_elements: int, itemsize: int = 4) -> float:
        """PCIe time to move one vector on or off the device."""
        return self.pcie.transfer_seconds(n_elements * itemsize)

    def reset(self) -> None:
        """Release all allocations (new training run)."""
        self.memory = DeviceMemory(self.spec.mem_capacity_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GpuDevice({self.spec.name}, "
            f"{self.memory.used_bytes / 2**30:.2f}/"
            f"{self.spec.mem_capacity_gb:.0f} GiB used)"
        )
