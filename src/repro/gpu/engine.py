"""Functional emulation of the TPA-SCD GPU kernel (Algorithm 2).

This module reproduces, at the numerical level, what one epoch of TPA-SCD
does on real hardware:

* **Level-1 parallelism** — each coordinate is one thread block; the block
  scheduler keeps ``spec.resident_blocks`` blocks concurrently resident on
  the SMs.  We execute the epoch in *waves* of that size: all blocks in a
  wave read the shared vector as it stood when the wave was scheduled
  (this is the asynchronous-staleness window), then their atomic updates
  are all applied.  A wave size of 1 degenerates to sequential SCD, which
  the property tests exploit.
* **Level-2 parallelism** — inside a block, ``n_threads`` threads compute a
  strided partial inner product in float32 and combine the partials with a
  shared-memory *tree reduction*, exactly as the pseudo-code: lane ``u``
  accumulates elements ``u, u + n_threads, ...`` in order, then
  ``cache[u] += cache[u + v]`` for ``v = n_threads/2, n_threads/4, ..., 1``.
  We reproduce that arithmetic (order and precision) rather than calling a
  fused dot product, so the float32 rounding behaviour of the simulated
  kernel matches the real one's character.
* **Atomic write-back** — every shared-vector contribution is applied
  (float32 atomic adds never lose updates).

Two execution strategies produce bit-identical trajectories:

* the **seed path** (``planned=False``) re-derives each wave's gather
  metadata with :func:`~repro.solvers.kernels.gather_chunk` and scatters
  through ``np.add.at`` — the reference semantics;
* the **planned path** (default) runs through a compiled, pooled
  :class:`~repro.gpu.plan.WavePlan`: per-epoch bulk gathers, slice-only
  waves, assignment-style reductions, and zero steady-state allocations.
"""

from __future__ import annotations

import numpy as np

from ..obs import NULL_SPAN, NULL_TRACER
from ..solvers.kernels import gather_chunk
from .plan import WavePlan, get_plan
from .profiler import KernelProfile

__all__ = ["block_tree_dots", "TpaScdEngine"]


def block_tree_dots(
    flat_vals: np.ndarray,
    flat_gathered: np.ndarray,
    seg_ptr: np.ndarray,
    n_threads: int,
    dtype=np.float32,
) -> np.ndarray:
    """Per-coordinate inner products using the thread-block arithmetic.

    ``flat_vals`` and ``flat_gathered`` are the per-nonzero factor pairs for
    all coordinates of one wave, concatenated; ``seg_ptr`` delimits the
    coordinates.  Lane assignment and reduction order replicate Algorithm 2.
    """
    n_coords = seg_ptr.shape[0] - 1
    if n_coords == 0:
        return np.zeros(0, dtype=dtype)
    prods = (flat_vals * flat_gathered).astype(dtype, copy=False)
    lengths = np.diff(seg_ptr)
    seg_ids = np.repeat(np.arange(n_coords), lengths)
    pos_in_seg = np.arange(prods.shape[0]) - np.repeat(seg_ptr[:-1], lengths)
    lanes = pos_in_seg % n_threads

    # per-(block, lane) strided accumulation, in flat (i.e. stride) order —
    # the same order a CUDA thread walks i = u, u + n_threads, ...
    cache = np.zeros((n_coords, n_threads), dtype=dtype)
    np.add.at(cache, (seg_ids, lanes), prods)

    # shared-memory tree reduction: cache[u] += cache[u + v]
    v = n_threads // 2
    while v:
        cache[:, :v] += cache[:, v : 2 * v]
        v //= 2
    return cache[:, 0].copy()


class TpaScdEngine:
    """One bound TPA-SCD kernel: data arrays + wave execution.

    Parameters
    ----------
    indptr, indices, data:
        The coordinate-major compressed arrays (CSC columns for primal,
        CSR rows for dual), with ``data`` already cast to ``dtype``.
    wave_size:
        Number of concurrently resident thread blocks (staleness window).
    n_threads:
        Threads per block used for the strided partials / tree reduction.
    planned:
        Execute epochs through the compiled/pooled :class:`WavePlan`
        runtime (default) or the per-wave seed path.  Both are bit-identical;
        the seed path exists as the reference for the property tests.
    plan:
        Inject a pre-compiled plan; by default the module-wide plan cache
        is consulted (:func:`~repro.gpu.plan.get_plan`).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        wave_size: int,
        n_threads: int,
        dtype=np.float32,
        profiler: KernelProfile | None = None,
        tracer=None,
        planned: bool = True,
        plan: WavePlan | None = None,
    ) -> None:
        if wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if n_threads < 1 or (n_threads & (n_threads - 1)) != 0:
            raise ValueError("n_threads must be a positive power of two")
        self.indptr = indptr
        self.indices = indices
        self.dtype = np.dtype(dtype)
        self.data = data.astype(self.dtype, copy=False)
        self.wave_size = int(wave_size)
        self.n_threads = int(n_threads)
        self.profiler = profiler
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.planned = bool(planned)
        if plan is not None:
            self.plan = plan
        elif self.planned:
            self.plan = get_plan(
                indptr,
                wave_size=self.wave_size,
                n_threads=self.n_threads,
                dtype=self.dtype,
            )
        else:
            self.plan = None

    def _record_wave(self, tracer, nnz: int, conflicts: int | None, flat_idx) -> None:
        """Book one wave's metrics.

        The conflict analysis is skipped entirely when nothing observes the
        run (``NULL_TRACER``), and on the planned path the count comes for
        free from the epoch plan's conflict table instead of a per-wave
        ``np.unique`` over the gathered indices.
        """
        if tracer is NULL_TRACER or not tracer.enabled:
            return
        tracer.count("gpu.waves")
        tracer.count("gpu.nnz_processed", nnz)
        if nnz:
            if conflicts is None:
                conflicts = nnz - int(np.unique(flat_idx).shape[0])
            tracer.count("gpu.atomic_conflicts", conflicts)

    def _finish_epoch(self, tracer) -> None:
        """Surface pool / plan-cache health after a planned epoch."""
        if self.plan is not None and tracer.enabled:
            tracer.gauge("pool.bytes_reused", self.plan.pool.bytes_reused)

    def run_primal_epoch(
        self,
        y: np.ndarray,
        inv_denom: np.ndarray,
        nlam: float,
        beta: np.ndarray,
        w: np.ndarray,
        perm: np.ndarray,
    ) -> int:
        """One primal epoch: blocks compute ``<y - w, a_m>`` then update.

        Returns 0 (atomic writes never lose updates), matching the
        :class:`~repro.solvers.base.BoundKernel` contract.
        """
        if self.plan is not None:
            return self._planned_epoch(
                mode="primal",
                y=y,
                inv_denom=inv_denom,
                nlam=nlam,
                lam=None,
                weights=beta,
                shared=w,
                perm=perm,
            )
        dt = self.dtype
        tracer = self.tracer
        observed = tracer.enabled
        wave_spans = tracer.detail == "wave"
        with tracer.span(
            "tpa.epoch", category="gpu",
            n_coords=int(perm.shape[0]), wave_size=self.wave_size,
        ) if observed else NULL_SPAN:
            for start in range(0, perm.shape[0], self.wave_size):
                coords = perm[start : start + self.wave_size]
                with tracer.span(
                    "tpa.wave", category="gpu", blocks=int(coords.shape[0])
                ) if wave_spans else NULL_SPAN:
                    flat_idx, flat_val, seg_ptr = gather_chunk(
                        self.indptr, self.indices, self.data, coords
                    )
                    if self.profiler is not None:
                        self.profiler.record_wave(
                            flat_idx, seg_ptr, self.n_threads
                        )
                    if observed:
                        self._record_wave(
                            tracer, int(flat_idx.shape[0]), None, flat_idx
                        )
                    residual = (y[flat_idx] - w[flat_idx]).astype(dt, copy=False)
                    dots = block_tree_dots(
                        flat_val, residual, seg_ptr, self.n_threads, dtype=dt
                    )
                    deltas = (
                        (dots - nlam * beta[coords]) * inv_denom[coords]
                    ).astype(dt)
                    beta[coords] += deltas
                    contrib = flat_val * np.repeat(deltas, np.diff(seg_ptr))
                    np.add.at(w, flat_idx, contrib)
        return 0

    def run_dual_epoch(
        self,
        y_local: np.ndarray,
        inv_denom: np.ndarray,
        lam: float,
        nlam: float,
        alpha: np.ndarray,
        wbar: np.ndarray,
        perm: np.ndarray,
    ) -> int:
        """One dual epoch: blocks compute ``<wbar, a_n>`` then update."""
        if self.plan is not None:
            return self._planned_epoch(
                mode="dual",
                y=y_local,
                inv_denom=inv_denom,
                nlam=nlam,
                lam=lam,
                weights=alpha,
                shared=wbar,
                perm=perm,
            )
        dt = self.dtype
        tracer = self.tracer
        observed = tracer.enabled
        wave_spans = tracer.detail == "wave"
        with tracer.span(
            "tpa.epoch", category="gpu",
            n_coords=int(perm.shape[0]), wave_size=self.wave_size,
        ) if observed else NULL_SPAN:
            for start in range(0, perm.shape[0], self.wave_size):
                coords = perm[start : start + self.wave_size]
                with tracer.span(
                    "tpa.wave", category="gpu", blocks=int(coords.shape[0])
                ) if wave_spans else NULL_SPAN:
                    flat_idx, flat_val, seg_ptr = gather_chunk(
                        self.indptr, self.indices, self.data, coords
                    )
                    if self.profiler is not None:
                        self.profiler.record_wave(
                            flat_idx, seg_ptr, self.n_threads
                        )
                    if observed:
                        self._record_wave(
                            tracer, int(flat_idx.shape[0]), None, flat_idx
                        )
                    gathered = wbar[flat_idx].astype(dt, copy=False)
                    dots = block_tree_dots(
                        flat_val, gathered, seg_ptr, self.n_threads, dtype=dt
                    )
                    deltas = (
                        (lam * y_local[coords] - dots - nlam * alpha[coords])
                        * inv_denom[coords]
                    ).astype(dt)
                    alpha[coords] += deltas
                    contrib = flat_val * np.repeat(deltas, np.diff(seg_ptr))
                    np.add.at(wbar, flat_idx, contrib)
        return 0

    # -- planned execution -------------------------------------------------
    def _planned_epoch(
        self, *, mode, y, inv_denom, nlam, lam, weights, shared, perm
    ) -> int:
        dt = self.dtype
        tracer = self.tracer
        observed = tracer.enabled
        wave_spans = observed and tracer.detail == "wave"
        profiler = self.profiler
        with tracer.span(
            "tpa.epoch", category="gpu",
            n_coords=int(perm.shape[0]), wave_size=self.wave_size,
        ) if observed else NULL_SPAN:
            run = self.plan.begin_epoch(
                self.indices,
                self.data,
                perm,
                n_minor=int(shared.shape[0]),
                analyze_conflicts=(
                    True if (observed or profiler is not None) else None
                ),
            )
            for wv in range(run.n_waves):
                s, e, a, b = run.bounds(wv)
                coords = perm[s:e]
                with tracer.span(
                    "tpa.wave", category="gpu", blocks=e - s
                ) if wave_spans else NULL_SPAN:
                    if profiler is not None:
                        profiler.record_wave(
                            run.flat_idx[a:b],
                            run.wave_seg_ptr(s, e),
                            self.n_threads,
                            conflicts=run.wave_conflicts(wv),
                        )
                    if observed:
                        self._record_wave(
                            tracer, b - a, run.wave_conflicts(wv), None
                        )
                    fv = run.flat_val[a:b]
                    if mode == "primal":
                        gathered = run.gather_residual(y, shared, a, b)
                    else:
                        gathered = run.gather_shared(shared, a, b)
                    dots = run.block_dots(fv, gathered, wv, s, e, a, b)
                    if mode == "primal":
                        deltas = (
                            (dots - nlam * weights[coords]) * inv_denom[coords]
                        ).astype(dt)
                    else:
                        deltas = (
                            (lam * y[coords] - dots - nlam * weights[coords])
                            * inv_denom[coords]
                        ).astype(dt)
                    weights[coords] += deltas
                    contrib = run.expand_deltas(deltas, wv, s, e)
                    np.multiply(fv, contrib, out=contrib)
                    run.scatter_shared(shared, contrib, wv, a, b)
            self._finish_epoch(tracer)
        return 0
