"""Generalized TPA engine: Algorithm 2 for arbitrary GLM coordinate rules.

The paper motivates stochastic coordinate methods beyond ridge regression —
"other problems such as regression with elastic net regularization as well
as support vector machines."  TPA-SCD's two-level parallel structure is
agnostic to the per-coordinate math: a thread block always (1) gathers its
coordinate's nonzeros, (2) computes an inner product against the shared
vector (or the residual) via the strided/tree-reduced arithmetic, (3)
applies a closed-form scalar update, (4) atomically scatters the scaled
column/row back into the shared vector.

Only step (3) — and the scaling of step (4) — is objective specific, so the
generalized engine delegates both to a :class:`CoordinateRule`:

* :class:`RidgePrimalRule` / :class:`RidgeDualRule` reproduce Algorithm 2
  exactly (the equivalence is property-tested against ``TpaScdEngine``);
* :class:`ElasticNetPrimalRule` soft-thresholds (Friedman et al. [4]);
* :class:`SvmDualRule` applies the box-clipped SDCA step ([9]).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..obs import NULL_SPAN, NULL_TRACER
from ..solvers.kernels import gather_chunk
from .engine import block_tree_dots
from .plan import WavePlan, get_plan
from .profiler import KernelProfile

__all__ = [
    "CoordinateRule",
    "RidgePrimalRule",
    "RidgeDualRule",
    "ElasticNetPrimalRule",
    "SvmDualRule",
    "GlmTpaEngine",
]


@runtime_checkable
class CoordinateRule(Protocol):
    """Objective-specific scalar update, vectorized over a wave."""

    #: ``"residual"`` gathers ``y - shared`` for the inner products (primal
    #: least-squares rules); ``"shared"`` gathers the shared vector itself
    needs: str

    def deltas(
        self, coords: np.ndarray, dots: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Closed-form weight changes for the wave's coordinates."""
        ...

    def shared_scale(self, coords: np.ndarray) -> np.ndarray | float:
        """Multiplier applied to ``deltas`` when scattering into shared."""
        ...


class RidgePrimalRule:
    """Eq. 2: delta = (<y - w, a_m> - N lam beta_m) / (||a_m||^2 + N lam)."""

    needs = "residual"

    def __init__(self, norms_sq: np.ndarray, n: int, lam: float, dtype=np.float32):
        dt = np.dtype(dtype)
        self.nlam = dt.type(n * lam)
        self.inv_denom = (1.0 / (norms_sq.astype(np.float64) + n * lam)).astype(dt)

    def deltas(self, coords, dots, weights):
        return ((dots - self.nlam * weights) * self.inv_denom[coords]).astype(
            dots.dtype
        )

    def shared_scale(self, coords):
        return 1.0


class RidgeDualRule:
    """Eq. 4: delta = (lam y_n - <wbar, a_n> - lam N alpha_n) / (lam N + ||a_n||^2)."""

    needs = "shared"

    def __init__(
        self, y_local: np.ndarray, norms_sq: np.ndarray, n: int, lam: float, dtype=np.float32
    ):
        dt = np.dtype(dtype)
        self.y = y_local.astype(dt, copy=False)
        self.lam = dt.type(lam)
        self.nlam = dt.type(n * lam)
        self.inv_denom = (1.0 / (n * lam + norms_sq.astype(np.float64))).astype(dt)

    def deltas(self, coords, dots, weights):
        return (
            (self.lam * self.y[coords] - dots - self.nlam * weights)
            * self.inv_denom[coords]
        ).astype(dots.dtype)

    def shared_scale(self, coords):
        return 1.0


class ElasticNetPrimalRule:
    """Soft-thresholded coordinate minimizer of the elastic net.

    With ``l1_ratio = 0`` this reduces exactly to :class:`RidgePrimalRule`'s
    update (tested), so the generalized engine strictly extends Algorithm 2.
    """

    needs = "residual"

    def __init__(
        self,
        norms_sq: np.ndarray,
        n: int,
        lam: float,
        l1_ratio: float,
        dtype=np.float32,
    ):
        dt = np.dtype(dtype)
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.norms = norms_sq.astype(dt)
        self.inv_n = dt.type(1.0 / n)
        self.threshold = dt.type(lam * l1_ratio)
        self.inv_denom = (
            1.0 / (norms_sq.astype(np.float64) / n + lam * (1.0 - l1_ratio))
        ).astype(dt)

    def deltas(self, coords, dots, weights):
        # rho = (<y - w, a_m> + ||a_m||^2 beta_m) / N
        rho = (dots + self.norms[coords] * weights) * self.inv_n
        shrunk = np.sign(rho) * np.maximum(np.abs(rho) - self.threshold, 0.0)
        new = (shrunk * self.inv_denom[coords]).astype(dots.dtype)
        return new - weights

    def shared_scale(self, coords):
        return 1.0


class SvmDualRule:
    """Box-clipped SDCA step for the hinge-loss SVM.

    The shared vector is the primal ``w`` itself; a coordinate's scatter is
    scaled by ``y_i / (lam N)`` (the SDCA primal-dual mapping).
    """

    needs = "shared"

    def __init__(
        self, y_local: np.ndarray, norms_sq: np.ndarray, n: int, lam: float, dtype=np.float32
    ):
        dt = np.dtype(dtype)
        self.y = y_local.astype(dt, copy=False)
        self.lam_n = dt.type(lam * n)
        norms64 = norms_sq.astype(np.float64)
        with np.errstate(divide="ignore"):
            inv = np.where(norms64 > 0.0, 1.0 / norms64, 0.0)
        self.inv_norms = inv.astype(dt)
        self.zero_norm = (norms64 <= 0.0).astype(dt)
        self.scale = (self.y / (lam * n)).astype(dt)

    def deltas(self, coords, dots, weights):
        grad = self.lam_n * (1.0 - self.y[coords] * dots) * self.inv_norms[coords]
        # zero-norm rows: dual maximizer is alpha = 1
        unconstrained = weights + grad + self.zero_norm[coords] * (1.0 - weights - grad)
        new = np.clip(unconstrained, 0.0, 1.0)
        return (new - weights).astype(dots.dtype)

    def shared_scale(self, coords):
        return self.scale[coords]


class GlmTpaEngine:
    """Wave-scheduled thread-block execution for any :class:`CoordinateRule`."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        rule: CoordinateRule,
        wave_size: int,
        n_threads: int,
        dtype=np.float32,
        y: np.ndarray | None = None,
        profiler: KernelProfile | None = None,
        tracer=None,
        planned: bool = True,
        plan: WavePlan | None = None,
    ) -> None:
        if wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if n_threads < 1 or (n_threads & (n_threads - 1)) != 0:
            raise ValueError("n_threads must be a positive power of two")
        if rule.needs not in ("residual", "shared"):
            raise ValueError(f"rule.needs must be residual|shared, got {rule.needs!r}")
        if rule.needs == "residual" and y is None:
            raise ValueError("residual rules require the label vector y")
        self.indptr = indptr
        self.indices = indices
        self.dtype = np.dtype(dtype)
        self.data = data.astype(self.dtype, copy=False)
        self.rule = rule
        self.wave_size = int(wave_size)
        self.n_threads = int(n_threads)
        self.y = None if y is None else y.astype(self.dtype, copy=False)
        self.profiler = profiler
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.planned = bool(planned)
        if plan is not None:
            self.plan = plan
        elif self.planned:
            self.plan = get_plan(
                indptr,
                wave_size=self.wave_size,
                n_threads=self.n_threads,
                dtype=self.dtype,
            )
        else:
            self.plan = None

    def run_epoch(
        self,
        weights: np.ndarray,
        shared: np.ndarray,
        perm: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """One pass over ``perm``; conforms to the BoundKernel contract."""
        if self.plan is not None:
            return self._planned_epoch(weights, shared, perm)
        dt = self.dtype
        rule = self.rule
        tracer = self.tracer
        observed = tracer.enabled
        wave_spans = tracer.detail == "wave"
        with tracer.span(
            "glm.epoch", category="gpu",
            rule=type(rule).__name__,
            n_coords=int(perm.shape[0]), wave_size=self.wave_size,
        ) if observed else NULL_SPAN:
            for start in range(0, perm.shape[0], self.wave_size):
                coords = perm[start : start + self.wave_size]
                with tracer.span(
                    "glm.wave", category="gpu", blocks=int(coords.shape[0])
                ) if wave_spans else NULL_SPAN:
                    flat_idx, flat_val, seg_ptr = gather_chunk(
                        self.indptr, self.indices, self.data, coords
                    )
                    if self.profiler is not None:
                        self.profiler.record_wave(
                            flat_idx, seg_ptr, self.n_threads
                        )
                    if observed:
                        tracer.count("gpu.waves")
                        nnz = int(flat_idx.shape[0])
                        tracer.count("gpu.nnz_processed", nnz)
                        if nnz:
                            tracer.count(
                                "gpu.atomic_conflicts",
                                nnz - int(np.unique(flat_idx).shape[0]),
                            )
                    if rule.needs == "residual":
                        gathered = (self.y[flat_idx] - shared[flat_idx]).astype(
                            dt, copy=False
                        )
                    else:
                        gathered = shared[flat_idx].astype(dt, copy=False)
                    dots = block_tree_dots(
                        flat_val, gathered, seg_ptr, self.n_threads, dtype=dt
                    )
                    deltas = rule.deltas(coords, dots, weights[coords])
                    weights[coords] += deltas
                    scaled = deltas * rule.shared_scale(coords)
                    contrib = flat_val * np.repeat(
                        scaled.astype(dt, copy=False), np.diff(seg_ptr)
                    )
                    np.add.at(shared, flat_idx, contrib)
        return 0

    def _planned_epoch(
        self, weights: np.ndarray, shared: np.ndarray, perm: np.ndarray
    ) -> int:
        """Compiled/pooled execution — bit-identical to the seed loop above."""
        dt = self.dtype
        rule = self.rule
        tracer = self.tracer
        observed = tracer.enabled
        wave_spans = observed and tracer.detail == "wave"
        profiler = self.profiler
        residual = rule.needs == "residual"
        with tracer.span(
            "glm.epoch", category="gpu",
            rule=type(rule).__name__,
            n_coords=int(perm.shape[0]), wave_size=self.wave_size,
        ) if observed else NULL_SPAN:
            run = self.plan.begin_epoch(
                self.indices,
                self.data,
                perm,
                n_minor=int(shared.shape[0]),
                analyze_conflicts=(
                    True if (observed or profiler is not None) else None
                ),
            )
            for wv in range(run.n_waves):
                s, e, a, b = run.bounds(wv)
                coords = perm[s:e]
                with tracer.span(
                    "glm.wave", category="gpu", blocks=e - s
                ) if wave_spans else NULL_SPAN:
                    if profiler is not None:
                        profiler.record_wave(
                            run.flat_idx[a:b],
                            run.wave_seg_ptr(s, e),
                            self.n_threads,
                            conflicts=run.wave_conflicts(wv),
                        )
                    if observed:
                        tracer.count("gpu.waves")
                        tracer.count("gpu.nnz_processed", b - a)
                        if b > a:
                            tracer.count(
                                "gpu.atomic_conflicts", run.wave_conflicts(wv)
                            )
                    fv = run.flat_val[a:b]
                    if residual:
                        gathered = run.gather_residual(self.y, shared, a, b)
                    else:
                        gathered = run.gather_shared(shared, a, b)
                    dots = run.block_dots(fv, gathered, wv, s, e, a, b)
                    deltas = rule.deltas(coords, dots, weights[coords])
                    weights[coords] += deltas
                    scaled = deltas * rule.shared_scale(coords)
                    contrib = run.expand_deltas(
                        scaled.astype(dt, copy=False), wv, s, e
                    )
                    np.multiply(fv, contrib, out=contrib)
                    run.scatter_shared(shared, contrib, wv, a, b)
            if observed:
                tracer.gauge("pool.bytes_reused", self.plan.pool.bytes_reused)
        return 0
