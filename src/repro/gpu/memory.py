"""Device memory accounting for the simulated GPUs.

Capacity is the binding constraint that motivates the paper's Section IV:
"Modern GPUs have a memory capacity of up to 16GB thus severely limiting the
size of the datasets on which we are able to learn."  The allocator tracks
named buffers against the device capacity and raises
:class:`GpuOutOfMemoryError` on exhaustion, so the large-scale experiment can
demonstrate that the 40 GB criteo sample genuinely does not fit on one
device while a quarter of it fits on each of four.
"""

from __future__ import annotations

__all__ = ["DeviceMemory", "GpuOutOfMemoryError"]


class GpuOutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the simulated device capacity."""


class DeviceMemory:
    """A named-buffer allocator with a fixed byte capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._buffers: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._buffers.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def bytes_free(self) -> int:
        """Alias of :attr:`free_bytes` — the shard cache's budget check."""
        return self.free_bytes

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; name must be unused."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._buffers:
            raise ValueError(f"buffer {name!r} already allocated")
        if nbytes > self.free_bytes:
            raise GpuOutOfMemoryError(
                f"cannot allocate {nbytes / 2**30:.2f} GiB for {name!r}: "
                f"{self.free_bytes / 2**30:.2f} GiB free of "
                f"{self.capacity_bytes / 2**30:.2f} GiB"
            )
        self._buffers[name] = int(nbytes)

    def free(self, name: str) -> None:
        """Release the buffer named ``name``."""
        try:
            del self._buffers[name]
        except KeyError:
            raise KeyError(f"no buffer named {name!r}") from None

    def holds(self, name: str) -> bool:
        return name in self._buffers

    def buffers(self) -> dict[str, int]:
        return dict(self._buffers)
