"""Epoch plan compiler and pooled scratch memory for the wave kernels.

The simulated TPA-SCD hot path used to re-derive every wave's gather
metadata from scratch: ``gather_chunk`` rebuilt the flattened nonzero
ranges, ``block_tree_dots`` re-expanded segment ids / lane assignments with
``np.repeat``/``np.arange``, and both scatters went through ``np.add.at`` —
an order of magnitude slower than assignment-style reductions.  None of
that work depends on the epoch permutation except through a *gather order*,
so it can be compiled once per bound matrix and re-parameterised per epoch:

* :class:`WavePlan` — compiled from the permutation-independent structure
  (per-coordinate nnz, per-nonzero lane and depth assignments).  Cached
  module-wide keyed on ``(indptr identity, wave_size, n_threads, dtype)``
  via :func:`get_plan`.
* :meth:`WavePlan.begin_epoch` — one bulk vectorized pass per epoch builds
  the flattened gather order and index/value arrays; every wave afterwards
  is pure slicing plus O(wave) index arithmetic.
* :class:`BufferPool` — named reusable scratch arrays, so steady-state
  epochs perform **zero large allocations**; reuse is accounted in
  ``bytes_reused`` and surfaced as the ``pool.bytes_reused`` gauge.

Bit-identity with the seed engine is the hard constraint and is preserved
by construction:

* the per-(block, lane) float32 accumulation replays the seed's
  ``np.add.at`` order exactly: within one bucket the seed adds elements in
  flat (stride) order, i.e. in increasing *depth* (``pos // n_threads``);
  the planned kernel assigns all depth-0 elements (each bucket has at most
  one) and then applies one exact fancy ``+=`` per further depth level —
  the same sequence of rounded binary adds per bucket;
* tree-reduction levels whose source lanes hold no nonzero add exact
  ``+0.0`` to every target, so they are skipped — except when a product of
  the wave is a (signed) zero, where ``x + 0.0`` may flip ``-0.0`` to
  ``+0.0``; such waves take the full-width reduction;
* the shared-vector scatter uses buffered fancy ``+=`` only for waves the
  epoch conflict analysis proved duplicate-free (where it is bit-identical
  to ``np.add.at``) and keeps the unbuffered ordered ``np.add.at`` path
  behind the same interface otherwise.

The conflict analysis (one ``sort`` of ``wave_id * n_minor + index`` per
epoch) runs when something observes the counters (tracer / profiler) or
when a birthday-bound heuristic says conflict-free waves are plausible;
heavily contended epochs skip it and scatter through ``np.add.at`` — the
counters are then simply not claimed (``conflicts_known`` is False).
"""

from __future__ import annotations

import weakref

import numpy as np

__all__ = [
    "BufferPool",
    "WavePlan",
    "EpochRun",
    "get_plan",
    "plan_cache_stats",
    "clear_plan_cache",
]

#: deepest (block, lane) bucket replayed with per-depth fancy adds before
#: falling back to the seed's ordered ``np.add.at`` (still exact, just slow)
_RAKE_MAX_DEPTH = 4


def _pow2ceil(n: int) -> int:
    return 1 << max(int(n) - 1, 0).bit_length()


class BufferPool:
    """Named, reusable scratch arrays for the wave runtime.

    ``take(name, size, dtype)`` returns the first ``size`` elements of a
    cached array, growing (never shrinking) the backing allocation on
    demand.  Buffers are identified by name, so each call site owns its
    slot and aliasing is impossible by construction.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        #: bytes served from an existing backing allocation
        self.bytes_reused = 0
        #: bytes freshly allocated (cold takes and growth)
        self.bytes_allocated = 0

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dtype or buf.shape[0] < size:
            buf = np.empty(max(size, 1), dtype=dtype)
            self._buffers[name] = buf
            self.bytes_allocated += buf.nbytes
        else:
            self.bytes_reused += size * dtype.itemsize
        return buf[:size]

    @property
    def resident_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool({len(self._buffers)} buffers, "
            f"{self.resident_bytes:,} B resident, "
            f"{self.bytes_reused:,} B reused)"
        )


def _fill_ranges(
    starts: np.ndarray, lengths: np.ndarray, out: np.ndarray, step: int = 1
) -> None:
    """``out[:] = concat([arange(s, s + l*step, step) ...])`` without
    allocating the result.

    Same cumulative-offset trick as :func:`repro.sparse.matrix._ranges_concat`
    but writing into a pooled buffer, generalized to strided ranges.
    """
    total = out.shape[0]
    if total == 0:
        return
    out[:] = step
    seg_ends = np.cumsum(lengths)
    nonzero = lengths > 0
    first_pos = np.concatenate(([0], seg_ends[:-1]))[nonzero]
    out[first_pos] = starts[nonzero]
    prev_start = starts[nonzero][:-1]
    prev_len = lengths[nonzero][:-1]
    if first_pos.shape[0] > 1:
        out[first_pos[1:]] -= prev_start + step * prev_len - step
    np.cumsum(out, out=out)


class EpochRun:
    """One epoch's compiled wave schedule: flat gathers plus per-wave slices.

    Produced by :meth:`WavePlan.begin_epoch`; every array is a view into the
    plan's :class:`BufferPool`, valid until the next ``begin_epoch`` on the
    same plan (the engines are single-threaded and never interleave epochs
    of the same bound matrix).
    """

    __slots__ = (
        "plan",
        "n_waves",
        "seg_ptr",
        "lens",
        "order",
        "flat_idx",
        "flat_val",
        "cache_idx",
        "wave_depth",
        "conflicts_known",
        "conflicts",
        "total_conflicts",
        "_g1",
        "_g2",
        "_prods",
        "_cache",
        "_level",
    )

    def __init__(self, plan: "WavePlan") -> None:
        self.plan = plan

    def bounds(self, wave: int) -> tuple[int, int, int, int]:
        """``(s, e, a, b)``: coordinate and nonzero ranges of one wave."""
        s = wave * self.plan.wave_size
        e = min(s + self.plan.wave_size, self.seg_ptr.shape[0] - 1)
        return s, e, int(self.seg_ptr[s]), int(self.seg_ptr[e])

    def wave_seg_ptr(self, s: int, e: int) -> np.ndarray:
        """The seed-style local segment pointer of wave ``[s, e)``."""
        return self.seg_ptr[s : e + 1] - self.seg_ptr[s]

    def wave_lens(self, wave: int, s: int, e: int) -> np.ndarray:
        """Per-coordinate nonzero counts of one wave."""
        return self.lens[s:e]

    def wave_conflicts(self, wave: int) -> int | None:
        """Duplicate-write count of one wave; ``None`` when not analyzed."""
        if not self.conflicts_known:
            return None
        if self.conflicts is None:
            return 0
        return int(self.conflicts[wave])

    # -- gathers -----------------------------------------------------------
    def gather_shared(self, vec: np.ndarray, a: int, b: int) -> np.ndarray:
        """``vec[flat_idx[a:b]]`` into a pooled buffer."""
        out = self._g1[: b - a]
        vec.take(self.flat_idx[a:b], out=out)
        return out

    def gather_residual(
        self, y: np.ndarray, vec: np.ndarray, a: int, b: int
    ) -> np.ndarray:
        """``(y - vec)[flat_idx[a:b]]`` into a pooled buffer."""
        idx = self.flat_idx[a:b]
        out = self._g1[: b - a]
        tmp = self._g2[: b - a]
        y.take(idx, out=out)
        vec.take(idx, out=tmp)
        np.subtract(out, tmp, out=out)
        return out

    # -- thread-block arithmetic ------------------------------------------
    def block_dots(
        self,
        vals: np.ndarray,
        gathered: np.ndarray,
        wave: int,
        s: int,
        e: int,
        a: int,
        b: int,
    ) -> np.ndarray:
        """Per-coordinate inner products of one wave, replaying the seed's
        lane-accumulation and tree-reduction arithmetic bit for bit.

        The cache is laid out *transposed* relative to the seed —
        ``(lane, block)`` at a fixed block stride of ``wave_size`` — so
        every tree-reduction level is one contiguous vector add instead of
        a strided 2D one.  The addends per (block, lane) pair and the level
        order are unchanged, so every float operation is the seed's.
        """
        plan = self.plan
        stride = plan.wave_size
        n_blocks = e - s
        if b == a:
            out = self._cache[:n_blocks]
            out[:] = 0
            return out

        prods = self._prods[: b - a]
        np.multiply(vals, gathered, out=prods)

        # reduction width: lanes >= the matrix's max active lane are exact
        # +0.0 in the seed cache, so tree levels sourcing only them are
        # no-ops — *unless* a product of the wave is a (signed) zero, where
        # x + 0.0 can flip -0.0 to +0.0; such waves take the seed's
        # full-width reduction (the transposed cache index is independent
        # of the reduction width, so only more levels run)
        width = plan.red_width
        if width < plan.n_threads and np.count_nonzero(prods) != prods.shape[0]:
            width = plan.n_threads
        idx = self.cache_idx[a:b]

        cache = self._cache[: width * stride]
        cache[:] = 0
        depth = int(self.wave_depth[wave]) if plan.multi_depth else 1
        if depth <= 1:
            # every (block, lane) bucket holds at most one product
            cache[idx] = prods
        elif depth <= _RAKE_MAX_DEPTH:
            # deep buckets: replay the seed's per-bucket add order — depth
            # level k is conflict-free, and level k lands after level k-1
            # exactly like the flat-order ``np.add.at`` of the seed kernel.
            # Depths are gathered lazily (deep waves only), so shallow-heavy
            # epochs never pay an epoch-wide depth gather.
            d = plan.pool.take("depths_w", b - a, np.int64)
            plan.depths_flat.take(self.order[a:b], out=d)
            level = self._level[: b - a]
            np.equal(d, 0, out=level)
            cache[idx[level]] = prods[level]
            for k in range(1, depth):
                np.equal(d, k, out=level)
                cache[idx[level]] += prods[level]
        else:
            np.add.at(cache, idx, prods)

        lanes = cache.reshape(width, stride)
        v = width // 2
        while v:
            lanes[:v] += lanes[v : 2 * v]
            v //= 2
        return lanes[0, :n_blocks]

    def expand_deltas(self, deltas: np.ndarray, wave: int, s: int, e: int) -> np.ndarray:
        """Per-nonzero delta of its owning block (seed's ``np.repeat``)."""
        return np.repeat(deltas, self.wave_lens(wave, s, e))

    def scatter_shared(
        self, vec: np.ndarray, contrib: np.ndarray, wave: int, a: int, b: int
    ) -> None:
        """Apply one wave's shared-vector contributions (atomic semantics).

        Waves the epoch conflict analysis proved duplicate-free take the
        buffered fancy ``+=`` (bit-identical when every target element is
        written once); contended or un-analyzed waves keep the seed's
        unbuffered ordered ``np.add.at``.
        """
        idx = self.flat_idx[a:b]
        if self.conflicts_known and (
            self.conflicts is None or self.conflicts[wave] == 0
        ):
            vec[idx] += contrib
        else:
            np.add.at(vec, idx, contrib)


class WavePlan:
    """Permutation-independent wave metadata for one bound matrix.

    Compiled once from ``indptr`` (the coordinate-major segment structure)
    for a fixed ``(wave_size, n_threads, dtype)``; :meth:`begin_epoch`
    specialises it to an epoch permutation with one bulk vectorized pass.
    """

    def __init__(
        self, indptr: np.ndarray, *, wave_size: int, n_threads: int, dtype
    ) -> None:
        if wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if n_threads < 1 or (n_threads & (n_threads - 1)) != 0:
            raise ValueError("n_threads must be a positive power of two")
        self.indptr = indptr
        self.wave_size = int(wave_size)
        self.n_threads = int(n_threads)
        self.dtype = np.dtype(dtype)
        self.pool = BufferPool()
        self.n_coords = int(indptr.shape[0] - 1)
        self.nnz = int(indptr[-1])

        self.lengths = np.diff(indptr)
        #: per-coordinate bucket depth: ceil(len / n_threads)
        self.coord_depth = (self.lengths + self.n_threads - 1) // self.n_threads
        self.multi_depth = bool(self.coord_depth.max(initial=0) > 1)
        #: truncated tree-reduction width — lanes past the matrix's longest
        #: column are +0.0 in every wave's seed cache, so the reduction can
        #: start at the next power of two (== n_threads for deep matrices)
        self.red_width = min(
            _pow2ceil(int(self.lengths.max(initial=0))), self.n_threads
        )
        self._block_off: np.ndarray | None = None
        self._base_arr: np.ndarray | None = None
        if self.multi_depth:
            # per-nonzero lane and depth in *storage* order: element p of a
            # segment goes to lane p % T at depth p // T (Algorithm 2's
            # stride); only deep matrices ever consult these.  Lanes are
            # pre-scaled by the transposed cache's block stride.
            pos = np.arange(self.nnz, dtype=np.int64)
            pos -= np.repeat(indptr[:-1], self.lengths)
            self.lanes_flat = pos % self.n_threads
            self.depths_flat = pos // self.n_threads
            self._lanes_scaled = self.lanes_flat * self.wave_size
        else:
            self.lanes_flat = None
            self.depths_flat = None
            self._lanes_scaled = None

    def _block_offsets(self, k: int) -> np.ndarray:
        """``epoch position % wave_size`` — each coordinate's block column
        in the transposed cache, permutation-independent (memoized)."""
        off = self._block_off
        if off is None or off.shape[0] < k:
            off = np.arange(k, dtype=np.int64)
            off %= self.wave_size
            self._block_off = off
        return off[:k]

    def _base(self, total: int) -> np.ndarray:
        """Memoized ``arange(total)`` — the flat-position template that
        turns per-segment range concatenation into one ``np.repeat`` + add
        (NumPy's 98k-element ``cumsum`` costs ~5x a ``repeat``)."""
        base = self._base_arr
        if base is None or base.shape[0] < total:
            base = np.arange(max(total, 1), dtype=np.int64)
            self._base_arr = base
        return base[:total]

    # -- epoch specialisation ---------------------------------------------
    def begin_epoch(
        self,
        indices: np.ndarray,
        data: np.ndarray,
        perm: np.ndarray,
        *,
        n_minor: int,
        analyze_conflicts: bool | None = None,
    ) -> EpochRun:
        """Compile one epoch: bulk gathers now, pure slicing per wave.

        ``analyze_conflicts`` — True forces the per-wave duplicate-write
        analysis (tracing/profiling need exact counters), False skips it,
        and None (default) lets a birthday-bound heuristic decide whether
        conflict-free waves are plausible enough to pay for the sort.
        """
        pool = self.pool
        k = int(perm.shape[0])
        run = EpochRun(self)
        run.n_waves = -(-k // self.wave_size) if k else 0

        lens = self.lengths[perm]
        run.lens = lens
        seg_ptr = pool.take("seg_ptr", k + 1, np.int64)
        seg_ptr[0] = 0
        np.cumsum(lens, out=seg_ptr[1:])
        total = int(seg_ptr[-1])
        run.seg_ptr = seg_ptr

        # order[i] = start_j + (i - seg_ptr[j]) for flat position i of
        # segment j: one repeat + add off the arange template (NumPy's
        # cumsum over nnz elements is far slower than repeat)
        base = self._base(total)
        starts = self.indptr[perm]
        np.subtract(starts, seg_ptr[:-1], out=starts)
        order = pool.take("order", total, np.int64)
        np.add(base, np.repeat(starts, lens), out=order)
        run.order = order

        run.flat_idx = pool.take("flat_idx", total, np.int64)
        indices.take(order, out=run.flat_idx)
        run.flat_val = pool.take("flat_val", total, self.dtype)
        data.take(order, out=run.flat_val)

        # the cache target of every nonzero in the transposed (lane, block)
        # layout: ``lane * wave_size + block``.  Shallow plans have lane ==
        # position-in-segment, so the whole epoch's index is one strided
        # ranges-concat off the block columns; deep plans gather the
        # compiled (pre-scaled) lane assignments through the epoch order
        run.cache_idx = pool.take("cache_idx", total, np.int64)
        if self.multi_depth:
            self._lanes_scaled.take(order, out=run.cache_idx)
            run.cache_idx += np.repeat(self._block_offsets(k), lens)
            if k:
                wave_starts = np.arange(0, k, self.wave_size, dtype=np.int64)
                run.wave_depth = np.maximum.reduceat(
                    self.coord_depth[perm], wave_starts
                )
            else:
                run.wave_depth = np.zeros(0, dtype=np.int64)
        else:
            # lane == position-in-segment, so cache_idx[i] = ws*i +
            # (block_j - ws*seg_ptr[j]) — template multiply + repeat + add
            ws = self.wave_size
            adjust = self._block_offsets(k) - ws * seg_ptr[:k]
            np.multiply(base, ws, out=run.cache_idx)
            run.cache_idx += np.repeat(adjust, lens)
            run.wave_depth = None

        # per-wave nonzero counts (for scratch sizing and the conflict
        # analysis); wave_size == 1 makes them the coordinate lengths
        if self.wave_size == 1:
            wave_nnz = lens
        else:
            wave_bounds = seg_ptr[:: self.wave_size]
            if wave_bounds.shape[0] != run.n_waves + 1:
                wave_bounds = np.append(wave_bounds, total)
            wave_nnz = np.diff(wave_bounds)

        # per-wave scratch, taken once per epoch so the wave loop touches
        # the pool dictionary zero times
        max_wnnz = int(wave_nnz.max(initial=0))
        dt = self.dtype
        run._g1 = pool.take("g1", max_wnnz, dt)
        run._g2 = pool.take("g2", max_wnnz, dt)
        run._prods = pool.take("prods", max_wnnz, dt)
        run._cache = pool.take("cache", self.n_threads * self.wave_size, dt)
        run._level = (
            pool.take("level", max_wnnz, np.bool_) if self.multi_depth else None
        )

        # per-wave duplicate-write counts: one sort per epoch replaces the
        # seed's per-wave np.unique and licences the fast scatter path
        run.conflicts_known = False
        run.conflicts = None
        run.total_conflicts = 0
        if self.wave_size == 1 or total == 0:
            # a single coordinate's minor indices are unique by construction
            run.conflicts_known = True
            return run
        if analyze_conflicts is None:
            # birthday bound: a wave of w random writes into n_minor slots is
            # conflict-free with probability ~exp(-w^2 / 2 n_minor); only pay
            # for the sort when that is non-negligible
            analyze_conflicts = max_wnnz * max_wnnz <= 4 * n_minor
        if analyze_conflicts:
            waves = np.repeat(np.arange(run.n_waves, dtype=np.int64), wave_nnz)
            keys = pool.take("keys", total, np.int64)
            np.multiply(waves, n_minor, out=keys)
            keys += run.flat_idx
            keys.sort()
            dup = pool.take("dup", max(total - 1, 0), np.bool_)
            np.equal(keys[1:], keys[:-1], out=dup)
            n_dup = int(dup.sum())
            run.conflicts_known = True
            run.total_conflicts = n_dup
            if n_dup:
                dup_waves = keys[1:][dup] // n_minor
                run.conflicts = np.bincount(dup_waves, minlength=run.n_waves)
        return run


# ---------------------------------------------------------------------------
# module-wide plan cache
# ---------------------------------------------------------------------------

_PLAN_CACHE: dict[tuple, tuple[weakref.ref, WavePlan]] = {}
_PLAN_STATS = {"hits": 0, "misses": 0, "evictions": 0}
_PLAN_CACHE_CAP = 64


def get_plan(
    indptr: np.ndarray, *, wave_size: int, n_threads: int, dtype
) -> WavePlan:
    """The cached :class:`WavePlan` for this exact ``indptr`` array.

    Keyed on the array's *identity* (plus the kernel geometry), so
    re-binding the same matrix — every epoch of a shard-streamed run, or
    repeated solves over one dataset — reuses the compiled plan and its
    buffer pool.  A weak reference guards against ``id`` reuse after the
    original array is garbage-collected.
    """
    key = (id(indptr), int(wave_size), int(n_threads), np.dtype(dtype).str)
    entry = _PLAN_CACHE.get(key)
    if entry is not None:
        ref, plan = entry
        if ref() is indptr:
            _PLAN_STATS["hits"] += 1
            return plan
        del _PLAN_CACHE[key]
        _PLAN_STATS["evictions"] += 1
    _PLAN_STATS["misses"] += 1
    plan = WavePlan(
        indptr, wave_size=wave_size, n_threads=n_threads, dtype=dtype
    )
    if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
        # drop dead entries first, then the oldest live one (FIFO)
        dead = [k for k, (ref, _) in _PLAN_CACHE.items() if ref() is None]
        for k in dead:
            del _PLAN_CACHE[k]
            _PLAN_STATS["evictions"] += 1
        while len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
            oldest = next(iter(_PLAN_CACHE))
            del _PLAN_CACHE[oldest]
            _PLAN_STATS["evictions"] += 1
    _PLAN_CACHE[key] = (weakref.ref(indptr), plan)
    return plan


def plan_cache_stats() -> dict[str, int]:
    """Counters of the module-wide plan cache (hits / misses / evictions)."""
    return dict(_PLAN_STATS, size=len(_PLAN_CACHE))


def clear_plan_cache() -> None:
    """Drop every cached plan and zero the counters (tests, benchmarks)."""
    _PLAN_CACHE.clear()
    for k in _PLAN_STATS:
        _PLAN_STATS[k] = 0
