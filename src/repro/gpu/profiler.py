"""Execution profiling for the simulated TPA-SCD kernels.

Collects the per-wave statistics a CUDA profiler would report about the
real kernel and that explain its performance character:

* **atomic conflicts** — shared-vector elements written by more than one
  thread block within the same wave (the serialization source for the
  float atomic adds);
* **lane occupancy** — the fraction of a block's threads holding at least
  one nonzero (short coordinates under-fill blocks);
* **block load** — nonzeros per thread block (coordinate), whose spread
  drives SM load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["KernelProfile"]


@dataclass
class KernelProfile:
    """Accumulates wave-level statistics across epochs."""

    n_threads: int = 0
    waves: int = 0
    blocks: int = 0
    nnz_processed: int = 0
    atomic_writes: int = 0
    atomic_conflicts: int = 0
    lane_slots: int = 0
    lanes_active: int = 0
    block_nnz_min: int | None = None
    block_nnz_max: int = 0
    _block_nnz_sum: int = field(default=0, repr=False)

    def record_wave(
        self,
        flat_idx: np.ndarray,
        seg_ptr: np.ndarray,
        n_threads: int,
        *,
        conflicts: int | None = None,
    ) -> None:
        """Book one wave's gather/write pattern.

        ``conflicts`` accepts a precomputed duplicate-write count (the
        planned runtime gets it for free from its epoch conflict analysis);
        when omitted it is derived from ``flat_idx`` with ``np.unique``.
        """
        self.n_threads = n_threads
        n_blocks = seg_ptr.shape[0] - 1
        self.waves += 1
        self.blocks += n_blocks
        nnz = int(flat_idx.shape[0])
        self.nnz_processed += nnz
        self.atomic_writes += nnz
        if nnz:
            if conflicts is None:
                conflicts = nnz - int(np.unique(flat_idx).shape[0])
            self.atomic_conflicts += conflicts
        lengths = np.diff(seg_ptr)
        self._block_nnz_sum += int(lengths.sum())
        if lengths.size:
            mn = int(lengths.min())
            self.block_nnz_min = (
                mn if self.block_nnz_min is None else min(self.block_nnz_min, mn)
            )
            self.block_nnz_max = max(self.block_nnz_max, int(lengths.max()))
        self.lane_slots += n_blocks * n_threads
        self.lanes_active += int(np.minimum(lengths, n_threads).sum())

    # -- derived metrics ------------------------------------------------------
    @property
    def mean_block_nnz(self) -> float:
        return self._block_nnz_sum / self.blocks if self.blocks else 0.0

    @property
    def conflict_rate(self) -> float:
        """Fraction of atomic writes that contend with another block."""
        return self.atomic_conflicts / self.atomic_writes if self.atomic_writes else 0.0

    @property
    def occupancy(self) -> float:
        """Mean fraction of block lanes holding work."""
        return self.lanes_active / self.lane_slots if self.lane_slots else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "waves": float(self.waves),
            "blocks": float(self.blocks),
            "nnz_processed": float(self.nnz_processed),
            "mean_block_nnz": self.mean_block_nnz,
            "conflict_rate": self.conflict_rate,
            "occupancy": self.occupancy,
        }
