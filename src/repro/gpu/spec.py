"""GPU device specifications for the simulated devices.

The paper evaluates TPA-SCD on an NVIDIA Quadro M4000 and a GeForce GTX
Titan X (Maxwell).  The spec captures exactly the properties the algorithm
and its cost model depend on: SM count (level-1 parallelism — how many
thread blocks are concurrently resident, which sets the staleness window of
the asynchronous coordinate updates), memory capacity (the motivation for
Section IV), memory bandwidth (TPA-SCD is bandwidth-bound: each nonzero is
streamed once and atomically written once per epoch), and an effective
memory-efficiency factor folding in atomic-add serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "QUADRO_M4000", "GTX_TITAN_X", "TESLA_P100"]


@dataclass(frozen=True)
class GpuSpec:
    """Static properties of a simulated GPU.

    ``mem_efficiency`` is the calibrated fraction of peak DRAM bandwidth the
    sparse TPA-SCD kernel sustains (scattered gathers + float atomics); it is
    chosen so the modelled epoch times land in the speed-up bands the paper
    reports (M4000 ~10-14x over 1-thread CPU, Titan X ~25-35x).
    """

    name: str
    n_sms: int
    cores_per_sm: int
    clock_ghz: float
    mem_capacity_gb: float
    mem_bandwidth_gbs: float
    mem_efficiency: float
    max_resident_blocks_per_sm: int
    block_overhead_s: float = 1.0e-7

    def __post_init__(self) -> None:
        if self.n_sms <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM geometry must be positive")
        if not 0 < self.mem_efficiency <= 1:
            raise ValueError("mem_efficiency must be in (0, 1]")

    @property
    def n_cores(self) -> int:
        return self.n_sms * self.cores_per_sm

    @property
    def mem_capacity_bytes(self) -> int:
        return int(self.mem_capacity_gb * 2**30)

    @property
    def resident_blocks(self) -> int:
        """Concurrently resident thread blocks == async staleness window."""
        return self.n_sms * self.max_resident_blocks_per_sm


#: Quadro M4000: 13 Maxwell SMs x 128 cores, 8 GB GDDR5 @ 192 GB/s.  The
#: paper notes the 7.3 GB webspam sample "fits inside the memory capacity of
#: the M4000 (the limit is 8GB)".
QUADRO_M4000 = GpuSpec(
    name="Quadro-M4000",
    n_sms=13,
    cores_per_sm=128,
    clock_ghz=0.773,
    mem_capacity_gb=8.0,
    mem_bandwidth_gbs=192.3,
    mem_efficiency=0.25,
    max_resident_blocks_per_sm=16,
)

#: GeForce GTX Titan X (Maxwell): 24 SMs x 128 cores, 12 GB @ 336.6 GB/s.
GTX_TITAN_X = GpuSpec(
    name="GTX-Titan-X",
    n_sms=24,
    cores_per_sm=128,
    clock_ghz=1.0,
    mem_capacity_gb=12.0,
    mem_bandwidth_gbs=336.6,
    mem_efficiency=0.38,
    max_resident_blocks_per_sm=16,
)

#: Tesla P100: the "up to 16 GB" state-of-the-art device the introduction
#: mentions; included for what-if experiments.
TESLA_P100 = GpuSpec(
    name="Tesla-P100",
    n_sms=56,
    cores_per_sm=64,
    clock_ghz=1.33,
    mem_capacity_gb=16.0,
    mem_bandwidth_gbs=732.0,
    mem_efficiency=0.45,
    max_resident_blocks_per_sm=16,
)
