"""Roofline-style epoch cost model for the simulated GPUs.

TPA-SCD is memory-bandwidth bound: per epoch every stored nonzero is read
once for the inner product (index + value + gathered shared-vector element)
and written once through a float atomic add (read-modify-write).  The model
prices that traffic against the device's sustained bandwidth (peak x the
calibrated ``mem_efficiency``) and adds a per-thread-block scheduling
overhead amortized over the SMs.
"""

from __future__ import annotations

from ..perf.timing import EpochWorkload
from .spec import GpuSpec

__all__ = ["GpuTimingModel", "BYTES_PER_NNZ"]

#: modelled DRAM traffic per stored nonzero per epoch:
#: 4 B index read + 4 B value read + 4 B shared-vector gather +
#: 8 B atomic read-modify-write = 20 B (32-bit types, as in the paper).
BYTES_PER_NNZ = 20


class GpuTimingModel:
    """Prices one TPA-SCD epoch on a :class:`GpuSpec`."""

    component = "compute_gpu"

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec

    def cost_parts(self, workload: EpochWorkload) -> dict[str, float]:
        """Per-mechanism epoch cost: DRAM streaming vs block scheduling."""
        spec = self.spec
        traffic = workload.nnz * BYTES_PER_NNZ
        t_mem = traffic / (spec.mem_bandwidth_gbs * 1e9 * spec.mem_efficiency)
        # blocks are dispatched across the SMs; each costs a small fixed
        # scheduling overhead, overlapped across the device's SMs
        t_blocks = workload.n_coords * spec.block_overhead_s / spec.n_sms
        return {"mem": t_mem, "sched": t_blocks}

    def epoch_seconds(self, workload: EpochWorkload) -> float:
        return sum(self.cost_parts(workload).values())
