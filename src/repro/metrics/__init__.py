"""Convergence histories, derived metrics, and cross-validation."""

from .history import ConvergenceHistory, ConvergenceRecord, speedup
from .cv import CvResult, cross_validate_path, kfold_indices
from .rates import linear_rate, slowdown_factor

__all__ = [
    "ConvergenceHistory",
    "ConvergenceRecord",
    "speedup",
    "CvResult",
    "cross_validate_path",
    "kfold_indices",
    "linear_rate",
    "slowdown_factor",
]
