"""K-fold cross-validation for regularization selection.

Pairs with the warm-started elastic-net path: evaluate every lambda on held
out folds and pick the one minimizing validation MSE (optionally with the
one-standard-error rule glmnet popularized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (data -> metrics)
    from ..data import Dataset

__all__ = ["kfold_indices", "CvResult", "cross_validate_path"]


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Random K-fold split: list of (train_rows, valid_rows) per fold."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} examples")
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        valid = np.sort(folds[i])
        train = np.sort(np.concatenate([folds[j] for j in range(k) if j != i]))
        out.append((train, valid))
    return out


@dataclass
class CvResult:
    """Cross-validation outcome over a lambda grid."""

    lambdas: np.ndarray
    mean_mse: np.ndarray
    std_mse: np.ndarray
    best_lambda: float
    one_se_lambda: float

    def summary(self) -> str:
        lines = ["   lambda      mean MSE     std"]
        for lam, m, s in zip(self.lambdas, self.mean_mse, self.std_mse):
            marker = ""
            if lam == self.best_lambda:
                marker += "  <- best"
            if lam == self.one_se_lambda:
                marker += "  <- 1-SE"
            lines.append(f"   {lam:9.5f}  {m:10.5f}  {s:8.5f}{marker}")
        return "\n".join(lines)


def cross_validate_path(
    dataset: "Dataset",
    lambdas: np.ndarray,
    *,
    l1_ratio: float = 0.5,
    k: int = 5,
    n_epochs: int = 100,
    tol: float = 1e-8,
    seed: int = 0,
) -> CvResult:
    """K-fold CV of the elastic-net path; returns per-lambda validation MSE.

    Each fold runs one warm-started path over its training split and scores
    every lambda's solution on the held-out rows.  ``one_se_lambda`` is the
    largest lambda within one standard error of the best mean MSE (the
    sparser, more conservative glmnet pick).
    """
    from ..data import Dataset
    from ..solvers.elasticnet import elastic_net_path

    lambdas = np.asarray(lambdas, dtype=np.float64)
    rng = np.random.default_rng(seed)
    csr = dataset.csr
    mse = np.zeros((k, lambdas.shape[0]))
    for fold, (train_rows, valid_rows) in enumerate(
        kfold_indices(dataset.n_examples, k, rng)
    ):
        train = Dataset(
            matrix=csr.take_rows(train_rows),
            y=dataset.y[train_rows],
            name=f"{dataset.name}-fold{fold}",
        )
        valid_matrix = csr.take_rows(valid_rows)
        valid_y = dataset.y[valid_rows]
        path = elastic_net_path(
            train, lambdas, l1_ratio=l1_ratio, n_epochs=n_epochs, tol=tol, seed=seed
        )
        for j, (_, beta, _) in enumerate(path):
            pred = valid_matrix.matvec(beta)
            mse[fold, j] = float(np.mean((pred - valid_y) ** 2))

    mean = mse.mean(axis=0)
    std = mse.std(axis=0, ddof=1) / np.sqrt(k)
    best_idx = int(np.argmin(mean))
    threshold = mean[best_idx] + std[best_idx]
    # largest lambda (grid is decreasing, so the earliest index) within 1 SE
    one_se_idx = int(np.nonzero(mean <= threshold)[0][0])
    return CvResult(
        lambdas=lambdas,
        mean_mse=mean,
        std_mse=std,
        best_lambda=float(lambdas[best_idx]),
        one_se_lambda=float(lambdas[one_se_idx]),
    )
