"""Convergence bookkeeping shared by every solver and experiment driver.

The paper's evaluation plots are all derived from (epoch, duality-gap,
time) triples; this module is the single home for recording them and for the
derived quantities the figures need (time-to-target-epsilon, speedups).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConvergenceRecord", "ConvergenceHistory", "speedup"]


@dataclass(frozen=True)
class ConvergenceRecord:
    """State of a run after a given epoch.

    ``sim_time`` is modelled wall-clock seconds from the performance models
    (the substitute for the paper's measured time axis); ``wall_time`` is the
    actual host time spent, kept for harness diagnostics only.
    """

    epoch: int
    gap: float
    objective: float
    sim_time: float
    wall_time: float
    updates: int
    extras: dict = field(default_factory=dict)


class ConvergenceHistory:
    """An ordered list of :class:`ConvergenceRecord` with figure helpers."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.records: list[ConvergenceRecord] = []

    def append(self, record: ConvergenceRecord) -> None:
        if self.records and record.epoch < self.records[-1].epoch:
            raise ValueError("records must be appended in epoch order")
        self.records.append(record)

    # -- column views ------------------------------------------------------
    @property
    def epochs(self) -> np.ndarray:
        return np.array([r.epoch for r in self.records])

    @property
    def gaps(self) -> np.ndarray:
        return np.array([r.gap for r in self.records])

    @property
    def sim_times(self) -> np.ndarray:
        return np.array([r.sim_time for r in self.records])

    @property
    def objectives(self) -> np.ndarray:
        return np.array([r.objective for r in self.records])

    def final_gap(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].gap

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- figure-level reductions ----------------------------------------------
    def time_to_gap(self, eps: float) -> float:
        """First modelled time at which the duality gap drops below ``eps``.

        Returns ``math.inf`` when the run never reaches the target — the
        paper's Fig. 6/8 semantics (curves simply end).
        """
        for r in self.records:
            if r.gap <= eps:
                return r.sim_time
        return math.inf

    def epochs_to_gap(self, eps: float) -> float:
        """First epoch at which the gap drops below ``eps`` (inf if never)."""
        for r in self.records:
            if r.gap <= eps:
                return float(r.epoch)
        return math.inf

    def extras_series(self, key: str) -> np.ndarray:
        """Collect ``extras[key]`` across records (NaN where missing)."""
        return np.array(
            [r.extras.get(key, math.nan) for r in self.records], dtype=np.float64
        )


def speedup(reference: ConvergenceHistory, candidate: ConvergenceHistory, eps: float) -> float:
    """Training-time speedup of ``candidate`` over ``reference`` at gap ``eps``.

    Matches the paper's definition: "the same level of duality gap can be
    achieved in a shorter amount of time (even if more epochs are required)".
    """
    t_ref = reference.time_to_gap(eps)
    t_new = candidate.time_to_gap(eps)
    if math.isinf(t_new):
        return 0.0
    if math.isinf(t_ref):
        return math.inf
    if t_new <= 0.0:
        return math.inf
    return t_ref / t_new
