"""Convergence-rate estimation from histories.

The paper's Fig. 3 claim is an "approximately linear slow-down in
convergence speed as a function of epochs" when adding workers.  Fitting
the linear-convergence rate (the slope of log-gap against epochs) makes
that claim quantitative: the per-epoch contraction factor at K workers
should be roughly the K-th root of the single-worker factor, i.e. the rate
(in nats/epoch) scales like 1/K.
"""

from __future__ import annotations

import numpy as np

from .history import ConvergenceHistory

__all__ = ["linear_rate", "slowdown_factor"]


def linear_rate(
    history: ConvergenceHistory,
    *,
    gap_floor: float = 1e-14,
    skip: int = 1,
) -> float:
    """Per-epoch contraction rate in nats: gap ~ C exp(-rate * epoch).

    Least-squares slope of ``-log(gap)`` over the monitored epochs, using
    points above ``gap_floor`` (float plateaus would bias the fit) and
    skipping the first ``skip`` records (transient).  Returns ``nan`` when
    fewer than two usable points remain.
    """
    epochs = history.epochs.astype(np.float64)
    gaps = history.gaps.astype(np.float64)
    mask = np.isfinite(gaps) & (gaps > gap_floor)
    mask[:skip] = False
    if mask.sum() < 2:
        return float("nan")
    x = epochs[mask]
    z = -np.log(gaps[mask])
    slope = np.polyfit(x, z, 1)[0]
    return float(slope)


def slowdown_factor(
    reference: ConvergenceHistory, candidate: ConvergenceHistory, **kw
) -> float:
    """Ratio of per-epoch rates: how many times slower the candidate is.

    For distributed SCD at K workers vs one worker the paper's shape is a
    factor of roughly K.
    """
    r_ref = linear_rate(reference, **kw)
    r_new = linear_rate(candidate, **kw)
    if not np.isfinite(r_ref) or not np.isfinite(r_new) or r_new <= 0:
        return float("nan")
    return r_ref / r_new
