"""Training objectives: ridge regression (paper) and GLM extensions."""

from .elasticnet import ElasticNetProblem, soft_threshold
from .logistic import LogisticProblem
from .ridge import (
    ExactSolution,
    RidgeProblem,
    dual_coordinate_delta,
    primal_coordinate_delta,
    solve_exact,
)
from .svm import SvmProblem

__all__ = [
    "ElasticNetProblem",
    "soft_threshold",
    "ExactSolution",
    "RidgeProblem",
    "dual_coordinate_delta",
    "primal_coordinate_delta",
    "solve_exact",
    "SvmProblem",
    "LogisticProblem",
]
