"""Elastic-net regression via coordinate descent (extension).

The paper notes that "stochastic coordinate methods are used in the field of
machine learning to solve other problems such as regression with elastic net
regularization as well as support vector machines".  This module implements
the elastic-net objective and its closed-form coordinate update following
Friedman, Hastie & Tibshirani (2010) — the paper's reference [4], the same
paper Algorithm 1 is based on:

    F(beta) = 1/(2N) ||A beta - y||^2
              + lam * (l1_ratio * ||beta||_1 + (1 - l1_ratio)/2 * ||beta||^2)

The coordinate minimizer is a soft-thresholded least-squares step.  With
``l1_ratio = 0`` the problem reduces exactly to ridge regression, which the
tests exploit for cross-validation against the ridge solvers.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset

__all__ = ["ElasticNetProblem", "soft_threshold"]


def soft_threshold(z: float, t: float) -> float:
    """The scalar soft-thresholding operator S(z, t) = sign(z) max(|z|-t, 0)."""
    if z > t:
        return z - t
    if z < -t:
        return z + t
    return 0.0


class ElasticNetProblem:
    """An elastic-net training problem bound to a dataset.

    Parameters
    ----------
    dataset:
        Training data (CSC layout is used: coordinates are features).
    lam:
        Overall regularization strength (> 0).
    l1_ratio:
        Mix between L1 (1.0 = lasso) and L2 (0.0 = ridge) penalties.
    """

    def __init__(self, dataset: Dataset, lam: float, l1_ratio: float = 0.5) -> None:
        if lam <= 0:
            raise ValueError("lambda must be positive")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.dataset = dataset
        self.lam = float(lam)
        self.l1_ratio = float(l1_ratio)

    @property
    def n(self) -> int:
        return self.dataset.n_examples

    @property
    def m(self) -> int:
        return self.dataset.n_features

    @property
    def y(self) -> np.ndarray:
        return self.dataset.y

    def objective(self, beta: np.ndarray, w: np.ndarray | None = None) -> float:
        """Evaluate F(beta); pass a maintained ``w = A beta`` to skip a matvec."""
        if w is None:
            w = self.dataset.csc.matvec(beta)
        r = w.astype(np.float64) - self.y.astype(np.float64)
        b = beta.astype(np.float64)
        l1 = np.abs(b).sum()
        l2 = b @ b
        return float(
            r @ r / (2.0 * self.n)
            + self.lam * (self.l1_ratio * l1 + 0.5 * (1.0 - self.l1_ratio) * l2)
        )

    def coordinate_delta(
        self, m: int, beta_m: float, residual_dot: float, col_norm_sq: float
    ) -> float:
        """Exact coordinate minimizer step for feature ``m``.

        ``residual_dot = <y - w, a_m>`` with the current shared vector; the
        new optimal value of the coordinate is the soft-thresholded
        least-squares solution and the returned delta moves ``beta_m`` there.
        """
        n = self.n
        # rho = (1/N) <y - w + a_m beta_m, a_m>: the coordinate-wise
        # least-squares target with coordinate m removed from the residual
        rho = (residual_dot + col_norm_sq * beta_m) / n
        denom = col_norm_sq / n + self.lam * (1.0 - self.l1_ratio)
        new_val = soft_threshold(rho, self.lam * self.l1_ratio) / denom
        return new_val - beta_m

    def subgradient_optimality(
        self, beta: np.ndarray, w: np.ndarray | None = None
    ) -> float:
        """Max violation of the coordinate-wise KKT conditions.

        Zero (to tolerance) at the optimum: for active coordinates the
        smooth-part gradient must cancel the L1 subgradient; for inactive
        ones it must lie within the L1 threshold.
        """
        csc = self.dataset.csc
        if w is None:
            w = csc.matvec(beta)
        grad_smooth = (
            csc.rmatvec(w.astype(np.float64) - self.y.astype(np.float64)) / self.n
            + self.lam * (1.0 - self.l1_ratio) * beta
        )
        t = self.lam * self.l1_ratio
        active = beta != 0
        viol_active = np.abs(grad_smooth[active] + t * np.sign(beta[active]))
        viol_inactive = np.maximum(np.abs(grad_smooth[~active]) - t, 0.0)
        parts = [v.max() for v in (viol_active, viol_inactive) if v.size]
        return float(max(parts)) if parts else 0.0
