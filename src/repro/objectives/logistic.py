"""L2-regularized logistic regression via SDCA (extension).

Completes the GLM family alongside ridge, elastic net and the SVM.
Formulation follows Shalev-Shwartz & Zhang (2013) — the paper's [9]:

    primal:  P(w) = lam/2 ||w||^2 + 1/N sum_i log(1 + exp(-y_i <w, x_i>))
    dual:    D(alpha) = 1/N sum_i H(alpha_i)
                        - 1/(2 lam N^2) || sum_i alpha_i y_i x_i ||^2,
             H(a) = -a log a - (1-a) log(1-a),   0 <= alpha_i <= 1.

The shared vector is the SDCA mapping ``w = A^T(alpha*y)/(lam N)``.  Unlike
ridge/hinge, the per-coordinate maximizer has no closed form: the stationary
condition

    log((1 - a)/a) = y_i <w, x_i> + q (a - alpha_i),   q = ||x_i||^2/(lam N)

has a unique root in (0, 1) (the left side is strictly decreasing, the right
strictly increasing in ``a``), found here by safeguarded bisection.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset

__all__ = ["LogisticProblem"]

_EPS = 1e-12


def _entropy(alpha: np.ndarray) -> np.ndarray:
    """H(a) = -a log a - (1-a) log(1-a), continuous at the endpoints."""
    a = np.clip(alpha, _EPS, 1.0 - _EPS)
    return -(a * np.log(a) + (1.0 - a) * np.log(1.0 - a))


class LogisticProblem:
    """A logistic-regression training problem bound to a dataset.

    Labels must be in {-1, +1}.
    """

    def __init__(self, dataset: Dataset, lam: float) -> None:
        if lam <= 0:
            raise ValueError("lambda must be positive")
        labels = np.unique(dataset.y)
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ValueError("logistic labels must be -1/+1")
        self.dataset = dataset
        self.lam = float(lam)

    @property
    def n(self) -> int:
        return self.dataset.n_examples

    @property
    def m(self) -> int:
        return self.dataset.n_features

    @property
    def y(self) -> np.ndarray:
        return self.dataset.y

    # -- objectives ----------------------------------------------------------
    def primal_objective(self, w: np.ndarray) -> float:
        margins = self.y * self.dataset.csr.matvec(w)
        # stable log(1 + exp(-m))
        loss = np.logaddexp(0.0, -margins).sum() / self.n
        w64 = w.astype(np.float64)
        return float(0.5 * self.lam * (w64 @ w64) + loss)

    def dual_objective(self, alpha: np.ndarray) -> float:
        if np.any(alpha < -1e-12) or np.any(alpha > 1 + 1e-12):
            raise ValueError("alpha must satisfy the box constraint [0, 1]")
        v = self.dataset.csr.rmatvec(alpha * self.y)
        return float(
            _entropy(alpha).sum() / self.n
            - (v @ v) / (2.0 * self.lam * self.n**2)
        )

    def weights_from_alpha(self, alpha: np.ndarray) -> np.ndarray:
        return self.dataset.csr.rmatvec(alpha * self.y) / (self.lam * self.n)

    def duality_gap(self, alpha: np.ndarray, w: np.ndarray | None = None) -> float:
        if w is None:
            w = self.weights_from_alpha(alpha)
        return self.primal_objective(w) - self.dual_objective(alpha)

    # -- coordinate update --------------------------------------------------------
    def coordinate_solve(
        self,
        i: int,
        alpha_i: float,
        margin_dot: float,
        row_norm_sq: float,
        *,
        iters: int = 50,
    ) -> float:
        """Return the new optimal alpha_i by safeguarded bisection.

        ``margin_dot = <w, x_i>`` with the current shared vector.  Solves
        ``log((1-a)/a) - m - q (a - alpha_i) = 0`` where ``m = y_i margin``.
        """
        m = self.y[i] * margin_dot
        q = row_norm_sq / (self.lam * self.n)
        if row_norm_sq <= 0.0:
            # the quadratic term vanishes: closed-form sigmoid maximizer
            return 1.0 / (1.0 + np.exp(m))

        def g(a: float) -> float:
            return np.log((1.0 - a) / a) - m - q * (a - alpha_i)

        lo, hi = _EPS, 1.0 - _EPS
        if g(lo) <= 0.0:
            return lo
        if g(hi) >= 0.0:
            return hi
        for _ in range(iters):
            mid = 0.5 * (lo + hi)
            if g(mid) > 0.0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def predict(self, w: np.ndarray, matrix=None) -> np.ndarray:
        """Signed predictions (+/-1) on a CSR matrix (defaults to training)."""
        matrix = matrix if matrix is not None else self.dataset.csr
        scores = matrix.matvec(w)
        return np.where(scores >= 0.0, 1.0, -1.0)

    def predict_proba(self, w: np.ndarray, matrix=None) -> np.ndarray:
        """P(y = +1 | x) under the logistic model."""
        matrix = matrix if matrix is not None else self.dataset.csr
        scores = matrix.matvec(w)
        return 1.0 / (1.0 + np.exp(-scores))
