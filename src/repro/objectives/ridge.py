"""Ridge regression: primal and dual objectives, duality gap, exact solvers.

Implements Section II of the paper verbatim:

* primal:  P(beta) = 1/(2N) ||A beta - y||^2 + lambda/2 ||beta||^2      (Eq. 1)
* dual:    D(alpha) = -N/2 ||alpha||^2 - 1/(2 lambda) ||A^T alpha||^2
                      + alpha^T y                                       (Eq. 3)
* optimality mappings beta* = A^T alpha* / lambda (Eq. 5) and
  alpha* = (y - A beta*) / N (Eq. 6)
* duality gaps G_P, G_D used as the universal convergence metric in every
  figure of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import Dataset

__all__ = [
    "RidgeProblem",
    "gap_and_objective",
    "primal_coordinate_delta",
    "dual_coordinate_delta",
    "solve_exact",
    "ExactSolution",
]


def gap_and_objective(
    problem: "RidgeProblem", weights: np.ndarray, formulation: str
) -> tuple[float, float]:
    """Offline ``(duality gap, objective)`` of an iterate under a formulation.

    The single shared monitoring helper for every ridge solver and engine:
    a primal iterate is scored with ``(G_P, P)``, a dual iterate with
    ``(G_D, D)``.  Deliberately recomputes the shared vector from the
    weights — maintained shared vectors can drift (wild writes) and the
    paper evaluates the model itself.
    """
    if formulation == "primal":
        return problem.primal_gap(weights), problem.primal_objective(weights)
    return problem.dual_gap(weights), problem.dual_objective(weights)


@dataclass(frozen=True)
class ExactSolution:
    """Reference optimum produced by :func:`solve_exact`."""

    beta: np.ndarray
    alpha: np.ndarray
    primal_value: float
    dual_value: float


class RidgeProblem:
    """A ridge-regression training problem bound to a dataset.

    Parameters
    ----------
    dataset:
        The training data; both compressed layouts are reachable through it.
    lam:
        Regularization strength ``lambda > 0`` (the paper uses 1e-3 for
        webspam throughout).
    """

    def __init__(self, dataset: Dataset, lam: float) -> None:
        if lam <= 0:
            raise ValueError("lambda must be positive")
        self.dataset = dataset
        self.lam = float(lam)

    # -- geometry -------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of training examples N."""
        return self.dataset.n_examples

    @property
    def m(self) -> int:
        """Number of features M."""
        return self.dataset.n_features

    @property
    def y(self) -> np.ndarray:
        return self.dataset.y

    # -- shared vectors ---------------------------------------------------------
    def shared_vector(self, beta: np.ndarray) -> np.ndarray:
        """Primal shared vector ``w = A beta`` (length N)."""
        return self.dataset.csc.matvec(beta)

    def dual_shared_vector(self, alpha: np.ndarray) -> np.ndarray:
        """Dual shared vector ``wbar = A^T alpha`` (length M)."""
        return self.dataset.csr.rmatvec(alpha)

    # -- objectives -------------------------------------------------------------
    def primal_objective(
        self, beta: np.ndarray, w: np.ndarray | None = None
    ) -> float:
        """Evaluate P(beta); pass a maintained ``w = A beta`` to skip a matvec."""
        if w is None:
            w = self.shared_vector(beta)
        r = w.astype(np.float64) - self.y.astype(np.float64)
        beta64 = beta.astype(np.float64)
        return float(
            r @ r / (2.0 * self.n) + 0.5 * self.lam * (beta64 @ beta64)
        )

    def dual_objective(
        self, alpha: np.ndarray, wbar: np.ndarray | None = None
    ) -> float:
        """Evaluate D(alpha); pass ``wbar = A^T alpha`` to skip an rmatvec."""
        if wbar is None:
            wbar = self.dual_shared_vector(alpha)
        a64 = alpha.astype(np.float64)
        wb64 = wbar.astype(np.float64)
        return float(
            -0.5 * self.n * (a64 @ a64)
            - (wb64 @ wb64) / (2.0 * self.lam)
            + a64 @ self.y.astype(np.float64)
        )

    # -- optimality mappings (Eqs. 5-6) ------------------------------------------
    def beta_from_alpha(self, alpha: np.ndarray) -> np.ndarray:
        """Map a dual iterate to its primal candidate: beta = A^T alpha / lam."""
        return self.dual_shared_vector(alpha) / self.lam

    def alpha_from_beta(self, beta: np.ndarray, w: np.ndarray | None = None) -> np.ndarray:
        """Map a primal iterate to its dual candidate: alpha = (y - A beta)/N."""
        if w is None:
            w = self.shared_vector(beta)
        return (self.y - w) / self.n

    # -- duality gaps ---------------------------------------------------------------
    def primal_gap(self, beta: np.ndarray, w: np.ndarray | None = None) -> float:
        """G_P(beta) = |P(beta) - D((y - A beta)/N)|."""
        if w is None:
            w = self.shared_vector(beta)
        alpha = (self.y - w) / self.n
        return abs(self.primal_objective(beta, w) - self.dual_objective(alpha))

    def dual_gap(self, alpha: np.ndarray, wbar: np.ndarray | None = None) -> float:
        """G_D(alpha) = |P(A^T alpha / lam) - D(alpha)|."""
        if wbar is None:
            wbar = self.dual_shared_vector(alpha)
        beta = wbar / self.lam
        return abs(self.primal_objective(beta) - self.dual_objective(alpha, wbar))

    # -- optimality-condition residuals -------------------------------------------------
    def optimality_residuals(
        self, beta: np.ndarray, alpha: np.ndarray
    ) -> tuple[float, float]:
        """Relative residuals of Eq. 5 and Eq. 6.

        Used to demonstrate that PASSCoDe-Wild converges to a point violating
        the optimality conditions while the atomic algorithms do not.
        """
        lhs5 = beta
        rhs5 = self.beta_from_alpha(alpha)
        lhs6 = alpha
        rhs6 = self.alpha_from_beta(beta)
        r5 = np.linalg.norm(lhs5 - rhs5) / max(np.linalg.norm(rhs5), 1e-30)
        r6 = np.linalg.norm(lhs6 - rhs6) / max(np.linalg.norm(rhs6), 1e-30)
        return float(r5), float(r6)


def primal_coordinate_delta(
    residual_dot: float, col_norm_sq: float, beta_m: float, n: int, lam: float
) -> float:
    """Closed-form primal coordinate step (Eq. 2).

    ``residual_dot`` is ``<y - w, a_m>`` with the *current* shared vector.
    """
    return (residual_dot - n * lam * beta_m) / (col_norm_sq + n * lam)


def dual_coordinate_delta(
    wbar_dot: float, row_norm_sq: float, alpha_n: float, y_n: float, n: int, lam: float
) -> float:
    """Closed-form dual coordinate step (Eq. 4).

    ``wbar_dot`` is ``<wbar, a_n>`` with the current dual shared vector.
    """
    return (lam * y_n - wbar_dot - lam * n * alpha_n) / (lam * n + row_norm_sq)


def solve_exact(problem: RidgeProblem, *, method: str = "auto") -> ExactSolution:
    """Compute the exact optimum for validation and gap normalization.

    Solves whichever normal-equation system is smaller:

    * feature side  (M x M): ``(A^T A / N + lam I) beta = A^T y / N``
    * example side  (N x N): ``(lam N I + A A^T) alpha = lam y``

    ``method`` may be ``"auto"``, ``"primal"`` or ``"dual"``.  Dense solves
    are used — the reproduction datasets are laptop scale; for larger inputs
    callers should rely on the iterative solvers themselves.
    """
    ds = problem.dataset
    n, m, lam = problem.n, problem.m, problem.lam
    if method == "auto":
        method = "primal" if m <= n else "dual"
    dense = ds.csr.to_dense().astype(np.float64)
    y = problem.y.astype(np.float64)
    if method == "primal":
        gram = dense.T @ dense / n + lam * np.eye(m)
        beta = np.linalg.solve(gram, dense.T @ y / n)
        alpha = (y - dense @ beta) / n
    elif method == "dual":
        gram = dense @ dense.T + lam * n * np.eye(n)
        alpha = np.linalg.solve(gram, lam * y)
        beta = dense.T @ alpha / lam
    else:
        raise ValueError(f"unknown method {method!r}")
    return ExactSolution(
        beta=beta,
        alpha=alpha,
        primal_value=problem.primal_objective(beta),
        dual_value=problem.dual_objective(alpha),
    )
