"""L2-regularized linear SVM via stochastic dual coordinate ascent (extension).

The second problem family the paper names as a target of stochastic
coordinate methods.  Formulation follows Shalev-Shwartz & Zhang (2013) — the
paper's reference [9], the same source as the ridge dual update:

    primal:  P(w) = lam/2 ||w||^2 + 1/N sum_i max(0, 1 - y_i <w, x_i>)
    dual:    D(alpha) = 1/N sum_i alpha_i
                        - 1/(2 lam N^2) || sum_i alpha_i y_i x_i ||^2,
             with box constraint 0 <= alpha_i <= 1.

SDCA maintains ``w = (1/(lam N)) sum_i alpha_i y_i x_i`` as the shared
vector; each coordinate step has the closed-form clipped solution below.
The duality gap P(w) - D(alpha) >= 0 certifies convergence, mirroring the
ridge methodology of Section II-C.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset

__all__ = ["SvmProblem"]


class SvmProblem:
    """A hinge-loss SVM training problem bound to a dataset.

    Labels must be in {-1, +1} (validated at construction).
    """

    def __init__(self, dataset: Dataset, lam: float) -> None:
        if lam <= 0:
            raise ValueError("lambda must be positive")
        labels = np.unique(dataset.y)
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ValueError("SVM labels must be -1/+1")
        self.dataset = dataset
        self.lam = float(lam)

    @property
    def n(self) -> int:
        return self.dataset.n_examples

    @property
    def m(self) -> int:
        return self.dataset.n_features

    @property
    def y(self) -> np.ndarray:
        return self.dataset.y

    # -- objectives ----------------------------------------------------------
    def primal_objective(self, w: np.ndarray) -> float:
        margins = 1.0 - self.y * self.dataset.csr.matvec(w)
        hinge = np.maximum(margins, 0.0).sum() / self.n
        w64 = w.astype(np.float64)
        return float(0.5 * self.lam * (w64 @ w64) + hinge)

    def dual_objective(self, alpha: np.ndarray) -> float:
        if np.any(alpha < -1e-12) or np.any(alpha > 1 + 1e-12):
            raise ValueError("alpha must satisfy the box constraint [0, 1]")
        v = self.dataset.csr.rmatvec(alpha * self.y)
        return float(
            alpha.sum() / self.n
            - (v @ v) / (2.0 * self.lam * self.n**2)
        )

    def weights_from_alpha(self, alpha: np.ndarray) -> np.ndarray:
        """The SDCA primal-dual mapping w(alpha) = A^T (alpha*y) / (lam N)."""
        return self.dataset.csr.rmatvec(alpha * self.y) / (self.lam * self.n)

    def duality_gap(self, alpha: np.ndarray, w: np.ndarray | None = None) -> float:
        if w is None:
            w = self.weights_from_alpha(alpha)
        return self.primal_objective(w) - self.dual_objective(alpha)

    # -- coordinate update --------------------------------------------------------
    def coordinate_delta(
        self, i: int, alpha_i: float, margin_dot: float, row_norm_sq: float
    ) -> float:
        """Closed-form clipped SDCA step for example ``i``.

        ``margin_dot = <w, x_i>`` with the current shared vector; the
        unconstrained maximizer is projected onto the box [0, 1].
        """
        if row_norm_sq <= 0.0:
            # example with no features contributes alpha_i/N to the dual and
            # nothing to the quadratic term: the box maximizer is alpha_i = 1
            return 1.0 - alpha_i
        grad = self.lam * self.n * (1.0 - self.y[i] * margin_dot) / row_norm_sq
        new_alpha = min(max(alpha_i + grad, 0.0), 1.0)
        return new_alpha - alpha_i

    def predict(self, w: np.ndarray, matrix=None) -> np.ndarray:
        """Signed predictions (+/-1) on a CSR matrix (defaults to training)."""
        matrix = matrix if matrix is not None else self.dataset.csr
        scores = matrix.matvec(w)
        return np.where(scores >= 0.0, 1.0, -1.0)
