"""Zero-dependency observability: hierarchical spans + a metrics registry.

The paper's headline evidence is timing decompositions — Fig. 9's
four-phase breakdown, PCIe/compute overlap, per-epoch wall-clock — and this
package makes the same decompositions inspectable *inside* a run:

* :class:`Tracer` produces nested spans (context-manager + decorator API)
  carrying both wall-clock and *modelled* seconds, attributed per ledger
  component, so a span tree rolls up to exactly the
  :class:`~repro.perf.ledger.TimeLedger` the engines report;
* :class:`MetricsRegistry` collects counters / gauges / histograms
  (epochs, atomic-add conflicts, lost writes, retries, straggler waits,
  bytes moved per collective);
* :mod:`repro.obs.export` renders Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto), a flat metrics dump, and an ASCII flame
  summary for the CLI.

A :class:`NullTracer` fast path keeps the overhead off by default: every
instrumented hot loop calls through no-op methods unless a real tracer is
installed (explicitly via ``solve(..., tracer=...)`` or ambiently via
:func:`use_tracer`).
"""

from .metrics import Histogram, MetricsRegistry
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    resolve_tracer,
    traced,
    use_tracer,
)
from .export import (
    chrome_trace,
    flame_summary,
    metrics_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "active_tracer",
    "resolve_tracer",
    "use_tracer",
    "traced",
    "MetricsRegistry",
    "Histogram",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_json",
    "write_metrics_json",
    "flame_summary",
    "validate_chrome_trace",
]
