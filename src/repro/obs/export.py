"""Trace and metrics exporters: Chrome trace JSON, metrics dump, ASCII flame.

``chrome_trace`` emits the Chrome ``trace_event`` *JSON object format*
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
one complete (``"ph": "X"``) event per span, wall-clock microseconds on the
timeline, and the span's modelled-seconds attribution under
``args["sim"]``.  The file loads directly in ``chrome://tracing`` and
https://ui.perfetto.dev.  Two extra top-level keys make the artifact
self-describing:

* ``simTotals`` — the tracer's global :class:`TimeLedger` breakdown;
* ``metrics``  — the metrics-registry snapshot.

``validate_chrome_trace`` checks structural validity *and* the conservation
law that makes the trace trustworthy: the per-event ``args["sim"]`` seconds
must sum to ``simTotals`` per component (i.e. the trace is a lossless
decomposition of the ledger).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "metrics_json",
    "write_metrics_json",
    "flame_summary",
    "validate_chrome_trace",
]

TRACE_SCHEMA = "repro.trace/v1"
METRICS_SCHEMA = "repro.metrics/v1"

#: nesting slack (µs) tolerated by the validator — float-to-integer
#: truncation can let a child's end land one tick past its parent's
_NEST_SLACK_US = 2


def _span_events(span: Span, pid: int, tid: int, out: list[dict]) -> None:
    event = {
        "name": span.name,
        "cat": span.category or "span",
        "ph": "X",
        "ts": int(span.t0 * 1e6),
        "dur": max(int(span.wall_seconds * 1e6), 0),
        "pid": pid,
        "tid": tid,
        "args": dict(span.attrs),
    }
    if span.sim:
        event["args"]["sim"] = {k: v for k, v in sorted(span.sim.items())}
        event["args"]["sim_seconds"] = span.sim_seconds()
    out.append(event)
    for child in span.children:
        _span_events(child, pid, tid, out)


def chrome_trace(tracer: Tracer, *, metadata: dict | None = None) -> dict:
    """Render the tracer's span forest as a Chrome-trace JSON object."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro (modelled execution)"},
        }
    ]
    for root in tracer.roots:
        _span_events(root, pid=1, tid=1, out=events)
    doc = {
        "schema": TRACE_SCHEMA,
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "simTotals": {
            k: v for k, v in tracer.ledger.breakdown().items() if v
        },
        "metrics": tracer.metrics.as_dict(),
    }
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(
    tracer: Tracer, path: str | Path, *, metadata: dict | None = None
) -> Path:
    """Validate and write the Chrome-trace JSON; returns the path written."""
    doc = chrome_trace(tracer, metadata=metadata)
    validate_chrome_trace(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=False))
    return path


def metrics_json(tracer: Tracer, *, metadata: dict | None = None) -> dict:
    """Flat JSON dump of the metrics registry + modelled-time breakdown."""
    doc = {
        "schema": METRICS_SCHEMA,
        "sim_breakdown": {
            k: v for k, v in tracer.ledger.breakdown().items() if v
        },
        "sim_total_seconds": tracer.ledger.total,
        "metrics": tracer.metrics.as_dict(),
    }
    if metadata:
        doc["metadata"] = dict(metadata)
    return doc


def write_metrics_json(
    tracer: Tracer, path: str | Path, *, metadata: dict | None = None
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics_json(tracer, metadata=metadata), indent=1))
    return path


# -- validation --------------------------------------------------------------


def validate_chrome_trace(doc: dict, *, rtol: float = 1e-9) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a well-formed repro trace.

    Checks performed:

    1. structure — ``traceEvents`` is a list of events; every ``"X"`` event
       has a name and non-negative integer ``ts``/``dur``;
    2. nesting — per ``(pid, tid)``, complete events form a proper tree:
       any two either nest or are disjoint (within integer-rounding slack);
    3. conservation — per-component ``args["sim"]`` seconds summed over all
       events equal ``simTotals`` within ``rtol`` relative tolerance.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace must be a JSON object")
    if doc.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"trace schema must be {TRACE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    sim_sums: dict[str, float] = {}
    lanes: dict[tuple, list[tuple[int, int, str]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise ValueError(f"event {i} is not a phased trace event")
        if ev["ph"] != "X":
            continue
        name = ev.get("name")
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(name, str) or not name:
            raise ValueError(f"event {i} lacks a name")
        if not isinstance(ts, int) or not isinstance(dur, int) or ts < 0 or dur < 0:
            raise ValueError(f"event {name!r}: ts/dur must be non-negative ints")
        if "pid" not in ev or "tid" not in ev:
            raise ValueError(f"event {name!r} lacks pid/tid")
        lanes.setdefault((ev["pid"], ev["tid"]), []).append((ts, ts + dur, name))
        sim = ev.get("args", {}).get("sim", {})
        if not isinstance(sim, dict):
            raise ValueError(f"event {name!r}: args.sim must be an object")
        for component, seconds in sim.items():
            if not isinstance(seconds, (int, float)) or seconds < 0:
                raise ValueError(
                    f"event {name!r}: sim[{component!r}] must be >= 0"
                )
            sim_sums[component] = sim_sums.get(component, 0.0) + seconds

    for lane, intervals in lanes.items():
        # parents before children at equal start times: wider interval first
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        stack: list[tuple[int, int, str]] = []
        for t0, t1, name in intervals:
            while stack and t0 >= stack[-1][1] - _NEST_SLACK_US:
                stack.pop()
            if stack and t1 > stack[-1][1] + _NEST_SLACK_US:
                raise ValueError(
                    f"event {name!r} overlaps {stack[-1][2]!r} without nesting "
                    f"(lane {lane})"
                )
            stack.append((t0, t1, name))

    totals = doc.get("simTotals", {})
    if not isinstance(totals, dict):
        raise ValueError("simTotals must be an object")
    components = set(totals) | set(sim_sums)
    for component in components:
        expect = float(totals.get(component, 0.0))
        got = sim_sums.get(component, 0.0)
        if not math.isclose(got, expect, rel_tol=rtol, abs_tol=1e-12):
            raise ValueError(
                f"sim rollup mismatch for {component!r}: events sum to "
                f"{got!r}, simTotals says {expect!r}"
            )


# -- ASCII flame summary -----------------------------------------------------


def _aggregate(spans: list[Span]) -> dict[tuple[str, str], dict]:
    """Group sibling spans by (name, category), preserving first-seen order."""
    groups: dict[tuple[str, str], dict] = {}
    for span in spans:
        key = (span.name, span.category)
        g = groups.setdefault(
            key, {"calls": 0, "wall": 0.0, "sim": 0.0, "children": []}
        )
        g["calls"] += 1
        g["wall"] += span.wall_seconds
        g["sim"] += sum(span.sim_rollup().values())
        g["children"].extend(span.children)
    return groups


def _flame_lines(
    spans: list[Span], depth: int, max_depth: int, lines: list[str]
) -> None:
    if depth > max_depth:
        return
    for (name, _cat), g in _aggregate(spans).items():
        label = "  " * depth + name
        lines.append(
            f"{label:<44} {g['calls']:>6}x  wall {g['wall']:>9.4f}s"
            f"  sim {g['sim']:>12.6g}s"
        )
        _flame_lines(g["children"], depth + 1, max_depth, lines)


def flame_summary(tracer: Tracer, *, max_depth: int = 6) -> str:
    """ASCII flame-style rollup of the span tree (calls, wall s, modelled s)."""
    lines = [
        f"{'span':<44} {'calls':>7}  {'wall-clock':>15}  {'modelled':>16}"
    ]
    _flame_lines(tracer.roots, 0, max_depth, lines)
    breakdown = {k: v for k, v in tracer.ledger.breakdown().items() if v}
    if breakdown:
        lines.append("")
        lines.append("modelled-time breakdown (== TimeLedger):")
        total = tracer.ledger.total
        for component, seconds in breakdown.items():
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {component:<18} {seconds:>12.6g}s  {share:5.1f}%")
    return "\n".join(lines)
