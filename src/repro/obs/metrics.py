"""A process-local metrics registry: counters, gauges, histograms.

Metric names are dotted lower-case paths grouped by subsystem.  The canonical
names emitted by the instrumented engines:

========================== ============================================
name                       meaning
========================== ============================================
``train.epochs``           epochs (aggregation rounds) executed
``scd.updates``            coordinate updates applied
``scd.lost_updates``       shared-vector updates lost to wild writes
``syscd.buckets``          coordinate buckets processed
``syscd.merges``           replica merge steps applied
``syscd.merge_divergence`` (histogram) max replica drift at each epoch's
                           merges (inf-norm of a thread's delta)
``syscd.bucket_imbalance`` (gauge) max/mean per-thread nonzeros per epoch
``syscd.threads``          (gauge) worker threads running the epoch
``gpu.waves``              thread-block waves scheduled
``gpu.nnz_processed``      nonzeros streamed through block kernels
``gpu.atomic_conflicts``   same-wave atomic adds hitting one element
``gpu.plan_cache.hits``    epoch-plan compilations avoided by the cache
``gpu.plan_cache.misses``  epoch plans compiled (cold binds)
``pool.bytes_reused``      (gauge) scratch bytes served from the wave
                           runtime's buffer pool instead of fresh allocs
``dist.epochs``            distributed aggregation rounds
``dist.gamma``             (histogram) aggregation scaling per round
``dist.survivors``         (histogram) update vectors arriving per round
``dist.straggler_wait_s``  barrier seconds waiting on stragglers
``comm.reduce_calls``      Reduce collectives priced
``comm.bcast_calls``       Broadcast collectives priced
``comm.bytes_reduced``     payload bytes through Reduce
``comm.bytes_broadcast``   payload bytes through Broadcast
``comm.retry_failures``    transient transfer failures retried
``comm.retry_seconds``     modelled seconds lost to retries
``faults.*``               fault-report totals (dropouts, stragglers,
                           dropped/stale updates, retry exhaustion)
``shards.cache.hit``       shard served warm from the LRU cache
``shards.cache.miss``      shard read from disk (foreground or prefetch)
``shards.cache.evict``     shard evicted to stay under the byte budget
``shards.cache.bytes``     (gauge) bytes currently resident in the cache
``shards.cache.bytes_read`` bytes loaded from disk into the cache
``shards.read_retries``    shard reads retried after injected I/O faults
``serve.requests``         prediction requests arriving at a server
``serve.responses``        scored responses returned
``serve.batches``          micro-batches dispatched to the scorer
``serve.rows_scored``      feature rows scored across all batches
``serve.shed``             requests dropped by admission control
``serve.swaps``            weight hot-swaps applied by a server
``serve.swap_dropped``     swap notifications lost before the server
``serve.slow_batches``     batches inflated by an injected slow scorer
``serve.queue_depth``      (gauge + histogram) admission-queue depth
``serve.weight_version``   (gauge) version currently being served
``serve.latency_s``        (histogram) arrival-to-completion latency
``serve.wait_s``           (histogram) time queued before dispatch
``serve.staleness_epochs`` (gauge + histogram) epochs the trainer was
                           ahead of the weights that scored a batch
========================== ============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default histogram bucket upper bounds — log-spaced to cover both modelled
#: seconds (1e-6 .. 1e3) and small integer counts (survivors, gammas)
DEFAULT_BUCKETS = tuple(10.0**e for e in range(-6, 4))


@dataclass
class Histogram:
    """Summary statistics + fixed log-spaced buckets for one series."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    bucket_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            # one counter per bound plus the overflow bucket
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (p50/p99 for dashboards).

        Returns the upper bound of the bucket containing the ``q``-quantile
        observation, clamped to the observed ``min``/``max`` — deterministic
        given the same observations, which lets tests pin p50/p99 exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                bound = (
                    self.buckets[i] if i < len(self.buckets) else self.max
                )
                return min(max(bound, self.min), self.max)
        return self.max

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {
                f"le_{bound:g}": n
                for bound, n in zip(self.buckets, self.bucket_counts)
            }
            | {"inf": self.bucket_counts[-1]},
        }


class MetricsRegistry:
    """Flat, name-addressed counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writers -----------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (>= 0) to the counter ``name``."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (got {value})")
        self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # -- readers -----------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def names(self) -> list[str]:
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's totals into this one (gauges: last wins)."""
        for k, v in other._counters.items():
            self.inc(k, v)
        self._gauges.update(other._gauges)
        for k, h in other._histograms.items():
            mine = self._histograms.get(k)
            if mine is None:
                mine = self._histograms[k] = Histogram(buckets=h.buckets)
            mine.count += h.count
            mine.total += h.total
            mine.min = min(mine.min, h.min)
            mine.max = max(mine.max, h.max)
            for i, n in enumerate(h.bucket_counts):
                mine.bucket_counts[i] += n

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (sorted for stable output)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )
