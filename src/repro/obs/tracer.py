"""Hierarchical span tracing with modelled-time attribution.

A :class:`Span` is one timed region of execution.  It carries two clocks:

* **wall time** — real host seconds from ``time.perf_counter`` (relative to
  the tracer's start), which is what the Chrome trace timeline shows;
* **modelled time** — the simulated seconds the performance models book into
  a :class:`~repro.perf.ledger.TimeLedger`, attributed per component to
  whichever span is open when the booking happens.

The second clock is the load-bearing one: the engines *model* epoch cost
rather than measure it, so a Fig. 9-style breakdown must come from the same
``ledger.add(component, seconds)`` calls the ledger sees.  The tracer hands
engines a :class:`TimeLedger` subclass (:meth:`Tracer.open_ledger`) whose
``add`` also attributes to the current span, which makes
``ledger.breakdown() == span rollup`` true by construction.

Use either the explicit or the ambient form::

    tracer = Tracer()
    result = solver.solve(problem, 20, tracer=tracer)

    with use_tracer(tracer):            # ambient: reaches every engine the
        run_fig9()                      # experiment drivers construct

:data:`NULL_TRACER` is the default everywhere: every method is a no-op and
``open_ledger`` returns a plain ledger, so untraced hot loops pay only a
no-op method call.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..perf.ledger import TimeLedger
from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "active_tracer",
    "resolve_tracer",
    "use_tracer",
    "traced",
]

#: synthetic root span that absorbs modelled-time bookings made while no
#: span is open, so the span rollup always equals the tracer's ledger
UNTRACED = "(untraced)"


@dataclass
class Span:
    """One timed region: wall interval, modelled seconds, attributes, children."""

    name: str
    category: str = ""
    t0: float = 0.0
    t1: float = 0.0
    attrs: dict = field(default_factory=dict)
    #: modelled seconds booked while this span was current, per component
    sim: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        return self.t1 - self.t0

    def sim_seconds(self) -> float:
        """Modelled seconds booked directly into this span."""
        return sum(self.sim.values())

    def sim_rollup(self) -> dict[str, float]:
        """Per-component modelled seconds summed over this span's subtree."""
        out = dict(self.sim)
        for child in self.children:
            for k, v in child.sim_rollup().items():
                out[k] = out.get(k, 0.0) + v
        return out

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, wall={self.wall_seconds:.4g}s, "
            f"sim={self.sim_seconds():.4g}s, children={len(self.children)})"
        )


class _SpanContext:
    """Cheap re-usable context manager opening one span on enter."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self._span)


class _NullSpanContext:
    """Shared no-op span context (returned by :class:`NullTracer`)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


#: the singleton no-op span context — safe to reuse, it holds no state
NULL_SPAN = _NullSpanContext()


class _TracedLedger(TimeLedger):
    """A :class:`TimeLedger` that mirrors every booking into its tracer."""

    def __init__(self, tracer: "Tracer") -> None:
        super().__init__()
        self._tracer = tracer

    def add(self, component: str, seconds: float) -> None:
        super().add(component, seconds)
        self._tracer.add_modelled(component, seconds)


class Tracer:
    """Collects nested spans, modelled time, and metrics for one run.

    Parameters
    ----------
    metrics:
        Registry receiving counters/gauges/histograms; a fresh one by default.
    detail:
        ``"epoch"`` (default) emits driver/epoch/collective spans;
        ``"wave"`` additionally opens a span per GPU thread-block wave
        (large traces — intended for short runs under inspection).
    """

    enabled = True

    def __init__(
        self, *, metrics: MetricsRegistry | None = None, detail: str = "epoch"
    ) -> None:
        if detail not in ("epoch", "wave"):
            raise ValueError(f"detail must be 'epoch' or 'wave', got {detail!r}")
        self.detail = detail
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: global modelled-time accumulation across every traced engine
        self.ledger = TimeLedger()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._t0 = time.perf_counter()
        self._orphan: Span | None = None

    # -- span lifecycle ----------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _push(self, span: Span) -> None:
        span.t0 = self._now()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order (open: "
                f"{[s.name for s in self._stack]})"
            )
        span.t1 = self._now()
        self._stack.pop()

    def span(self, name: str, category: str = "", **attrs) -> _SpanContext:
        """Open a child span of whatever span is currently on the stack."""
        return _SpanContext(self, Span(name=name, category=category, attrs=attrs))

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- modelled-time attribution ----------------------------------------
    def add_modelled(self, component: str, seconds: float) -> None:
        """Book modelled seconds to the current span and the global ledger."""
        self.ledger.add(component, seconds)
        if self._stack:
            sim = self._stack[-1].sim
        else:
            if self._orphan is None:
                self._orphan = Span(name=UNTRACED, category="tracer")
                self.roots.append(self._orphan)
            sim = self._orphan.sim
        sim[component] = sim.get(component, 0.0) + seconds

    def open_ledger(self) -> TimeLedger:
        """A fresh per-run ledger whose bookings also land in this tracer."""
        return _TracedLedger(self)

    def ledger_view(self) -> TimeLedger:
        """Derive a :class:`TimeLedger` purely from the span tree.

        Equals :attr:`ledger` by construction; exposed so the invariant is
        testable and so consumers can treat the ledger as a span rollup.
        """
        view = TimeLedger()
        for root in self.roots:
            for component, seconds in root.sim_rollup().items():
                view.add(component, seconds)
        return view

    # -- metrics convenience ----------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- inspection --------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer({len(self.roots)} roots, "
            f"sim={self.ledger.total:.4g}s, detail={self.detail!r})"
        )


class NullTracer:
    """The do-nothing tracer: every instrumented path costs one no-op call."""

    enabled = False
    detail = "off"
    metrics = None
    roots: list[Span] = []

    def span(self, name: str, category: str = "", **attrs) -> _NullSpanContext:
        return NULL_SPAN

    def add_modelled(self, component: str, seconds: float) -> None:
        pass

    def open_ledger(self) -> TimeLedger:
        return TimeLedger()

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: the shared default tracer — stateless, safe to use everywhere
NULL_TRACER = NullTracer()

#: the ambient tracer installed by :func:`use_tracer` (module-global;
#: the simulation engines are single-threaded by design)
_ACTIVE: Tracer | None = None


def active_tracer() -> "Tracer | NullTracer":
    """The ambient tracer, or :data:`NULL_TRACER` when none is installed."""
    return _ACTIVE if _ACTIVE is not None else NULL_TRACER


def resolve_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """An explicit tracer wins; otherwise fall back to the ambient one."""
    return tracer if tracer is not None else active_tracer()


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the ``with`` body.

    Every ``solve(...)`` entered inside the body (including those buried in
    experiment drivers) picks it up via :func:`resolve_tracer`.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def traced(name: str | None = None, category: str = "func") -> Callable:
    """Decorator opening a span around each call, on the *ambient* tracer.

    ::

        @traced("preprocess")
        def normalize(ds): ...
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with active_tracer().span(label, category=category):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
