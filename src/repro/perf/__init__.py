"""Shared performance-model primitives: links, ledgers, timing protocol.

Also home of the pinned micro-benchmark suite (:mod:`repro.perf.bench`)
behind the ``repro bench`` CLI and its CI regression gate.
"""

from .bench import (
    BENCH_SCHEMA,
    PROFILES,
    BenchProfile,
    compare,
    load_payload,
    run_suite,
    validate_payload,
    write_payload,
)
from .ledger import COMPONENTS, FAULT_COMPONENTS, PAPER_COMPONENTS, TimeLedger
from .link import (
    ETHERNET_10G,
    ETHERNET_100G,
    PCIE3_X16_PAGEABLE,
    PCIE3_X16_PINNED,
    Link,
)
from .timing import EpochWorkload, LocalTiming

__all__ = [
    "BENCH_SCHEMA",
    "BenchProfile",
    "PROFILES",
    "run_suite",
    "validate_payload",
    "compare",
    "load_payload",
    "write_payload",
    "COMPONENTS",
    "FAULT_COMPONENTS",
    "PAPER_COMPONENTS",
    "TimeLedger",
    "Link",
    "ETHERNET_10G",
    "ETHERNET_100G",
    "PCIE3_X16_PINNED",
    "PCIE3_X16_PAGEABLE",
    "EpochWorkload",
    "LocalTiming",
]
