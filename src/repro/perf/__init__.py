"""Shared performance-model primitives: links, ledgers, timing protocol."""

from .ledger import COMPONENTS, FAULT_COMPONENTS, PAPER_COMPONENTS, TimeLedger
from .link import (
    ETHERNET_10G,
    ETHERNET_100G,
    PCIE3_X16_PAGEABLE,
    PCIE3_X16_PINNED,
    Link,
)
from .timing import EpochWorkload, LocalTiming

__all__ = [
    "COMPONENTS",
    "FAULT_COMPONENTS",
    "PAPER_COMPONENTS",
    "TimeLedger",
    "Link",
    "ETHERNET_10G",
    "ETHERNET_100G",
    "PCIE3_X16_PINNED",
    "PCIE3_X16_PAGEABLE",
    "EpochWorkload",
    "LocalTiming",
]
