"""Pinned micro-benchmark suite with a throughput regression gate.

The repo's north star is "as fast as the hardware allows", but nothing used
to *guard* kernel throughput: a stray ``np.add.at`` or a per-wave allocation
could quietly cost 10x and no test would notice.  This module pins a small
suite of epoch micro-benchmarks over a fixed synthetic problem:

* ``sequential`` — Algorithm 1, single-thread exact SCD (the normalizer);
* ``chunked`` — the A-SCD chunked-atomic CPU kernel;
* ``tpa_wave_seed`` — the TPA-SCD wave engine on its per-wave seed path;
* ``tpa_wave_planned`` — the same engine through the compiled/pooled
  :class:`~repro.gpu.plan.WavePlan` runtime;
* ``distributed`` — one full synchronous distributed epoch (K TPA workers,
  averaging aggregation, simulated fabric);
* ``serving`` — a full seeded traffic replay through the
  :class:`~repro.serve.server.ModelServer` (micro-batching + admission +
  scoring), gating scored-rows-per-second of the online serving layer.

``run_suite`` writes a ``repro.bench/v1`` payload (see ``BENCH_PR6.json`` at
the repo root for the committed baseline) with the **median** wall-clock
epoch time per case.  Machines differ, so the regression gate compares
*normalized relative throughput* — each case's epoch rate divided by the
same run's ``sequential`` rate — which cancels the host's absolute speed:

    rel(case) = median_s(sequential) / median_s(case)

``compare`` flags any case whose normalized throughput dropped more than
``threshold`` (default 25%) versus the baseline payload.  Run it all via the
``repro bench`` CLI subcommand.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "BENCH_SCHEMA",
    "BenchProfile",
    "PROFILES",
    "run_suite",
    "validate_payload",
    "compare",
    "load_payload",
    "write_payload",
    "render_table",
]

BENCH_SCHEMA = "repro.bench/v1"

#: cases whose normalized throughput is gated (sequential is the normalizer)
_GATED_CASES = (
    "chunked",
    "tpa_wave_seed",
    "tpa_wave_planned",
    "distributed",
    "serving",
)


@dataclass(frozen=True)
class BenchProfile:
    """Pinned dimensions of one benchmark configuration."""

    name: str
    n_examples: int
    n_features: int
    nnz_per_example: int
    wave_size: int
    n_threads: int
    chunk_size: int
    n_workers: int
    reps: int
    warmup: int
    lam: float = 1e-3
    seed: int = 7
    #: feature-popularity exponent (1.0 = uniform).  The pinned suites use
    #: uniform popularity so every wave exercises the same kernel shape and
    #: the medians measure wave throughput, not tail-column skew.
    feature_exponent: float = 1.0


PROFILES: dict[str, BenchProfile] = {
    "default": BenchProfile(
        name="default",
        n_examples=4096,
        n_features=2048,
        nnz_per_example=24,
        wave_size=64,
        n_threads=256,
        chunk_size=16,
        n_workers=4,
        reps=15,
        warmup=3,
    ),
    "smoke": BenchProfile(
        name="smoke",
        n_examples=256,
        n_features=128,
        nnz_per_example=8,
        wave_size=16,
        n_threads=32,
        chunk_size=8,
        n_workers=2,
        reps=3,
        warmup=1,
    ),
}


def _problem(profile: BenchProfile):
    from ..data.synthetic import make_sparse_regression
    from ..objectives.ridge import RidgeProblem

    dataset = make_sparse_regression(
        profile.n_examples,
        profile.n_features,
        nnz_per_example=profile.nnz_per_example,
        feature_exponent=profile.feature_exponent,
        rng=np.random.default_rng(profile.seed),
        name=f"bench-{profile.name}",
    )
    return RidgeProblem(dataset, profile.lam)


def _time_epochs(run_one, profile: BenchProfile) -> list[float]:
    """Wall-time ``reps`` epochs after ``warmup`` untimed ones."""
    for _ in range(profile.warmup):
        run_one()
    times = []
    for _ in range(profile.reps):
        t0 = time.perf_counter()
        run_one()
        times.append(time.perf_counter() - t0)
    return times


def _bound_epoch_runner(factory, problem, profile: BenchProfile):
    """Bind a primal kernel and return a zero-arg one-epoch closure."""
    csc = problem.dataset.csc
    bound = factory.bind_primal(csc, problem.y, problem.n, problem.lam)
    beta = np.zeros(problem.m, dtype=bound.dtype)
    w = np.zeros(problem.n, dtype=bound.dtype)
    rng = np.random.default_rng(profile.seed + 1)

    def run_one():
        bound.run_epoch(beta, w, rng.permutation(problem.m), rng)

    return run_one


def _case_sequential(problem, profile: BenchProfile) -> list[float]:
    from ..solvers.scd import SequentialKernelFactory

    return _time_epochs(
        _bound_epoch_runner(SequentialKernelFactory(), problem, profile), profile
    )


def _case_chunked(problem, profile: BenchProfile) -> list[float]:
    from ..solvers.ascd import AsyncCpuKernelFactory

    factory = AsyncCpuKernelFactory(
        n_threads=profile.chunk_size, write_mode="atomic"
    )
    return _time_epochs(_bound_epoch_runner(factory, problem, profile), profile)


def _tpa_factory(profile: BenchProfile, planned: bool):
    from ..core.tpa_scd import TpaScdKernelFactory

    return TpaScdKernelFactory(
        n_threads=profile.n_threads,
        wave_size=profile.wave_size,
        planned=planned,
    )


def _case_tpa(problem, profile: BenchProfile, planned: bool) -> list[float]:
    factory = _tpa_factory(profile, planned)
    return _time_epochs(_bound_epoch_runner(factory, problem, profile), profile)


def _case_distributed(problem, profile: BenchProfile) -> list[float]:
    from ..core.distributed import DistributedSCD

    def run_one():
        engine = DistributedSCD(
            lambda rank: _tpa_factory(profile, planned=True),
            "primal",
            n_workers=profile.n_workers,
            seed=profile.seed,
        )
        engine.solve(problem, 1, monitor_every=1)

    return _time_epochs(run_one, profile)


def _case_serving(problem, profile: BenchProfile) -> tuple[list[float], int]:
    """Time a fixed seeded traffic replay; also returns the rows scored.

    One rep = admit every request through the micro-batching admission queue
    of a fresh :class:`~repro.serve.server.ModelServer` and drain it.  The
    request set is generated once (same seed → same arrivals across reps and
    machines), so wall-clock per rep is a clean scored-rows/sec measure.
    """
    from ..serve.server import ModelServer, ServeConfig
    from ..serve.snapshot import WeightSnapshot
    from ..serve.traffic import RequestSource, poisson_arrivals

    rate_hz = 20_000.0
    arrivals = poisson_arrivals(
        rate_hz, profile.n_examples / rate_hz, seed=profile.seed
    )
    source = RequestSource(problem.dataset.csr, seed=profile.seed)
    requests = source.requests(arrivals)
    n_rows = sum(r.n_rows for r in requests)
    snapshot = WeightSnapshot(
        version=1,
        weights=np.random.default_rng(profile.seed).standard_normal(problem.m),
    )
    config = ServeConfig()

    def run_one():
        server = ModelServer(snapshot, config=config)
        for req in requests:
            server.submit(req)
        server.drain()

    return _time_epochs(run_one, profile), n_rows


def run_suite(profile: str | BenchProfile = "default") -> dict:
    """Run every case of ``profile`` and return the ``repro.bench/v1`` payload."""
    from .. import __version__
    from ..gpu.plan import clear_plan_cache

    prof = PROFILES[profile] if isinstance(profile, str) else profile
    problem = _problem(prof)
    clear_plan_cache()

    cases: dict[str, dict] = {}

    def record(name: str, times: list[float]) -> None:
        med = statistics.median(times)
        cases[name] = {
            "median_s": med,
            "min_s": min(times),
            "reps": len(times),
            "epochs_per_s": (1.0 / med) if med > 0 else 0.0,
        }

    record("sequential", _case_sequential(problem, prof))
    record("chunked", _case_chunked(problem, prof))
    record("tpa_wave_seed", _case_tpa(problem, prof, planned=False))
    record("tpa_wave_planned", _case_tpa(problem, prof, planned=True))
    record("distributed", _case_distributed(problem, prof))
    serving_times, serving_rows = _case_serving(problem, prof)
    record("serving", serving_times)
    cases["serving"]["rows_scored"] = serving_rows
    cases["serving"]["rows_per_s"] = (
        serving_rows / cases["serving"]["median_s"]
        if cases["serving"]["median_s"] > 0
        else 0.0
    )

    seq = cases["sequential"]["median_s"]
    normalized = {
        name: (seq / case["median_s"]) if case["median_s"] > 0 else 0.0
        for name, case in cases.items()
    }
    payload = {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "profile": prof.name,
        "params": {
            "n_examples": prof.n_examples,
            "n_features": prof.n_features,
            "nnz_per_example": prof.nnz_per_example,
            "wave_size": prof.wave_size,
            "n_threads": prof.n_threads,
            "chunk_size": prof.chunk_size,
            "n_workers": prof.n_workers,
            "reps": prof.reps,
            "warmup": prof.warmup,
            "seed": prof.seed,
            "feature_exponent": prof.feature_exponent,
        },
        "cases": cases,
        "derived": {
            "normalized_throughput": normalized,
            "tpa_planned_speedup": (
                cases["tpa_wave_seed"]["median_s"]
                / cases["tpa_wave_planned"]["median_s"]
                if cases["tpa_wave_planned"]["median_s"] > 0
                else 0.0
            ),
        },
    }
    validate_payload(payload)
    return payload


def validate_payload(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid ``repro.bench/v1``."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("version", "profile", "params", "cases", "derived"):
        if key not in payload:
            raise ValueError(f"bench payload missing {key!r}")
    cases = payload["cases"]
    if not isinstance(cases, dict) or "sequential" not in cases:
        raise ValueError("bench payload must contain a 'sequential' case")
    for name, case in cases.items():
        if not isinstance(case, dict):
            raise ValueError(f"case {name!r} must be an object")
        for field in ("median_s", "reps"):
            if field not in case:
                raise ValueError(f"case {name!r} missing {field!r}")
        if not isinstance(case["median_s"], (int, float)) or case["median_s"] < 0:
            raise ValueError(f"case {name!r} has invalid median_s")
    derived = payload["derived"]
    if "normalized_throughput" not in derived:
        raise ValueError("bench payload missing derived.normalized_throughput")


def compare(new: dict, baseline: dict, *, threshold: float = 0.25) -> list[str]:
    """Regression messages for any gated case that slowed down > ``threshold``.

    Throughput is normalized by each payload's own ``sequential`` median, so
    the comparison is valid across machines of different absolute speed.
    """
    validate_payload(new)
    validate_payload(baseline)
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    regressions = []
    new_rel = new["derived"]["normalized_throughput"]
    base_rel = baseline["derived"]["normalized_throughput"]
    for name in _GATED_CASES:
        if name not in new_rel or name not in base_rel:
            continue
        if base_rel[name] <= 0:
            continue
        ratio = new_rel[name] / base_rel[name]
        if ratio < 1.0 - threshold:
            regressions.append(
                f"{name}: normalized throughput {new_rel[name]:.3f} is "
                f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                f"{base_rel[name]:.3f} (threshold {threshold * 100.0:.0f}%)"
            )
    return regressions


def load_payload(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text())
    validate_payload(payload)
    return payload


def write_payload(payload: dict, path: str | Path) -> None:
    validate_payload(payload)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


def render_table(payload: dict) -> str:
    """Human-readable summary of one bench payload."""
    rows = [f"bench profile {payload['profile']!r}  (schema {payload['schema']})"]
    rows.append(f"{'case':<18} {'median':>12} {'epochs/s':>10} {'vs seq':>8}")
    rel = payload["derived"]["normalized_throughput"]
    for name, case in payload["cases"].items():
        rows.append(
            f"{name:<18} {case['median_s'] * 1e3:>10.3f}ms "
            f"{case.get('epochs_per_s', 0.0):>10.1f} {rel.get(name, 0.0):>7.2f}x"
        )
    rows.append(
        "tpa planned vs seed speedup: "
        f"{payload['derived']['tpa_planned_speedup']:.2f}x"
    )
    return "\n".join(rows)
