"""Pinned micro-benchmark suite with a throughput regression gate.

The repo's north star is "as fast as the hardware allows", but nothing used
to *guard* kernel throughput: a stray ``np.add.at`` or a per-wave allocation
could quietly cost 10x and no test would notice.  This module pins a small
suite of epoch micro-benchmarks over a fixed synthetic problem:

* ``sequential`` — Algorithm 1, single-thread exact SCD (the normalizer);
* ``chunked`` — the A-SCD chunked-atomic CPU kernel;
* ``tpa_wave_seed`` — the TPA-SCD wave engine on its per-wave seed path;
* ``tpa_wave_planned`` — the same engine through the compiled/pooled
  :class:`~repro.gpu.plan.WavePlan` runtime;
* ``distributed`` — one full synchronous distributed epoch (K TPA workers,
  averaging aggregation, simulated fabric);
* ``serving`` — a full seeded traffic replay through the
  :class:`~repro.serve.server.ModelServer` (micro-batching + admission +
  scoring), gating scored-rows-per-second of the online serving layer;
* ``syscd_ref`` / ``syscd_threads`` — the SySCD solver's single-thread
  exact numpy reference vs its bucketed multi-thread replica-merge path
  (:mod:`repro.solvers.syscd`).  This pair is the repo's **measured**
  (wall-clock, not modelled) parallel-speedup gate:
  ``derived.syscd_measured_speedup`` must stay >= 2x at the profile's
  thread count.

``run_suite`` writes a ``repro.bench/v1`` payload with the **median**
wall-clock epoch time per case.  Baselines are committed at the repo root
as ``BENCH_PR<k>.json`` — one per landmark PR (``BENCH_PR10.json`` is the
newest); :func:`latest_baseline` resolves the current one and
:func:`render_trajectory` shows how each case moved across them.
Machines differ, so the regression gate compares
*normalized relative throughput* — each case's epoch rate divided by the
same run's ``sequential`` rate — which cancels the host's absolute speed:

    rel(case) = median_s(sequential) / median_s(case)

``compare`` flags any case whose normalized throughput dropped more than
``threshold`` (default 25%) versus the baseline payload.  Run it all via the
``repro bench`` CLI subcommand.
"""

from __future__ import annotations

import json
import re
import statistics
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "BENCH_SCHEMA",
    "BenchProfile",
    "PROFILES",
    "run_suite",
    "validate_payload",
    "compare",
    "load_payload",
    "write_payload",
    "render_table",
    "find_baselines",
    "latest_baseline",
    "render_trajectory",
]

BENCH_SCHEMA = "repro.bench/v1"

#: cases whose normalized throughput is gated (sequential is the normalizer)
_GATED_CASES = (
    "chunked",
    "tpa_wave_seed",
    "tpa_wave_planned",
    "distributed",
    "elastic_rebalance",
    "serving",
    "syscd_threads",
)

#: committed baseline file pattern at the repo root, one per landmark PR
_BASELINE_GLOB = "BENCH_PR*.json"


@dataclass(frozen=True)
class BenchProfile:
    """Pinned dimensions of one benchmark configuration."""

    name: str
    n_examples: int
    n_features: int
    nnz_per_example: int
    wave_size: int
    n_threads: int
    chunk_size: int
    n_workers: int
    reps: int
    warmup: int
    lam: float = 1e-3
    seed: int = 7
    #: feature-popularity exponent (1.0 = uniform).  The pinned suites use
    #: uniform popularity so every wave exercises the same kernel shape and
    #: the medians measure wave throughput, not tail-column skew.
    feature_exponent: float = 1.0
    #: SySCD measured-speedup scenario: worker threads, coordinates per
    #: bucket, and buckets per thread between replica merges
    syscd_threads: int = 4
    syscd_bucket: int = 64
    syscd_merge_every: int = 1


PROFILES: dict[str, BenchProfile] = {
    "default": BenchProfile(
        name="default",
        n_examples=4096,
        n_features=2048,
        nnz_per_example=24,
        wave_size=64,
        n_threads=256,
        chunk_size=16,
        n_workers=4,
        reps=15,
        warmup=3,
    ),
    "smoke": BenchProfile(
        name="smoke",
        n_examples=256,
        n_features=128,
        nnz_per_example=8,
        wave_size=16,
        n_threads=32,
        chunk_size=8,
        n_workers=2,
        reps=3,
        warmup=1,
        syscd_bucket=16,
    ),
}


def _problem(profile: BenchProfile):
    from ..data.synthetic import make_sparse_regression
    from ..objectives.ridge import RidgeProblem

    dataset = make_sparse_regression(
        profile.n_examples,
        profile.n_features,
        nnz_per_example=profile.nnz_per_example,
        feature_exponent=profile.feature_exponent,
        rng=np.random.default_rng(profile.seed),
        name=f"bench-{profile.name}",
    )
    return RidgeProblem(dataset, profile.lam)


def _time_epochs(run_one, profile: BenchProfile) -> list[float]:
    """Wall-time ``reps`` epochs after ``warmup`` untimed ones."""
    for _ in range(profile.warmup):
        run_one()
    times = []
    for _ in range(profile.reps):
        t0 = time.perf_counter()
        run_one()
        times.append(time.perf_counter() - t0)
    return times


def _bound_epoch_runner(factory, problem, profile: BenchProfile):
    """Bind a primal kernel and return a zero-arg one-epoch closure."""
    csc = problem.dataset.csc
    bound = factory.bind_primal(csc, problem.y, problem.n, problem.lam)
    beta = np.zeros(problem.m, dtype=bound.dtype)
    w = np.zeros(problem.n, dtype=bound.dtype)
    rng = np.random.default_rng(profile.seed + 1)

    def run_one():
        bound.run_epoch(beta, w, rng.permutation(problem.m), rng)

    return run_one


def _case_sequential(problem, profile: BenchProfile) -> list[float]:
    from ..solvers.scd import SequentialKernelFactory

    return _time_epochs(
        _bound_epoch_runner(SequentialKernelFactory(), problem, profile), profile
    )


def _case_chunked(problem, profile: BenchProfile) -> list[float]:
    from ..solvers.ascd import AsyncCpuKernelFactory

    factory = AsyncCpuKernelFactory(
        n_threads=profile.chunk_size, write_mode="atomic"
    )
    return _time_epochs(_bound_epoch_runner(factory, problem, profile), profile)


def _tpa_factory(profile: BenchProfile, planned: bool):
    from ..core.tpa_scd import TpaScdKernelFactory

    return TpaScdKernelFactory(
        n_threads=profile.n_threads,
        wave_size=profile.wave_size,
        planned=planned,
    )


def _case_tpa(problem, profile: BenchProfile, planned: bool) -> list[float]:
    factory = _tpa_factory(profile, planned)
    return _time_epochs(_bound_epoch_runner(factory, problem, profile), profile)


def _case_distributed(problem, profile: BenchProfile) -> list[float]:
    from ..core.distributed import DistributedSCD

    def run_one():
        engine = DistributedSCD(
            lambda rank: _tpa_factory(profile, planned=True),
            "primal",
            n_workers=profile.n_workers,
            seed=profile.seed,
        )
        engine.solve(problem, 1, monitor_every=1)

    return _time_epochs(run_one, profile)


def _case_elastic_rebalance(problem, profile: BenchProfile) -> list[float]:
    """One elastic run per rep: a heterogeneous 4-rank cluster that loses a
    rank mid-run, regains one later, and rebalances from measured walls.

    This prices the full membership machinery — repartition with state
    carry-over, generation-salted worker rebinds, and the load balancer's
    EMA bookkeeping — not just a static epoch, so regressions in the elastic
    path show up even when the fixed-membership ``distributed`` case is flat.
    """
    from ..core.distributed import DistributedSCD
    from ..solvers.scd import SequentialKernelFactory

    n_epochs = 5

    def run_one():
        engine = DistributedSCD(
            SequentialKernelFactory(),
            "primal",
            n_workers=4,
            capacities=[2.0, 1.0, 1.0, 1.0],
            membership=[(2, "leave"), (4, "join")],
            rebalance_every=2,
            seed=profile.seed,
        )
        engine.solve(problem, n_epochs, monitor_every=n_epochs)

    return [t / n_epochs for t in _time_epochs(run_one, profile)]


def _case_serving(problem, profile: BenchProfile) -> tuple[list[float], int]:
    """Time a fixed seeded traffic replay; also returns the rows scored.

    One rep = admit every request through the micro-batching admission queue
    of a fresh :class:`~repro.serve.server.ModelServer` and drain it.  The
    request set is generated once (same seed → same arrivals across reps and
    machines), so wall-clock per rep is a clean scored-rows/sec measure.
    """
    from ..serve.server import ModelServer, ServeConfig
    from ..serve.snapshot import WeightSnapshot
    from ..serve.traffic import RequestSource, poisson_arrivals

    rate_hz = 20_000.0
    arrivals = poisson_arrivals(
        rate_hz, profile.n_examples / rate_hz, seed=profile.seed
    )
    source = RequestSource(problem.dataset.csr, seed=profile.seed)
    requests = source.requests(arrivals)
    n_rows = sum(r.n_rows for r in requests)
    snapshot = WeightSnapshot(
        version=1,
        weights=np.random.default_rng(profile.seed).standard_normal(problem.m),
    )
    config = ServeConfig()

    def run_one():
        server = ModelServer(snapshot, config=config)
        for req in requests:
            server.submit(req)
        server.drain()

    return _time_epochs(run_one, profile), n_rows


def _case_syscd(problem, profile: BenchProfile, n_threads: int) -> list[float]:
    """One SySCD epoch per rep: exact reference at 1 thread, bucketed above.

    The reference is pinned to the numpy backend (the bitwise-reference
    semantics); the threaded case uses ``kernel_backend="auto"`` so the
    measured speedup reflects whatever backend ships on the host.
    """
    from ..solvers.syscd import SyscdKernelFactory

    factory = SyscdKernelFactory(
        n_threads=n_threads,
        bucket_size=profile.syscd_bucket,
        merge_every=profile.syscd_merge_every,
        kernel_backend="numpy" if n_threads == 1 else "auto",
    )
    return _time_epochs(_bound_epoch_runner(factory, problem, profile), profile)


def run_suite(profile: str | BenchProfile = "default") -> dict:
    """Run every case of ``profile`` and return the ``repro.bench/v1`` payload."""
    from .. import __version__
    from ..gpu.plan import clear_plan_cache

    prof = PROFILES[profile] if isinstance(profile, str) else profile
    problem = _problem(prof)
    clear_plan_cache()

    cases: dict[str, dict] = {}

    def record(name: str, times: list[float]) -> None:
        med = statistics.median(times)
        cases[name] = {
            "median_s": med,
            "min_s": min(times),
            "reps": len(times),
            "epochs_per_s": (1.0 / med) if med > 0 else 0.0,
        }

    record("sequential", _case_sequential(problem, prof))
    record("chunked", _case_chunked(problem, prof))
    record("tpa_wave_seed", _case_tpa(problem, prof, planned=False))
    record("tpa_wave_planned", _case_tpa(problem, prof, planned=True))
    record("distributed", _case_distributed(problem, prof))
    record("elastic_rebalance", _case_elastic_rebalance(problem, prof))
    record("syscd_ref", _case_syscd(problem, prof, 1))
    record("syscd_threads", _case_syscd(problem, prof, prof.syscd_threads))
    cases["syscd_threads"]["n_threads"] = prof.syscd_threads
    serving_times, serving_rows = _case_serving(problem, prof)
    record("serving", serving_times)
    cases["serving"]["rows_scored"] = serving_rows
    cases["serving"]["rows_per_s"] = (
        serving_rows / cases["serving"]["median_s"]
        if cases["serving"]["median_s"] > 0
        else 0.0
    )

    seq = cases["sequential"]["median_s"]
    normalized = {
        name: (seq / case["median_s"]) if case["median_s"] > 0 else 0.0
        for name, case in cases.items()
    }
    payload = {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "profile": prof.name,
        "params": {
            "n_examples": prof.n_examples,
            "n_features": prof.n_features,
            "nnz_per_example": prof.nnz_per_example,
            "wave_size": prof.wave_size,
            "n_threads": prof.n_threads,
            "chunk_size": prof.chunk_size,
            "n_workers": prof.n_workers,
            "reps": prof.reps,
            "warmup": prof.warmup,
            "seed": prof.seed,
            "feature_exponent": prof.feature_exponent,
            "syscd_threads": prof.syscd_threads,
            "syscd_bucket": prof.syscd_bucket,
            "syscd_merge_every": prof.syscd_merge_every,
        },
        "cases": cases,
        "derived": {
            "normalized_throughput": normalized,
            "tpa_planned_speedup": (
                cases["tpa_wave_seed"]["median_s"]
                / cases["tpa_wave_planned"]["median_s"]
                if cases["tpa_wave_planned"]["median_s"] > 0
                else 0.0
            ),
            # wall-clock speedup of the threaded SySCD path over the
            # single-thread numpy reference — the measured (not modelled)
            # parallel-speedup gate
            "syscd_measured_speedup": (
                cases["syscd_ref"]["median_s"]
                / cases["syscd_threads"]["median_s"]
                if cases["syscd_threads"]["median_s"] > 0
                else 0.0
            ),
        },
    }
    validate_payload(payload)
    return payload


def validate_payload(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid ``repro.bench/v1``."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("version", "profile", "params", "cases", "derived"):
        if key not in payload:
            raise ValueError(f"bench payload missing {key!r}")
    cases = payload["cases"]
    if not isinstance(cases, dict) or "sequential" not in cases:
        raise ValueError("bench payload must contain a 'sequential' case")
    for name, case in cases.items():
        if not isinstance(case, dict):
            raise ValueError(f"case {name!r} must be an object")
        for field in ("median_s", "reps"):
            if field not in case:
                raise ValueError(f"case {name!r} missing {field!r}")
        if not isinstance(case["median_s"], (int, float)) or case["median_s"] < 0:
            raise ValueError(f"case {name!r} has invalid median_s")
    derived = payload["derived"]
    if "normalized_throughput" not in derived:
        raise ValueError("bench payload missing derived.normalized_throughput")


def compare(new: dict, baseline: dict, *, threshold: float = 0.25) -> list[str]:
    """Regression messages for any gated case that slowed down > ``threshold``.

    Throughput is normalized by each payload's own ``sequential`` median, so
    the comparison is valid across machines of different absolute speed.
    """
    validate_payload(new)
    validate_payload(baseline)
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    regressions = []
    new_rel = new["derived"]["normalized_throughput"]
    base_rel = baseline["derived"]["normalized_throughput"]
    for name in _GATED_CASES:
        if name not in new_rel or name not in base_rel:
            continue
        if base_rel[name] <= 0:
            continue
        ratio = new_rel[name] / base_rel[name]
        if ratio < 1.0 - threshold:
            regressions.append(
                f"{name}: normalized throughput {new_rel[name]:.3f} is "
                f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                f"{base_rel[name]:.3f} (threshold {threshold * 100.0:.0f}%)"
            )
    return regressions


def load_payload(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text())
    validate_payload(payload)
    return payload


def write_payload(payload: dict, path: str | Path) -> None:
    validate_payload(payload)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


def render_table(payload: dict) -> str:
    """Human-readable summary of one bench payload."""
    rows = [f"bench profile {payload['profile']!r}  (schema {payload['schema']})"]
    rows.append(f"{'case':<18} {'median':>12} {'epochs/s':>10} {'vs seq':>8}")
    rel = payload["derived"]["normalized_throughput"]
    for name, case in payload["cases"].items():
        rows.append(
            f"{name:<18} {case['median_s'] * 1e3:>10.3f}ms "
            f"{case.get('epochs_per_s', 0.0):>10.1f} {rel.get(name, 0.0):>7.2f}x"
        )
    rows.append(
        "tpa planned vs seed speedup: "
        f"{payload['derived']['tpa_planned_speedup']:.2f}x"
    )
    syscd = payload["derived"].get("syscd_measured_speedup")
    if syscd is not None:
        threads = payload["cases"].get("syscd_threads", {}).get("n_threads", "?")
        rows.append(
            f"syscd measured speedup ({threads} threads vs 1): {syscd:.2f}x"
        )
    return "\n".join(rows)


def _baseline_key(path: Path) -> tuple[int, str]:
    """Sort key ordering ``BENCH_PR<k>.json`` numerically, others last."""
    match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
    if match:
        return (int(match.group(1)), path.name)
    return (10**9, path.name)


def find_baselines(root: str | Path = ".") -> list[Path]:
    """Committed ``BENCH_PR*.json`` baselines under ``root``, oldest first.

    Files are ordered by PR number (``BENCH_PR4`` < ``BENCH_PR6`` <
    ``BENCH_PR9`` — numeric, not lexicographic); unparsable names sort last
    alphabetically.  Invalid payloads are skipped rather than raising so a
    scratch file at the repo root cannot break the dashboard.
    """
    found = []
    for path in sorted(Path(root).glob(_BASELINE_GLOB), key=_baseline_key):
        try:
            load_payload(path)
        except (ValueError, OSError, json.JSONDecodeError):
            continue
        found.append(path)
    return found


def latest_baseline(root: str | Path = ".") -> Path | None:
    """The newest committed bench baseline under ``root`` (or ``None``)."""
    baselines = find_baselines(root)
    return baselines[-1] if baselines else None


def render_trajectory(paths: list[str | Path]) -> str:
    """Per-case normalized-throughput history across committed baselines.

    One row per case that appears in any payload, one column per baseline
    (oldest → newest), so ``repro bench --baseline`` can show how each
    scenario moved across landmark PRs instead of a single pairwise diff.
    """
    payloads = [(Path(p), load_payload(p)) for p in paths]
    if not payloads:
        return "no bench baselines found"
    names: list[str] = []
    for _, payload in payloads:
        for case in payload["derived"]["normalized_throughput"]:
            if case not in names:
                names.append(case)
    labels = [path.stem.removeprefix("BENCH_") for path, _ in payloads]
    width = max(8, *(len(label) for label in labels))
    rows = ["normalized throughput trajectory (vs each payload's own seq):"]
    rows.append(
        f"{'case':<18} " + " ".join(f"{label:>{width}}" for label in labels)
    )
    for case in names:
        cells = []
        for _, payload in payloads:
            rel = payload["derived"]["normalized_throughput"].get(case)
            cells.append(
                f"{rel:>{width - 1}.2f}x" if rel is not None else " " * width
            )
        rows.append(f"{case:<18} " + " ".join(cells))
    return "\n".join(rows)
