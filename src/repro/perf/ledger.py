"""Time accounting for the modelled execution phases.

The paper's Fig. 9 decomposes distributed TPA-SCD wall-clock into GPU
compute, host compute, PCIe transfer and network communication.  Every
modelled phase in this library books its seconds into a :class:`TimeLedger`
under one of those component names so the breakdown figure falls out of the
ledger directly.

Fault-aware runs book two further phases on top of the paper's four:
``comm_retry`` (timeouts, backoff and retransmissions of failed transfers)
and ``wait_straggler`` (barrier time spent waiting for slowed workers beyond
the fault-free critical path), so a Fig. 9-style breakdown directly shows
the overhead a fault scenario adds.

Out-of-core runs (:mod:`repro.shards`) add two more: ``shard_stream``
(host→device transfers of shards re-read on cache misses) and
``shard_retry`` (retry cost of transient shard-read failures).
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["TimeLedger", "COMPONENTS", "PAPER_COMPONENTS", "FAULT_COMPONENTS"]

#: canonical component names: the paper's Fig. 9 stacking order, followed by
#: the fault-overhead phases introduced by the chaos testbed and the
#: out-of-core streaming phases introduced by the shard store
COMPONENTS = (
    "compute_gpu",
    "compute_host",
    "comm_pcie",
    "comm_network",
    "comm_retry",
    "wait_straggler",
    "shard_stream",
    "shard_retry",
)

#: the paper's own four Fig. 9 phases (always shown in breakdown figures)
PAPER_COMPONENTS = COMPONENTS[:4]

#: the subset of :data:`COMPONENTS` that only fault injection can populate
FAULT_COMPONENTS = ("comm_retry", "wait_straggler", "shard_retry")


class TimeLedger:
    """Accumulates modelled seconds per execution component."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = defaultdict(float)

    def add(self, component: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative time for {component!r}: {seconds}")
        self._seconds[component] += seconds

    def get(self, component: str) -> float:
        return self._seconds.get(component, 0.0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def fault_seconds(self) -> float:
        """Total modelled time attributable to injected faults."""
        return sum(self._seconds.get(c, 0.0) for c in FAULT_COMPONENTS)

    def breakdown(self) -> dict[str, float]:
        """Return a copy of the per-component totals (canonical order first)."""
        out = {c: self._seconds.get(c, 0.0) for c in COMPONENTS}
        for k, v in self._seconds.items():
            if k not in out:
                out[k] = v
        return out

    def merged_with(self, other: "TimeLedger") -> "TimeLedger":
        merged = TimeLedger()
        for k, v in self._seconds.items():
            merged.add(k, v)
        for k, v in other._seconds.items():
            merged.add(k, v)
        return merged

    def copy(self) -> "TimeLedger":
        out = TimeLedger()
        for k, v in self._seconds.items():
            out.add(k, v)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.4g}s" for k, v in self.breakdown().items() if v)
        return f"TimeLedger({parts or 'empty'})"
