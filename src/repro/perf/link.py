"""Latency + bandwidth cost models for interconnects.

A single :class:`Link` abstraction covers every transfer medium in the
paper's testbeds: the 10 Gbit Ethernet between worker machines, the PCIe 3.0
x16 links between host and GPU (with or without pinned host memory), and the
hypothetical 100 GbE upgrade the paper speculates about.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Link",
    "ETHERNET_10G",
    "ETHERNET_100G",
    "PCIE3_X16_PINNED",
    "PCIE3_X16_PAGEABLE",
]


@dataclass(frozen=True)
class Link:
    """A point-to-point transfer medium.

    Parameters
    ----------
    name:
        Identifier used in reports.
    bandwidth_gbytes:
        Sustained payload bandwidth in gigabytes/second.
    latency_s:
        Per-message latency (setup + first byte) in seconds.
    efficiency:
        Fraction of nominal bandwidth achievable for large transfers
        (protocol overhead, DMA setup, ...).
    """

    name: str
    bandwidth_gbytes: float
    latency_s: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbytes <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    def transfer_seconds(self, n_bytes: int | float) -> float:
        """Modelled time to move ``n_bytes`` across the link."""
        if n_bytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self.latency_s + n_bytes / (
            self.bandwidth_gbytes * 1e9 * self.efficiency
        )


#: 10 GbE as used between the paper's Xeon machines.  ~1.0 GB/s effective.
ETHERNET_10G = Link("10GbE", bandwidth_gbytes=1.25, latency_s=50e-6, efficiency=0.85)

#: the 100 GbE upgrade the paper suggests would improve scaling further.
ETHERNET_100G = Link("100GbE", bandwidth_gbytes=12.5, latency_s=30e-6, efficiency=0.85)

#: PCIe 3.0 x16 with pinned (page-locked) host memory — what the paper uses
#: for shared-vector transfers ("pinned memory functionality offered by CUDA
#: to achieve maximum throughput").
PCIE3_X16_PINNED = Link(
    "PCIe3-x16-pinned", bandwidth_gbytes=15.75, latency_s=10e-6, efficiency=0.76
)

#: PCIe 3.0 x16 with pageable host memory — the slower default path, kept for
#: the pinned-vs-pageable ablation.
PCIE3_X16_PAGEABLE = Link(
    "PCIe3-x16-pageable", bandwidth_gbytes=15.75, latency_s=25e-6, efficiency=0.40
)
