"""The timing protocol every local-solver cost model implements.

Solvers run their real update arithmetic on the host, but the *time axes* of
the reproduced figures come from device models (CPU thread models, the GPU
simulator).  The contract between them is one epoch's workload summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["EpochWorkload", "LocalTiming"]


@dataclass(frozen=True)
class EpochWorkload:
    """The per-epoch work a local solver performs.

    Attributes
    ----------
    n_coords:
        Coordinates updated this epoch (columns for primal, rows for dual).
    nnz:
        Stored nonzeros touched — each is read once for the inner product and
        written once for the shared-vector update.
    shared_len:
        Length of the shared vector that coordinate updates scatter into.
    """

    n_coords: int
    nnz: int
    shared_len: int

    def __post_init__(self) -> None:
        if self.n_coords < 0 or self.nnz < 0 or self.shared_len < 0:
            raise ValueError("workload quantities must be non-negative")


@runtime_checkable
class LocalTiming(Protocol):
    """Anything that can price one epoch of coordinate descent."""

    #: ledger component this device books compute under
    component: str

    def epoch_seconds(self, workload: EpochWorkload) -> float:
        """Modelled seconds to execute one epoch of the given workload."""
        ...
