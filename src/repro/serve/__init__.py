"""Online serving: versioned snapshots, hot-swap scoring, seeded traffic.

The paper's premise (Section I) is that models must be retrained "as
frequently as possible" on fresh data — which is only useful if serving can
pick the new weights up without downtime.  This package closes the
train-to-serve loop on the repo's modelled clock:

* :mod:`repro.serve.snapshot` — immutable versioned
  :class:`WeightSnapshot`\\ s and the lock-free publish/subscribe
  :class:`SnapshotHub` (atomic reference swap; readers never block writers);
* :mod:`repro.serve.server` — :class:`ModelServer`, a deterministic
  discrete-event scorer with micro-batching, bounded-queue admission
  control with load shedding, and torn-read-free hot swap;
* :mod:`repro.serve.traffic` — seeded open-loop Poisson / bursty arrival
  generators, request sampling, and the :func:`replay` event loop;
* :mod:`repro.serve.demo` — :func:`train_to_serve`, the end-to-end demo
  behind ``repro serve``: train, publish versions mid-traffic, audit every
  response bitwise against the offline ``X @ w`` oracle.
"""

from .demo import ServeDemoReport, train_to_serve
from .server import ModelServer, PredictRequest, PredictResponse, ServeConfig
from .snapshot import SnapshotHub, WeightSnapshot, serve_weights, snapshot_from_result
from .traffic import (
    EpochNote,
    RequestSource,
    SwapEvent,
    bursty_arrivals,
    poisson_arrivals,
    replay,
)

__all__ = [
    "WeightSnapshot",
    "SnapshotHub",
    "serve_weights",
    "snapshot_from_result",
    "ServeConfig",
    "PredictRequest",
    "PredictResponse",
    "ModelServer",
    "poisson_arrivals",
    "bursty_arrivals",
    "RequestSource",
    "SwapEvent",
    "EpochNote",
    "replay",
    "ServeDemoReport",
    "train_to_serve",
]
