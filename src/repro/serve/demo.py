"""The train-to-serve demo: one seeded run of the whole serving story.

:func:`train_to_serve` is the acceptance harness behind ``repro serve``:

1. train a solver on a synthetic sparse problem, observing every monitored
   epoch via the ``on_epoch`` publish hook — every ``publish_every``-th
   event becomes a versioned :class:`~repro.serve.snapshot.WeightSnapshot`,
   built *inside* the callback so each version captures that epoch's
   weights (never a deferred alias of the final ones);
2. lay the training timeline onto the serving clock (epoch ``e`` of ``E``
   lands at ``e/E`` of the traffic window), so swaps arrive while requests
   are in flight and the trainer frontier advances between swaps;
3. generate seeded open-loop traffic, replay arrivals + swaps + epoch notes
   through a :class:`~repro.serve.server.ModelServer`, and drain;
4. audit: every served response must be **bitwise** equal to the offline
   ``X @ w`` oracle for the weight version stamped on it, no request may be
   dropped because of a swap, staleness must fall at every swap, and
   consecutive versions must carry distinct fingerprints (the versions are
   really different weights, not re-publishes of one array).

Everything is derived from one seed; the report is reproducible to the byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import SolverConfig, train
from ..data import make_sparse_regression
from ..objectives.ridge import RidgeProblem
from ..obs import Tracer
from .server import ModelServer, PredictResponse, ServeConfig
from .snapshot import SnapshotHub, WeightSnapshot, serve_weights
from .traffic import EpochNote, RequestSource, SwapEvent, poisson_arrivals, replay

__all__ = ["ServeDemoReport", "train_to_serve"]


@dataclass
class ServeDemoReport:
    """Everything the demo proved, in one auditable bundle."""

    solver: str
    n_requests: int
    n_served: int
    n_shed: int
    versions_published: list[int]
    versions_served: list[int]
    #: responses whose scores differ from the offline oracle (must be empty)
    oracle_mismatches: list[int]
    #: staleness gauge right before and right after each applied swap
    staleness_at_swaps: list[tuple[int, int, int]]  # (version, before, after)
    #: CRC32 of each published version's weight bytes, in version order
    fingerprints: list[int]
    p50_latency_s: float
    p99_latency_s: float
    responses: list[PredictResponse] = field(repr=False, default_factory=list)
    hub: SnapshotHub | None = field(repr=False, default=None)
    tracer: Tracer | None = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        """The acceptance bar: >= 3 versions served, a clean oracle audit,
        staleness dropping at every swap, and consecutive versions with
        distinct fingerprints (each publish carries genuinely new weights)."""
        return (
            len(self.versions_served) >= 3
            and not self.oracle_mismatches
            and all(after < before for _, before, after in self.staleness_at_swaps)
            and all(
                a != b for a, b in zip(self.fingerprints, self.fingerprints[1:])
            )
        )


def _audit(
    responses: list[PredictResponse],
    hub: SnapshotHub,
    source_matrix,
) -> list[int]:
    """Request ids whose served scores are not bitwise the offline oracle."""
    bad: list[int] = []
    for resp in responses:
        if resp.shed:
            continue
        snap = hub.get(resp.weight_version)
        oracle = source_matrix.take_rows(resp.row_ids).matvec(snap.weights)
        if not np.array_equal(
            np.asarray(resp.scores, dtype=np.float64), oracle
        ):
            bad.append(resp.request_id)
    return bad


def train_to_serve(
    *,
    solver: str = "seq",
    formulation: str = "primal",
    n_epochs: int = 12,
    publish_every: int = 3,
    n_examples: int = 512,
    n_features: int = 128,
    lam: float = 1e-3,
    rate_hz: float = 2_000.0,
    duration_s: float = 1.0,
    seed: int = 0,
    serve_config: ServeConfig | None = None,
    tracer: Tracer | None = None,
) -> ServeDemoReport:
    """Train, publish, serve, audit — the end-to-end serving demo.

    Returns a :class:`ServeDemoReport`; ``report.ok`` is the acceptance
    check the CLI and CI smoke job assert on.
    """
    if publish_every < 1:
        raise ValueError("publish_every must be >= 1")
    if n_epochs < 3 * publish_every:
        raise ValueError(
            "need n_epochs >= 3 * publish_every to publish >= 3 versions"
        )
    tracer = tracer or Tracer()
    dataset = make_sparse_regression(
        n_examples, n_features, rng=np.random.default_rng(seed)
    )
    problem = RidgeProblem(dataset, lam)

    # -- 1. train, publishing snapshots from inside the callback ------------
    events = []
    snapshots: list[WeightSnapshot] = []

    def publish(ev) -> None:
        # snapshot here, not after train() returns: WeightSnapshot copies
        # the weight bytes while this epoch's values are current, so each
        # version is genuinely different (EpochEvent already hands us a
        # per-epoch copy, but the demo should not lean on that)
        events.append(ev)
        if ev.epoch % publish_every == 0:
            snapshots.append(
                WeightSnapshot(
                    version=len(snapshots) + 1,
                    weights=serve_weights(problem, ev.formulation, ev.weights),
                    epoch=ev.epoch,
                    published_at=ev.sim_time,
                    solver=ev.solver,
                )
            )

    result = train(
        problem,
        solver,
        config=SolverConfig(
            formulation=formulation, n_epochs=n_epochs, seed=seed
        ),
        on_epoch=publish,
    )
    if len(snapshots) < 3:
        raise RuntimeError(
            f"training published only {len(snapshots)} versions; "
            "raise n_epochs or lower publish_every"
        )

    # -- 2. lay the trainer timeline onto the serving window ----------------
    # epoch e of E lands at e/E of 90% of the window, so the last swap still
    # has traffic behind it to serve the freshest version
    span = 0.9 * duration_s
    at = lambda epoch: span * epoch / n_epochs  # noqa: E731

    first = snapshots[0]
    hub = SnapshotHub()
    server = ModelServer(
        None, hub=hub, config=serve_config or ServeConfig(), tracer=tracer
    )
    timeline: list = []
    for ev in events:
        timeline.append(EpochNote(at_s=at(ev.epoch), epoch=ev.epoch))
    for snap in snapshots:
        if snap is first:
            continue  # v1 is pre-loaded below, before traffic starts
        timeline.append(SwapEvent(at_s=at(snap.epoch), snapshot=snap))
    hub.publish(first)
    server.apply_swap(first, at=0.0)

    # -- 3. traffic + replay -----------------------------------------------
    arrivals = poisson_arrivals(rate_hz, duration_s, seed=seed)
    source = RequestSource(dataset.csr, seed=seed)
    timeline.extend(source.requests(arrivals))

    staleness_at_swaps: list[tuple[int, int, int]] = []
    orig_apply = server.apply_swap

    def apply_and_record(snapshot, at=None):
        before = hub.staleness_of(server._snapshot)
        orig_apply(snapshot, at=at)
        staleness_at_swaps.append(
            (snapshot.version, before, hub.staleness_of(snapshot))
        )

    server.apply_swap = apply_and_record
    responses = replay(server, timeline)

    # -- 4. audit -----------------------------------------------------------
    mismatches = _audit(responses, hub, dataset.csr)
    lat = tracer.metrics.histogram("serve.latency_s")
    served = [r for r in responses if not r.shed]
    return ServeDemoReport(
        solver=result.solver_name,
        n_requests=len(arrivals),
        n_served=len(served),
        n_shed=sum(1 for r in responses if r.shed),
        versions_published=hub.versions,
        versions_served=list(server.versions_served),
        oracle_mismatches=mismatches,
        staleness_at_swaps=staleness_at_swaps,
        fingerprints=[snap.fingerprint for snap in snapshots],
        p50_latency_s=lat.quantile(0.50) if lat else 0.0,
        p99_latency_s=lat.quantile(0.99) if lat else 0.0,
        responses=responses,
        hub=hub,
        tracer=tracer,
    )
