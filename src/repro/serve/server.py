"""The model server: micro-batched scoring with zero-downtime hot swap.

Scoring a linear model is one sparse matvec — cheap per row, dominated by
per-request overhead at production rates.  The server therefore runs an
admission queue in front of a single modelled scorer:

* **micro-batching** — a batch dispatches when ``max_batch`` requests are
  queued or the oldest has waited ``max_wait_s``, amortizing the batch
  overhead across rows (the same amortization argument as the paper's
  thread-block waves);
* **admission control** — the queue is bounded at ``queue_capacity``; under
  overload the shed policy either rejects the incoming request
  (``"reject-new"``) or drops the oldest queued one (``"drop-oldest"``).
  Shedding is the *only* way a request is ever dropped — weight swaps never
  cost a request;
* **hot swap** — the scorer captures the current
  :class:`~repro.serve.snapshot.WeightSnapshot` reference exactly once per
  batch, so every batch is scored entirely against one version and each
  response records the version (and byte fingerprint) that scored it.

Time is the **modelled clock**: external events (request arrivals, swap
notifications) carry modelled timestamps and must arrive in nondecreasing
order; service time comes from a per-row/per-nnz cost model, optionally
inflated by a seeded :class:`~repro.cluster.faults.FaultInjector` plan
(slow-scorer chaos reuses the straggler machinery, planned per batch).  This
makes millions-of-users arrival rates exactly reproducible — no wall-clock,
no threads, no flakes — while the queueing dynamics (backlog growth, shed
onset, p99 inflation) are real consequences of the arrival process.

Observability: every batch opens a ``serve.batch`` span and books its
modelled service seconds to the ``serve_score`` ledger component (so the
Chrome-trace conservation validator covers serving), and the server feeds
``serve.*`` counters, gauges and histograms — latency, queue depth, shed
count, staleness-of-served-weights — into the tracer's metrics registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..cluster.faults import FaultInjector
from ..obs import resolve_tracer
from ..sparse import CsrMatrix
from .snapshot import SnapshotHub, WeightSnapshot

__all__ = [
    "ServeConfig",
    "PredictRequest",
    "PredictResponse",
    "ModelServer",
]

#: shed policies: reject the arriving request vs drop the oldest queued one
SHED_POLICIES = ("reject-new", "drop-oldest")


@dataclass(frozen=True)
class ServeConfig:
    """Admission, batching and service-cost knobs for one server."""

    #: batch dispatches as soon as this many requests are queued
    max_batch: int = 32
    #: ... or once the oldest queued request has waited this long
    max_wait_s: float = 2e-3
    #: bounded admission queue; arrivals past this depth are shed
    queue_capacity: int = 256
    shed_policy: str = "reject-new"
    #: modelled service cost: fixed batch overhead + per row + per nonzero
    batch_overhead_s: float = 5e-5
    per_row_s: float = 2e-6
    per_nnz_s: float = 2e-8

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        for name in ("batch_overhead_s", "per_row_s", "per_nnz_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def service_seconds(self, n_rows: int, nnz: int) -> float:
        """Modelled fault-free service time of one batch."""
        return (
            self.batch_overhead_s
            + self.per_row_s * n_rows
            + self.per_nnz_s * nnz
        )


@dataclass
class PredictRequest:
    """One prediction request: feature rows arriving at a modelled time."""

    request_id: int
    rows: CsrMatrix
    arrival_s: float
    #: dataset row indices these rows were sampled from (oracle provenance)
    row_ids: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        return self.rows.shape[0]


@dataclass
class PredictResponse:
    """What the server returns: scores stamped with their weight version.

    Every non-shed response carries the ``weight_version`` (and the
    snapshot's byte ``fingerprint``) it was scored with, plus the staleness
    of that version — epochs the trainer was ahead at completion time.
    Shed responses carry no scores and ``shed=True``.
    """

    request_id: int
    arrival_s: float
    done_s: float
    scores: np.ndarray | None = None
    #: dataset row provenance copied from the request (oracle audits)
    row_ids: np.ndarray | None = None
    weight_version: int | None = None
    weight_fingerprint: int | None = None
    staleness_epochs: int | None = None
    shed: bool = False
    batch_index: int | None = None
    #: time spent queued before the batch dispatched
    queued_s: float = 0.0
    #: the batch's modelled service time (shared by its requests)
    service_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.done_s - self.arrival_s


@dataclass
class _InflightBatch:
    """A dispatched batch waiting for its modelled completion instant."""

    index: int
    done_s: float
    snapshot: WeightSnapshot
    requests: list = field(default_factory=list)
    scores: list = field(default_factory=list)
    dispatch_s: float = 0.0
    service_s: float = 0.0


class ModelServer:
    """Deterministic discrete-event model server on the modelled clock.

    Drive it by feeding time-ordered external events — :meth:`submit` for
    arrivals, :meth:`apply_swap` for weight publishes, :meth:`note_epoch`
    for trainer progress — then :meth:`drain` to run the backlog dry.
    Responses accumulate on :attr:`responses` in completion order.

    ``faults`` accepts a seeded
    :class:`~repro.cluster.faults.FaultInjector`; its per-batch plan's
    straggler multiplier models a slow scorer (GC pause, noisy neighbor).
    The server *degrades* under faults — queues grow, requests shed, stale
    weights keep serving — but never deadlocks and never drops a request
    because of a swap.
    """

    def __init__(
        self,
        snapshot: WeightSnapshot | None = None,
        *,
        hub: SnapshotHub | None = None,
        config: ServeConfig | None = None,
        faults: FaultInjector | None = None,
        tracer=None,
    ) -> None:
        self.config = config or ServeConfig()
        self.hub = hub
        self.tracer = resolve_tracer(tracer)
        self.ledger = self.tracer.open_ledger()
        self.faults = faults
        self._snapshot = snapshot if snapshot is not None else (
            hub.latest() if hub is not None else None
        )
        self._clock = 0.0
        self._queue: deque[PredictRequest] = deque()
        self._inflight: _InflightBatch | None = None
        self._batch_index = 0
        self.responses: list[PredictResponse] = []
        #: versions that actually scored at least one batch, in first-use order
        self.versions_served: list[int] = []
        self.swaps_applied = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def current_version(self) -> int | None:
        return self._snapshot.version if self._snapshot is not None else None

    def _to(self, t: float) -> float:
        if t < self._clock - 1e-12:
            raise ValueError(
                f"events must be fed in time order: {t} < clock {self._clock}"
            )
        return max(t, self._clock)

    # -- external events ---------------------------------------------------
    def submit(self, request: PredictRequest) -> None:
        """Admit (or shed) one arriving request at its modelled arrival time."""
        t = self._to(request.arrival_s)
        self._advance_to(t)
        if self._snapshot is None:
            raise RuntimeError("no model published: publish a snapshot first")
        self.tracer.count("serve.requests")
        if len(self._queue) >= self.config.queue_capacity:
            if self.config.shed_policy == "reject-new":
                self._shed(request, t)
                return
            # drop-oldest: the head has waited longest and is most likely
            # past its usefulness; shed it and admit the fresh arrival
            self._shed(self._queue.popleft(), t)
        self._queue.append(request)
        self._note_depth()
        # a batch that just filled dispatches at this very instant
        self._advance_to(self._clock)

    def apply_swap(self, snapshot: WeightSnapshot, at: float | None = None) -> None:
        """Install a new snapshot (the atomic reference swap, server side).

        A batch already dispatched keeps its captured snapshot; the next
        batch picks up the new one.  Never blocks, never sheds.
        """
        t = self._to(at if at is not None else self._clock)
        self._advance_to(t)
        if self._snapshot is not None and snapshot.version <= self._snapshot.version:
            raise ValueError(
                f"swap must increase the version: v{snapshot.version} after "
                f"v{self._snapshot.version}"
            )
        self._snapshot = snapshot
        self.swaps_applied += 1
        self.tracer.count("serve.swaps")
        self.tracer.gauge("serve.weight_version", snapshot.version)

    def note_epoch(self, epoch: int, at: float | None = None) -> None:
        """Record trainer progress (drives the staleness metric)."""
        t = self._to(at if at is not None else self._clock)
        self._advance_to(t)
        if self.hub is not None:
            self.hub.note_epoch(epoch)

    def advance_to(self, t: float) -> None:
        """Run the server forward to modelled time ``t``."""
        self._advance_to(self._to(t))

    def drain(self) -> list[PredictResponse]:
        """Process every queued and inflight request; returns all responses."""
        while True:
            due = self._next_event()
            if due is None:
                return self.responses
            self._advance_to(due)

    # -- internal event loop -----------------------------------------------
    def _next_event(self) -> float | None:
        if self._inflight is not None:
            return self._inflight.done_s
        if self._queue:
            if len(self._queue) >= self.config.max_batch:
                return self._clock
            return self._queue[0].arrival_s + self.config.max_wait_s
        return None

    def _advance_to(self, t: float) -> None:
        while True:
            due = self._next_event()
            if due is None or due > t:
                break
            self._clock = max(self._clock, due)
            if self._inflight is not None:
                self._complete(self._inflight)
                self._inflight = None
            else:
                self._dispatch()
        self._clock = max(self._clock, t)

    def _dispatch(self) -> None:
        cfg = self.config
        batch: list[PredictRequest] = []
        while self._queue and len(batch) < cfg.max_batch:
            batch.append(self._queue.popleft())
        self._note_depth()
        index = self._batch_index
        self._batch_index += 1
        # THE atomicity point: one snapshot reference per batch.  Every row
        # in this batch is scored against these (immutable) bytes, no matter
        # what swaps land while the batch is in flight.
        snapshot = self._snapshot
        n_rows = sum(r.n_rows for r in batch)
        nnz = sum(r.rows.nnz for r in batch)
        service_s = cfg.service_seconds(n_rows, nnz)
        if self.faults is not None:
            wf = self.faults.plan_epoch(index, 1)[0]
            if wf.straggler_multiplier > 1.0:
                service_s *= wf.straggler_multiplier
                self.tracer.count("serve.slow_batches")
        with self.tracer.span(
            "serve.batch", category="serve", batch=index,
            requests=len(batch), rows=n_rows, version=snapshot.version,
        ):
            self.ledger.add("serve_score", service_s)
            scores = [r.rows.matvec(snapshot.weights) for r in batch]
        if snapshot.version not in self.versions_served:
            self.versions_served.append(snapshot.version)
        self.tracer.count("serve.batches")
        self.tracer.count("serve.rows_scored", n_rows)
        self._inflight = _InflightBatch(
            index=index,
            done_s=self._clock + service_s,
            snapshot=snapshot,
            requests=batch,
            scores=scores,
            dispatch_s=self._clock,
            service_s=service_s,
        )

    def _complete(self, batch: _InflightBatch) -> None:
        staleness = (
            self.hub.staleness_of(batch.snapshot) if self.hub is not None else 0
        )
        self.tracer.observe("serve.staleness_epochs", staleness)
        self.tracer.gauge("serve.staleness_epochs", staleness)
        for req, scores in zip(batch.requests, batch.scores):
            resp = PredictResponse(
                request_id=req.request_id,
                arrival_s=req.arrival_s,
                done_s=batch.done_s,
                scores=scores,
                row_ids=req.row_ids,
                weight_version=batch.snapshot.version,
                weight_fingerprint=batch.snapshot.fingerprint,
                staleness_epochs=staleness,
                batch_index=batch.index,
                queued_s=batch.dispatch_s - req.arrival_s,
                service_s=batch.service_s,
            )
            self.responses.append(resp)
            self.tracer.count("serve.responses")
            self.tracer.observe("serve.latency_s", resp.latency_s)
            self.tracer.observe("serve.wait_s", resp.queued_s)

    def _shed(self, request: PredictRequest, t: float) -> None:
        self.tracer.count("serve.shed")
        self.responses.append(
            PredictResponse(
                request_id=request.request_id,
                arrival_s=request.arrival_s,
                done_s=t,
                row_ids=request.row_ids,
                shed=True,
            )
        )

    def _note_depth(self) -> None:
        depth = len(self._queue)
        self.tracer.gauge("serve.queue_depth", depth)
        self.tracer.observe("serve.queue_depth", depth)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        v = self.current_version
        return (
            f"ModelServer(v{v}, t={self._clock:.6g}s, "
            f"queue={len(self._queue)}, {len(self.responses)} responses)"
        )
