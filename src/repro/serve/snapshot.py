"""Versioned, immutable weight snapshots and the publish/subscribe hub.

The continuous-training loop the paper motivates (Section I: models must be
retrained "as frequently as possible" on fresh data) only pays off if the
*serving* side can pick up new weights without stopping.  The protocol here
makes that hand-off safe by construction:

* a :class:`WeightSnapshot` is **immutable** — the weight vector is copied at
  construction and marked read-only, and the snapshot carries a monotonically
  increasing ``version``, the training ``epoch`` that produced it, and a
  CRC32 ``fingerprint`` of the exact bytes, so any served response can be
  audited against the offline ``X @ w`` oracle for its recorded version;
* the :class:`SnapshotHub` publishes snapshots by **atomic reference swap**:
  a reader that captured a snapshot reference keeps scoring against those
  bytes no matter how many publishes happen meanwhile.  There is no lock and
  no copy on the read path — readers never block writers and vice versa;
* torn reads are impossible because nothing ever mutates a published
  snapshot; a "swap" is one Python attribute assignment, and the serving
  batch loop captures the reference exactly once per batch
  (:class:`~repro.serve.server.ModelServer`), so a batch is scored entirely
  on the old or entirely on the new version — never a mix.

The hub also tracks the trainer's frontier (:meth:`SnapshotHub.note_epoch`)
separately from what has been published, which is what makes
*staleness-of-served-weights* — epochs behind the trainer — measurable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "WeightSnapshot",
    "SnapshotHub",
    "serve_weights",
    "snapshot_from_result",
]


@dataclass(frozen=True)
class WeightSnapshot:
    """One immutable, versioned model the serving layer can score against.

    ``weights`` is always a float64 copy with the writeable flag cleared:
    mutating a published snapshot is a hard error, which is what makes the
    hub's lock-free reference swap safe.
    """

    version: int
    weights: np.ndarray
    #: training epoch that produced these weights
    epoch: int = 0
    #: modelled seconds on the publisher's clock when this was produced
    published_at: float = 0.0
    solver: str = ""
    #: CRC32 of the weight bytes — the audit handle for oracle replays
    fingerprint: int = field(default=0)

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError("snapshot version must be >= 1")
        w = np.ascontiguousarray(self.weights, dtype=np.float64).copy()
        w.flags.writeable = False
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "fingerprint", zlib.crc32(w.tobytes()))

    @property
    def n_features(self) -> int:
        return int(self.weights.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightSnapshot(v{self.version}, epoch={self.epoch}, "
            f"m={self.n_features}, crc={self.fingerprint:#010x})"
        )


def serve_weights(problem, formulation: str, weights: np.ndarray) -> np.ndarray:
    """Map a solver's model vector to the *serveable* primal weights.

    Dual ridge iterates live in example space and map through Eq. 5
    (``beta_from_alpha``); the SVM/logistic SDCA solvers and the primal
    formulations already maintain the primal model.
    """
    if formulation == "dual" and hasattr(problem, "beta_from_alpha"):
        return problem.beta_from_alpha(np.asarray(weights, dtype=np.float64))
    return np.asarray(weights, dtype=np.float64)


def snapshot_from_result(
    result, problem, *, version: int = 1, published_at: float = 0.0
) -> WeightSnapshot:
    """Snapshot a finished :class:`~repro.solvers.base.TrainResult`.

    The one-shot path: train to completion, publish the final model.  The
    continuous path publishes from ``on_epoch`` callbacks instead (see
    :func:`repro.serve.demo.train_to_serve`).
    """
    epoch = result.history.records[-1].epoch if result.history.records else 0
    return WeightSnapshot(
        version=version,
        weights=result.primal_weights(problem),
        epoch=epoch,
        published_at=published_at,
        solver=result.solver_name,
    )


class SnapshotHub:
    """Single-writer, many-reader snapshot store with atomic swap semantics.

    ``publish`` validates that versions strictly increase and that the
    feature dimension never changes, retains every published version (so
    responses can be audited against the exact weights that scored them),
    and fans the new snapshot out to subscribers.  ``latest`` is one
    attribute read — the whole hot-swap protocol on the read side.

    The *trainer frontier* (``trainer_epoch``) advances on every training
    epoch via :meth:`note_epoch`, even when no snapshot is published; the gap
    between the frontier and a served snapshot's ``epoch`` is the staleness
    the serving metrics report.
    """

    def __init__(self) -> None:
        self._latest: WeightSnapshot | None = None
        self._by_version: dict[int, WeightSnapshot] = {}
        self._subscribers: list[Callable[[WeightSnapshot], None]] = []
        #: highest training epoch the trainer has reported reaching
        self.trainer_epoch: int = 0

    # -- writer side --------------------------------------------------------
    def publish(self, snapshot: WeightSnapshot) -> WeightSnapshot:
        if self._latest is not None:
            if snapshot.version <= self._latest.version:
                raise ValueError(
                    f"snapshot versions must increase: got v{snapshot.version} "
                    f"after v{self._latest.version}"
                )
            if snapshot.n_features != self._latest.n_features:
                raise ValueError(
                    f"snapshot dimension changed: {snapshot.n_features} != "
                    f"{self._latest.n_features}"
                )
        self._by_version[snapshot.version] = snapshot
        self.trainer_epoch = max(self.trainer_epoch, snapshot.epoch)
        # the swap: one reference assignment, atomic for every reader
        self._latest = snapshot
        for notify in self._subscribers:
            notify(snapshot)
        return snapshot

    def note_epoch(self, epoch: int) -> None:
        """Advance the trainer frontier without publishing weights."""
        self.trainer_epoch = max(self.trainer_epoch, int(epoch))

    # -- reader side --------------------------------------------------------
    def latest(self) -> WeightSnapshot | None:
        return self._latest

    def get(self, version: int) -> WeightSnapshot:
        try:
            return self._by_version[version]
        except KeyError:
            raise KeyError(f"no published snapshot with version {version}") from None

    @property
    def versions(self) -> list[int]:
        return sorted(self._by_version)

    def staleness_of(self, snapshot: WeightSnapshot | None) -> int:
        """Epochs the trainer is ahead of ``snapshot`` (0 when fresh)."""
        if snapshot is None:
            return self.trainer_epoch
        return max(0, self.trainer_epoch - snapshot.epoch)

    def subscribe(self, notify: Callable[[WeightSnapshot], None]) -> None:
        """Register a callback invoked on every publish (delivery may be
        wrapped by the caller, e.g. to inject dropped notifications)."""
        self._subscribers.append(notify)

    def __len__(self) -> int:
        return len(self._by_version)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        v = self._latest.version if self._latest else 0
        return f"SnapshotHub(latest=v{v}, {len(self)} versions)"
