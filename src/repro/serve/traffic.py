"""Seeded open-loop traffic: Poisson and bursty arrival processes.

"Heavy traffic from millions of users" is an *open-loop* arrival process —
users do not wait for each other's responses — so the generators here
produce arrival timestamps independent of server state, on the modelled
clock.  Everything is derived from one ``numpy`` seed, so a traffic run is
bit-reproducible: the same seed yields the same arrival instants, the same
sampled feature rows, hence the same queueing trajectory, shed decisions and
latency histograms on every machine.  That determinism is what lets the
metric-contract tests pin p50/p99 outputs exactly.

* :func:`poisson_arrivals` — homogeneous Poisson process (i.i.d. exponential
  gaps) at ``rate_hz``;
* :func:`bursty_arrivals` — a two-state modulated Poisson process (calm /
  burst phases with exponential durations), the classic flash-crowd model:
  mean rate is modest but bursts exceed service capacity and exercise the
  admission queue and shed policy;
* :class:`RequestSource` — turns arrival instants into
  :class:`~repro.serve.server.PredictRequest`\\ s by sampling feature rows
  from a bound CSR matrix (provenance kept for oracle audits);
* :func:`replay` — feeds a time-ordered event stream (requests, swaps,
  trainer epoch notes) through a server and drains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..sparse import CsrMatrix
from .server import ModelServer, PredictRequest
from .snapshot import WeightSnapshot

__all__ = [
    "poisson_arrivals",
    "bursty_arrivals",
    "RequestSource",
    "SwapEvent",
    "EpochNote",
    "replay",
]

#: stream-derivation markers keeping arrival, burst and row sampling
#: independent of one another for one user-facing seed
_ARRIVALS_KEY = 0x7261FF1C
_PHASES_KEY = 0x62757273
_ROWS_KEY = 0x726F7773


def poisson_arrivals(
    rate_hz: float,
    duration_s: float,
    *,
    seed: int = 0,
    start_s: float = 0.0,
) -> np.ndarray:
    """Arrival instants of a Poisson process over ``[start, start+duration)``.

    Gaps are i.i.d. ``Exp(rate)``; the count is whatever the process yields
    (mean ``rate * duration``), not a fixed quota — open loop, not paced.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if duration_s < 0:
        raise ValueError("duration_s must be non-negative")
    if duration_s == 0:
        return np.empty(0)
    rng = np.random.default_rng([int(seed), _ARRIVALS_KEY])
    times: list[np.ndarray] = []
    t = 0.0
    # draw in blocks sized to the expected remaining count (plus slack)
    while t < duration_s:
        expect = max(16, int((duration_s - t) * rate_hz * 1.25))
        gaps = rng.exponential(1.0 / rate_hz, size=expect)
        block = t + np.cumsum(gaps)
        times.append(block)
        t = float(block[-1])
    out = np.concatenate(times)
    return start_s + out[out < duration_s]


def bursty_arrivals(
    calm_rate_hz: float,
    burst_rate_hz: float,
    duration_s: float,
    *,
    mean_calm_s: float = 0.1,
    mean_burst_s: float = 0.02,
    seed: int = 0,
    start_s: float = 0.0,
) -> np.ndarray:
    """Two-state modulated Poisson process: calm baseline, hot bursts.

    Phase durations are exponential (``mean_calm_s`` / ``mean_burst_s``);
    within a phase arrivals are Poisson at that phase's rate.  With
    ``burst_rate_hz`` above the server's service capacity this drives queue
    growth and shedding while the long-run average stays sustainable.
    """
    if calm_rate_hz <= 0 or burst_rate_hz <= 0:
        raise ValueError("rates must be positive")
    if mean_calm_s <= 0 or mean_burst_s <= 0:
        raise ValueError("phase durations must be positive")
    phase_rng = np.random.default_rng([int(seed), _PHASES_KEY])
    times: list[np.ndarray] = []
    t = 0.0
    burst = False
    phase_index = 0
    while t < duration_s:
        mean = mean_burst_s if burst else mean_calm_s
        rate = burst_rate_hz if burst else calm_rate_hz
        span = float(phase_rng.exponential(mean))
        end = min(t + span, duration_s)
        if end > t:
            block = poisson_arrivals(
                rate, end - t, seed=seed * 1_000_003 + phase_index, start_s=t
            )
            if block.size:
                times.append(block)
        t = end
        burst = not burst
        phase_index += 1
    if not times:
        return np.empty(0)
    return start_s + np.concatenate(times)


class RequestSource:
    """Samples feature rows from a bound matrix into prediction requests."""

    def __init__(
        self,
        matrix: CsrMatrix,
        *,
        seed: int = 0,
        rows_per_request: int = 1,
    ) -> None:
        if rows_per_request < 1:
            raise ValueError("rows_per_request must be >= 1")
        self.matrix = matrix
        self.rows_per_request = int(rows_per_request)
        self._rng = np.random.default_rng([int(seed), _ROWS_KEY])
        self._next_id = 0

    def requests(self, arrival_times: Sequence[float]) -> list[PredictRequest]:
        """One request per arrival instant, rows sampled with replacement."""
        out: list[PredictRequest] = []
        n = self.matrix.shape[0]
        for t in arrival_times:
            row_ids = self._rng.integers(0, n, size=self.rows_per_request)
            out.append(
                PredictRequest(
                    request_id=self._next_id,
                    rows=self.matrix.take_rows(row_ids),
                    arrival_s=float(t),
                    row_ids=row_ids,
                )
            )
            self._next_id += 1
        return out


@dataclass(frozen=True)
class SwapEvent:
    """A weight publish reaching the server at a modelled instant."""

    at_s: float
    snapshot: WeightSnapshot
    #: chaos hook: a dropped notification never reaches the server (it keeps
    #: serving the previous version; the hub still knows the truth)
    dropped: bool = False


@dataclass(frozen=True)
class EpochNote:
    """Trainer progress (no weights) reaching the hub at a modelled instant."""

    at_s: float
    epoch: int


def replay(
    server: ModelServer,
    events: Iterable[PredictRequest | SwapEvent | EpochNote],
) -> list:
    """Feed a time-ordered event stream through ``server`` and drain it.

    Events are sorted by timestamp with publishes/notes winning ties against
    arrivals (a swap landing "at the same instant" as a request is visible
    to that request's batch, matching the atomic-reference semantics).
    Dropped swap notifications count into ``serve.swap_dropped`` and are
    otherwise invisible to the server — exactly a lost notification.
    """

    def when(ev) -> tuple[float, int]:
        if isinstance(ev, (SwapEvent, EpochNote)):
            return (ev.at_s, 0)
        return (ev.arrival_s, 1)

    for ev in sorted(events, key=when):
        if isinstance(ev, SwapEvent):
            # the publish itself always lands on the hub (the trainer did
            # produce the version); only the server's notification can drop
            if server.hub is not None:
                server.hub.publish(ev.snapshot)
            if ev.dropped:
                server.tracer.count("serve.swap_dropped")
                continue
            server.apply_swap(ev.snapshot, at=ev.at_s)
        elif isinstance(ev, EpochNote):
            server.note_epoch(ev.epoch, at=ev.at_s)
        else:
            server.submit(ev)
    return server.drain()
