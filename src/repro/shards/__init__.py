"""repro.shards — out-of-core sharded dataset store.

Packs a :class:`~repro.data.Dataset` into contiguous on-disk shards
(:mod:`.format`), serves them lazily with integrity checks and injectable
read faults (:mod:`.store`), keeps a byte-budgeted LRU residency optionally
backed by simulated GPU memory (:mod:`.cache`), reads ahead on a background
thread (:mod:`.prefetch`), and bills every disk read as a modelled
host→device transfer so streaming cost lands in the
:class:`~repro.perf.ledger.TimeLedger` (:mod:`.streaming`).

The design contract: out-of-core training is **bit-identical** to in-memory
training.  Shards are contiguous major-axis slices, worker groups are
contiguous shard runs, and streaming only adds modelled time — it never
touches solver random streams or data values.
"""

from .cache import CacheLookup, ShardCache
from .format import (
    MANIFEST_NAME,
    SHARD_SCHEMA,
    ShardManifest,
    ShardMeta,
    load_manifest,
    pack_dataset,
)
from .prefetch import Prefetcher
from .store import Shard, ShardHandle, ShardReadError, ShardStore
from .streaming import ShardingConfig, ShardStreamer

__all__ = [
    "SHARD_SCHEMA",
    "MANIFEST_NAME",
    "ShardMeta",
    "ShardManifest",
    "pack_dataset",
    "load_manifest",
    "ShardHandle",
    "Shard",
    "ShardStore",
    "ShardReadError",
    "ShardCache",
    "CacheLookup",
    "Prefetcher",
    "ShardingConfig",
    "ShardStreamer",
]
