"""Byte-budgeted LRU cache over a :class:`~repro.shards.store.ShardStore`.

The cache is what turns the shard store into an *out-of-core* data path: a
worker touches its shards every epoch, but only as many as fit the budget
stay resident — the rest are re-read (and re-billed as host→device
transfers) on the next pass, exactly the regime the paper's 40 GB criteo
sample forces on a 12 GB Titan X.

Two budget modes:

* **byte budget** — a plain ``budget_bytes`` ceiling on billed resident
  bytes (host-RAM streaming, or a fixed slice of device memory);
* **device-backed** — ``attach_device(DeviceMemory)`` registers every
  resident shard as a named allocation on the simulated GPU, so residency
  competes with the solver's vectors and the budget check is the device's
  ``bytes_free``.  Eviction frees the allocation; an individual shard larger
  than the whole device still raises ``GpuOutOfMemoryError``, preserving
  the paper's memory gate.

Billing uses ``byte_scale`` to price the scaled-down reproduction data at
paper-scale footprints (e.g. a few-MB synthetic criteo billed as 40 GB).

Thread-safety: :meth:`fetch` may be called concurrently by the training
thread and a :class:`~repro.shards.prefetch.Prefetcher`.  A per-shard
in-flight latch deduplicates concurrent loads of the same shard.  Only the
*foreground* path opens tracer spans (the span stack is single-threaded by
design); metric counters are plain dict updates and safe from both sides.

Accounting semantics (deterministic with or without prefetch):

* ``shards.cache.miss`` counts disk reads, wherever they run;
* a prefetched shard is inserted *fresh* — the first foreground fetch of a
  fresh entry reports ``loaded=True`` so the streaming model bills its
  transfer exactly once, same as an unprefetched miss;
* ``shards.cache.hit`` counts foreground fetches served warm (non-fresh).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs import NULL_TRACER
from .store import Shard, ShardStore

__all__ = ["ShardCache", "CacheLookup"]


@dataclass
class CacheLookup:
    """Outcome of one :meth:`ShardCache.fetch`."""

    shard: Shard
    #: served from residency (False = this call went to disk)
    hit: bool
    #: this fetch consumed a disk read the caller should bill (a miss, or
    #: the first foreground touch of a prefetched shard)
    loaded: bool
    #: transient read failures survived by the billed load
    read_failures: int = 0


@dataclass
class _Entry:
    shard: Shard
    billed: int
    #: inserted by the prefetcher and not yet consumed by the foreground
    fresh: bool = False
    read_failures: int = 0


class ShardCache:
    """LRU residency of materialized shards under a byte budget."""

    def __init__(
        self,
        store: ShardStore,
        *,
        budget_bytes: int | None = None,
        byte_scale: float = 1.0,
        tracer=None,
    ) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        if byte_scale <= 0:
            raise ValueError("byte_scale must be positive")
        self.store = store
        self.budget_bytes = budget_bytes
        self.byte_scale = float(byte_scale)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._device = None  # DeviceMemory once attached
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: dict[int, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- budget ------------------------------------------------------------
    def billed_bytes(self, shard_id: int) -> int:
        """Bytes a shard is billed at (actual payload x ``byte_scale``)."""
        return int(round(self.store.handles[shard_id].nbytes * self.byte_scale))

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return sum(e.billed for e in self._entries.values())

    def attach_device(self, device_memory) -> None:
        """Back residency with a simulated GPU's ``DeviceMemory``.

        Must be attached while empty (attach right after the solver binds,
        before the first epoch streams), so every resident shard has a
        matching device allocation.
        """
        with self._lock:
            if self._entries:
                raise RuntimeError("attach_device requires an empty cache")
            self._device = device_memory

    def _fits(self, billed: int) -> bool:
        if self._device is not None:
            return billed <= self._device.bytes_free
        if self.budget_bytes is not None:
            return self.used_bytes + billed <= self.budget_bytes
        return True

    # -- core --------------------------------------------------------------
    def fetch(self, shard_id: int, *, background: bool = False) -> CacheLookup:
        """Return the shard, loading and caching it if necessary.

        ``background=True`` marks a prefetcher call: the load is counted as
        a miss and inserted fresh, but no tracer spans are opened and no hit
        is recorded.
        """
        shard_id = int(shard_id)
        while True:
            with self._lock:
                entry = self._entries.get(shard_id)
                if entry is not None:
                    self._entries.move_to_end(shard_id)
                    if background:
                        return CacheLookup(entry.shard, hit=True, loaded=False)
                    if entry.fresh:
                        # first foreground touch of a prefetched shard: the
                        # disk read already happened, bill its transfer now
                        entry.fresh = False
                        return CacheLookup(
                            entry.shard,
                            hit=True,
                            loaded=True,
                            read_failures=entry.read_failures,
                        )
                    self.hits += 1
                    self.tracer.count("shards.cache.hit")
                    return CacheLookup(entry.shard, hit=True, loaded=False)
                latch = self._inflight.get(shard_id)
                if latch is None:
                    self._inflight[shard_id] = latch = threading.Event()
                    break  # this thread owns the load
            # another thread is loading this shard: wait, then re-check
            latch.wait()

        try:
            shard = self._load(shard_id, background=background)
        finally:
            with self._lock:
                self._inflight.pop(shard_id).set()
        return CacheLookup(
            shard,
            hit=False,
            loaded=not background,
            read_failures=shard.read_failures,
        )

    def _load(self, shard_id: int, *, background: bool) -> Shard:
        billed = self.billed_bytes(shard_id)
        span = (
            NULL_TRACER.span("")
            if background
            else self.tracer.span(
                "shard.load",
                category="shards",
                shard=shard_id,
                nbytes=billed,
            )
        )
        with span:
            shard = self.store.read(shard_id)
        with self._lock:
            # counters are read-modify-write: keep them under the lock so
            # concurrent prefetch/foreground loads of different shards
            # cannot lose increments
            self.misses += 1
            self.tracer.count("shards.cache.miss")
            self.tracer.count("shards.cache.bytes_read", billed)
            self._evict_until_fits(billed, background=background)
            if self._fits(billed):
                if self._device is not None:
                    self._device.alloc(self._buffer_name(shard_id), billed)
                self._entries[shard_id] = _Entry(
                    shard=shard,
                    billed=billed,
                    fresh=background,
                    read_failures=shard.read_failures,
                )
            # else: shard larger than the whole budget — serve it transient
            self.tracer.gauge("shards.cache.bytes", self.used_bytes)
        return shard

    def _buffer_name(self, shard_id: int) -> str:
        return f"shard:{self.store.manifest.name}:{shard_id}"

    def _evict_until_fits(self, billed: int, *, background: bool) -> None:
        """Drop LRU entries (lock held) until ``billed`` fits the budget."""
        while self._entries and not self._fits(billed):
            victim_id, victim = self._entries.popitem(last=False)
            if self._device is not None:
                self._device.free(self._buffer_name(victim_id))
            self.evictions += 1
            self.tracer.count("shards.cache.evict")
            if not background:
                with self.tracer.span(
                    "shard.evict",
                    category="shards",
                    shard=victim_id,
                    nbytes=victim.billed,
                ):
                    pass

    # -- maintenance -------------------------------------------------------
    def contains(self, shard_id: int) -> bool:
        with self._lock:
            return int(shard_id) in self._entries

    def clear(self) -> None:
        with self._lock:
            if self._device is not None:
                for shard_id in self._entries:
                    self._device.free(self._buffer_name(shard_id))
            self._entries.clear()
            self.tracer.gauge("shards.cache.bytes", 0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "resident": len(self._entries),
                "used_bytes": sum(e.billed for e in self._entries.values()),
            }
