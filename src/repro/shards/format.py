"""On-disk shard format: packing, manifest schema, integrity checks.

A *shard set* is a directory holding contiguous major-axis slices of one
compressed matrix — rows of the CSR layout (dual coordinates / examples) or
columns of the CSC layout (primal coordinates / features) — one uncompressed
``.npz`` per shard plus a JSON manifest describing the whole set:

.. code-block:: text

    shardset/
        shardset.manifest.json      # schema repro.shards/v1
        labels.npy                  # the full label vector, stored once
        shard-0000.npz              # indptr / indices / data of slice 0
        shard-0001.npz
        ...

Contiguity is the load-bearing property: re-concatenating a run of shards
reproduces ``matrix.take_major(arange(start, stop))`` *bit-exactly*, which is
what lets out-of-core training promise bit-identical trajectories to the
in-memory path.  Shards are cut to near-equal byte sizes (not equal
coordinate counts) so the streaming cost per shard is balanced.

Each shard records a CRC-32 over its three arrays so a corrupted or
truncated file is detected at read time rather than silently training on
garbage.  Shard files use uncompressed ``np.savez``: members of an ``.npz``
are only decoded when accessed, so opening an archive is cheap and the cost
of a shard read is proportional to the arrays actually pulled.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data.dataset import Dataset
from ..sparse import CscMatrix, CsrMatrix

__all__ = [
    "SHARD_SCHEMA",
    "MANIFEST_NAME",
    "LABELS_NAME",
    "ShardMeta",
    "ShardManifest",
    "pack_dataset",
    "load_manifest",
]

#: manifest schema identifier (bump on incompatible layout changes)
SHARD_SCHEMA = "repro.shards/v1"

#: fixed manifest filename inside a shard-set directory
MANIFEST_NAME = "shardset.manifest.json"

#: fixed filename of the label vector (stored once, not per shard)
LABELS_NAME = "labels.npy"

#: index/data dtypes a v1 shard set stores (matches ``repro.sparse``)
_INDEX_DTYPE = np.int64


def _crc_arrays(*arrays: np.ndarray) -> int:
    """CRC-32 chained over the raw bytes of ``arrays`` (order-sensitive)."""
    crc = 0
    for arr in arrays:
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc & 0xFFFFFFFF


@dataclass(frozen=True)
class ShardMeta:
    """Manifest entry for one shard: its slice, size, file and checksum."""

    shard_id: int
    start: int  # first major-axis index (inclusive)
    stop: int  # one past the last major-axis index
    nnz: int
    nbytes: int  # indptr + indices + data payload bytes
    path: str  # filename relative to the shard-set root
    crc32: int

    @property
    def n_major(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "start": self.start,
            "stop": self.stop,
            "nnz": self.nnz,
            "nbytes": self.nbytes,
            "path": self.path,
            "crc32": self.crc32,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardMeta":
        return cls(
            shard_id=int(d["shard_id"]),
            start=int(d["start"]),
            stop=int(d["stop"]),
            nnz=int(d["nnz"]),
            nbytes=int(d["nbytes"]),
            path=str(d["path"]),
            crc32=int(d["crc32"]),
        )


@dataclass(frozen=True)
class ShardManifest:
    """The JSON manifest describing one packed shard set."""

    name: str
    axis: str  # "rows" (CSR slices) or "cols" (CSC slices)
    shape: tuple[int, int]
    dtype: str  # value dtype of the data arrays
    total_nbytes: int  # sum of per-shard payload bytes
    shards: tuple[ShardMeta, ...]
    meta: dict

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_major(self) -> int:
        """Major-axis length: rows for ``rows`` shard sets, columns for ``cols``."""
        return self.shape[0] if self.axis == "rows" else self.shape[1]

    def to_dict(self) -> dict:
        return {
            "schema": SHARD_SCHEMA,
            "name": self.name,
            "axis": self.axis,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "index_dtype": np.dtype(_INDEX_DTYPE).name,
            "labels_path": LABELS_NAME,
            "total_nbytes": self.total_nbytes,
            "n_shards": self.n_shards,
            "shards": [s.to_dict() for s in self.shards],
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardManifest":
        schema = d.get("schema")
        if schema != SHARD_SCHEMA:
            raise ValueError(
                f"unsupported shard manifest schema {schema!r} "
                f"(expected {SHARD_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            axis=str(d["axis"]),
            shape=(int(d["shape"][0]), int(d["shape"][1])),
            dtype=str(d["dtype"]),
            total_nbytes=int(d["total_nbytes"]),
            shards=tuple(ShardMeta.from_dict(s) for s in d["shards"]),
            meta=dict(d.get("meta", {})),
        )


def _shard_boundaries(matrix, n_shards: int) -> list[tuple[int, int]]:
    """Cut the major axis into ``n_shards`` contiguous, byte-balanced runs.

    Per-coordinate payload cost is one ``indptr`` slot plus the entry bytes
    of its nonzeros; cuts land at the byte quantiles of the cumulative cost,
    then are repaired to keep every shard non-empty.
    """
    n_major = matrix.n_major
    if not 1 <= n_shards <= n_major:
        raise ValueError(
            f"cannot cut {n_major} coordinates into {n_shards} shards"
        )
    itemsize = matrix.data.dtype.itemsize
    per_coord = matrix.major_nnz().astype(np.float64) * (
        _INDEX_DTYPE().itemsize + itemsize
    ) + _INDEX_DTYPE().itemsize
    cum = np.cumsum(per_coord)
    targets = cum[-1] * np.arange(1, n_shards) / n_shards
    cuts = np.searchsorted(cum, targets, side="left") + 1
    # repair: strictly increasing interior cuts within [1, n_major - 1]
    cuts = np.clip(cuts, 1, n_major - 1)
    for i in range(1, cuts.shape[0]):
        if cuts[i] <= cuts[i - 1]:
            cuts[i] = cuts[i - 1] + 1
    for i in range(cuts.shape[0] - 2, -1, -1):
        limit = n_major - (cuts.shape[0] - i)
        if cuts[i] > limit:
            cuts[i] = limit
    bounds = [0, *(int(c) for c in cuts), n_major]
    return [(bounds[k], bounds[k + 1]) for k in range(n_shards)]


def pack_dataset(
    dataset: Dataset,
    out_dir: str | Path,
    *,
    axis: str = "rows",
    n_shards: int | None = None,
    target_shard_bytes: int | None = None,
) -> ShardManifest:
    """Pack ``dataset`` into an on-disk shard set under ``out_dir``.

    Parameters
    ----------
    axis:
        ``"rows"`` slices the CSR layout (by example — the dual / by-example
        partitioning of the paper); ``"cols"`` slices the CSC layout (by
        feature — the primal partitioning).
    n_shards:
        Number of shards; mutually exclusive with ``target_shard_bytes``.
    target_shard_bytes:
        Aim for shards of roughly this payload size (the count is derived).
        Defaults to 8 shards when neither argument is given.
    """
    if axis not in ("rows", "cols"):
        raise ValueError(f"axis must be 'rows' or 'cols', got {axis!r}")
    if n_shards is not None and target_shard_bytes is not None:
        raise ValueError("pass n_shards or target_shard_bytes, not both")
    matrix = dataset.csr if axis == "rows" else dataset.csc
    if target_shard_bytes is not None:
        if target_shard_bytes <= 0:
            raise ValueError("target_shard_bytes must be positive")
        n_shards = max(1, -(-matrix.nbytes // int(target_shard_bytes)))
    n_shards = min(n_shards or 8, matrix.n_major)

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    np.save(out / LABELS_NAME, dataset.y)

    metas: list[ShardMeta] = []
    for shard_id, (start, stop) in enumerate(_shard_boundaries(matrix, n_shards)):
        lo, hi = int(matrix.indptr[start]), int(matrix.indptr[stop])
        indptr = (matrix.indptr[start : stop + 1] - matrix.indptr[start]).astype(
            _INDEX_DTYPE
        )
        indices = matrix.indices[lo:hi]
        data = matrix.data[lo:hi]
        fname = f"shard-{shard_id:04d}.npz"
        # uncompressed savez: npz members decode lazily, so shard opens are
        # cheap and read cost tracks the arrays actually accessed
        np.savez(out / fname, indptr=indptr, indices=indices, data=data)
        metas.append(
            ShardMeta(
                shard_id=shard_id,
                start=start,
                stop=stop,
                nnz=hi - lo,
                nbytes=indptr.nbytes + indices.nbytes + data.nbytes,
                path=fname,
                crc32=_crc_arrays(indptr, indices, data),
            )
        )

    manifest = ShardManifest(
        name=dataset.name,
        axis=axis,
        shape=matrix.shape,
        dtype=matrix.data.dtype.name,
        total_nbytes=sum(m.nbytes for m in metas),
        shards=tuple(metas),
        meta=dict(dataset.meta),
    )
    (out / MANIFEST_NAME).write_text(
        json.dumps(manifest.to_dict(), indent=1, default=str) + "\n", "utf-8"
    )
    return manifest


def load_manifest(root: str | Path) -> ShardManifest:
    """Read and validate the manifest of a packed shard set."""
    path = Path(root) / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(f"{root}: not a shard set (no {MANIFEST_NAME})")
    manifest = ShardManifest.from_dict(json.loads(path.read_text("utf-8")))
    if manifest.axis not in ("rows", "cols"):
        raise ValueError(f"{path}: invalid axis {manifest.axis!r}")
    starts = [s.start for s in manifest.shards]
    stops = [s.stop for s in manifest.shards]
    if (
        not manifest.shards
        or starts[0] != 0
        or stops[-1] != manifest.n_major
        or any(a != b for a, b in zip(stops[:-1], starts[1:]))
    ):
        raise ValueError(f"{path}: shards do not tile the major axis")
    return manifest


# re-export for matrix reconstruction in store.py
MATRIX_CLS = {"rows": CsrMatrix, "cols": CscMatrix}
