"""Background-thread shard readahead.

A :class:`Prefetcher` owns one daemon thread that pulls shard ids off a
queue and loads them into a :class:`~repro.shards.cache.ShardCache` with
``background=True`` — no tracer spans (the span stack is single-threaded),
counters only.  The streaming layer drives it double-buffered: while the
solver trains on shard *i*, shard *i+1* is read, so the modelled epoch cost
overlaps streaming with compute.

Read errors in the background are swallowed and recorded: the foreground
fetch of that shard simply misses and performs its own (retried, fault-
planned) synchronous read, which is where failures are allowed to surface.
"""

from __future__ import annotations

import queue
import threading

from .cache import ShardCache

__all__ = ["Prefetcher"]

#: queue sentinel shutting the worker thread down
_STOP = object()


class Prefetcher:
    """Single background thread feeding a :class:`ShardCache`."""

    def __init__(self, cache: ShardCache, *, name: str = "shard-prefetch") -> None:
        self.cache = cache
        self.errors: list[Exception] = []
        self._queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._closed = False
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self.cache.fetch(int(item), background=True)
            except Exception as exc:  # surfaced via the foreground retry
                self.errors.append(exc)
            finally:
                self._queue.task_done()

    def schedule(self, shard_ids) -> None:
        """Enqueue shards for background loading (FIFO)."""
        if self._closed:
            raise RuntimeError("prefetcher is closed")
        for shard_id in shard_ids:
            self._queue.put(int(shard_id))

    def wait(self) -> None:
        """Block until every scheduled load has been attempted."""
        self._queue.join()

    def close(self) -> None:
        """Drain and stop the worker thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
