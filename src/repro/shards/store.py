"""Shard store: lazy reads, integrity checks, assembly, fault injection.

A :class:`ShardStore` opens a packed shard set (see :mod:`.format`) and
serves individual shards on demand.  Nothing is materialized up front: a
:class:`ShardHandle` is a cheap descriptor (slice, byte size, file path),
and the arrays only leave disk when :meth:`ShardStore.read` is called —
via ``np.load(..., mmap_mode="r")``, whose archive members decode lazily.

Reads are the unit of fault injection: when the store carries a
:class:`~repro.cluster.faults.FaultInjector` with a nonzero
``shard_read_failure_rate``, each read deterministically draws a number of
transient I/O failures from ``(seed, shard_id, read_index)``.  Failures
within the :class:`~repro.cluster.faults.RetryPolicy` budget are retried
(the caller bills their modelled cost); past the budget the read raises
:class:`ShardReadError`.  Keying the draw on the *per-shard* read count —
not a global counter — keeps fault schedules identical however reads
interleave across prefetch threads.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..cluster.faults import (
    DEFAULT_RETRY,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    make_fault_injector,
)
from ..data.dataset import Dataset
from ..sparse import CscMatrix, CsrMatrix
from .format import (
    LABELS_NAME,
    MATRIX_CLS,
    ShardManifest,
    ShardMeta,
    _crc_arrays,
    load_manifest,
)

__all__ = ["ShardHandle", "Shard", "ShardStore", "ShardReadError"]


class ShardReadError(RuntimeError):
    """A shard read failed more times than the retry policy tolerates."""


@dataclass(frozen=True)
class ShardHandle:
    """Descriptor of one shard: everything but the data itself."""

    meta: ShardMeta
    path: Path
    axis: str
    shape: tuple[int, int]  # shape of the shard's matrix slice

    @property
    def shard_id(self) -> int:
        return self.meta.shard_id

    @property
    def nbytes(self) -> int:
        """Payload bytes — the unit the cache budget and PCIe model price."""
        return self.meta.nbytes

    def coords(self) -> np.ndarray:
        """The global major-axis indices this shard covers."""
        return np.arange(self.meta.start, self.meta.stop, dtype=np.int64)


@dataclass
class Shard:
    """One materialized shard: its handle, matrix slice, and read cost."""

    handle: ShardHandle
    matrix: CscMatrix | CsrMatrix
    #: transient failures the read survived (0 on a clean read); the caller
    #: bills their retry cost through the RetryPolicy
    read_failures: int = 0

    @property
    def shard_id(self) -> int:
        return self.handle.shard_id


class ShardStore:
    """Read access to one packed shard set.

    Parameters
    ----------
    root:
        Directory containing ``shardset.manifest.json`` and the shard files.
    faults:
        Optional fault injection (injector, spec, or scenario name); only
        the ``shard_read_failure_rate`` applies to reads.
    retry:
        Policy deciding when repeated read failures become fatal.
    verify_checksums:
        When True every read re-computes the CRC-32 and raises
        :class:`ShardReadError` on mismatch (used by ``repro shards info``
        and the round-trip tests; off by default in the training hot path).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        faults: FaultInjector | FaultSpec | str | None = None,
        retry: RetryPolicy = DEFAULT_RETRY,
        verify_checksums: bool = False,
    ) -> None:
        self.root = Path(root)
        self.manifest: ShardManifest = load_manifest(self.root)
        self.retry = retry
        self.faults = make_fault_injector(faults)
        self.verify_checksums = bool(verify_checksums)
        self.handles: list[ShardHandle] = [
            ShardHandle(
                meta=meta,
                path=self.root / meta.path,
                axis=self.manifest.axis,
                shape=self._slice_shape(meta),
            )
            for meta in self.manifest.shards
        ]
        self._y: np.ndarray | None = None
        # per-shard read counters drive the deterministic fault schedule;
        # the lock keeps them exact under concurrent prefetch reads
        self._read_counts: dict[int, int] = defaultdict(int)
        self._lock = threading.Lock()

    # -- geometry ----------------------------------------------------------
    @property
    def axis(self) -> str:
        return self.manifest.axis

    @property
    def shape(self) -> tuple[int, int]:
        return self.manifest.shape

    @property
    def n_shards(self) -> int:
        return self.manifest.n_shards

    @property
    def n_major(self) -> int:
        return self.manifest.n_major

    @property
    def total_nbytes(self) -> int:
        return self.manifest.total_nbytes

    def _slice_shape(self, meta: ShardMeta) -> tuple[int, int]:
        n_rows, n_cols = self.manifest.shape
        if self.manifest.axis == "rows":
            return (meta.stop - meta.start, n_cols)
        return (n_rows, meta.stop - meta.start)

    @property
    def y(self) -> np.ndarray:
        """The full label vector (loaded once, cached)."""
        if self._y is None:
            self._y = np.load(self.root / LABELS_NAME)
        return self._y

    # -- reads -------------------------------------------------------------
    def read(self, shard_id: int) -> Shard:
        """Materialize one shard from disk (the cache-miss path)."""
        handle = self.handles[shard_id]
        failures = 0
        if self.faults is not None and not self.faults.is_null:
            with self._lock:
                read_index = self._read_counts[shard_id]
                self._read_counts[shard_id] += 1
            failures = self.faults.plan_shard_read(shard_id, read_index)
            if self.retry.exhausted(failures):
                raise ShardReadError(
                    f"shard {shard_id} of {self.manifest.name!r}: read failed "
                    f"{failures} times (retry budget {self.retry.max_retries})"
                )
        with np.load(handle.path, mmap_mode="r") as archive:
            indptr = np.asarray(archive["indptr"])
            indices = np.asarray(archive["indices"])
            data = np.asarray(archive["data"])
        if self.verify_checksums:
            crc = _crc_arrays(indptr, indices, data)
            if crc != handle.meta.crc32:
                raise ShardReadError(
                    f"shard {shard_id} of {self.manifest.name!r}: checksum "
                    f"mismatch (manifest {handle.meta.crc32:#010x}, "
                    f"file {crc:#010x})"
                )
        cls = MATRIX_CLS[self.manifest.axis]
        matrix = cls(handle.shape, indptr, indices, data, check=False)
        return Shard(handle=handle, matrix=matrix, read_failures=failures)

    # -- grouping / assembly ------------------------------------------------
    def coords_of(self, shard_ids) -> np.ndarray:
        """Global major-axis indices covered by ``shard_ids``, in order."""
        return np.concatenate(
            [self.handles[int(s)].coords() for s in shard_ids]
        )

    def partition(self, n_parts: int) -> list[list[int]]:
        """Cut the shard list into ``n_parts`` contiguous, byte-balanced runs.

        Each part is a run of consecutive shard ids, so a worker's local
        matrix is a contiguous major-axis slice — the property that keeps
        shard-fed training bit-identical to ``take_major`` on the in-memory
        matrix.
        """
        if not 1 <= n_parts <= self.n_shards:
            raise ValueError(
                f"cannot split {self.n_shards} shards into {n_parts} parts"
            )
        sizes = np.asarray([h.nbytes for h in self.handles], dtype=np.float64)
        cum = np.cumsum(sizes)
        targets = cum[-1] * np.arange(1, n_parts) / n_parts
        cuts = np.searchsorted(cum, targets, side="left") + 1
        cuts = np.clip(cuts, 1, self.n_shards - 1)
        for i in range(1, cuts.shape[0]):
            if cuts[i] <= cuts[i - 1]:
                cuts[i] = cuts[i - 1] + 1
        for i in range(cuts.shape[0] - 2, -1, -1):
            limit = self.n_shards - (cuts.shape[0] - i)
            if cuts[i] > limit:
                cuts[i] = limit
        bounds = [0, *(int(c) for c in cuts), self.n_shards]
        return [
            list(range(bounds[k], bounds[k + 1])) for k in range(n_parts)
        ]

    def assemble(
        self, shard_ids, *, reader=None
    ) -> tuple[CscMatrix | CsrMatrix, int]:
        """Concatenate a *contiguous* run of shards into one matrix slice.

        Returns the matrix plus the total transient read failures survived.
        ``reader`` overrides the per-shard fetch (e.g. to route through a
        cache); it must return a :class:`Shard`.
        """
        ids = [int(s) for s in shard_ids]
        if not ids:
            raise ValueError("cannot assemble an empty shard group")
        for a, b in zip(ids[:-1], ids[1:]):
            if b != a + 1:
                raise ValueError(
                    f"shard group must be contiguous, got {ids}"
                )
        reader = reader or self.read
        shards = [reader(s) for s in ids]
        failures = sum(s.read_failures for s in shards)
        if len(shards) == 1:
            return shards[0].matrix, failures
        mats = [s.matrix for s in shards]
        offsets = np.cumsum([0] + [m.indptr[-1] for m in mats[:-1]])
        indptr = np.concatenate(
            [mats[0].indptr[:1]]
            + [m.indptr[1:] + off for m, off in zip(mats, offsets)]
        )
        indices = np.concatenate([m.indices for m in mats])
        data = np.concatenate([m.data for m in mats])
        n_major = sum(m.n_major for m in mats)
        n_rows, n_cols = self.manifest.shape
        shape = (
            (n_major, n_cols) if self.axis == "rows" else (n_rows, n_major)
        )
        cls = MATRIX_CLS[self.axis]
        return cls(shape, indptr, indices, data, check=False), failures

    def load_dataset(self) -> Dataset:
        """Reassemble the full dataset (matrix + labels + provenance)."""
        matrix, _ = self.assemble(range(self.n_shards))
        return Dataset(
            matrix=matrix,
            y=self.y,
            name=self.manifest.name,
            meta=dict(self.manifest.meta),
        )
