"""Cache-aware streaming: shards -> worker matrices + modelled transfer cost.

:class:`ShardingConfig` is the user-facing knob bundle an engine accepts via
its ``shards=`` parameter; :class:`ShardStreamer` is the per-worker runtime
the engine builds from it.  The streamer does three jobs:

1. **bind-time assembly** — materialize the worker's contiguous shard group
   into one matrix slice, bit-identical to ``matrix.take_major(coords)`` on
   the in-memory path (``shard.load`` spans, no ledger cost: binding is
   outside the modelled training clock, exactly like the in-memory bind);
2. **per-epoch streaming** — touch every shard of the group through the
   :class:`~repro.shards.cache.ShardCache`; each disk read is billed as a
   host→device transfer over the configured PCIe/link model into the
   ledger's ``shard_stream`` phase, and retried read failures into
   ``shard_retry``;
3. **overlap** — with ``prefetch=True`` a background thread reads the next
   shard while the solver computes, so only the streaming time *exceeding*
   compute extends the epoch (double buffering); without it, streaming
   serializes after compute.

Streaming never touches the solver's random streams, which is what makes
out-of-core training bit-identical to in-memory: the cache only changes
*when time is billed*, not *what is computed*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.faults import DEFAULT_RETRY, RetryPolicy
from ..obs import NULL_TRACER
from ..perf.link import PCIE3_X16_PINNED, Link
from .cache import ShardCache
from .prefetch import Prefetcher
from .store import ShardStore

__all__ = ["ShardingConfig", "ShardStreamer"]


@dataclass
class ShardingConfig:
    """Out-of-core configuration an engine accepts via ``shards=``.

    Parameters
    ----------
    store:
        The packed shard set (its axis must match the formulation:
        ``rows`` for dual / by-example, ``cols`` for primal / by-feature).
    cache_budget_bytes:
        Byte ceiling on billed resident shards per worker.  ``None`` defers
        to the worker's device memory when one is attached (GPU solvers) and
        is otherwise unbounded.
    link:
        The host→device link each shard read is billed over.
    prefetch:
        Enable background readahead (overlaps streaming with compute).
    simulated_total_nbytes:
        Paper-scale footprint of the *whole* shard set; shards are billed at
        ``simulated_total_nbytes / store.total_nbytes`` times their actual
        size (the Fig. 10 device-pricing convention).
    retry:
        Policy pricing transient shard-read failures (and deciding when they
        escalate to :class:`~repro.shards.store.ShardReadError`).
    """

    store: ShardStore
    cache_budget_bytes: int | None = None
    link: Link = PCIE3_X16_PINNED
    prefetch: bool = False
    simulated_total_nbytes: int | None = None
    retry: RetryPolicy = field(default_factory=lambda: DEFAULT_RETRY)

    @property
    def byte_scale(self) -> float:
        if self.simulated_total_nbytes is None:
            return 1.0
        actual = max(1, self.store.total_nbytes)
        return self.simulated_total_nbytes / actual


class ShardStreamer:
    """Per-worker streaming runtime over one contiguous shard group."""

    def __init__(
        self,
        config: ShardingConfig,
        shard_ids,
        *,
        tracer=None,
        worker: int = 0,
    ) -> None:
        self.config = config
        self.shard_ids = [int(s) for s in shard_ids]
        if not self.shard_ids:
            raise ValueError("a streamer needs at least one shard")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.worker = int(worker)
        self.cache = ShardCache(
            config.store,
            budget_bytes=config.cache_budget_bytes,
            byte_scale=config.byte_scale,
            tracer=self.tracer,
        )
        self._prefetcher: Prefetcher | None = None

    # -- setup -------------------------------------------------------------
    def coords(self) -> np.ndarray:
        return self.config.store.coords_of(self.shard_ids)

    def group_nbytes(self) -> int:
        """Billed bytes of the whole group (the worker's working set)."""
        return sum(self.cache.billed_bytes(s) for s in self.shard_ids)

    def assemble(self):
        """Materialize the group for solver binding (spans, no ledger cost)."""
        store = self.config.store

        def traced_read(shard_id: int):
            with self.tracer.span(
                "shard.load",
                category="shards",
                shard=shard_id,
                worker=self.worker,
                nbytes=self.cache.billed_bytes(shard_id),
                phase="bind",
            ):
                return store.read(shard_id)

        matrix, failures = store.assemble(self.shard_ids, reader=traced_read)
        if failures:
            self.tracer.count("shards.read_retries", failures)
        return matrix

    def attach_device(self, device_memory) -> None:
        """Back the cache with a worker's simulated GPU memory."""
        self.cache.attach_device(device_memory)

    # -- per-epoch streaming -------------------------------------------------
    def stream_epoch(self, ledger, *, compute_s: float = 0.0) -> float:
        """Stream the group once; book modelled cost; return added wall time.

        Every disk read this pass performs (or consumes from the
        prefetcher) is billed as one transfer of the shard's scaled bytes
        over ``config.link`` into the ``shard_stream`` ledger phase; retried
        read failures are billed into ``shard_retry``.  The returned seconds
        are what the pass adds to the worker's epoch beyond ``compute_s``:
        with prefetch the transfers overlap compute and only the excess
        counts; without it they serialize.
        """
        cfg = self.config
        if cfg.prefetch and self._prefetcher is None:
            self._prefetcher = Prefetcher(self.cache)
        ids = self.shard_ids
        stream_s = 0.0
        retry_s = 0.0
        if self._prefetcher is not None:
            self._prefetcher.schedule(ids[:1])
        for i, shard_id in enumerate(ids):
            if self._prefetcher is not None and i + 1 < len(ids):
                # double buffering: next shard loads while this one is used
                self._prefetcher.schedule(ids[i + 1 : i + 2])
            lookup = self.cache.fetch(shard_id)
            if lookup.loaded:
                transfer = cfg.link.transfer_seconds(
                    self.cache.billed_bytes(shard_id)
                )
                stream_s += transfer
                if lookup.read_failures:
                    retry_s += cfg.retry.penalty_seconds(
                        lookup.read_failures, transfer
                    )
                    self.tracer.count(
                        "shards.read_retries", lookup.read_failures
                    )
        if stream_s > 0.0:
            ledger.add("shard_stream", stream_s)
        if retry_s > 0.0:
            ledger.add("shard_retry", retry_s)
        exposed = max(0.0, stream_s - compute_s) if cfg.prefetch else stream_s
        return exposed + retry_s

    def close(self) -> None:
        if self._prefetcher is not None:
            self._prefetcher.close()
            self._prefetcher = None

    def __enter__(self) -> "ShardStreamer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
