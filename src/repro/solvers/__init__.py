"""CPU coordinate-descent solvers: sequential SCD, async baselines, extensions."""

from .ascd import ASCD, AsyncCpuKernelFactory, PASSCoDeWild
from .batch_gd import BatchGD, power_iteration_lipschitz
from .base import BoundKernel, KernelFactory, ScdSolver, TrainResult
from .elasticnet import ElasticNetCD, elastic_net_path, lambda_grid
from .logistic import LogisticSdca
from .scd import SequentialKernelFactory, SequentialSCD
from .sgd import SgdSolver
from .syscd import SySCD, SyscdKernelFactory
from .svm import SvmSdca

__all__ = [
    "ASCD",
    "BatchGD",
    "power_iteration_lipschitz",
    "AsyncCpuKernelFactory",
    "PASSCoDeWild",
    "BoundKernel",
    "KernelFactory",
    "ScdSolver",
    "TrainResult",
    "SequentialKernelFactory",
    "SequentialSCD",
    "SgdSolver",
    "SySCD",
    "SyscdKernelFactory",
    "ElasticNetCD",
    "elastic_net_path",
    "lambda_grid",
    "LogisticSdca",
    "SvmSdca",
]
