"""Asynchronous multi-threaded CPU coordinate descent.

Implements the execution model shared by the paper's two CPU baselines:

* **A-SCD** (Tran et al., KDD'15): threads read a possibly-stale shared
  vector but write their updates with atomic float additions, so no update
  is ever lost.  Converges per-epoch like the sequential algorithm; the
  paper measured only ~2x time speedup at 16 threads due to software-emulated
  float atomics.
* **PASSCoDe-Wild** (Hsieh et al., ICML'15): same stale reads, but no
  atomicity — racing writes lose updates ("wild").  Faster (~4x) but
  converges to a point that violates the optimality conditions, so the
  duality gap plateaus above zero.

Concurrency is modelled deterministically (given a seed): each chunk of
``n_threads`` consecutive coordinates in the epoch permutation executes
against the shared vector as of the chunk start.  See
``repro.solvers.kernels`` for the exact write-race semantics.
"""

from __future__ import annotations

import numpy as np

from ..cpu import XEON_8C, CpuSpec, ThreadedCpuTiming
from ..perf.timing import EpochWorkload
from ..sparse import CscMatrix, CsrMatrix
from .base import BoundKernel, ScdSolver
from .kernels import dual_epoch_chunked, primal_epoch_chunked

__all__ = ["AsyncCpuKernelFactory", "ASCD", "PASSCoDeWild"]


class AsyncCpuKernelFactory:
    """Binds the chunked-asynchronous epoch kernels with thread timing."""

    def __init__(
        self,
        *,
        n_threads: int = 16,
        write_mode: str = "atomic",
        loss_prob: float = 0.15,
        spec: CpuSpec = XEON_8C,
        dtype=np.float64,
        timing_workload: EpochWorkload | None = None,
    ) -> None:
        if write_mode not in ("atomic", "wild"):
            raise ValueError(f"unknown write_mode {write_mode!r}")
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError("loss_prob must be in [0, 1]")
        self.spec = spec
        self.n_threads = int(n_threads)
        self.write_mode = write_mode
        self.loss_prob = float(loss_prob)
        self.dtype = np.dtype(dtype)
        self.timing_workload = timing_workload
        label = "A-SCD" if write_mode == "atomic" else "PASSCoDe-Wild"
        self.name = f"{label}({self.n_threads} threads)"

    def _priced(self, workload: EpochWorkload) -> EpochWorkload:
        return self.timing_workload or workload

    def _timing(self) -> ThreadedCpuTiming:
        return ThreadedCpuTiming(
            self.spec, n_threads=self.n_threads, mode=self.write_mode
        )

    def bind_primal(
        self, csc: CscMatrix, y: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        csc = csc if csc.dtype == self.dtype else csc.astype(self.dtype)
        y = y.astype(self.dtype, copy=False)
        indptr, indices, data = csc.indptr, csc.indices, csc.data
        y_dots = csc.rmatvec(y).astype(self.dtype, copy=False)
        nlam = float(n_global * lam)
        inv_denom = (1.0 / (csc.col_norms_sq() + n_global * lam)).astype(self.dtype)
        chunk = self.n_threads
        mode, loss = self.write_mode, self.loss_prob

        def run_epoch(beta, w, perm, rng):
            return primal_epoch_chunked(
                indptr,
                indices,
                data,
                y_dots,
                inv_denom,
                nlam,
                beta,
                w,
                perm,
                chunk,
                write_mode=mode,
                loss_prob=loss,
                rng=rng,
            )

        return BoundKernel(
            run_epoch=run_epoch,
            workload=self._priced(
                EpochWorkload(
                    n_coords=csc.n_major, nnz=csc.nnz, shared_len=csc.shape[0]
                )
            ),
            timing=self._timing(),
            n_coords=csc.n_major,
            shared_len=csc.shape[0],
            dtype=self.dtype,
        )

    def bind_dual(
        self, csr: CsrMatrix, y_local: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        csr = csr if csr.dtype == self.dtype else csr.astype(self.dtype)
        y_local = y_local.astype(self.dtype, copy=False)
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        lam_f = float(lam)
        nlam = float(n_global * lam)
        inv_denom = (1.0 / (n_global * lam + csr.row_norms_sq())).astype(self.dtype)
        chunk = self.n_threads
        mode, loss = self.write_mode, self.loss_prob

        def run_epoch(alpha, wbar, perm, rng):
            return dual_epoch_chunked(
                indptr,
                indices,
                data,
                y_local,
                inv_denom,
                lam_f,
                nlam,
                alpha,
                wbar,
                perm,
                chunk,
                write_mode=mode,
                loss_prob=loss,
                rng=rng,
            )

        return BoundKernel(
            run_epoch=run_epoch,
            workload=self._priced(
                EpochWorkload(
                    n_coords=csr.n_major, nnz=csr.nnz, shared_len=csr.shape[1]
                )
            ),
            timing=self._timing(),
            n_coords=csr.n_major,
            shared_len=csr.shape[1],
            dtype=self.dtype,
        )


class ASCD(ScdSolver):
    """A-SCD: asynchronous SCD with atomic shared-vector additions."""

    def __init__(
        self,
        formulation: str = "primal",
        *,
        n_threads: int = 16,
        spec: CpuSpec = XEON_8C,
        dtype=np.float64,
        seed: int = 0,
    ) -> None:
        super().__init__(
            AsyncCpuKernelFactory(
                n_threads=n_threads, write_mode="atomic", spec=spec, dtype=dtype
            ),
            formulation,
            seed,
        )


class PASSCoDeWild(ScdSolver):
    """PASSCoDe-Wild: lock-free asynchronous SCD with lost updates.

    ``loss_prob`` is the probability that a racing (non-final) writer's
    shared-vector increment is lost.  On real hardware an update is lost only
    when two read-modify-write sequences overlap within a few nanoseconds, so
    only a fraction of same-chunk collisions race; the default 0.15 is
    calibrated to reproduce the paper's behaviour (initial descent tracking
    the atomic solvers, then a plateau a few orders of magnitude above them).
    1.0 loses every colliding write (worst case), 0.0 degenerates to atomic.
    """

    def __init__(
        self,
        formulation: str = "primal",
        *,
        n_threads: int = 16,
        loss_prob: float = 0.15,
        spec: CpuSpec = XEON_8C,
        dtype=np.float64,
        seed: int = 0,
    ) -> None:
        super().__init__(
            AsyncCpuKernelFactory(
                n_threads=n_threads,
                write_mode="wild",
                loss_prob=loss_prob,
                spec=spec,
                dtype=dtype,
            ),
            formulation,
            seed,
        )
