"""Solver framework: kernel factories, bound kernels, and the epoch driver.

Every solver in the paper — sequential SCD, the asynchronous CPU variants,
and GPU TPA-SCD — performs the *same* outer loop (Algorithm 1's epoch
structure); they differ only in how one epoch executes and how long it takes.
That split is captured here:

* a :class:`KernelFactory` binds a data partition to an executable epoch
  kernel plus a device timing model, producing a :class:`BoundKernel`;
* :class:`ScdSolver` is the generic training driver: permutation stream,
  epoch loop, modelled-time accumulation, duality-gap monitoring;
* the distributed engine (``repro.core.distributed``) reuses the same
  factories to bind each worker's local partition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

import numpy as np

from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.ridge import RidgeProblem, gap_and_objective
from ..obs import resolve_tracer
from ..perf.ledger import TimeLedger
from ..perf.timing import EpochWorkload, LocalTiming
from ..sparse import CscMatrix, CsrMatrix

__all__ = [
    "BoundKernel",
    "EpochEvent",
    "KernelFactory",
    "ScdSolver",
    "TrainResult",
]


@dataclass(frozen=True)
class EpochEvent:
    """What an ``on_epoch`` training callback observes at a monitored epoch.

    ``weights`` is a private copy of the model vector in its native
    formulation (primal beta / dual alpha) — never the engine's live buffer,
    so a consumer may retain the event past the callback (deferred
    snapshotting sees each epoch's weights, not aliases of the final ones).
    This is the continuous-training publish point: a serving hub subscribes
    here to receive versioned weight snapshots while training is still
    running.
    """

    epoch: int
    weights: np.ndarray
    formulation: str
    #: modelled seconds of training so far (wall seconds for real backends)
    sim_time: float
    gap: float
    solver: str = ""


@dataclass
class BoundKernel:
    """An epoch kernel bound to one data partition.

    ``run_epoch(weights, shared, perm, rng)`` advances the model by one pass
    over ``perm`` (local coordinate indices), updating ``weights`` and the
    ``shared`` vector in place, and returns the number of lost shared-vector
    element updates (nonzero only for "wild" write semantics).
    """

    run_epoch: Callable[[np.ndarray, np.ndarray, np.ndarray, np.random.Generator], int]
    workload: EpochWorkload
    timing: LocalTiming
    n_coords: int
    shared_len: int
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))

    def epoch_seconds(self) -> float:
        """Modelled duration of one epoch on this kernel's device."""
        return self.timing.epoch_seconds(self.workload)


class KernelFactory(Protocol):
    """Builds bound kernels for either formulation of ridge regression."""

    #: human-readable solver label used in histories and reports
    name: str

    def bind_primal(
        self, csc: CscMatrix, y: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        """Bind the primal update rule to a (possibly partial) column set.

        ``csc`` holds the worker's local feature columns over all ``N``
        examples; ``y`` is the *global* label vector; the shared vector is
        ``w = A beta`` of global length ``N``.
        """
        ...

    def bind_dual(
        self, csr: CsrMatrix, y_local: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        """Bind the dual update rule to a (possibly partial) row set.

        ``csr`` holds the worker's local example rows over all ``M``
        features; ``y_local`` are that partition's labels; the shared vector
        is ``wbar = A^T alpha`` of global length ``M``.
        """
        ...


@dataclass
class TrainResult:
    """Outcome of a training run — the canonical result shape.

    Every engine (single-node drivers, the distributed/SVM/mp engines via
    subclasses) returns this shape, so downstream code can always reach
    ``history``, ``ledger`` and — when a tracer was installed — ``trace``
    and ``metrics``.
    """

    formulation: str
    weights: np.ndarray
    shared: np.ndarray
    history: ConvergenceHistory
    solver_name: str
    lost_updates: int = 0
    #: modelled per-component time accounting (always populated)
    ledger: TimeLedger | None = None
    #: the :class:`~repro.obs.Tracer` that observed the run, when enabled
    trace: Any = None
    #: the tracer's :class:`~repro.obs.MetricsRegistry`, when enabled
    metrics: Any = None

    def primal_weights(self, problem: RidgeProblem) -> np.ndarray:
        """The model usable for prediction, mapping dual iterates via Eq. 5."""
        if self.formulation == "primal":
            return self.weights
        return problem.beta_from_alpha(self.weights)

    def predict(self, problem: RidgeProblem, matrix: CsrMatrix) -> np.ndarray:
        """Linear predictions on a (test) matrix in CSR layout."""
        return matrix.matvec(self.primal_weights(problem))


class ScdSolver:
    """Generic single-node stochastic coordinate descent driver.

    Parameters
    ----------
    factory:
        Device-specific kernel factory (sequential CPU, async CPU, GPU).
    formulation:
        ``"primal"`` (coordinates = features, Eq. 2) or ``"dual"``
        (coordinates = examples, Eq. 4).
    seed:
        Seeds the permutation stream and any stochastic execution effects.
    """

    def __init__(
        self, factory: KernelFactory, formulation: str = "primal", seed: int = 0
    ) -> None:
        if formulation not in ("primal", "dual"):
            raise ValueError(f"unknown formulation {formulation!r}")
        self.factory = factory
        self.formulation = formulation
        self.seed = int(seed)

    @property
    def name(self) -> str:
        return f"{self.factory.name}[{self.formulation}]"

    def _bind(self, problem: RidgeProblem) -> BoundKernel:
        if self.formulation == "primal":
            return self.factory.bind_primal(
                problem.dataset.csc, problem.y, problem.n, problem.lam
            )
        return self.factory.bind_dual(
            problem.dataset.csr, problem.y, problem.n, problem.lam
        )

    def _gap(self, problem: RidgeProblem, weights: np.ndarray) -> tuple[float, float]:
        """Offline (gap, objective) evaluation; never counted in sim time.

        The shared vector is deliberately *recomputed* from the weights: for
        wild write semantics the maintained shared vector drifts away from
        ``A beta`` and the paper evaluates the quality of the model weights
        themselves.
        """
        w64 = weights.astype(np.float64)
        return gap_and_objective(problem, w64, self.formulation)

    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
        tracer=None,
        on_epoch=None,
    ) -> TrainResult:
        """Train for up to ``n_epochs`` epochs.

        ``monitor_every`` controls how often the duality gap is evaluated;
        ``target_gap`` stops early once the gap reaches the target (checked
        only at monitored epochs, like the paper's time-to-epsilon runs).
        ``tracer`` attaches a :class:`~repro.obs.Tracer` (defaults to the
        ambient tracer installed by :func:`~repro.obs.use_tracer`); tracing
        only observes — seeded trajectories are bit-identical with it on.
        ``on_epoch`` is called with an :class:`EpochEvent` after every
        monitored epoch (the train-to-serve publish hook); it observes only
        and cannot perturb the trajectory.
        """
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        tracer = resolve_tracer(tracer)
        if tracer.enabled:
            # device factories (TPA, GLM) forward the tracer into the wave
            # scheduler so kernel-level spans/counters are emitted too
            self.factory.tracer = tracer
        ledger = tracer.open_ledger()
        with tracer.span(
            "train", category="driver", solver=self.name,
            formulation=self.formulation, n_epochs=n_epochs,
        ):
            with tracer.span("bind", category="driver"):
                bound = self._bind(problem)
            rng = np.random.default_rng(self.seed)
            weights = np.zeros(bound.n_coords, dtype=bound.dtype)
            shared = np.zeros(bound.shared_len, dtype=bound.dtype)
            history = ConvergenceHistory(label=self.name)
            sim_time = 0.0
            lost_total = 0
            t0 = time.perf_counter()

            with tracer.span("gap_eval", category="monitor", epoch=0):
                gap, obj = self._gap(problem, weights)
            history.append(
                ConvergenceRecord(
                    epoch=0,
                    gap=gap,
                    objective=obj,
                    sim_time=0.0,
                    wall_time=0.0,
                    updates=0,
                )
            )

            epoch_cost = bound.epoch_seconds()
            component = bound.timing.component
            updates = 0
            for epoch in range(1, n_epochs + 1):
                with tracer.span("epoch", category="driver", epoch=epoch):
                    perm = rng.permutation(bound.n_coords)
                    lost = bound.run_epoch(weights, shared, perm, rng)
                    ledger.add(component, epoch_cost)
                lost_total += lost
                updates += bound.n_coords
                sim_time += epoch_cost
                tracer.count("train.epochs")
                tracer.count("scd.updates", bound.n_coords)
                if lost:
                    tracer.count("scd.lost_updates", lost)
                if epoch % monitor_every == 0 or epoch == n_epochs:
                    with tracer.span("gap_eval", category="monitor", epoch=epoch):
                        gap, obj = self._gap(problem, weights)
                    history.append(
                        ConvergenceRecord(
                            epoch=epoch,
                            gap=gap,
                            objective=obj,
                            sim_time=sim_time,
                            wall_time=time.perf_counter() - t0,
                            updates=updates,
                            extras={"lost_updates": lost_total},
                        )
                    )
                    if on_epoch is not None:
                        on_epoch(
                            EpochEvent(
                                epoch=epoch,
                                # copy: the event must not alias the live
                                # buffer mutated by later epochs
                                weights=weights.copy(),
                                formulation=self.formulation,
                                sim_time=sim_time,
                                gap=gap,
                                solver=self.name,
                            )
                        )
                    if target_gap is not None and gap <= target_gap:
                        break

        return TrainResult(
            formulation=self.formulation,
            weights=weights,
            shared=shared,
            history=history,
            solver_name=self.name,
            lost_updates=lost_total,
            ledger=ledger,
            trace=tracer if tracer.enabled else None,
            metrics=tracer.metrics if tracer.enabled else None,
        )
