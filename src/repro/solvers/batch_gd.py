"""Batch gradient descent baseline for ridge regression.

The paper's introduction motivates stochastic coordinate methods against
batch methods: "It is well known that faster convergence can be achieved
over batch methods by using stochastic learning algorithms such as SGD or
SCD."  This solver makes that claim checkable: full-gradient descent on the
primal ridge objective, with the optimal fixed step size 1/L (L = largest
eigenvalue of the regularized Gram matrix, computed by power iteration on
the same sparse kernels) and optional Nesterov acceleration.

One batch "epoch" costs the same data traffic as one SCD epoch (every
nonzero is touched once per gradient), so per-epoch comparisons are fair in
the device cost models.
"""

from __future__ import annotations

import time

import numpy as np

from ..cpu import XEON_8C, CpuSpec, SequentialCpuTiming
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.ridge import RidgeProblem
from ..perf.timing import EpochWorkload
from .base import TrainResult

__all__ = ["BatchGD", "power_iteration_lipschitz"]


def power_iteration_lipschitz(
    problem: RidgeProblem, *, iters: int = 60, seed: int = 0
) -> float:
    """Largest eigenvalue of ``A^T A / N + lam I`` by power iteration."""
    csc = problem.dataset.csc
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(problem.m)
    v /= np.linalg.norm(v)
    lam_est = problem.lam
    for _ in range(iters):
        u = csc.rmatvec(csc.matvec(v)) / problem.n + problem.lam * v
        norm = np.linalg.norm(u)
        if norm == 0.0:
            return problem.lam
        lam_est = float(norm)
        v = u / norm
    return lam_est


class BatchGD:
    """Full-gradient descent (optionally Nesterov-accelerated) on P(beta).

    Parameters
    ----------
    accelerated:
        Use Nesterov's momentum (the strongest fair batch baseline).
    step_size:
        Fixed step; defaults to ``1/L`` with ``L`` from power iteration.
    """

    def __init__(
        self,
        *,
        accelerated: bool = False,
        step_size: float | None = None,
        spec: CpuSpec = XEON_8C,
        seed: int = 0,
    ) -> None:
        self.accelerated = bool(accelerated)
        self.step_size = step_size
        self.spec = spec
        self.seed = int(seed)
        self.name = "Nesterov-GD" if accelerated else "Batch-GD"
        self.timing_workload: EpochWorkload | None = None

    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
    ) -> TrainResult:
        """Run full-gradient iterations; one iteration == one epoch."""
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        csc = problem.dataset.csc
        y = problem.y.astype(np.float64)
        lip = (
            1.0 / self.step_size
            if self.step_size
            else power_iteration_lipschitz(problem, seed=self.seed)
        )
        step = 1.0 / lip
        mu = problem.lam  # strong convexity modulus
        kappa = lip / mu
        momentum = (np.sqrt(kappa) - 1.0) / (np.sqrt(kappa) + 1.0)

        beta = np.zeros(problem.m)
        lookahead = beta.copy()
        workload = self.timing_workload or EpochWorkload(
            n_coords=problem.m, nnz=csc.nnz, shared_len=problem.n
        )
        epoch_s = SequentialCpuTiming(self.spec).epoch_seconds(workload)
        history = ConvergenceHistory(label=self.name)
        t0 = time.perf_counter()
        history.append(
            ConvergenceRecord(
                epoch=0,
                gap=problem.primal_gap(beta),
                objective=problem.primal_objective(beta),
                sim_time=0.0,
                wall_time=0.0,
                updates=0,
            )
        )
        sim = 0.0
        for epoch in range(1, n_epochs + 1):
            point = lookahead if self.accelerated else beta
            residual = csc.matvec(point) - y
            grad = csc.rmatvec(residual) / problem.n + problem.lam * point
            new_beta = point - step * grad
            if self.accelerated:
                lookahead = new_beta + momentum * (new_beta - beta)
            beta = new_beta
            sim += epoch_s
            if epoch % monitor_every == 0 or epoch == n_epochs:
                gap = problem.primal_gap(beta)
                history.append(
                    ConvergenceRecord(
                        epoch=epoch,
                        gap=gap,
                        objective=problem.primal_objective(beta),
                        sim_time=sim,
                        wall_time=time.perf_counter() - t0,
                        updates=epoch,
                        extras={"step_size": step},
                    )
                )
                if target_gap is not None and gap <= target_gap:
                    break
        return TrainResult(
            formulation="primal",
            weights=beta,
            shared=csc.matvec(beta),
            history=history,
            solver_name=self.name,
        )
