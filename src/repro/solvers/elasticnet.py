"""Sequential coordinate-descent solver for the elastic-net objective.

Structurally identical to Algorithm 1: a random permutation of the feature
coordinates per epoch, a maintained shared vector ``w = A beta``, and the
closed-form coordinate step (here soft-thresholded).  Convergence is
monitored through the objective value and the KKT violation, since the
elastic net has no duality gap as convenient as ridge's.
"""

from __future__ import annotations

import time

import numpy as np

from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.elasticnet import ElasticNetProblem

__all__ = ["ElasticNetCD", "elastic_net_path", "lambda_grid"]


class ElasticNetCD:
    """Cyclic-random coordinate descent for elastic-net regression."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.name = "ElasticNetCD"

    def solve(
        self,
        problem: ElasticNetProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        tol: float | None = None,
        init_beta: np.ndarray | None = None,
    ):
        """Train for up to ``n_epochs`` epochs.

        ``tol`` stops early once the KKT violation drops below it (checked
        at monitored epochs).  ``init_beta`` warm-starts the weights — the
        key ingredient of Friedman et al.'s pathwise strategy (the paper's
        [4]).  Returns ``(beta, history)``.
        """
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        csc = problem.dataset.csc
        y = problem.y.astype(np.float64)
        indptr, indices, data = csc.indptr, csc.indices, csc.data
        norms = csc.col_norms_sq().astype(np.float64)
        if init_beta is not None:
            if init_beta.shape != (problem.m,):
                raise ValueError(
                    f"init_beta has shape {init_beta.shape}, expected ({problem.m},)"
                )
            beta = init_beta.astype(np.float64).copy()
            w = csc.matvec(beta)
        else:
            beta = np.zeros(problem.m, dtype=np.float64)
            w = np.zeros(problem.n, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        history = ConvergenceHistory(label=self.name)
        t0 = time.perf_counter()
        history.append(
            ConvergenceRecord(
                epoch=0,
                gap=problem.subgradient_optimality(beta, w),
                objective=problem.objective(beta, w),
                sim_time=0.0,
                wall_time=0.0,
                updates=0,
            )
        )
        updates = 0
        for epoch in range(1, n_epochs + 1):
            for m in rng.permutation(problem.m):
                lo, hi = indptr[m], indptr[m + 1]
                idx = indices[lo:hi]
                v = data[lo:hi]
                residual_dot = float(v @ (y[idx] - w[idx])) if lo != hi else 0.0
                delta = problem.coordinate_delta(
                    m, float(beta[m]), residual_dot, float(norms[m])
                )
                if delta != 0.0:
                    beta[m] += delta
                    if lo != hi:
                        w[idx] += v * delta
                updates += 1
            if epoch % monitor_every == 0 or epoch == n_epochs:
                kkt = problem.subgradient_optimality(beta, w)
                history.append(
                    ConvergenceRecord(
                        epoch=epoch,
                        gap=kkt,
                        objective=problem.objective(beta, w),
                        sim_time=time.perf_counter() - t0,
                        wall_time=time.perf_counter() - t0,
                        updates=updates,
                        extras={"nnz_beta": int(np.count_nonzero(beta))},
                    )
                )
                if tol is not None and kkt <= tol:
                    break
        return beta, history


def lambda_grid(
    problem_dataset, l1_ratio: float, *, n_lambdas: int = 20, ratio: float = 1e-3
) -> np.ndarray:
    """Geometric lambda grid from lambda_max down, as in glmnet ([4]).

    ``lambda_max`` is the smallest lambda at which the all-zeros model is
    optimal: ``max_m |<a_m, y>| / (N * l1_ratio)``.  For ``l1_ratio = 0``
    there is no finite lambda_max; a unit-scale grid is returned instead.
    """
    if n_lambdas < 1:
        raise ValueError("n_lambdas must be >= 1")
    if not 0.0 < ratio < 1.0:
        raise ValueError("ratio must be in (0, 1)")
    csc = problem_dataset.csc
    y = problem_dataset.y.astype(np.float64)
    n = problem_dataset.n_examples
    corr = np.abs(csc.rmatvec(y)) / n
    top = float(corr.max()) if corr.size else 1.0
    if l1_ratio > 0.0:
        lam_max = top / l1_ratio
    else:
        lam_max = top
    # nudge above the boundary so rounding in `top / l1_ratio * l1_ratio`
    # cannot leave the largest-correlation coordinate marginally active
    lam_max *= 1.0 + 1e-9
    return np.geomspace(lam_max, lam_max * ratio, n_lambdas)


def elastic_net_path(
    dataset,
    lambdas: np.ndarray,
    *,
    l1_ratio: float = 0.5,
    n_epochs: int = 100,
    tol: float = 1e-8,
    seed: int = 0,
):
    """Warm-started regularization path (Friedman et al. [4]).

    Solves the elastic net along a decreasing ``lambdas`` grid, initializing
    each problem at the previous solution.  Returns a list of
    ``(lam, beta, history)`` triples in grid order.
    """
    lambdas = np.asarray(lambdas, dtype=np.float64)
    if lambdas.size == 0:
        return []
    if np.any(np.diff(lambdas) > 0):
        raise ValueError("lambdas must be non-increasing for warm starts")
    solver = ElasticNetCD(seed=seed)
    path = []
    beta = None
    for lam in lambdas:
        problem = ElasticNetProblem(dataset, float(lam), l1_ratio=l1_ratio)
        beta, history = solver.solve(
            problem, n_epochs, monitor_every=1, tol=tol, init_beta=beta
        )
        path.append((float(lam), beta.copy(), history))
    return path
