"""Epoch kernels for stochastic coordinate descent.

Three execution semantics are implemented, all operating on raw compressed
arrays for speed (the per-coordinate loop is the hot path of the whole
library — see the profiling notes in DESIGN.md):

* :func:`primal_epoch_sequential` / :func:`dual_epoch_sequential` — exact
  Algorithm 1: coordinates are visited one at a time and every update sees
  the fully up-to-date shared vector.
* :func:`primal_epoch_chunked` / :func:`dual_epoch_chunked` — the
  asynchronous-CPU model: coordinates are processed in chunks of
  ``chunk_size`` (= number of hardware threads).  All inner products within
  a chunk read the shared vector *as of the chunk start* (stale reads), and
  the write-back semantics are selectable:

  - ``write_mode="atomic"`` — every update is applied (A-SCD, Tran et al.);
  - ``write_mode="wild"`` — racing writers to the same shared-vector entry
    lose updates with probability ``loss_prob`` (PASSCoDe-Wild, Hsieh et
    al.): each non-final writer's contribution survives only with
    probability ``1 - loss_prob``.

  ``chunk_size=1`` reduces exactly to the sequential semantics, which the
  property tests verify.

The GPU TPA-SCD kernel lives in :mod:`repro.gpu.kernels`; it shares the
chunk framing (a chunk = one wave of resident thread blocks) but emulates
per-thread-block float32 arithmetic including the shared-memory tree
reduction.
"""

from __future__ import annotations

import numpy as np

from ..sparse.matrix import _ranges_concat

__all__ = [
    "primal_epoch_sequential",
    "dual_epoch_sequential",
    "primal_epoch_chunked",
    "dual_epoch_chunked",
    "gather_chunk",
    "apply_chunk_updates",
]


# ---------------------------------------------------------------------------
# exact sequential kernels (Algorithm 1)
# ---------------------------------------------------------------------------


def primal_epoch_sequential(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    y_dots: np.ndarray,
    inv_denom: np.ndarray,
    nlam: float,
    beta: np.ndarray,
    w: np.ndarray,
    perm: np.ndarray,
) -> None:
    """One exact SCD epoch over the permuted feature coordinates.

    Parameters are pre-bound raw arrays:  ``y_dots[m] = <y, a_m>`` and
    ``inv_denom[m] = 1 / (||a_m||^2 + N lam)`` are precomputed once per
    training run so the inner loop is three numpy kernel calls per
    coordinate.  ``beta`` and ``w`` are updated in place.
    """
    for m in perm:
        lo = indptr[m]
        hi = indptr[m + 1]
        if lo == hi:
            # empty column: optimum shrinks the weight towards zero exactly
            delta = -beta[m] * nlam * inv_denom[m]
            beta[m] += delta
            continue
        idx = indices[lo:hi]
        v = data[lo:hi]
        delta = (y_dots[m] - v @ w[idx] - nlam * beta[m]) * inv_denom[m]
        beta[m] += delta
        w[idx] += v * delta


def dual_epoch_sequential(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    y: np.ndarray,
    inv_denom: np.ndarray,
    lam: float,
    nlam: float,
    alpha: np.ndarray,
    wbar: np.ndarray,
    perm: np.ndarray,
) -> None:
    """One exact SDCA epoch over the permuted example coordinates (Eq. 4)."""
    for i in perm:
        lo = indptr[i]
        hi = indptr[i + 1]
        idx = indices[lo:hi]
        v = data[lo:hi]
        delta = (lam * y[i] - v @ wbar[idx] - nlam * alpha[i]) * inv_denom[i]
        alpha[i] += delta
        if lo != hi:
            wbar[idx] += v * delta


# ---------------------------------------------------------------------------
# chunked asynchronous kernels (A-SCD / PASSCoDe-Wild execution model)
# ---------------------------------------------------------------------------


def gather_chunk(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    coords: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the nonzeros of a set of coordinates.

    Returns ``(flat_minor_indices, flat_values, seg_ptr)`` where ``seg_ptr``
    delimits each coordinate's run inside the flat arrays.
    """
    lengths = indptr[coords + 1] - indptr[coords]
    seg_ptr = np.empty(coords.shape[0] + 1, dtype=np.int64)
    seg_ptr[0] = 0
    np.cumsum(lengths, out=seg_ptr[1:])
    flat = _ranges_concat(indptr[coords], lengths)
    return indices[flat], data[flat], seg_ptr


def _epoch_gather(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    perm: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather an entire epoch's nonzeros in one flattened pass.

    The per-chunk ``gather_chunk`` fancy-indexing is the chunked kernels'
    dominant cost; hoisting it to one epoch-level gather (sliced per chunk
    afterwards) produces byte-identical per-chunk arrays for a fraction of
    the kernel launches.  Returns ``(flat_minor_indices, flat_values,
    epoch_seg_ptr)`` with ``epoch_seg_ptr`` delimiting each *coordinate*.
    """
    lengths = indptr[perm + 1] - indptr[perm]
    eptr = np.empty(perm.shape[0] + 1, dtype=np.int64)
    eptr[0] = 0
    np.cumsum(lengths, out=eptr[1:])
    flat = _ranges_concat(indptr[perm], lengths)
    return indices[flat], data[flat], eptr


def _chunk_conflicts(
    e_idx: np.ndarray,
    eptr: np.ndarray,
    chunk_size: int,
    n_minor: int,
) -> np.ndarray | None:
    """Per-chunk duplicate-write counts for one epoch.

    One in-place sort of ``chunk_id * n_minor + index`` replaces a per-chunk
    uniqueness probe; chunks with a zero count may apply their scatter with
    a buffered fancy ``+=`` (bit-identical to ``np.add.at`` when every
    target element is written once).  Returns ``None`` when the whole epoch
    is conflict-free.
    """
    total = e_idx.shape[0]
    if total == 0 or chunk_size == 1:
        # a single coordinate's minor indices are unique by construction
        return None
    k = eptr.shape[0] - 1
    n_chunks = -(-k // chunk_size)
    chunk_of = np.arange(k, dtype=np.int64) // chunk_size
    keys = np.repeat(chunk_of, np.diff(eptr)) * n_minor + e_idx
    keys.sort()
    dup = keys[1:] == keys[:-1]
    if not dup.any():
        return None
    return np.bincount(keys[1:][dup] // n_minor, minlength=n_chunks)


def _segment_dots(
    flat_idx: np.ndarray,
    flat_val: np.ndarray,
    seg_ptr: np.ndarray,
    vec: np.ndarray,
) -> np.ndarray:
    """Per-coordinate inner products ``<a_j, vec>`` over a gathered chunk."""
    prods = flat_val * vec[flat_idx]
    prefix = np.empty(prods.shape[0] + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(prods, dtype=np.float64, out=prefix[1:])
    return prefix[seg_ptr[1:]] - prefix[seg_ptr[:-1]]


def apply_chunk_updates(
    vec: np.ndarray,
    flat_idx: np.ndarray,
    contrib: np.ndarray,
    *,
    write_mode: str,
    loss_prob: float,
    rng: np.random.Generator | None,
    conflicts: int | None = None,
) -> int:
    """Write a chunk's shared-vector contributions back.

    Returns the number of *lost* element updates (0 in atomic mode), which
    the solvers expose for diagnostics.

    ``conflicts`` accepts a precomputed duplicate-write count for the chunk
    (see :func:`_chunk_conflicts`): atomic chunks known to be conflict-free
    take a buffered fancy ``+=`` — bit-identical to ``np.add.at`` when every
    target element is written once and several times faster — while ``None``
    (unknown) or a positive count keeps the ordered ``np.add.at`` path.

    In ``wild`` mode the writers race: for every shared-vector entry touched
    by multiple coordinates in the chunk, the chronologically last write
    always lands and each earlier one survives only with probability
    ``1 - loss_prob``.  ``flat_idx``'s order encodes chronology (coordinates
    appear in their chunk order).
    """
    if flat_idx.shape[0] == 0:
        return 0
    if write_mode == "atomic":
        if conflicts == 0:
            vec[flat_idx] += contrib
        else:
            np.add.at(vec, flat_idx, contrib)
        return 0
    if write_mode != "wild":
        raise ValueError(f"unknown write_mode {write_mode!r}")

    order = np.argsort(flat_idx, kind="stable")
    rows_sorted = flat_idx[order]
    is_last = np.empty(rows_sorted.shape[0], dtype=bool)
    is_last[:-1] = rows_sorted[:-1] != rows_sorted[1:]
    is_last[-1] = True
    keep = is_last.copy()
    racing = ~is_last
    n_racing = int(racing.sum())
    if n_racing:
        if loss_prob >= 1.0:
            survive = np.zeros(n_racing, dtype=bool)
        elif loss_prob <= 0.0:
            survive = np.ones(n_racing, dtype=bool)
        else:
            if rng is None:
                raise ValueError("wild mode with 0<loss_prob<1 requires an rng")
            survive = rng.random(n_racing) >= loss_prob
        keep[racing] = survive
    kept = order[keep]
    np.add.at(vec, flat_idx[kept], contrib[kept])
    return int((~keep).sum())


def primal_epoch_chunked(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    y_dots: np.ndarray,
    inv_denom: np.ndarray,
    nlam: float,
    beta: np.ndarray,
    w: np.ndarray,
    perm: np.ndarray,
    chunk_size: int,
    *,
    write_mode: str = "atomic",
    loss_prob: float = 1.0,
    rng: np.random.Generator | None = None,
) -> int:
    """One asynchronous primal epoch; returns total lost element-updates."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    lost = 0
    n_coords = perm.shape[0]
    e_idx, e_val, eptr = _epoch_gather(indptr, indices, data, perm)
    conflicts = (
        _chunk_conflicts(e_idx, eptr, chunk_size, w.shape[0])
        if write_mode == "atomic"
        else None
    )
    for chunk, start in enumerate(range(0, n_coords, chunk_size)):
        stop = min(start + chunk_size, n_coords)
        coords = perm[start:stop]
        a, b = int(eptr[start]), int(eptr[stop])
        flat_idx = e_idx[a:b]
        flat_val = e_val[a:b]
        seg_ptr = eptr[start : stop + 1] - a
        dots = _segment_dots(flat_idx, flat_val, seg_ptr, w)
        deltas = (y_dots[coords] - dots - nlam * beta[coords]) * inv_denom[coords]
        beta[coords] += deltas
        contrib = flat_val * np.repeat(deltas, np.diff(seg_ptr))
        lost += apply_chunk_updates(
            w,
            flat_idx,
            contrib,
            write_mode=write_mode,
            loss_prob=loss_prob,
            rng=rng,
            conflicts=(
                0 if conflicts is None else int(conflicts[chunk])
            ) if write_mode == "atomic" else None,
        )
    return lost


def dual_epoch_chunked(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    y: np.ndarray,
    inv_denom: np.ndarray,
    lam: float,
    nlam: float,
    alpha: np.ndarray,
    wbar: np.ndarray,
    perm: np.ndarray,
    chunk_size: int,
    *,
    write_mode: str = "atomic",
    loss_prob: float = 1.0,
    rng: np.random.Generator | None = None,
) -> int:
    """One asynchronous dual epoch; returns total lost element-updates."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    lost = 0
    n_coords = perm.shape[0]
    e_idx, e_val, eptr = _epoch_gather(indptr, indices, data, perm)
    conflicts = (
        _chunk_conflicts(e_idx, eptr, chunk_size, wbar.shape[0])
        if write_mode == "atomic"
        else None
    )
    for chunk, start in enumerate(range(0, n_coords, chunk_size)):
        stop = min(start + chunk_size, n_coords)
        coords = perm[start:stop]
        a, b = int(eptr[start]), int(eptr[stop])
        flat_idx = e_idx[a:b]
        flat_val = e_val[a:b]
        seg_ptr = eptr[start : stop + 1] - a
        dots = _segment_dots(flat_idx, flat_val, seg_ptr, wbar)
        deltas = (lam * y[coords] - dots - nlam * alpha[coords]) * inv_denom[coords]
        alpha[coords] += deltas
        contrib = flat_val * np.repeat(deltas, np.diff(seg_ptr))
        lost += apply_chunk_updates(
            wbar,
            flat_idx,
            contrib,
            write_mode=write_mode,
            loss_prob=loss_prob,
            rng=rng,
            conflicts=(
                0 if conflicts is None else int(conflicts[chunk])
            ) if write_mode == "atomic" else None,
        )
    return lost
