"""SDCA solver for L2-regularized logistic regression (extension).

Same loop structure as the other dual solvers; the per-coordinate maximizer
is found by the problem's safeguarded bisection (no closed form for the
logistic conjugate).
"""

from __future__ import annotations

import time

import numpy as np

from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.logistic import LogisticProblem

__all__ = ["LogisticSdca"]


class LogisticSdca:
    """SDCA for logistic regression with entropy-regularized dual."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.name = "LogisticSdca"

    def solve(
        self,
        problem: LogisticProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
    ):
        """Train for up to ``n_epochs``; returns ``(w, alpha, history)``."""
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        csr = problem.dataset.csr
        y = problem.y.astype(np.float64)
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        norms = csr.row_norms_sq().astype(np.float64)
        inv_lam_n = 1.0 / (problem.lam * problem.n)
        # start strictly inside the box: the entropy term is singular at 0/1
        alpha = np.full(problem.n, 0.5, dtype=np.float64)
        w = problem.weights_from_alpha(alpha)
        rng = np.random.default_rng(self.seed)
        history = ConvergenceHistory(label=self.name)
        t0 = time.perf_counter()
        history.append(
            ConvergenceRecord(
                epoch=0,
                gap=problem.duality_gap(alpha, w),
                objective=problem.dual_objective(alpha),
                sim_time=0.0,
                wall_time=0.0,
                updates=0,
            )
        )
        updates = 0
        for epoch in range(1, n_epochs + 1):
            for i in rng.permutation(problem.n):
                lo, hi = indptr[i], indptr[i + 1]
                idx = indices[lo:hi]
                v = data[lo:hi]
                margin_dot = float(v @ w[idx]) if lo != hi else 0.0
                new_alpha = problem.coordinate_solve(
                    i, float(alpha[i]), margin_dot, float(norms[i])
                )
                delta = new_alpha - alpha[i]
                if delta != 0.0:
                    alpha[i] = new_alpha
                    if lo != hi:
                        w[idx] += v * (delta * y[i] * inv_lam_n)
                updates += 1
            if epoch % monitor_every == 0 or epoch == n_epochs:
                gap = problem.duality_gap(alpha, w)
                history.append(
                    ConvergenceRecord(
                        epoch=epoch,
                        gap=gap,
                        objective=problem.dual_objective(alpha),
                        sim_time=time.perf_counter() - t0,
                        wall_time=time.perf_counter() - t0,
                        updates=updates,
                    )
                )
                if target_gap is not None and gap <= target_gap:
                    break
        return w, alpha, history
