"""Sequential stochastic coordinate descent (Algorithm 1).

The baseline all speed-ups in the paper are measured against: a
single-threaded solver that visits a fresh random permutation of the
coordinates each epoch and applies the closed-form coordinate update with a
fully consistent shared vector.
"""

from __future__ import annotations

import numpy as np

from ..cpu import XEON_8C, CpuSpec, SequentialCpuTiming
from ..perf.timing import EpochWorkload
from ..sparse import CscMatrix, CsrMatrix
from .base import BoundKernel, ScdSolver
from .kernels import dual_epoch_sequential, primal_epoch_sequential

__all__ = ["SequentialKernelFactory", "SequentialSCD"]


class SequentialKernelFactory:
    """Binds Algorithm 1's exact epoch kernels with single-thread timing.

    ``timing_workload`` optionally overrides the workload used for *pricing*
    an epoch: the experiment drivers run scaled-down data but price epochs at
    the paper-scale dataset dimensions so the reproduced time axes keep the
    original compute/overhead proportions (see DESIGN.md).
    """

    def __init__(
        self,
        spec: CpuSpec = XEON_8C,
        *,
        dtype=np.float64,
        timing_workload: EpochWorkload | None = None,
    ) -> None:
        self.spec = spec
        self.dtype = np.dtype(dtype)
        self.timing_workload = timing_workload
        self.name = "SCD(1 thread)"

    def _priced(self, workload: EpochWorkload) -> EpochWorkload:
        return self.timing_workload or workload

    def bind_primal(
        self, csc: CscMatrix, y: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        csc = csc if csc.dtype == self.dtype else csc.astype(self.dtype)
        y = y.astype(self.dtype, copy=False)
        indptr, indices, data = csc.indptr, csc.indices, csc.data
        y_dots = csc.rmatvec(y).astype(self.dtype, copy=False)
        nlam = self.dtype.type(n_global * lam)
        inv_denom = (1.0 / (csc.col_norms_sq() + n_global * lam)).astype(self.dtype)

        def run_epoch(beta, w, perm, rng):
            primal_epoch_sequential(
                indptr, indices, data, y_dots, inv_denom, nlam, beta, w, perm
            )
            return 0

        return BoundKernel(
            run_epoch=run_epoch,
            workload=self._priced(
                EpochWorkload(
                    n_coords=csc.n_major, nnz=csc.nnz, shared_len=csc.shape[0]
                )
            ),
            timing=SequentialCpuTiming(self.spec),
            n_coords=csc.n_major,
            shared_len=csc.shape[0],
            dtype=self.dtype,
        )

    def bind_dual(
        self, csr: CsrMatrix, y_local: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        csr = csr if csr.dtype == self.dtype else csr.astype(self.dtype)
        y_local = y_local.astype(self.dtype, copy=False)
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        lam_t = self.dtype.type(lam)
        nlam = self.dtype.type(n_global * lam)
        inv_denom = (1.0 / (n_global * lam + csr.row_norms_sq())).astype(self.dtype)

        def run_epoch(alpha, wbar, perm, rng):
            dual_epoch_sequential(
                indptr, indices, data, y_local, inv_denom, lam_t, nlam, alpha, wbar, perm
            )
            return 0

        return BoundKernel(
            run_epoch=run_epoch,
            workload=self._priced(
                EpochWorkload(
                    n_coords=csr.n_major, nnz=csr.nnz, shared_len=csr.shape[1]
                )
            ),
            timing=SequentialCpuTiming(self.spec),
            n_coords=csr.n_major,
            shared_len=csr.shape[1],
            dtype=self.dtype,
        )


class SequentialSCD(ScdSolver):
    """User-facing sequential SCD solver (the paper's "SCD (1 thread)")."""

    def __init__(
        self,
        formulation: str = "primal",
        *,
        spec: CpuSpec = XEON_8C,
        dtype=np.float64,
        seed: int = 0,
    ) -> None:
        super().__init__(
            SequentialKernelFactory(spec, dtype=dtype), formulation, seed
        )
