"""Stochastic gradient descent and Hogwild for primal ridge (references
[3] and [12] of the paper).

The introduction positions SCD alongside SGD as the stochastic alternatives
to batch methods, and the related work discusses Hogwild's lock-free
asynchronous SGD.  Both are implemented here for primal ridge regression:

* :class:`SgdSolver` — sequential SGD with the Bottou step-size schedule
  ``eta_t = 1 / (lam (t + t0))`` for the strongly-convex objective, using
  the standard scaling trick so each step costs O(nnz(x_i)) despite the
  dense L2 decay;
* Hogwild mode — chunks of ``n_threads`` examples compute their gradients
  against the weights as of the chunk start (stale reads) and all updates
  are applied (Hogwild's atomicity-free writes rarely collide on sparse
  data, so — unlike PASSCoDe-Wild's shared-*vector* races — modelling them
  as applied is the observed behaviour the Hogwild paper reports).

SGD converges at a ~1/t rate to a noise ball, in contrast to SCD's linear
rate; the comparison experiment shows exactly that, which is why the paper
builds on SCD.
"""

from __future__ import annotations

import time

import numpy as np

from ..cpu import XEON_8C, CpuSpec, SequentialCpuTiming, ThreadedCpuTiming
from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.ridge import RidgeProblem
from ..perf.timing import EpochWorkload
from .base import TrainResult

__all__ = ["SgdSolver"]


class SgdSolver:
    """(Asynchronous) stochastic gradient descent on the primal objective.

    Parameters
    ----------
    n_threads:
        1 = sequential SGD; > 1 enables the Hogwild execution model
        (chunked stale gradients, all updates applied).
    t0:
        Step-size schedule offset: ``eta_t = 1 / (lam * (t + t0))``.
    """

    def __init__(
        self,
        *,
        n_threads: int = 1,
        t0: float | None = None,
        spec: CpuSpec = XEON_8C,
        seed: int = 0,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = int(n_threads)
        self.t0 = t0
        self.spec = spec
        self.seed = int(seed)
        self.name = "SGD" if n_threads == 1 else f"Hogwild({n_threads} threads)"
        self.timing_workload: EpochWorkload | None = None

    def solve(
        self,
        problem: RidgeProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
    ) -> TrainResult:
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        csr = problem.dataset.csr
        y = problem.y.astype(np.float64)
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        lam = problem.lam
        n = problem.n
        # default schedule offset: start at eta ~ 1/(lam t0) ~ 1/max_row_norm
        t0_sched = self.t0 if self.t0 is not None else float(
            max(csr.row_norms_sq().max(), 1.0) / lam
        )
        beta = np.zeros(problem.m)
        rng = np.random.default_rng(self.seed)
        workload = self.timing_workload or EpochWorkload(
            n_coords=n, nnz=csr.nnz, shared_len=problem.m
        )
        if self.n_threads == 1:
            timing = SequentialCpuTiming(self.spec)
        else:
            timing = ThreadedCpuTiming(
                self.spec, n_threads=self.n_threads, mode="wild"
            )
        epoch_s = timing.epoch_seconds(workload)
        history = ConvergenceHistory(label=self.name)
        t_start = time.perf_counter()
        history.append(
            ConvergenceRecord(
                epoch=0,
                gap=problem.primal_gap(beta),
                objective=problem.primal_objective(beta),
                sim_time=0.0,
                wall_time=0.0,
                updates=0,
            )
        )
        step = 0
        sim = 0.0
        # scaling trick state: beta = scale * v
        scale = 1.0
        v = beta  # alias; beta is reconstructed at monitor points
        for epoch in range(1, n_epochs + 1):
            perm = rng.permutation(n)
            if self.n_threads == 1:
                for i in perm:
                    step += 1
                    eta = 1.0 / (lam * (step + t0_sched))
                    lo, hi = indptr[i], indptr[i + 1]
                    idx = indices[lo:hi]
                    x = data[lo:hi]
                    resid = scale * (x @ v[idx]) - y[i]
                    scale *= 1.0 - eta * lam
                    if scale < 1e-9:  # renormalize to avoid underflow
                        v *= scale
                        scale = 1.0
                    v[idx] -= (eta * resid / scale) * x
            else:
                chunk = self.n_threads
                for start in range(0, n, chunk):
                    rows = perm[start : start + chunk]
                    step += rows.shape[0]
                    eta = 1.0 / (lam * (step + t0_sched))
                    # stale reads: all gradients against the chunk-start beta
                    beta_now = scale * v
                    decay = (1.0 - eta * lam) ** rows.shape[0]
                    scale *= decay
                    if scale < 1e-9:
                        v *= scale
                        scale = 1.0
                    for i in rows:
                        lo, hi = indptr[i], indptr[i + 1]
                        idx = indices[lo:hi]
                        x = data[lo:hi]
                        resid = beta_now[idx] @ x - y[i]
                        # Hogwild: every (sparse) increment lands
                        v[idx] -= (eta * resid / scale) * x
            sim += epoch_s
            if epoch % monitor_every == 0 or epoch == n_epochs:
                beta_now = scale * v
                gap = problem.primal_gap(beta_now)
                history.append(
                    ConvergenceRecord(
                        epoch=epoch,
                        gap=gap,
                        objective=problem.primal_objective(beta_now),
                        sim_time=sim,
                        wall_time=time.perf_counter() - t_start,
                        updates=step,
                        extras={"eta": 1.0 / (lam * (step + t0_sched))},
                    )
                )
                if target_gap is not None and gap <= target_gap:
                    break
        beta_final = scale * v
        return TrainResult(
            formulation="primal",
            weights=beta_final,
            shared=problem.dataset.csc.matvec(beta_final),
            history=history,
            solver_name=self.name,
        )
