"""Stochastic dual coordinate ascent for the linear SVM (extension).

One epoch is a random permutation over the training examples; the shared
vector is the primal weight vector ``w = A^T(alpha*y)/(lam N)`` itself, kept
exactly consistent with the dual variables (the SDCA invariant).  Monitored
through the true hinge duality gap.
"""

from __future__ import annotations

import time

import numpy as np

from ..metrics import ConvergenceHistory, ConvergenceRecord
from ..objectives.svm import SvmProblem

__all__ = ["SvmSdca"]


class SvmSdca:
    """SDCA solver for the L2-regularized hinge-loss SVM."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.name = "SvmSdca"

    def solve(
        self,
        problem: SvmProblem,
        n_epochs: int,
        *,
        monitor_every: int = 1,
        target_gap: float | None = None,
    ):
        """Train for up to ``n_epochs``; returns ``(w, alpha, history)``."""
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if monitor_every < 1:
            raise ValueError("monitor_every must be >= 1")
        csr = problem.dataset.csr
        y = problem.y.astype(np.float64)
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        norms = csr.row_norms_sq().astype(np.float64)
        inv_lam_n = 1.0 / (problem.lam * problem.n)
        alpha = np.zeros(problem.n, dtype=np.float64)
        w = np.zeros(problem.m, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        history = ConvergenceHistory(label=self.name)
        t0 = time.perf_counter()
        history.append(
            ConvergenceRecord(
                epoch=0,
                gap=problem.duality_gap(alpha, w),
                objective=problem.dual_objective(alpha),
                sim_time=0.0,
                wall_time=0.0,
                updates=0,
            )
        )
        updates = 0
        for epoch in range(1, n_epochs + 1):
            for i in rng.permutation(problem.n):
                lo, hi = indptr[i], indptr[i + 1]
                idx = indices[lo:hi]
                v = data[lo:hi]
                margin_dot = float(v @ w[idx]) if lo != hi else 0.0
                delta = problem.coordinate_delta(
                    i, float(alpha[i]), margin_dot, float(norms[i])
                )
                if delta != 0.0:
                    alpha[i] += delta
                    if lo != hi:
                        w[idx] += v * (delta * y[i] * inv_lam_n)
                updates += 1
            if epoch % monitor_every == 0 or epoch == n_epochs:
                gap = problem.duality_gap(alpha, w)
                history.append(
                    ConvergenceRecord(
                        epoch=epoch,
                        gap=gap,
                        objective=problem.dual_objective(alpha),
                        sim_time=time.perf_counter() - t0,
                        wall_time=time.perf_counter() - t0,
                        updates=updates,
                        extras={"support_vectors": int(np.count_nonzero(alpha))},
                    )
                )
                if target_gap is not None and gap <= target_gap:
                    break
        return w, alpha, history
