"""SySCD: system-aware parallel coordinate descent on real CPU threads.

The paper's asynchronous CPU baselines (:mod:`repro.solvers.ascd`) *model*
thread scaling; this solver *measures* it.  Following SySCD (Ioannou,
Mendler-Dünner & Parnell, NeurIPS 2019 — PAPERS.md), one epoch runs as:

1. the epoch permutation is partitioned into contiguous cache-sized
   *buckets* (:func:`~repro.solvers.syscd_kernels.bucket_bounds`);
2. the bucket order is reshuffled and dealt round-robin to ``n_threads``
   workers — the bucket-reshuffle epoch boundary;
3. workers process ``merge_every`` buckets per *period* against a private
   replica of the shared vector (no atomics, no lost updates);
4. at each period boundary the main thread merges the replicas back:
   ``merge="sum"`` applies every thread's delta (the convergence-safe
   sum-correction merge, keeping ``w == A beta`` exactly), ``merge="mean"``
   averages them (damped, CoCoA-style).

With ``n_threads=1`` the solver takes the exact Algorithm-1 path instead —
sequential updates against fresh state — which is the **bitwise reference**
the golden-fingerprint tests pin; threaded runs must agree with it on
per-epoch objectives to tolerance.  Everything stochastic derives from the
driver's permutation stream, and the merge order is fixed by thread id, so
threaded runs are deterministic too (for a fixed thread count) regardless
of OS scheduling.

Observability: periods are billed through ``syscd.bucket`` / ``syscd.merge``
spans (at ``detail="wave"``, following the GPU wave-span precedent) and the
``syscd.*`` metrics (bucket count, merges, merge divergence, bucket
imbalance, threads) are emitted every epoch.  Workers never touch the
tracer — it is not thread-safe — so all instrumentation happens on the
main thread.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..cpu import XEON_8C, CpuSpec
from ..cpu.spec import _base_epoch_seconds
from ..obs import NULL_TRACER
from ..perf.timing import EpochWorkload
from ..sparse import CscMatrix, CsrMatrix
from .base import BoundKernel, ScdSolver
from .kernels import _epoch_gather
from .syscd_kernels import (
    auto_bucket_size,
    bucket_bounds,
    bucket_pass_numpy,
    exact_epoch_numpy,
    get_numba_kernels,
    resolve_backend,
)

__all__ = ["SyscdCpuTiming", "SyscdKernelFactory", "SySCD"]

#: SySCD's measured thread scaling is near-linear (its bucketed, merge-based
#: design removes the atomics that cap A-SCD at T^0.25); 0.9 keeps the model
#: sub-linear and monotone like the other CPU laws
SYSCD_SCALING = 0.9

# process-wide worker pools, one per thread count: epochs are frequent and
# short, so pool startup must not be billed to every epoch
_POOLS: dict[int, ThreadPoolExecutor] = {}


def _get_pool(n_threads: int) -> ThreadPoolExecutor:
    pool = _POOLS.get(n_threads)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=n_threads, thread_name_prefix=f"syscd-{n_threads}"
        )
        _POOLS[n_threads] = pool
    return pool


class SyscdCpuTiming:
    """Modelled epoch cost for the bucketed replica-merge execution.

    Compute scales as ``T^0.9`` over the sequential base; each merge streams
    ``n_threads`` replica deltas of ``shared_len`` elements through the
    sequential nnz rate.  Only the *modelled* clock uses this — the bench
    suite measures the real one.
    """

    component = "compute_host"

    def __init__(
        self,
        spec: CpuSpec = XEON_8C,
        *,
        n_threads: int = 4,
        bucket_size: int = 64,
        merge_every: int = 1,
    ) -> None:
        self.spec = spec
        self.n_threads = int(n_threads)
        self.bucket_size = int(bucket_size)
        self.merge_every = int(merge_every)
        self._speedup = float(n_threads) ** SYSCD_SCALING

    @property
    def speedup(self) -> float:
        return self._speedup

    def merges_per_epoch(self, n_coords: int) -> int:
        n_buckets = -(-n_coords // self.bucket_size)
        per_thread = -(-n_buckets // self.n_threads)
        return -(-per_thread // self.merge_every)

    def epoch_seconds(self, workload: EpochWorkload) -> float:
        compute = _base_epoch_seconds(self.spec, workload) / self._speedup
        merges = self.merges_per_epoch(workload.n_coords)
        merge_cost = (
            merges * self.n_threads * workload.shared_len / self.spec.seq_nnz_per_sec
        )
        return compute + merge_cost


class SyscdKernelFactory:
    """Binds the SySCD bucketed epoch to either ridge formulation.

    Parameters
    ----------
    n_threads:
        Worker threads.  ``1`` selects the exact sequential reference path.
    bucket_size:
        Coordinates per bucket; buckets are the unit of work dealt to
        threads and the staleness window of the replica inner products.
        ``None`` (the default) sizes buckets per problem at bind time via
        :func:`~repro.solvers.syscd_kernels.auto_bucket_size`, keeping the
        per-period staleness window a small fraction of the coordinates.
    merge_every:
        Buckets each thread processes between replica merges.  ``1`` (the
        default) keeps the staleness window one bucket per thread, which
        holds threaded trajectories within a fraction of a percent of the
        sequential objective on the bench dataset.
    merge:
        ``"sum"`` (convergence-safe sum-correction) or ``"mean"`` (replica
        averaging).
    kernel_backend:
        ``"numpy"``, ``"numba"``, or ``"auto"`` (numba when importable,
        else numpy; the backends are bit-identical).
    """

    def __init__(
        self,
        spec: CpuSpec = XEON_8C,
        *,
        n_threads: int = 4,
        bucket_size: int | None = None,
        merge_every: int = 1,
        merge: str = "sum",
        kernel_backend: str = "auto",
        timing_workload: EpochWorkload | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if n_threads > spec.max_threads:
            raise ValueError(
                f"{spec.name} supports at most {spec.max_threads} threads"
            )
        if bucket_size is not None and bucket_size < 1:
            raise ValueError("bucket_size must be >= 1 (or None for auto)")
        if merge_every < 1:
            raise ValueError("merge_every must be >= 1")
        if merge not in ("sum", "mean"):
            raise ValueError(f"unknown merge {merge!r}; use 'sum' or 'mean'")
        self.spec = spec
        self.n_threads = int(n_threads)
        self.bucket_size = None if bucket_size is None else int(bucket_size)
        self.merge_every = int(merge_every)
        self.merge = merge
        self.backend = resolve_backend(kernel_backend)
        self.timing_workload = timing_workload
        self.tracer = NULL_TRACER
        self.name = f"SySCD({self.n_threads} threads, {self.backend})"

    # -- kernel selection ---------------------------------------------------

    def _kernels(self):
        if self.backend == "numba":
            compiled = get_numba_kernels()
            return compiled["exact"], compiled["bucket"]
        return exact_epoch_numpy, bucket_pass_numpy

    # -- epoch execution ----------------------------------------------------

    def _make_run_epoch(
        self, indptr, indices, data, target, inv_denom, nlam, shared_len, bucket_size
    ):
        exact_kernel, bucket_kernel = self._kernels()
        n_threads = self.n_threads
        merge_every = self.merge_every
        mean_merge = self.merge == "mean"
        inv_t = 1.0 / n_threads
        factory = self  # tracer is installed on the factory after binding
        replicas = [
            np.zeros(shared_len, dtype=np.float64) for _ in range(n_threads)
        ]

        def run_exact(coef, shared, perm, rng):
            tracer = factory.tracer
            edges = bucket_bounds(perm.shape[0], bucket_size)
            n_buckets = edges.shape[0] - 1
            if tracer.enabled and tracer.detail == "wave":
                for b in range(n_buckets):
                    with tracer.span(
                        "syscd.bucket", category="solver", bucket=b, threads=1
                    ):
                        exact_kernel(
                            indptr, indices, data, target, inv_denom, nlam,
                            coef, shared, perm[edges[b]:edges[b + 1]],
                        )
            else:
                # bucket edges do not change exact semantics: one ordered pass
                exact_kernel(
                    indptr, indices, data, target, inv_denom, nlam,
                    coef, shared, perm,
                )
            tracer.count("syscd.buckets", n_buckets)
            tracer.gauge("syscd.threads", 1)
            return 0

        def run_threaded(coef, shared, perm, rng):
            tracer = factory.tracer
            period_spans = tracer.enabled and tracer.detail == "wave"
            n = perm.shape[0]
            edges = bucket_bounds(n, bucket_size)
            n_buckets = edges.shape[0] - 1
            e_idx, e_val, eptr = _epoch_gather(indptr, indices, data, perm)
            # bucket-reshuffle epoch boundary: a fresh bucket order each
            # epoch, dealt round-robin so thread assignments rotate too
            order = rng.permutation(n_buckets)
            assigned = [order[t::n_threads] for t in range(n_threads)]
            n_periods = -(-assigned[0].shape[0] // merge_every)
            pool = _get_pool(n_threads)

            def work(thread_id, buckets):
                replica = replicas[thread_id]
                for b in buckets:
                    lo, hi = edges[b], edges[b + 1]
                    a, z = int(eptr[lo]), int(eptr[hi])
                    bucket_kernel(
                        e_idx[a:z], e_val[a:z], eptr[lo:hi + 1] - a,
                        perm[lo:hi], target, inv_denom, nlam, coef, replica,
                    )

            max_divergence = 0.0
            for period in range(n_periods):
                chunks = [
                    assigned[t][period * merge_every:(period + 1) * merge_every]
                    for t in range(n_threads)
                ]
                for t in range(n_threads):
                    np.copyto(replicas[t], shared)
                if period_spans:
                    with tracer.span(
                        "syscd.bucket", category="solver", period=period,
                        buckets=int(sum(c.shape[0] for c in chunks)),
                        threads=n_threads,
                    ):
                        futures = [
                            pool.submit(work, t, chunks[t])
                            for t in range(n_threads)
                        ]
                        for future in futures:
                            future.result()
                else:
                    futures = [
                        pool.submit(work, t, chunks[t])
                        for t in range(n_threads)
                    ]
                    for future in futures:
                        future.result()
                # merge on the main thread, in thread-id order: deterministic
                # independent of how the OS scheduled the workers
                with tracer.span(
                    "syscd.merge", category="solver", period=period
                ) if period_spans else _NULL_CTX:
                    for t in range(n_threads):
                        replicas[t] -= shared
                    if tracer.enabled:
                        for t in range(n_threads):
                            div = float(np.abs(replicas[t]).max(initial=0.0))
                            if div > max_divergence:
                                max_divergence = div
                    if mean_merge:
                        for t in range(n_threads):
                            replicas[t] *= inv_t
                    for t in range(n_threads):
                        shared += replicas[t]

            if tracer.enabled:
                nnz_per_thread = [
                    float(sum(int(eptr[edges[b + 1]] - eptr[edges[b]]) for b in blist))
                    for blist in assigned
                ]
                mean_nnz = sum(nnz_per_thread) / n_threads
                tracer.count("syscd.buckets", n_buckets)
                tracer.count("syscd.merges", n_periods)
                tracer.observe("syscd.merge_divergence", max_divergence)
                tracer.gauge(
                    "syscd.bucket_imbalance",
                    max(nnz_per_thread) / mean_nnz if mean_nnz else 1.0,
                )
                tracer.gauge("syscd.threads", n_threads)
            return 0

        return run_exact if n_threads == 1 else run_threaded

    # -- bindings -----------------------------------------------------------

    def _priced(self, workload: EpochWorkload) -> EpochWorkload:
        return self.timing_workload or workload

    def _bucket_size(self, n_coords: int) -> int:
        if self.bucket_size is not None:
            return self.bucket_size
        return auto_bucket_size(n_coords, self.n_threads)

    def _timing(self, bucket_size: int) -> SyscdCpuTiming:
        return SyscdCpuTiming(
            self.spec,
            n_threads=self.n_threads,
            bucket_size=bucket_size,
            merge_every=self.merge_every,
        )

    def bind_primal(
        self, csc: CscMatrix, y: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        csc = csc if csc.dtype == np.dtype(np.float64) else csc.astype(np.float64)
        y = y.astype(np.float64, copy=False)
        target = csc.rmatvec(y).astype(np.float64, copy=False)
        nlam = float(n_global * lam)
        inv_denom = (1.0 / (csc.col_norms_sq() + n_global * lam)).astype(np.float64)
        bucket_size = self._bucket_size(csc.n_major)
        return BoundKernel(
            run_epoch=self._make_run_epoch(
                csc.indptr, csc.indices, csc.data, target, inv_denom, nlam,
                csc.shape[0], bucket_size,
            ),
            workload=self._priced(
                EpochWorkload(
                    n_coords=csc.n_major, nnz=csc.nnz, shared_len=csc.shape[0]
                )
            ),
            timing=self._timing(bucket_size),
            n_coords=csc.n_major,
            shared_len=csc.shape[0],
            dtype=np.dtype(np.float64),
        )

    def bind_dual(
        self, csr: CsrMatrix, y_local: np.ndarray, n_global: int, lam: float
    ) -> BoundKernel:
        csr = csr if csr.dtype == np.dtype(np.float64) else csr.astype(np.float64)
        y_local = y_local.astype(np.float64, copy=False)
        target = (lam * y_local).astype(np.float64, copy=False)
        nlam = float(n_global * lam)
        inv_denom = (1.0 / (n_global * lam + csr.row_norms_sq())).astype(np.float64)
        bucket_size = self._bucket_size(csr.n_major)
        return BoundKernel(
            run_epoch=self._make_run_epoch(
                csr.indptr, csr.indices, csr.data, target, inv_denom, nlam,
                csr.shape[1], bucket_size,
            ),
            workload=self._priced(
                EpochWorkload(
                    n_coords=csr.n_major, nnz=csr.nnz, shared_len=csr.shape[1]
                )
            ),
            timing=self._timing(bucket_size),
            n_coords=csr.n_major,
            shared_len=csr.shape[1],
            dtype=np.dtype(np.float64),
        )


class _NullContext:
    """``with`` target used when period spans are disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullContext()


class SySCD(ScdSolver):
    """User-facing SySCD solver (``repro.train(..., solver="syscd")``)."""

    def __init__(
        self,
        formulation: str = "primal",
        *,
        spec: CpuSpec = XEON_8C,
        n_threads: int = 4,
        bucket_size: int | None = None,
        merge_every: int = 1,
        merge: str = "sum",
        kernel_backend: str = "auto",
        seed: int = 0,
    ) -> None:
        super().__init__(
            SyscdKernelFactory(
                spec,
                n_threads=n_threads,
                bucket_size=bucket_size,
                merge_every=merge_every,
                merge=merge,
                kernel_backend=kernel_backend,
            ),
            formulation,
            seed,
        )
