"""SySCD bucket kernels and the optional compiled (numba) backend.

SySCD (Ioannou, Mendler-Dünner & Parnell, NeurIPS 2019) restructures
shared-memory parallel coordinate descent around three system-aware ideas:
coordinates are processed in *buckets* sized for the cache hierarchy, each
worker thread updates a *private replica* of the shared vector, and replicas
are reconciled in periodic *merge* steps instead of per-update atomics.
This module holds the numerical kernels for one bucket pass plus the exact
single-thread reference; the orchestration (threads, replicas, merges)
lives in :mod:`repro.solvers.syscd`.

Two interchangeable backends implement the same kernels:

* **numpy** — always available; the bitwise reference implementation.
* **numba** — ``@njit(nogil=True)`` scalar loops, compiled on first use
  when numba is importable.  ``nogil`` releases the GIL inside the bucket
  pass, so on multi-core hosts the worker threads genuinely run in
  parallel.

The two backends are **bit-identical** by construction, which the test
suite asserts.  That is only possible because every inner product is
computed through :func:`numpy.cumsum` prefix sums — a strictly sequential
left-to-right accumulation that a scalar loop reproduces exactly — rather
than BLAS ``dot`` (whose blocked accumulation order is implementation
defined), and every scatter uses :func:`numpy.add.at` (applies updates in
index order) mirrored by an in-order loop.  Neither backend enables
fastmath/FMA contraction.

Both formulations of ridge regression share one update rule::

    delta_j = (target[j] - <a_j, v> - N*lam * coef[j]) * inv_denom[j]

with ``target = A^T y`` / ``v = w`` for the primal and ``target = lam*y`` /
``v = wbar`` for the dual, so one kernel pair serves both bindings.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KERNEL_BACKENDS",
    "numba_available",
    "resolve_backend",
    "auto_bucket_size",
    "bucket_bounds",
    "exact_epoch_numpy",
    "bucket_pass_numpy",
    "get_numba_kernels",
]

#: accepted values of ``SolverConfig.kernel_backend``
KERNEL_BACKENDS = ("numpy", "numba", "auto")

# cached import probe: None = not probed, False = unavailable, dict = kernels
_NUMBA_KERNELS: dict | None | bool = None


def numba_available() -> bool:
    """Whether the numba JIT backend can be imported (never raises)."""
    return get_numba_kernels() is not None


def resolve_backend(requested: str) -> str:
    """Map a requested backend name to the concrete one that will run.

    ``"auto"`` degrades gracefully: it selects numba when importable and
    silently falls back to numpy otherwise (the two are bit-identical, so
    the fallback changes speed, never results).  Requesting ``"numba"``
    explicitly on a host without numba is an error.
    """
    if requested not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel_backend {requested!r}; "
            f"choose from {KERNEL_BACKENDS}"
        )
    if requested == "numpy":
        return "numpy"
    if requested == "numba":
        if not numba_available():
            raise ValueError(
                "kernel_backend='numba' but numba is not importable; "
                "install numba or use kernel_backend='auto'"
            )
        return "numba"
    return "numba" if numba_available() else "numpy"


def auto_bucket_size(n_coords: int, n_threads: int) -> int:
    """Default bucket size for a problem of ``n_coords`` coordinates.

    SySCD sizes buckets for the cache, but on small problems the binding
    constraint is *staleness*: each merge period applies up to
    ``n_threads * bucket_size`` updates computed against a common snapshot,
    and once that window is a large fraction of the coordinates the summed
    corrections overshoot (heavily overlapping coordinates double-count
    each other's progress and the trajectory can diverge).  Keeping the
    window at ~1/16 of the coordinates holds threaded objectives within a
    fraction of a percent of the sequential trajectory on the shipped
    datasets; 256 caps the bucket's gather working set at cache-friendly
    sizes, and the floor of 8 keeps vectorized passes worthwhile.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    return max(8, min(256, n_coords // (16 * n_threads)))


def bucket_bounds(n_coords: int, bucket_size: int) -> np.ndarray:
    """Edges of the contiguous bucket partition of ``range(n_coords)``.

    Returns an int64 array ``edges`` with ``edges[0] == 0`` and
    ``edges[-1] == n_coords``; bucket ``b`` covers positions
    ``edges[b]:edges[b+1]`` of the epoch permutation.  Every position lands
    in exactly one bucket (the partition property the hypothesis tests
    pin), and only the last bucket may be short.
    """
    if bucket_size < 1:
        raise ValueError("bucket_size must be >= 1")
    if n_coords < 0:
        raise ValueError("n_coords must be non-negative")
    return np.append(
        np.arange(0, n_coords, bucket_size, dtype=np.int64),
        np.int64(n_coords),
    )


# ---------------------------------------------------------------------------
# numpy backend (the bitwise reference)
# ---------------------------------------------------------------------------


def exact_epoch_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    target: np.ndarray,
    inv_denom: np.ndarray,
    nlam: float,
    coef: np.ndarray,
    shared: np.ndarray,
    order: np.ndarray,
) -> None:
    """Exact Algorithm-1 pass over ``order``: every update sees fresh state.

    This is SySCD's single-thread reference semantics; the threaded path
    must agree with it on per-epoch objectives to tolerance.  The dot is a
    cumsum prefix (sequential accumulation) so the numba twin matches
    bitwise.
    """
    for j in order:
        lo = indptr[j]
        hi = indptr[j + 1]
        if lo == hi:
            dot = 0.0
        else:
            idx = indices[lo:hi]
            v = data[lo:hi]
            dot = np.cumsum(v * shared[idx])[-1]
        delta = (target[j] - dot - nlam * coef[j]) * inv_denom[j]
        coef[j] += delta
        if lo != hi:
            shared[idx] += v * delta


def bucket_pass_numpy(
    e_idx: np.ndarray,
    e_val: np.ndarray,
    seg_ptr: np.ndarray,
    coords: np.ndarray,
    target: np.ndarray,
    inv_denom: np.ndarray,
    nlam: float,
    coef: np.ndarray,
    replica: np.ndarray,
) -> None:
    """One bucket's updates against a private replica (stale within bucket).

    All inner products read ``replica`` as of bucket start, then every
    coordinate's update is applied — the same chunk framing as the async
    kernels, but writing a thread-private replica so no update is ever
    lost.  ``e_idx``/``e_val``/``seg_ptr`` are the bucket's slice of the
    epoch gather; ``coords`` are the coordinate ids (unique within an
    epoch permutation, so the fancy ``coef`` update has no duplicates).
    """
    prods = e_val * replica[e_idx]
    prefix = np.empty(prods.shape[0] + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(prods, dtype=np.float64, out=prefix[1:])
    dots = prefix[seg_ptr[1:]] - prefix[seg_ptr[:-1]]
    deltas = (target[coords] - dots - nlam * coef[coords]) * inv_denom[coords]
    coef[coords] += deltas
    np.add.at(replica, e_idx, e_val * np.repeat(deltas, np.diff(seg_ptr)))


# ---------------------------------------------------------------------------
# numba backend (compiled on first use; bit-identical to the numpy kernels)
# ---------------------------------------------------------------------------


def get_numba_kernels() -> dict | None:
    """The compiled kernel pair, or ``None`` when numba is unavailable.

    Compiled lazily and cached for the process; the jitted functions use
    ``nogil=True`` (parallel bucket passes across threads) and default
    strict FP semantics (no fastmath, no FMA contraction) so they replicate
    the numpy kernels' accumulation order exactly:

    * dots accumulate left-to-right, seeding the accumulator with the
      *first product* (matching ``np.cumsum``'s ``out[0] = x[0]``, not
      ``0.0 + x[0]`` — the two differ on signed zeros);
    * scatters apply element updates in flat-array order (``np.add.at``).
    """
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is not None:
        return _NUMBA_KERNELS if _NUMBA_KERNELS is not False else None
    try:
        from numba import njit
    except ImportError:
        _NUMBA_KERNELS = False
        return None

    @njit(nogil=True)
    def exact_epoch_nb(
        indptr, indices, data, target, inv_denom, nlam, coef, shared, order
    ):  # pragma: no cover - exercised only where numba is installed
        for k in range(order.shape[0]):
            j = order[k]
            lo = indptr[j]
            hi = indptr[j + 1]
            dot = 0.0
            for p in range(lo, hi):
                prod = data[p] * shared[indices[p]]
                if p == lo:
                    dot = prod
                else:
                    dot += prod
            delta = (target[j] - dot - nlam * coef[j]) * inv_denom[j]
            coef[j] += delta
            for p in range(lo, hi):
                shared[indices[p]] += data[p] * delta

    @njit(nogil=True)
    def bucket_pass_nb(
        e_idx, e_val, seg_ptr, coords, target, inv_denom, nlam, coef, replica
    ):  # pragma: no cover - exercised only where numba is installed
        n = coords.shape[0]
        dots = np.empty(n, dtype=np.float64)
        acc = 0.0
        for s in range(n):
            start = acc
            for p in range(seg_ptr[s], seg_ptr[s + 1]):
                prod = e_val[p] * replica[e_idx[p]]
                if p == 0:
                    acc = prod
                else:
                    acc += prod
            dots[s] = acc - start
        for s in range(n):
            j = coords[s]
            delta = (target[j] - dots[s] - nlam * coef[j]) * inv_denom[j]
            coef[j] += delta
            for p in range(seg_ptr[s], seg_ptr[s + 1]):
                replica[e_idx[p]] += e_val[p] * delta

    _NUMBA_KERNELS = {"exact": exact_epoch_nb, "bucket": bucket_pass_nb}
    return _NUMBA_KERNELS
