"""Sparse matrix substrate: CSC/CSR formats implemented from scratch."""

from .matrix import (
    CscMatrix,
    CsrMatrix,
    from_coo,
    from_dense_csc,
    from_dense_csr,
)
from .ops import (
    check_compressed,
    expand_by_segments,
    segment_lengths,
    segment_sums,
    transpose_compressed,
)

__all__ = [
    "CscMatrix",
    "CsrMatrix",
    "from_coo",
    "from_dense_csc",
    "from_dense_csr",
    "check_compressed",
    "expand_by_segments",
    "segment_lengths",
    "segment_sums",
    "transpose_compressed",
]
