"""Compressed sparse matrix formats built from scratch on NumPy arrays.

The paper stores the training matrix in compressed sparse *column* format when
solving the primal problem (coordinates are features, i.e. columns) and
compressed sparse *row* format when solving the dual (coordinates are
examples, i.e. rows).  Both formats are implemented here with exactly the
views the solvers need: O(1) access to one coordinate's nonzeros, vectorized
matvec / rmatvec, per-coordinate squared norms, and cheap sub-selection along
the major axis for distributed partitioning.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .ops import (
    check_compressed,
    expand_by_segments,
    segment_sums,
    transpose_compressed,
)

__all__ = ["CscMatrix", "CsrMatrix", "from_coo", "from_dense_csc", "from_dense_csr"]

_INDEX_DTYPE = np.int64


class _CompressedBase:
    """Shared behaviour of :class:`CscMatrix` and :class:`CsrMatrix`.

    Subclasses fix the interpretation of the major axis (columns for CSC,
    rows for CSR).  ``indptr``/``indices``/``data`` follow the usual
    compressed-storage conventions.
    """

    #: axis index (into ``shape``) of the compressed/major axis
    _major_axis: int = 0

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        check: bool = True,
    ) -> None:
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self.shape = (n_rows, n_cols)
        self.indptr = np.ascontiguousarray(indptr, dtype=_INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=_INDEX_DTYPE)
        self.data = np.ascontiguousarray(data)
        if self.data.dtype.kind != "f":
            self.data = self.data.astype(np.float64)
        if check:
            check_compressed(
                self.indptr, self.indices, self.data, self.n_major, self.n_minor
            )

    # -- geometry ----------------------------------------------------------
    @property
    def n_major(self) -> int:
        return self.shape[self._major_axis]

    @property
    def n_minor(self) -> int:
        return self.shape[1 - self._major_axis]

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Bytes of storage, used for GPU memory-capacity accounting."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    @property
    def density(self) -> float:
        size = self.shape[0] * self.shape[1]
        return self.nnz / size if size else 0.0

    # -- element access ----------------------------------------------------
    def major_slice(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(minor_indices, values)`` views of major-axis entry ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def major_norms_sq(self) -> np.ndarray:
        """Squared L2 norm of each major-axis vector (column or row)."""
        return segment_sums(self.data * self.data, self.indptr)

    def major_nnz(self) -> np.ndarray:
        """Number of stored entries per major-axis vector."""
        return np.diff(self.indptr)

    # -- algebra on the raw triplet -----------------------------------------
    def _scatter_product(self, x_major: np.ndarray) -> np.ndarray:
        """Compute ``sum_j x[j] * vec_j`` scattered onto the minor axis.

        For CSC this is ``A @ x`` (x over columns); for CSR it is ``A.T @ x``
        (x over rows).
        """
        if x_major.shape[0] != self.n_major:
            raise ValueError(
                f"operand has length {x_major.shape[0]}, expected {self.n_major}"
            )
        out = np.zeros(self.n_minor, dtype=np.result_type(self.dtype, x_major.dtype))
        contrib = self.data * expand_by_segments(x_major, self.indptr)
        np.add.at(out, self.indices, contrib)
        return out

    def _gather_product(self, x_minor: np.ndarray) -> np.ndarray:
        """Compute ``<vec_j, x>`` for every major-axis vector ``j``.

        For CSC this is ``A.T @ x``; for CSR it is ``A @ x``.
        """
        if x_minor.shape[0] != self.n_minor:
            raise ValueError(
                f"operand has length {x_minor.shape[0]}, expected {self.n_minor}"
            )
        prods = self.data * x_minor[self.indices]
        return segment_sums(prods, self.indptr)

    # -- structural ops ------------------------------------------------------
    def take_major(self, sel: np.ndarray):
        """Sub-select major-axis vectors (columns of CSC / rows of CSR).

        Used by the distributed partitioners: selecting a worker's local
        coordinates is O(local nnz).
        """
        sel = np.asarray(sel, dtype=_INDEX_DTYPE)
        lengths = np.diff(self.indptr)[sel]
        new_indptr = np.empty(sel.shape[0] + 1, dtype=_INDEX_DTYPE)
        new_indptr[0] = 0
        np.cumsum(lengths, out=new_indptr[1:])
        total = int(new_indptr[-1])
        new_indices = np.empty(total, dtype=_INDEX_DTYPE)
        new_data = np.empty(total, dtype=self.dtype)
        # Gather entry ranges per selected vector.  The flat gather index is
        # built vectorized: for each selected segment, a contiguous run of
        # source positions.
        starts = self.indptr[sel]
        flat = _ranges_concat(starts, lengths)
        new_indices[:] = self.indices[flat]
        new_data[:] = self.data[flat]
        new_shape = list(self.shape)
        new_shape[self._major_axis] = sel.shape[0]
        return type(self)(tuple(new_shape), new_indptr, new_indices, new_data, check=False)

    def astype(self, dtype):
        return type(self)(
            self.shape,
            self.indptr,
            self.indices,
            self.data.astype(dtype),
            check=False,
        )

    def copy(self):
        return type(self)(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            check=False,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        major = np.repeat(np.arange(self.n_major), np.diff(self.indptr))
        if self._major_axis == 1:  # CSC: major = columns
            out[self.indices, major] = self.data
        else:  # CSR: major = rows
            out[major, self.indices] = self.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.dtype})"
        )


def _ranges_concat(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s+l) for s, l in zip(starts, lengths)]`` fast."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=_INDEX_DTYPE)
    # classic vectorized multi-range trick: cumulative offsets with resets
    out = np.ones(total, dtype=_INDEX_DTYPE)
    seg_ends = np.cumsum(lengths)
    nonzero = lengths > 0
    first_pos = np.concatenate(([0], seg_ends[:-1]))[nonzero]
    out[first_pos] = starts[nonzero]
    prev_start = starts[nonzero][:-1]
    prev_len = lengths[nonzero][:-1]
    if first_pos.shape[0] > 1:
        out[first_pos[1:]] -= prev_start + prev_len - 1
    np.cumsum(out, out=out)
    return out


class CscMatrix(_CompressedBase):
    """Compressed sparse column matrix; major axis = columns (features).

    This is the storage the paper uses for the *primal* solver: one SCD
    coordinate touches exactly one column.
    """

    _major_axis = 1

    # column views -----------------------------------------------------------
    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j`` (views, no copies)."""
        return self.major_slice(j)

    def col_norms_sq(self) -> np.ndarray:
        return self.major_norms_sq()

    def col_nnz(self) -> np.ndarray:
        return self.major_nnz()

    def take_cols(self, sel: np.ndarray) -> "CscMatrix":
        return self.take_major(sel)

    # algebra -----------------------------------------------------------------
    def matvec(self, beta: np.ndarray) -> np.ndarray:
        """``A @ beta``: scatter columns scaled by beta onto the rows."""
        return self._scatter_product(beta)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``A.T @ x``: per-column inner products with x."""
        return self._gather_product(x)

    def to_csr(self) -> "CsrMatrix":
        indptr, indices, data = transpose_compressed(
            self.indptr, self.indices, self.data, self.shape[0]
        )
        return CsrMatrix(self.shape, indptr, indices, data, check=False)


class CsrMatrix(_CompressedBase):
    """Compressed sparse row matrix; major axis = rows (examples).

    Storage for the *dual* solver: one SDCA coordinate touches one row.
    """

    _major_axis = 0

    # row views ----------------------------------------------------------------
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (views, no copies)."""
        return self.major_slice(i)

    def row_norms_sq(self) -> np.ndarray:
        return self.major_norms_sq()

    def row_nnz(self) -> np.ndarray:
        return self.major_nnz()

    def take_rows(self, sel: np.ndarray) -> "CsrMatrix":
        return self.take_major(sel)

    # algebra --------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x``: per-row inner products with x."""
        return self._gather_product(x)

    def rmatvec(self, alpha: np.ndarray) -> np.ndarray:
        """``A.T @ alpha``: scatter rows scaled by alpha onto the columns."""
        return self._scatter_product(alpha)

    def to_csc(self) -> CscMatrix:
        indptr, indices, data = transpose_compressed(
            self.indptr, self.indices, self.data, self.shape[1]
        )
        return CscMatrix(self.shape, indptr, indices, data, check=False)


# -- constructors ------------------------------------------------------------


def from_coo(
    rows: Iterable[int],
    cols: Iterable[int],
    vals: Iterable[float],
    shape: tuple[int, int],
    *,
    fmt: str = "csc",
    dtype=np.float64,
) -> CscMatrix | CsrMatrix:
    """Build a compressed matrix from COO triplets (duplicates are summed)."""
    rows = np.asarray(rows, dtype=_INDEX_DTYPE)
    cols = np.asarray(cols, dtype=_INDEX_DTYPE)
    vals = np.asarray(vals, dtype=dtype)
    if not (rows.shape == cols.shape == vals.shape):
        raise ValueError("rows, cols and vals must have identical shapes")
    n_rows, n_cols = shape
    if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
        raise ValueError("row index out of bounds")
    if cols.size and (cols.min() < 0 or cols.max() >= n_cols):
        raise ValueError("column index out of bounds")

    # sort lexicographically by (major, minor) and merge duplicates
    if fmt == "csc":
        major, minor, n_major = cols, rows, n_cols
    elif fmt == "csr":
        major, minor, n_major = rows, cols, n_rows
    else:
        raise ValueError(f"unknown format {fmt!r}")

    order = np.lexsort((minor, major))
    major, minor, vals = major[order], minor[order], vals[order]
    if vals.size:
        new_group = np.empty(vals.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = (major[1:] != major[:-1]) | (minor[1:] != minor[:-1])
        group_id = np.cumsum(new_group) - 1
        n_groups = int(group_id[-1]) + 1
        merged_vals = np.zeros(n_groups, dtype=vals.dtype)
        np.add.at(merged_vals, group_id, vals)
        major = major[new_group]
        minor = minor[new_group]
        vals = merged_vals
    indptr = np.zeros(n_major + 1, dtype=_INDEX_DTYPE)
    np.cumsum(np.bincount(major, minlength=n_major), out=indptr[1:])
    cls = CscMatrix if fmt == "csc" else CsrMatrix
    return cls(shape, indptr, minor, vals)


def from_dense_csc(dense: np.ndarray, *, dtype=None) -> CscMatrix:
    """Compress a dense 2-D array into CSC (zeros dropped)."""
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError("expected a 2-D array")
    rows, cols = np.nonzero(dense)
    vals = dense[rows, cols]
    if dtype is not None:
        vals = vals.astype(dtype)
    return from_coo(rows, cols, vals, dense.shape, fmt="csc", dtype=vals.dtype)


def from_dense_csr(dense: np.ndarray, *, dtype=None) -> CsrMatrix:
    """Compress a dense 2-D array into CSR (zeros dropped)."""
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError("expected a 2-D array")
    rows, cols = np.nonzero(dense)
    vals = dense[rows, cols]
    if dtype is not None:
        vals = vals.astype(dtype)
    return from_coo(rows, cols, vals, dense.shape, fmt="csr", dtype=vals.dtype)
