"""Low-level vectorized kernels shared by the sparse matrix formats.

These helpers operate on raw ``(indptr, indices, data)`` triplets so the hot
paths of the solvers can stay allocation-light and fully vectorized.  They are
written against plain :mod:`numpy` only — no scipy.sparse — because the
compressed formats themselves are part of the substrate this project builds
from scratch.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_sums",
    "expand_by_segments",
    "transpose_compressed",
    "check_compressed",
    "segment_lengths",
]


def segment_lengths(indptr: np.ndarray) -> np.ndarray:
    """Return the number of stored entries in each compressed segment."""
    return np.diff(indptr)


def segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``values`` within each segment delimited by ``indptr``.

    Robust to empty segments (unlike a naive ``np.add.reduceat``).  Uses an
    exclusive prefix sum so the cost is one pass over ``values``.

    Parameters
    ----------
    values:
        Flat array of per-entry values, ``len(values) == indptr[-1]``.
    indptr:
        Monotone segment pointer array of length ``n_segments + 1``.
    """
    if values.shape[0] != indptr[-1]:
        raise ValueError(
            f"values has {values.shape[0]} entries but indptr expects {indptr[-1]}"
        )
    # prefix[k] = sum(values[:k]); accumulate in float64 for accuracy, then
    # cast back so float32 inputs keep float32 results.
    prefix = np.empty(values.shape[0] + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(values, dtype=np.float64, out=prefix[1:])
    out = prefix[indptr[1:]] - prefix[indptr[:-1]]
    return out.astype(values.dtype, copy=False)


def expand_by_segments(per_segment: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Broadcast one value per segment to every stored entry of that segment.

    Equivalent to ``np.repeat(per_segment, np.diff(indptr))`` but named for
    readability at call sites (e.g. expanding ``beta[j]`` over column ``j``'s
    nonzeros when forming ``A @ beta`` from a CSC matrix).
    """
    if per_segment.shape[0] + 1 != indptr.shape[0]:
        raise ValueError(
            f"per_segment has {per_segment.shape[0]} entries but indptr "
            f"describes {indptr.shape[0] - 1} segments"
        )
    return np.repeat(per_segment, np.diff(indptr))


def transpose_compressed(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n_minor: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Transpose a compressed representation via a counting sort.

    Converts CSR -> CSC or CSC -> CSR in O(nnz).  ``n_minor`` is the extent of
    the minor axis (the axis ``indices`` refers to), which becomes the major
    axis of the output.  Output segments are sorted by the original major
    index, so the result has sorted indices whenever the input segments are
    traversed in order — the standard property of this algorithm.
    """
    nnz = indices.shape[0]
    n_major = indptr.shape[0] - 1
    counts = np.bincount(indices, minlength=n_minor)
    out_indptr = np.empty(n_minor + 1, dtype=indptr.dtype)
    out_indptr[0] = 0
    np.cumsum(counts, out=out_indptr[1:])

    out_indices = np.empty(nnz, dtype=indices.dtype)
    out_data = np.empty(nnz, dtype=data.dtype)

    # Position of each entry inside its destination segment: a stable
    # rank-within-group computed without a Python loop.  Entries appear in
    # major order, so rank = running count of prior occurrences of the same
    # minor index.  argsort(kind="stable") over the minor index gives the
    # destination permutation directly.
    order = np.argsort(indices, kind="stable")
    major_of_entry = np.repeat(
        np.arange(n_major, dtype=indices.dtype), np.diff(indptr)
    )
    out_indices[:] = major_of_entry[order]
    out_data[:] = data[order]
    return out_indptr, out_indices, out_data


def check_compressed(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n_major: int,
    n_minor: int,
) -> None:
    """Validate a compressed triplet, raising ``ValueError`` on any defect."""
    if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
        raise ValueError("indptr, indices and data must be 1-D arrays")
    if indptr.shape[0] != n_major + 1:
        raise ValueError(
            f"indptr length {indptr.shape[0]} != n_major + 1 = {n_major + 1}"
        )
    if indptr[0] != 0:
        raise ValueError("indptr must start at 0")
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    if indices.shape[0] != data.shape[0]:
        raise ValueError("indices and data must have equal length")
    if indptr[-1] != indices.shape[0]:
        raise ValueError(
            f"indptr[-1]={indptr[-1]} does not match nnz={indices.shape[0]}"
        )
    if indices.shape[0] and (indices.min() < 0 or indices.max() >= n_minor):
        raise ValueError("index out of bounds for minor axis")
