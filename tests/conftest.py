"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, make_dense_gaussian, make_webspam_like
from repro.objectives import RidgeProblem
from repro.sparse import from_coo


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense() -> Dataset:
    """Tiny dense problem with cheap closed-form solutions."""
    return make_dense_gaussian(40, 15, noise=0.1, seed=1)


@pytest.fixture
def small_sparse() -> Dataset:
    """Tiny sparse classification-style dataset."""
    return make_webspam_like(200, 400, nnz_per_example=12, seed=3)


@pytest.fixture
def ridge_small(small_dense) -> RidgeProblem:
    return RidgeProblem(small_dense, lam=1e-2)


@pytest.fixture
def ridge_sparse(small_sparse) -> RidgeProblem:
    return RidgeProblem(small_sparse, lam=5e-3)


def random_coo(rng: np.random.Generator, n: int, m: int, nnz: int):
    """COO triplets with possible duplicates — helper for matrix tests."""
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, m, size=nnz)
    vals = rng.standard_normal(nnz)
    return rows, cols, vals


@pytest.fixture
def random_csr(rng):
    rows, cols, vals = random_coo(rng, 30, 20, 150)
    return from_coo(rows, cols, vals, (30, 20), fmt="csr")


@pytest.fixture
def random_csc(rng):
    rows, cols, vals = random_coo(rng, 30, 20, 150)
    return from_coo(rows, cols, vals, (30, 20), fmt="csc")
