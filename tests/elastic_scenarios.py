"""Golden scenarios for the elastic/async runtime paths (PR 10).

The static-membership trajectories are pinned by ``tests/runtime_scenarios.py``
(which must stay bitwise across refactors).  This module pins the *new*
trajectories this growth step introduced: the async backend's bounded
staleness schedule, elastic membership (joins, leaves, churn, eviction),
load-proportional rebalancing, and their composition with fault injection.
``tools/capture_elastic_goldens.py`` writes ``tests/data/elastic_goldens.json``;
``tests/test_elastic_goldens.py`` replays every scenario bitwise.

Scenario problems reuse the runtime matrix's seeded builders, so captures
and replays are identical across machines.
"""

from __future__ import annotations

from repro.cluster.faults import FaultSpec
from repro.cluster.membership import MembershipSchedule
from repro.core import DistributedSCD
from repro.core.distributed_svm import DistributedSvm
from repro.solvers.scd import SequentialKernelFactory

from .runtime_scenarios import _ridge, _svm, fingerprint

__all__ = ["ELASTIC_SCENARIOS", "run_elastic_scenario"]


def _scd(formulation="dual", k=3, **kw):
    return DistributedSCD(
        SequentialKernelFactory(), formulation, n_workers=k, seed=7, **kw
    )


def _async(k=3, **kw):
    return _scd("dual", k, comm="async", batch_fraction=0.25, **kw)


ELASTIC_SCENARIOS: dict = {
    # -- the async backend beyond the bitwise-pinned legacy path ------------
    "async-staleness-b2": lambda: _async(3, staleness_bound=2).solve(
        _ridge(), 3
    ),
    "async-primal-k4": lambda: _scd(
        "primal", 4, comm="async", batch_fraction=0.125
    ).solve(_ridge(), 3),
    "async-dropout": lambda: _async(
        3, faults=FaultSpec(dropout_rate=0.4, seed=2)
    ).solve(_ridge(), 4),
    # -- elastic membership through the synchronous runtime -----------------
    "elastic-join-leave": lambda: _scd(
        "dual", 3, membership=[(2, "join"), (4, "leave")]
    ).solve(_ridge(), 5),
    "elastic-churn": lambda: _scd(
        "dual", 3,
        membership=MembershipSchedule(
            churn_seed=5, join_prob=0.4, leave_prob=0.4,
            min_workers=2, max_workers=5,
        ),
    ).solve(_ridge(), 6),
    "elastic-evict": lambda: _scd(
        "dual", 3,
        faults=FaultSpec(dropout_rate=1.0, seed=1),
        membership=MembershipSchedule(evict_after=2, min_workers=1),
    ).solve(_ridge(), 5),
    # -- load-proportional heterogeneous pools ------------------------------
    "elastic-capacities": lambda: _scd(
        "dual", 3, capacities=[2.0, 1.0, 1.0]
    ).solve(_ridge(), 4),
    "elastic-rebalance": lambda: _scd(
        "dual", 3,
        faults=FaultSpec(straggler_rate=0.5, straggler_multiplier=8.0, seed=0),
        rebalance_every=2,
    ).solve(_ridge(), 6),
    # -- elastic async and elastic SVM --------------------------------------
    "async-elastic": lambda: _async(
        3, membership=[(2, "join"), (4, "leave")]
    ).solve(_ridge(), 5),
    "svm-elastic": lambda: DistributedSvm(
        n_workers=3, seed=3, membership=[(2, "join"), (4, "leave")]
    ).solve(_svm(), 5),
}


def _membership_fp(res) -> list[dict]:
    return [
        {
            "epoch": r.epoch,
            "k_before": r.k_before,
            "k_after": r.k_after,
            "joins": r.joins,
            "leaves": r.leaves,
            "evictions": r.evictions,
            "rebalanced": r.rebalanced,
            "dropped_stale": r.dropped_stale,
            "capacities": r.capacities,
        }
        for r in getattr(res, "membership_log", [])
    ]


def run_elastic_scenario(name: str) -> dict:
    """Run one scenario and return its (extended) fingerprint."""
    res = ELASTIC_SCENARIOS[name]()
    fp = fingerprint(res, modelled_time=True)
    fp["membership"] = _membership_fp(res)
    return fp
