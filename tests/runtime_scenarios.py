"""The seed scenario matrix pinning the distributed engines' trajectories.

``tests/test_runtime.py`` replays every scenario here against the golden
fingerprints in ``tests/data/runtime_goldens.json``, which were captured
from the pre-refactor engines (``tools/capture_runtime_goldens.py``).  The
unified cluster runtime must reproduce each engine's weights, histories and
ledger phase totals **bitwise** — this module is the contract that lets the
multi-layer refactor prove it changed no numbers.

Scenario coverage, per the refactor issue:

* each engine (``DistributedSCD``, ``DistributedSvm``, ``MpDistributedSCD``),
* with and without faults (incl. the stale-buffer path only the simulated
  SCD engine supports),
* with and without out-of-core shards (incl. shard-read faults),
* both formulations, averaging/adaptive aggregation, partial rounds,
  paper-scale PCIe pricing, and GPU (TPA-SCD) local solvers,
* the asynchronous parameter server (it shares the delivery helpers).

Everything is seeded; nothing here depends on wall clock except the fields
deliberately excluded from fingerprints (``wall_time``, and ``sim_time`` /
``ledger`` for the real-process backend).
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.cluster.faults import FaultSpec, make_fault_injector
from repro.core import WEBSPAM_PAPER, AsyncParameterServer, DistributedSCD
from repro.core.distributed_svm import DistributedSvm
from repro.data import make_webspam_like
from repro.objectives import RidgeProblem
from repro.objectives.svm import SvmProblem
from repro.perf.link import PCIE3_X16_PINNED
from repro.shards import ShardingConfig, ShardStore, pack_dataset
from repro.solvers.scd import SequentialKernelFactory

__all__ = ["SCENARIOS", "run_scenario", "fingerprint"]


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def fingerprint(res, *, modelled_time: bool = True) -> dict:
    """Everything a scenario pins, JSON-serializable and bit-exact.

    Floats round-trip exactly through JSON (``repr`` grammar); arrays are
    pinned by sha256 of their raw bytes.  ``modelled_time=False`` drops the
    wall-clock-dependent fields (the real-process backend's sim_time and
    ledger are real elapsed seconds, not modelled ones).
    """
    records = res.history.records
    fp = {
        "weights": _sha(res.weights),
        "shared": _sha(res.shared),
        "epochs": [r.epoch for r in records],
        "gaps": [r.gap for r in records],
        "objectives": [r.objective for r in records],
        "updates": [r.updates for r in records],
    }
    if modelled_time:
        fp["sim_times"] = [r.sim_time for r in records]
        fp["ledger"] = {k: v for k, v in res.ledger.breakdown().items()}
    gammas = getattr(res, "gammas", None)
    if gammas is not None:
        fp["gammas"] = list(gammas)
    alpha = getattr(res, "alpha", None)
    if alpha is not None:
        fp["alpha"] = _sha(alpha)
    report = getattr(res, "fault_report", None)
    if report is not None:
        fp["fault_note"] = report.note()
        fp["survivors"] = list(report.survivor_counts)
    return fp


# ---------------------------------------------------------------------------
# shared problem builders (seeded -> identical across capture and replay)
# ---------------------------------------------------------------------------
def _ridge() -> RidgeProblem:
    return RidgeProblem(
        make_webspam_like(200, 400, nnz_per_example=12, seed=3), lam=5e-3
    )


def _svm() -> SvmProblem:
    return SvmProblem(
        make_webspam_like(200, 400, nnz_per_example=12, seed=6), lam=1e-2
    )


def _shards(tmp: Path, axis: str, n_shards: int, *, svm: bool = False):
    """Pack the scenario dataset into ``tmp`` and open it as a store."""
    ds = (
        make_webspam_like(200, 400, nnz_per_example=12, seed=6)
        if svm
        else make_webspam_like(200, 400, nnz_per_example=12, seed=3)
    )
    out = tmp / f"{axis}-{n_shards}{'-svm' if svm else ''}"
    if not out.exists():
        pack_dataset(ds, out, axis=axis, n_shards=n_shards)
    return ShardStore(out)


def _gpu_factory(rank: int):
    from repro.core.tpa_scd import TpaScdKernelFactory
    from repro.gpu.device import GpuDevice
    from repro.gpu.spec import GTX_TITAN_X

    return TpaScdKernelFactory(GpuDevice(GTX_TITAN_X), wave_size=2)


def _scd(formulation, k, agg, **kw):
    return DistributedSCD(
        SequentialKernelFactory(), formulation, n_workers=k,
        aggregation=agg, seed=7, **kw,
    )


# ---------------------------------------------------------------------------
# the matrix: name -> callable(tmp_dir) -> (result, modelled_time)
# ---------------------------------------------------------------------------
SCENARIOS: dict = {
    # -- simulated distributed SCD (Algorithms 3/4, Section V) --------------
    "scd-primal-averaging-k3": lambda tmp: (
        _scd("primal", 3, "averaging").solve(_ridge(), 5), True),
    "scd-dual-adaptive-k4": lambda tmp: (
        _scd("dual", 4, "adaptive").solve(_ridge(), 6), True),
    "scd-dual-adding-k2": lambda tmp: (
        _scd("dual", 2, "adding").solve(_ridge(), 3), True),
    "scd-primal-roundfrac": lambda tmp: (
        _scd("primal", 2, "adaptive", round_fraction=0.5).solve(_ridge(), 4),
        True),
    "scd-monitor-every-2": lambda tmp: (
        _scd("dual", 3, "adaptive").solve(_ridge(), 6, monitor_every=2), True),
    "scd-paper-pcie": lambda tmp: (
        _scd("dual", 4, "adaptive", paper_scale=WEBSPAM_PAPER,
             pcie=PCIE3_X16_PINNED).solve(_ridge(), 3), True),
    "scd-gpu-tpa-k2": lambda tmp: (
        DistributedSCD(_gpu_factory, "primal", n_workers=2,
                       aggregation="adaptive", seed=7).solve(_ridge(), 3),
        True),
    # -- faults through the simulated SCD engine ----------------------------
    "scd-dual-chaos": lambda tmp: (
        _scd("dual", 4, "adaptive",
             faults=make_fault_injector("chaos", seed=11)).solve(_ridge(), 8),
        True),
    "scd-dual-stale": lambda tmp: (
        _scd("dual", 4, "adaptive",
             faults=FaultSpec(stale_rate=0.5, seed=3)).solve(_ridge(), 6),
        True),
    "scd-primal-dropout": lambda tmp: (
        _scd("primal", 4, "averaging",
             faults=FaultSpec(dropout_rate=0.3, seed=2)).solve(_ridge(), 6),
        True),
    # -- shards (out-of-core) through the simulated SCD engine --------------
    "scd-dual-shards": lambda tmp: (
        _scd("dual", 2, "adaptive",
             shards=_shards(tmp, "rows", 6)).solve(_ridge(), 5), True),
    "scd-primal-shards": lambda tmp: (
        _scd("primal", 2, "averaging",
             shards=_shards(tmp, "cols", 4)).solve(_ridge(), 4), True),
    "scd-dual-shards-budget-faults": lambda tmp: (
        _scd("dual", 2, "adaptive",
             shards=ShardingConfig(
                 _shards(tmp, "rows", 6), cache_budget_bytes=20_000),
             faults=FaultSpec(drop_rate=0.3, shard_read_failure_rate=0.3,
                              seed=5)).solve(_ridge(), 6), True),
    # -- distributed SVM (CoCoA/SDCA) ---------------------------------------
    "svm-k4": lambda tmp: (
        DistributedSvm(n_workers=4, seed=3).solve(_svm(), 6), True),
    "svm-sigma2": lambda tmp: (
        DistributedSvm(n_workers=4, sigma_prime=2.0, seed=3).solve(_svm(), 5),
        True),
    "svm-chaos": lambda tmp: (
        DistributedSvm(n_workers=4, seed=3,
                       faults=make_fault_injector("chaos", seed=11),
                       ).solve(_svm(), 8), True),
    "svm-shards": lambda tmp: (
        DistributedSvm(n_workers=2, seed=3,
                       shards=_shards(tmp, "rows", 6, svm=True),
                       ).solve(_svm(), 5), True),
    "svm-paper-scale": lambda tmp: (
        DistributedSvm(n_workers=4, seed=3,
                       paper_scale=WEBSPAM_PAPER).solve(_svm(), 3), True),
    # -- real-process backend (wall clock excluded from the fingerprint) ----
    "mp-dual-adaptive-k2": lambda tmp: (
        _mp("dual", 2, "adaptive").solve(_ridge(), 4), False),
    "mp-primal-averaging-k2": lambda tmp: (
        _mp("primal", 2, "averaging").solve(_ridge(), 3), False),
    "mp-dual-dropout": lambda tmp: (
        _mp("dual", 2, "adaptive",
            faults=FaultSpec(dropout_rate=0.4, seed=2)).solve(_ridge(), 4),
        False),
    "mp-dual-drop": lambda tmp: (
        _mp("dual", 2, "adaptive",
            faults=FaultSpec(drop_rate=0.4, seed=2)).solve(_ridge(), 4),
        False),
    "mp-dual-shards": lambda tmp: (
        _mp("dual", 2, "adaptive",
            shards=_shards(tmp, "rows", 6)).solve(_ridge(), 3), False),
    # -- asynchronous parameter server (shares the delivery helpers) --------
    "async-dual-k3": lambda tmp: (
        AsyncParameterServer(
            SequentialKernelFactory(), "dual", n_workers=3,
            batch_fraction=0.25, seed=7).solve(_ridge(), 3), True),
}


def _mp(formulation, k, agg, **kw):
    from repro.cluster.mp_cluster import MpDistributedSCD

    return MpDistributedSCD(
        formulation, n_workers=k, aggregation=agg, seed=7, **kw
    )


def run_scenario(name: str, tmp: Path) -> dict:
    """Run one scenario and return its fingerprint."""
    res, modelled = SCENARIOS[name](Path(tmp))
    return fingerprint(res, modelled_time=modelled)
