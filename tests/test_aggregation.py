"""Tests for the aggregation rules, incl. numerical validation of Eq. 7."""

import numpy as np
import pytest

from repro.core.aggregation import (
    AdaptiveAggregator,
    AddingAggregator,
    AggregationStats,
    AveragingAggregator,
    make_aggregator,
)
from repro.objectives import RidgeProblem


def _stats(formulation="primal", **kw):
    base = dict(
        formulation=formulation,
        n=100,
        lam=0.01,
        n_workers=4,
        resid_dot_dshared=1.0,
        dshared_norm_sq=2.0,
        model_dot_dmodel=0.5,
        dmodel_norm_sq=1.0,
        dmodel_dot_y=0.3,
    )
    base.update(kw)
    return AggregationStats(**base)


class TestFixedRules:
    def test_averaging(self):
        assert AveragingAggregator().gamma(_stats(n_workers=8)) == pytest.approx(1 / 8)

    def test_adding(self):
        assert AddingAggregator().gamma(_stats()) == 1.0

    def test_make_aggregator_by_name(self):
        assert isinstance(make_aggregator("averaging"), AveragingAggregator)
        assert isinstance(make_aggregator("adding"), AddingAggregator)
        assert isinstance(make_aggregator("adaptive"), AdaptiveAggregator)

    def test_make_aggregator_passthrough(self):
        agg = AdaptiveAggregator()
        assert make_aggregator(agg) is agg

    def test_make_aggregator_unknown(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            make_aggregator("median")

    def test_extra_scalars_declared(self):
        assert AdaptiveAggregator().n_extra_scalars == 3
        assert AveragingAggregator().n_extra_scalars == 0


class TestAdaptiveGamma:
    def test_zero_update_falls_back_to_averaging(self):
        stats = _stats(dshared_norm_sq=0.0, dmodel_norm_sq=0.0)
        assert AdaptiveAggregator().gamma(stats) == pytest.approx(0.25)

    def test_unknown_formulation(self):
        with pytest.raises(ValueError, match="formulation"):
            AdaptiveAggregator().gamma(_stats(formulation="semi"))

    def test_primal_gamma_minimizes_objective(self, ridge_small):
        """gamma* from Eq. 7 must be the exact 1-D minimizer of
        P(beta + gamma dbeta) — verified against numerical minimization."""
        p = ridge_small
        rng = np.random.default_rng(0)
        beta = rng.standard_normal(p.m) * 0.2
        dbeta = rng.standard_normal(p.m) * 0.1
        dense = p.dataset.csr.to_dense()
        w = dense @ beta
        dw = dense @ dbeta
        stats = AggregationStats(
            formulation="primal",
            n=p.n,
            lam=p.lam,
            n_workers=4,
            resid_dot_dshared=float((w - p.y) @ dw),
            dshared_norm_sq=float(dw @ dw),
            model_dot_dmodel=float(beta @ dbeta),
            dmodel_norm_sq=float(dbeta @ dbeta),
        )
        gamma = AdaptiveAggregator().gamma(stats)
        f0 = p.primal_objective(beta + gamma * dbeta)
        for g in np.linspace(gamma - 0.5, gamma + 0.5, 21):
            assert p.primal_objective(beta + g * dbeta) >= f0 - 1e-12

    def test_dual_gamma_maximizes_objective(self, ridge_small):
        """The dual gamma* must exactly maximize D(alpha + gamma dalpha)."""
        p = ridge_small
        rng = np.random.default_rng(1)
        alpha = rng.standard_normal(p.n) * 0.05
        dalpha = rng.standard_normal(p.n) * 0.02
        dense = p.dataset.csr.to_dense()
        wbar = dense.T @ alpha
        dwbar = dense.T @ dalpha
        stats = AggregationStats(
            formulation="dual",
            n=p.n,
            lam=p.lam,
            n_workers=4,
            resid_dot_dshared=float(wbar @ dwbar),
            dshared_norm_sq=float(dwbar @ dwbar),
            model_dot_dmodel=float(alpha @ dalpha),
            dmodel_norm_sq=float(dalpha @ dalpha),
            dmodel_dot_y=float(dalpha @ p.y),
        )
        gamma = AdaptiveAggregator().gamma(stats)
        d0 = p.dual_objective(alpha + gamma * dalpha)
        for g in np.linspace(gamma - 0.5, gamma + 0.5, 21):
            assert p.dual_objective(alpha + g * dalpha) <= d0 + 1e-12

    def test_primal_gamma_closed_form_vs_grid(self, ridge_sparse):
        """Cross-check gamma* against a fine golden-section-style scan."""
        p = ridge_sparse
        rng = np.random.default_rng(2)
        beta = rng.standard_normal(p.m) * 0.1
        dbeta = rng.standard_normal(p.m) * 0.05
        csc = p.dataset.csc
        w, dw = csc.matvec(beta), csc.matvec(dbeta)
        stats = AggregationStats(
            formulation="primal",
            n=p.n,
            lam=p.lam,
            n_workers=2,
            resid_dot_dshared=float((w - p.y) @ dw),
            dshared_norm_sq=float(dw @ dw),
            model_dot_dmodel=float(beta @ dbeta),
            dmodel_norm_sq=float(dbeta @ dbeta),
        )
        gamma = AdaptiveAggregator().gamma(stats)
        grid = np.linspace(gamma - 1, gamma + 1, 2001)
        vals = [p.primal_objective(beta + g * dbeta) for g in grid]
        assert abs(grid[int(np.argmin(vals))] - gamma) < 2e-3

    def test_distributed_scalar_decomposition(self, ridge_small):
        """The sum_k identities behind Algorithm 4's communication scheme:
        with disjoint per-worker coordinate ownership,
        <beta, dbeta> = sum_k <beta_k, dbeta_k> and
        ||dbeta||^2 = sum_k ||dbeta_k||^2."""
        rng = np.random.default_rng(3)
        m = ridge_small.m
        beta = rng.standard_normal(m)
        dbeta = rng.standard_normal(m)
        parts = np.array_split(rng.permutation(m), 3)
        dot = sum(float(beta[p] @ dbeta[p]) for p in parts)
        norm = sum(float(dbeta[p] @ dbeta[p]) for p in parts)
        assert dot == pytest.approx(float(beta @ dbeta))
        assert norm == pytest.approx(float(dbeta @ dbeta))
