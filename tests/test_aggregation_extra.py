"""Tests for the extension aggregation rules (sigma' scaling, line search)."""

import numpy as np
import pytest

from repro.core.aggregation import (
    AdaptiveAggregator,
    AggregationStats,
    LineSearchAggregator,
    ScaledAggregator,
    make_aggregator,
)
from repro.objectives import RidgeProblem


def _random_stats(problem: RidgeProblem, formulation: str, seed: int):
    rng = np.random.default_rng(seed)
    dense = problem.dataset.csr.to_dense()
    if formulation == "primal":
        beta = rng.standard_normal(problem.m) * 0.2
        dbeta = rng.standard_normal(problem.m) * 0.1
        w, dw = dense @ beta, dense @ dbeta
        return AggregationStats(
            formulation="primal",
            n=problem.n,
            lam=problem.lam,
            n_workers=4,
            resid_dot_dshared=float((w - problem.y) @ dw),
            dshared_norm_sq=float(dw @ dw),
            model_dot_dmodel=float(beta @ dbeta),
            dmodel_norm_sq=float(dbeta @ dbeta),
        )
    alpha = rng.standard_normal(problem.n) * 0.05
    dalpha = rng.standard_normal(problem.n) * 0.02
    wbar, dwbar = dense.T @ alpha, dense.T @ dalpha
    return AggregationStats(
        formulation="dual",
        n=problem.n,
        lam=problem.lam,
        n_workers=4,
        resid_dot_dshared=float(wbar @ dwbar),
        dshared_norm_sq=float(dwbar @ dwbar),
        model_dot_dmodel=float(alpha @ dalpha),
        dmodel_norm_sq=float(dalpha @ dalpha),
        dmodel_dot_y=float(dalpha @ problem.y),
    )


class TestScaledAggregator:
    def test_endpoints(self):
        stats = _make_trivial_stats()
        assert ScaledAggregator(1.0).gamma(stats) == pytest.approx(1 / 4)
        assert ScaledAggregator(4.0).gamma(stats) == pytest.approx(1.0)

    def test_name_carries_sigma(self):
        assert "2" in ScaledAggregator(2.0).name

    def test_validation(self):
        with pytest.raises(ValueError, match="sigma_prime"):
            ScaledAggregator(0.0)


def _make_trivial_stats():
    return AggregationStats(
        formulation="primal",
        n=10,
        lam=0.1,
        n_workers=4,
        resid_dot_dshared=1.0,
        dshared_norm_sq=1.0,
        model_dot_dmodel=0.0,
        dmodel_norm_sq=1.0,
    )


class TestLineSearchAggregator:
    @pytest.mark.parametrize("formulation", ["primal", "dual"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_adaptive_closed_form(self, ridge_small, formulation, seed):
        """For ridge, numerical line search must land on Eq. 7's gamma*
        (whenever it lies inside the search bracket)."""
        stats = _random_stats(ridge_small, formulation, seed)
        exact = AdaptiveAggregator().gamma(stats)
        searched = LineSearchAggregator(gamma_max=8.0).gamma(stats)
        if 0.0 <= exact <= 8.0:
            assert searched == pytest.approx(exact, abs=1e-6)

    def test_clamps_to_bracket(self):
        # construct stats whose optimum is negative: search returns ~0
        stats = AggregationStats(
            formulation="primal",
            n=10,
            lam=0.1,
            n_workers=2,
            resid_dot_dshared=5.0,  # positive -> gamma* < 0
            dshared_norm_sq=1.0,
            model_dot_dmodel=0.0,
            dmodel_norm_sq=0.0,
        )
        assert LineSearchAggregator().gamma(stats) == pytest.approx(0.0, abs=1e-6)

    def test_zero_update_fallback(self):
        stats = AggregationStats(
            formulation="dual",
            n=10,
            lam=0.1,
            n_workers=4,
            resid_dot_dshared=0.0,
            dshared_norm_sq=0.0,
            model_dot_dmodel=0.0,
            dmodel_norm_sq=0.0,
        )
        assert LineSearchAggregator().gamma(stats) == pytest.approx(0.25)

    def test_unknown_formulation(self):
        agg = LineSearchAggregator()
        stats = AggregationStats(
            formulation="mixed",
            n=10,
            lam=0.1,
            n_workers=2,
            resid_dot_dshared=1.0,
            dshared_norm_sq=1.0,
            model_dot_dmodel=0.0,
            dmodel_norm_sq=1.0,
        )
        with pytest.raises(ValueError, match="formulation"):
            agg.gamma(stats)

    def test_validation(self):
        with pytest.raises(ValueError, match="gamma_max"):
            LineSearchAggregator(gamma_max=0.0)

    def test_registered_by_name(self):
        assert isinstance(make_aggregator("line-search"), LineSearchAggregator)


class TestLineSearchInEngine:
    def test_line_search_tracks_adaptive_in_training(self, ridge_sparse):
        from repro.core import DistributedSCD
        from repro.solvers.scd import SequentialKernelFactory

        results = {}
        for rule in ("adaptive", "line-search"):
            eng = DistributedSCD(
                SequentialKernelFactory(),
                "dual",
                n_workers=4,
                aggregation=rule,
                seed=3,
            )
            results[rule] = eng.solve(ridge_sparse, 10)
        # identical trajectories up to the line search's tolerance
        assert np.allclose(
            results["adaptive"].gammas, results["line-search"].gammas, atol=1e-5
        )
        assert results["line-search"].history.final_gap() == pytest.approx(
            results["adaptive"].history.final_gap(), rel=1e-3, abs=1e-12
        )
