"""Contract tests for the public API: ``repro.train`` + ``repro.__all__``.

The facade must construct the same engines users build by hand and return
bitwise-identical results, and every name the package advertises must
resolve.
"""

from __future__ import annotations

import inspect
import json

import numpy as np
import pytest

import repro
from repro import SolverConfig, train
from repro.api import SOLVER_ALIASES
from repro.cli import main
from repro.core.distributed import DistributedTrainResult
from repro.core import distributed_svm
from repro.core.distributed_svm import SvmTrainResult
from repro.objectives import SvmProblem
from repro.solvers.base import TrainResult
from repro.solvers.scd import SequentialSCD


@pytest.fixture
def svm_sparse(small_sparse) -> SvmProblem:
    return SvmProblem(small_sparse, lam=1e-2)


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_canonical_names_present(self):
        for name in (
            "train", "SolverConfig", "Tracer", "NullTracer",
            "MetricsRegistry", "use_tracer", "active_tracer", "TimeLedger",
            "TrainResult", "DistributedTrainResult", "SvmTrainResult",
        ):
            assert name in repro.__all__

    def test_train_signature(self):
        sig = inspect.signature(train)
        params = list(sig.parameters)
        assert params[:2] == ["problem", "solver"]
        assert sig.parameters["solver"].default == "seq"
        for kw in ("config", "tracer"):
            assert (
                sig.parameters[kw].kind is inspect.Parameter.KEYWORD_ONLY
            ), kw

    def test_solver_config_frozen(self):
        cfg = SolverConfig()
        with pytest.raises(Exception):
            cfg.n_epochs = 99
        assert cfg.replace(n_epochs=99).n_epochs == 99
        assert cfg.n_epochs == 10  # original untouched

    def test_unknown_solver_lists_aliases(self, ridge_sparse):
        with pytest.raises(ValueError) as err:
            train(ridge_sparse, "sgd-9000")
        for alias in sorted(set(SOLVER_ALIASES)):
            assert alias in str(err.value)


class TestTrainDispatch:
    @pytest.mark.parametrize(
        "solver", ["seq", "a-scd", "wild", "syscd", "tpa-scd", "distributed", "mp"]
    )
    def test_every_solver_returns_train_result(self, ridge_sparse, solver):
        kwargs = {"n_epochs": 2}
        if solver == "mp":
            kwargs.update(n_workers=2)
        res = train(ridge_sparse, solver, **kwargs)
        assert isinstance(res, TrainResult)
        assert res.history.records
        assert res.ledger is not None and res.ledger.total >= 0.0
        assert res.weights.shape == (ridge_sparse.m,)

    def test_aliases_reach_same_engine(self, ridge_sparse):
        a = train(ridge_sparse, "scd", n_epochs=2, seed=3)
        b = train(ridge_sparse, "sequential", n_epochs=2, seed=3)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_facade_matches_direct_construction(self, ridge_sparse):
        via_facade = train(ridge_sparse, "seq", n_epochs=3, seed=11)
        direct = SequentialSCD("primal", seed=11).solve(ridge_sparse, 3)
        np.testing.assert_array_equal(via_facade.weights, direct.weights)
        assert [r.gap for r in via_facade.history.records] == [
            r.gap for r in direct.history.records
        ]

    def test_config_object_and_overrides_compose(self, ridge_sparse):
        cfg = SolverConfig(formulation="dual", n_epochs=5, seed=2)
        res = train(ridge_sparse, "seq", config=cfg, n_epochs=2)
        assert res.formulation == "dual"
        assert res.history.records[-1].epoch == 2

    def test_distributed_result_type(self, ridge_sparse):
        res = train(
            ridge_sparse, "distributed", n_epochs=2, n_workers=3,
            aggregation="adaptive",
        )
        assert isinstance(res, DistributedTrainResult)
        assert isinstance(res, TrainResult)
        assert len(res.partitions) == 3
        assert len(res.gammas) == 2

    def test_distributed_tpa_local_solver(self, ridge_sparse):
        res = train(
            ridge_sparse, "distributed", n_epochs=2, n_workers=2,
            local_solver="tpa",
        )
        assert isinstance(res, DistributedTrainResult)

    def test_unknown_local_solver(self, ridge_sparse):
        with pytest.raises(ValueError, match="local_solver"):
            train(ridge_sparse, "distributed", local_solver="quantum")

    def test_svm_result_and_legacy_unpack(self, svm_sparse):
        res = train(svm_sparse, "distributed-svm", n_epochs=2, n_workers=2)
        assert isinstance(res, SvmTrainResult)
        assert isinstance(res, TrainResult)
        distributed_svm._reset_tuple_unpack_warning()
        with pytest.warns(DeprecationWarning, match="tuple-unpacking"):
            w, alpha, history, ledger = res
        np.testing.assert_array_equal(w, res.weights)
        np.testing.assert_array_equal(alpha, res.alpha)
        assert history is res.history and ledger is res.ledger
        assert alpha.shape == (svm_sparse.n,)

    def test_tracer_kwarg_threads_through(self, ridge_sparse):
        tracer = repro.Tracer()
        res = train(ridge_sparse, "tpa-scd", n_epochs=2, tracer=tracer)
        assert res.trace is tracer
        assert tracer.metrics.counter("gpu.waves") > 0
        assert res.ledger.breakdown() == pytest.approx(
            tracer.ledger.breakdown()
        )

    def test_facade_traced_is_bit_identical(self, ridge_sparse):
        plain = train(ridge_sparse, "seq", n_epochs=3, seed=4)
        traced = train(
            ridge_sparse, "seq", n_epochs=3, seed=4, tracer=repro.Tracer()
        )
        np.testing.assert_array_equal(plain.weights, traced.weights)


class TestRunJsonCli:
    def test_run_json_stdout(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["run", "fig2", "--scale", "tiny", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.run/v1"
        assert doc["experiment"] == "fig2"
        assert doc["scale"] == "tiny"
        series = doc["figure"]["series"]
        assert series and all(
            len(s["x"]) == len(s["y"]) for s in series
        )
        assert all(
            isinstance(v, float) for s in series for v in s["x"] + s["y"]
        )

    def test_run_json_out_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        out = tmp_path / "sub" / "fig.json"
        assert main(
            ["run", "ext-smart-partition", "--scale", "tiny",
             "--json", "--out", str(out)]
        ) == 0
        assert str(out) in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["figure"]["figure_id"]
        assert doc["figure"]["series"]
