"""Tests for the terminal figure renderer."""

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.results import CurveSeries, FigureResult


def _fig():
    fig = FigureResult("figT", "test")
    fig.add(
        CurveSeries(
            "fast", np.arange(10), 10.0 ** (-np.arange(10.0)), "epochs", "gap"
        )
    )
    fig.add(
        CurveSeries(
            "slow", np.arange(10), 10.0 ** (-np.arange(10.0) / 3), "epochs", "gap"
        )
    )
    return fig


class TestAsciiPlot:
    def test_contains_title_axes_legend(self):
        text = ascii_plot(_fig())
        assert "figT" in text
        assert "epochs" in text
        assert "* fast" in text and "o slow" in text

    def test_glyphs_plotted(self):
        text = ascii_plot(_fig())
        body = text.split("\n")[1:-3]
        assert any("*" in line for line in body)
        assert any("o" in line for line in body)

    def test_log_axis_labels_decrease_down(self):
        text = ascii_plot(_fig())
        import re

        labels = [
            float(m.group(1))
            for m in re.finditer(r"^\s*(\d\.\de[+-]\d+) \|", text, re.M)
        ]
        assert len(labels) >= 3
        assert all(a > b for a, b in zip(labels, labels[1:]))

    def test_label_filter(self):
        text = ascii_plot(_fig(), label_filter="fast")
        assert "fast" in text and "slow" not in text

    def test_empty_filter_handled(self):
        assert "no series" in ascii_plot(_fig(), label_filter="nothing-matches")

    def test_nonpositive_values_skipped(self):
        fig = FigureResult("z", "zeros")
        fig.add(CurveSeries("s", [0, 1, 2], [0.0, 1e-3, -1.0]))
        text = ascii_plot(fig)
        assert "s" in text  # plots the one positive point without crashing

    def test_all_nonpositive(self):
        fig = FigureResult("z", "zeros")
        fig.add(CurveSeries("s", [0, 1], [0.0, 0.0]))
        assert "no positive finite values" in ascii_plot(fig)

    def test_logx_mode(self):
        fig = _fig()
        fig.series[0].x = 10.0 ** np.arange(10)
        fig.series[1].x = 10.0 ** np.arange(10)
        text = ascii_plot(fig, logx=True)
        assert "figT" in text

    def test_infinite_values_skipped(self):
        fig = FigureResult("i", "inf")
        fig.add(CurveSeries("s", [0, 1, 2], [1.0, np.inf, 0.1]))
        text = ascii_plot(fig)
        assert "s" in text


class TestCliPlot:
    def test_run_with_plot(self, capsys):
        assert main(["run", "ext-smart-partition", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "|" in out and "correlation-aware" in out

    def test_run_with_plot_and_filter(self, capsys):
        assert main(
            ["run", "ext-smart-partition", "--plot", "--series", "random"]
        ) == 0
        out = capsys.readouterr().out
        legend = [l for l in out.splitlines() if l.startswith("   ")]
        assert any("random" in l for l in legend)
        assert not any("correlation-aware" in l for l in legend)
